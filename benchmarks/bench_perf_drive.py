"""Drive-loop throughput: records simulated per second, by protocol.

Not a paper figure — this benchmark tracks the simulator's own speed,
which bounds every sweep above it. ``legacy`` regenerates the merged
trace and walks per-record tuples through the compatibility path;
``fast`` uses the cached record arrays and the batched drive loop;
``traced`` is the fast path with the observability tracer enabled
(events discarded), tracking instrumentation overhead. All paths must
agree bit-for-bit on every statistic; only wall-clock may differ.
"""

from repro.harness.perfbench import measure_drive_throughput
from repro.harness.runner import ExperimentSetup


def test_perf_drive_throughput(benchmark, report):
    setup = ExperimentSetup(num_cores=4, accesses_per_core=15_000)

    def measure():
        return tuple(
            measure_drive_throughput(
                scheme="bimodal", mix="Q1", setup=setup, mode=mode, repeats=2
            )
            for mode in ("legacy", "fast", "traced")
        )

    legacy, fast, traced = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        [legacy.row(), fast.row(), traced.row()],
        title="Drive-loop throughput (records/sec)",
    )
    # Identical simulations: the fast path is an optimization and the
    # tracer taps are pull-based, not model changes. Throughput
    # assertions stay loose — wall-clock on shared CI machines is noisy
    # — the hard ratio targets are checked offline via
    # scripts/bench_perf.sh history (fast_over_legacy, traced_over_fast).
    assert fast.stats == legacy.stats
    assert traced.stats == legacy.stats
    assert fast.records == legacy.records == traced.records
    assert legacy.records_per_second > 0
    assert fast.records_per_second > 0
    assert traced.records_per_second > 0
