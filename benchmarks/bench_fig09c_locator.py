"""Figure 9(c): way locator hit rate vs table size K.

Paper: K=14 is the sweet spot (~95% average hit rate on quad-core
workloads at 77.8 KB); hit rates rise with K and saturate.
"""

from repro.harness.experiments import fig9c_way_locator_hit_rate

LOCATOR_MIXES = ["Q2", "Q12", "Q17", "Q20"]


def test_fig9c_way_locator_hit_rate(benchmark, report, quad_setup):
    rows = benchmark.pedantic(
        lambda: fig9c_way_locator_hit_rate(
            setup=quad_setup, mix_names=LOCATOR_MIXES
        ),
        rounds=1,
        iterations=1,
    )
    report(rows, title="Figure 9c: way locator hit rate vs K")
    mean = rows[-1]
    assert mean["mix"] == "mean"
    # Monotone-ish growth with K and saturation at the top.
    assert mean["K16"] >= mean["K12"] >= mean["K10"] - 0.02
    # At the paper's chosen K=14, the locator serves the vast majority
    # of accesses with a single SRAM lookup.
    assert mean["K14"] > 0.80
