"""Rule ``backend-parity`` — vectorized kernels stay honest.

The vectorized drive backend (:mod:`repro.harness.backends.vectorized`)
is only correct because every fused kernel defers statistics to the
shared flush helpers and every scheme that advertises ``"vectorized"``
in its registry entry actually has a registered chunk kernel. Both
invariants are structural and both have silent failure modes: a kernel
that bumps ``stat.hits`` inline double-counts after a warmup reset, and
a registry flag without a kernel turns every "vectorized" run into a
quiet scalar fallback. This rule checks, project-wide:

* every function decorated with ``register_kernel(...)`` calls the
  shared ``_flush_stats`` helper (the single stats-accumulation seam);
* no such kernel assigns or augments a statistics attribute
  (``x.hits += 1``-style) outside the flush helpers;
* the ``VECTORIZED_SCHEMES`` registry-name set in the vectorized module
  and the ``register_scheme(..., backends=(..., "vectorized"))``
  declarations in the scheme registry name exactly the same schemes.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.model import ProjectModel, SourceFile, Violation
from repro.analysis.rules import Rule, register_rule

# Attribute names that are statistics accumulators somewhere in the
# simulator (RunningMean/RateStat fields, device/base counters). A
# fused kernel must only touch these through the _flush_* helpers.
_STAT_ATTRS = frozenset(
    {
        "hits",
        "misses",
        "count",
        "total",
        "minimum",
        "maximum",
        "reads",
        "writes",
        "bytes_transferred",
        "correct",
        "wrong",
        "offchip_fetched_bytes",
        "offchip_writeback_bytes",
    }
)

_FLUSH_HELPER = "_flush_stats"
_SET_NAME = "VECTORIZED_SCHEMES"


def _kernel_decorator(node: ast.FunctionDef) -> ast.expr | None:
    """The ``register_kernel(...)`` decorator call, when present."""
    for decorator in node.decorator_list:
        if (
            isinstance(decorator, ast.Call)
            and isinstance(decorator.func, ast.Name)
            and decorator.func.id == "register_kernel"
        ):
            return decorator
    return None


def _string_set(node: ast.expr) -> set[str] | None:
    """String constants of a ``frozenset({...})`` / set / tuple literal."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("frozenset", "set")
        and node.args
    ):
        node = node.args[0]
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        values = set()
        for element in node.elts:
            if not (
                isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            ):
                return None
            values.add(element.value)
        return values
    return None


@register_rule
class BackendParityRule(Rule):
    name = "backend-parity"
    version = 1
    description = (
        "vectorized kernels must flush stats through the shared helpers "
        "and VECTORIZED_SCHEMES must match the registry backends flags"
    )
    rationale = (
        "A fused kernel that bumps statistics inline double-counts "
        "after a warmup reset, and a registry 'vectorized' flag "
        "without a matching kernel silently degrades every run to the "
        "scalar fallback. Both failure modes are invisible at runtime; "
        "this rule pins the structural seam: kernels defer to "
        "_flush_stats, and VECTORIZED_SCHEMES mirrors the registry "
        "backends flags exactly."
    )
    example_bad = """\
@register_kernel("direct")
def direct_chunk(cache, addresses, stats):
    stats.hits += len(addresses)
"""
    example_good = """\
@register_kernel("direct")
def direct_chunk(cache, addresses, stats):
    hit_count = probe_all(cache, addresses)
    _flush_stats(stats, hit_count)
"""

    def check_file(
        self, source: SourceFile, project: ProjectModel
    ) -> Iterator[Violation]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            if _kernel_decorator(node) is None:
                continue
            yield from self._check_kernel(source, node)

    def _check_kernel(
        self, source: SourceFile, func: ast.FunctionDef
    ) -> Iterator[Violation]:
        flushes = False
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == _FLUSH_HELPER
            ):
                flushes = True
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr in _STAT_ATTRS
                ):
                    yield source.violation(
                        self.name,
                        target,
                        f"kernel {func.name} accumulates statistics "
                        f"inline (.{target.attr}); defer to the shared "
                        f"flush helpers so chunk flushes stay the only "
                        "accumulation site",
                    )
        if not flushes:
            yield source.violation(
                self.name,
                func,
                f"kernel {func.name} is registered via register_kernel "
                f"but never calls {_FLUSH_HELPER}; deferred statistics "
                "would be dropped at the chunk boundary",
            )

    def check_project(self, project: ProjectModel) -> Iterator[Violation]:
        declared_set: set[str] | None = None
        declared_node: ast.AST | None = None
        declared_source: SourceFile | None = None
        for source in project.files:
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id == _SET_NAME
                    ):
                        declared_set = _string_set(node.value)
                        declared_node = node
                        declared_source = source
        if declared_set is None or declared_source is None:
            return  # vectorized module not in scope for this run

        registry_flags: dict[str, tuple[SourceFile, ast.Call]] = {}
        for source in project.registry_files:
            for node in ast.walk(source.tree):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "register_scheme"
                ):
                    continue
                if not (
                    node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)
                ):
                    continue
                scheme = node.args[0].value
                for keyword in node.keywords:
                    if keyword.arg != "backends":
                        continue
                    backends = _string_set(keyword.value)
                    if backends and "vectorized" in backends:
                        registry_flags[scheme] = (source, node)

        for scheme in sorted(set(registry_flags) - declared_set):
            source, node = registry_flags[scheme]
            yield source.violation(
                self.name,
                node,
                f"scheme {scheme!r} declares the vectorized backend but "
                f"is missing from {_SET_NAME} in the vectorized module; "
                "add it (and a kernel) or drop the flag",
            )
        for scheme in sorted(declared_set - set(registry_flags)):
            yield declared_source.violation(
                self.name,
                declared_node,
                f"{_SET_NAME} lists {scheme!r} but no register_scheme "
                "call declares the vectorized backend for it; the "
                "registry flags and the kernel set must not drift",
            )
