"""Graceful-drain lifecycle for the ``repro serve`` daemon.

A daemon is ``starting`` while it binds and re-queues crash-recovery
work, ``serving`` once it accepts requests, and ``draining`` after
SIGTERM/SIGINT (or an explicit :meth:`Lifecycle.request_drain`). The
drain contract (``docs/robustness.md``):

* the listener closes — no new connections;
* already-connected clients keep their ``ping``/``stats``/``health``
  verbs, but new ``sim``/``grid`` submissions are rejected with the
  typed retryable ``draining`` error;
* queued and in-flight work keeps executing until the server is
  quiescent or the ``drain_timeout_s`` budget runs out — whichever
  comes first. Grids checkpoint per cell, so work cut off by the
  budget resumes from its journal on the next start;
* the process exits 0 either way (an orderly drain is a success, not
  a crash).

The state machine is deliberately monotonic: ``starting -> serving ->
draining``. There is no un-drain; a drained server restarts.
"""

from __future__ import annotations

import asyncio
import signal

__all__ = [
    "DRAINING",
    "SERVING",
    "STARTING",
    "Lifecycle",
    "await_quiesced",
    "install_signal_handlers",
]

STARTING = "starting"
SERVING = "serving"
DRAINING = "draining"

#: Signals that request an orderly drain (when the platform has them).
DRAIN_SIGNALS = ("SIGTERM", "SIGINT")


class Lifecycle:
    """Monotonic server state + the event the serve loop waits on."""

    def __init__(self) -> None:
        self.state = STARTING
        self.reason = ""
        self._drain_requested = asyncio.Event()

    # -- transitions ----------------------------------------------------
    def mark_serving(self) -> None:
        if self.state == STARTING:
            self.state = SERVING

    def request_drain(self, reason: str = "requested") -> None:
        """Enter ``draining`` (idempotent; safe from a signal callback)."""
        if self.state != DRAINING:
            self.state = DRAINING
            self.reason = reason
        self._drain_requested.set()

    # -- observation ----------------------------------------------------
    @property
    def draining(self) -> bool:
        return self.state == DRAINING

    async def wait_drain_requested(self) -> None:
        await self._drain_requested.wait()


def install_signal_handlers(
    loop: asyncio.AbstractEventLoop, lifecycle: Lifecycle
) -> bool:
    """Route SIGTERM/SIGINT into ``lifecycle.request_drain``.

    Returns False where the event loop cannot handle signals (Windows,
    non-main threads) — the caller then keeps the KeyboardInterrupt
    fallback instead.
    """
    installed = False
    for name in DRAIN_SIGNALS:
        signum = getattr(signal, name, None)
        if signum is None:
            continue
        try:
            loop.add_signal_handler(
                signum, lifecycle.request_drain, name.lower()
            )
        except (NotImplementedError, RuntimeError, ValueError):
            continue
        installed = True
    return installed


async def await_quiesced(
    is_idle, timeout_s: float, *, poll_s: float = 0.05
) -> bool:
    """Poll ``is_idle()`` until it holds or ``timeout_s`` elapses.

    Event-loop clock based (monotonic); returns True on quiescence,
    False when the budget ran out first. ``timeout_s <= 0`` means
    "check once, never wait".
    """
    loop = asyncio.get_running_loop()
    deadline = loop.time() + max(0.0, timeout_s)
    while True:
        if is_idle():
            return True
        if loop.time() >= deadline:
            return False
        await asyncio.sleep(poll_s)
