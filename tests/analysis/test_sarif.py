"""SARIF 2.1.0 output: structure, fingerprints, and the validator gate."""

import importlib.util
import json
import textwrap
from pathlib import Path

import repro
from repro.analysis.cli import main as lint_main
from repro.analysis.engine import LintResult, find_repo_root
from repro.analysis.model import Violation
from repro.analysis.reporting import render_sarif

_ROOT = find_repo_root(Path(repro.__file__).resolve().parent)
_spec = importlib.util.spec_from_file_location(
    "sarif_check", _ROOT / "scripts" / "sarif_check.py"
)
sarif_check = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_spec and sarif_check)


def make_violation(rule="determinism", path="src/mod.py", line=3):
    return Violation(
        rule=rule, path=path, line=line, col=4,
        message="time.time reads the wall clock",
        snippet="return time.time()",
    )


def render(new, tolerated=()):
    result = LintResult(
        violations=[*new, *tolerated],
        files_scanned=1,
        rules_run=("determinism", "slots"),
    )
    return json.loads(render_sarif(result, new=new, tolerated=tolerated))


class TestDocumentShape:
    def test_validator_accepts_a_run_with_findings(self):
        document = render([make_violation()])
        assert sarif_check.validate(document) == []

    def test_validator_accepts_an_empty_run(self):
        document = render([])
        assert sarif_check.validate(document) == []
        assert document["runs"][0]["results"] == []

    def test_rule_catalog_and_rule_index_agree(self):
        document = render([make_violation()])
        run = document["runs"][0]
        ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        result = run["results"][0]
        assert ids[result["ruleIndex"]] == result["ruleId"] == "determinism"
        # registry rationale rides along for code-scanning display
        by_id = {r["id"]: r for r in run["tool"]["driver"]["rules"]}
        assert "fullDescription" in by_id["determinism"]

    def test_location_is_one_based_and_relative(self):
        document = render([make_violation(line=3)])
        location = document["runs"][0]["results"][0]["locations"][0]
        region = location["physicalLocation"]["region"]
        assert region["startLine"] == 3
        assert region["startColumn"] == 5  # col 4, SARIF columns are 1-based
        uri = location["physicalLocation"]["artifactLocation"]["uri"]
        assert not uri.startswith("/")

    def test_fingerprint_matches_baseline_identity(self):
        violation = make_violation()
        document = render([violation])
        prints = document["runs"][0]["results"][0]["partialFingerprints"]
        assert prints["simlintFingerprint/v1"] == violation.fingerprint()

    def test_baselined_findings_are_suppressed_notes(self):
        document = render([], tolerated=[make_violation()])
        result = document["runs"][0]["results"][0]
        assert result["level"] == "note"
        assert result["suppressions"][0]["kind"] == "external"


class TestValidatorRejects:
    def test_wrong_version(self):
        document = render([])
        document["version"] = "2.0.0"
        assert any("version" in e for e in sarif_check.validate(document))

    def test_unknown_rule_id(self):
        document = render([make_violation()])
        document["runs"][0]["results"][0]["ruleId"] = "ghost"
        assert any("ruleId" in e for e in sarif_check.validate(document))

    def test_zero_based_region(self):
        document = render([make_violation()])
        region = document["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"]["region"]
        region["startLine"] = 0
        assert any("startLine" in e for e in sarif_check.validate(document))

    def test_absolute_uri(self):
        document = render([make_violation()])
        artifact = document["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"]["artifactLocation"]
        artifact["uri"] = "/abs/mod.py"
        assert any("uri" in e for e in sarif_check.validate(document))


class TestCliIntegration:
    def test_format_sarif_end_to_end(self, tmp_path, capsys):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.simlint]\ndeterminism-allow = []\n"
        )
        (tmp_path / "mod.py").write_text(textwrap.dedent("""
            import time

            def stamp():
                return time.time()
        """))
        assert lint_main(
            [str(tmp_path), "--no-baseline", "--format", "sarif"]
        ) == 1
        document = json.loads(capsys.readouterr().out)
        assert sarif_check.validate(document) == []
        assert document["runs"][0]["results"][0]["ruleId"] == "determinism"

    def test_validator_script_cli(self, tmp_path):
        good = tmp_path / "good.sarif"
        good.write_text(json.dumps(render([make_violation()])))
        assert sarif_check.main(["sarif_check", str(good)]) == 0
        bad = tmp_path / "bad.sarif"
        bad.write_text("{}")
        assert sarif_check.main(["sarif_check", str(bad)]) == 1
        assert sarif_check.main(["sarif_check"]) == 2
