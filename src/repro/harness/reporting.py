"""Plain-text table rendering for experiment results.

Every experiment returns rows of plain dictionaries; these helpers render
them the way the paper's tables/figure captions read, so benchmark output
is directly comparable with the published numbers.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = [
    "append_mean_row",
    "format_table",
    "format_percent",
    "mean_row",
    "print_table",
]


def mean_row(
    rows: Sequence[Mapping[str, object]],
    *,
    label_key: str = "mix",
    label: str = "mean",
) -> dict:
    """Average every numeric column of ``rows`` into one summary row.

    Non-numeric columns (other than ``label_key``) are dropped; the
    figure experiments all close with this row, matching the per-figure
    averages the paper reports.
    """
    summary: dict = {label_key: label}
    if not rows:
        return summary
    for key in rows[0]:
        if key == label_key:
            continue
        values = [
            row[key]
            for row in rows
            if isinstance(row.get(key), (int, float))
            and not isinstance(row.get(key), bool)
        ]
        if values:
            summary[key] = sum(values) / len(values)
    return summary


def append_mean_row(
    rows: list,
    *,
    label_key: str = "mix",
    label: str = "mean",
) -> list:
    """Append :func:`mean_row` to non-empty ``rows``; returns ``rows``."""
    if rows:
        rows.append(mean_row(rows, label_key=label_key, label=label))
    return rows


def format_percent(value: float, *, digits: int = 1) -> str:
    return f"{100.0 * value:.{digits}f}%"


def _cell(value: object) -> str:
    if isinstance(value, float):
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3f}" if abs(value) < 10 else f"{value:.1f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render rows as a fixed-width text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    rendered = [[_cell(row.get(col, "")) for col in cols] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(cols))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(cols))))
    return "\n".join(lines)


def print_table(
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> None:
    print(format_table(rows, columns=columns, title=title))
