"""Fault isolation for grid campaigns: policy, collection and injection.

Long multiprocess campaigns (8 schemes x dozens of mixes x sweeps) fail
in ways a single-process run never sees: a worker raises on one
pathological cell, the kernel OOM-kills a process and the whole pool
breaks, a cell hangs on a degenerate configuration. This module holds
the pieces the hardened grid engine in :mod:`repro.harness.parallel`
composes:

* :class:`CellFailure` — the structured record of one permanently
  failed cell (exception type, message, traceback, attempt count, wall
  time, scheme/mix labels) that lands in the run manifest;
* :class:`FaultPolicy` — retry/timeout knobs resolved from the
  environment (``REPRO_CELL_RETRIES``, ``REPRO_CELL_TIMEOUT_S``,
  ``REPRO_CELL_BACKOFF_S``) with deterministic exponential backoff +
  jitter (seeded by cell index and attempt, never by wall clock, so
  retry schedules are reproducible);
* :func:`collect_failures` — a scoped collector; while one is active,
  ``run_grid`` records exhausted cells instead of propagating their
  exception, and the grid completes with every healthy cell intact;
* :func:`cell_timeout` — a SIGALRM-based wall-clock budget for serial
  (in-process) cells;
* :func:`inject` / :func:`injection_env` — a deterministic
  fault-injection harness for tests: make the Nth cell raise, hang,
  die by ``SIGKILL``, fail fatally (uncatchable), or fail only its
  first K attempts (``flaky``). The plan travels through the
  ``REPRO_FAULT_INJECT`` environment variable so pool workers and CLI
  subprocesses honour it too.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import threading
import time
import traceback as traceback_module
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field

__all__ = [
    "RETRIES_ENV",
    "TIMEOUT_ENV",
    "BACKOFF_ENV",
    "INJECT_ENV",
    "CellFailure",
    "CellTimeoutError",
    "DeadlineExceededError",
    "WorkerCrashError",
    "InjectedFault",
    "FatalInjectedFault",
    "FaultPolicy",
    "FailureCollector",
    "collect_failures",
    "active_collector",
    "cell_timeout",
    "deadline_scope",
    "deadline_remaining",
    "check_deadline",
    "InjectionPlan",
    "inject",
    "injection_env",
    "active_plan",
]

RETRIES_ENV = "REPRO_CELL_RETRIES"
TIMEOUT_ENV = "REPRO_CELL_TIMEOUT_S"
BACKOFF_ENV = "REPRO_CELL_BACKOFF_S"
INJECT_ENV = "REPRO_FAULT_INJECT"

_BACKOFF_DEFAULT_S = 0.05
_BACKOFF_CAP_S = 5.0


class CellTimeoutError(Exception):
    """A cell exceeded its wall-clock budget (``REPRO_CELL_TIMEOUT_S``)."""


class DeadlineExceededError(CellTimeoutError):
    """A whole-request deadline (:func:`deadline_scope`) elapsed.

    Distinct from a per-cell timeout: the grid engine *aborts* the run
    (it does not record a cell failure and move on), because the budget
    belongs to the request, not to any one cell. Cells finished before
    the abort are already checkpointed, so resubmitting the request
    resumes instead of recomputing.
    """


class WorkerCrashError(Exception):
    """A worker process died (signal / OOM kill) while running a cell."""


class InjectedFault(RuntimeError):
    """Deterministic test fault raised by the injection harness."""


class FatalInjectedFault(BaseException):
    """Injected fault the grid engine must NOT absorb (simulated crash).

    Derives from ``BaseException`` so per-cell isolation — which catches
    ``Exception`` — lets it abort the whole run, exactly like a real
    crash of the driving process.
    """


# ----------------------------------------------------------------------
# failure records
# ----------------------------------------------------------------------
@dataclass
class CellFailure:
    """One permanently failed grid cell, in manifest-ready form."""

    index: int
    exc_type: str
    message: str
    attempts: int
    wall_s: float = 0.0
    traceback: str = ""
    scheme: str | None = None
    mix: str | None = None

    @classmethod
    def from_exception(
        cls,
        index: int,
        exc: BaseException,
        *,
        attempts: int,
        wall_s: float = 0.0,
        **labels,
    ) -> "CellFailure":
        tb = "".join(
            traceback_module.format_exception(type(exc), exc, exc.__traceback__)
        )
        return cls(
            index=index,
            exc_type=type(exc).__name__,
            message=str(exc),
            attempts=attempts,
            wall_s=round(wall_s, 6),
            traceback=tb,
            **labels,
        )

    def to_dict(self) -> dict:
        return asdict(self)

    def describe(self) -> str:
        """One table line: index, labels, exception, attempt count."""
        label = " ".join(
            f"{k}={v}" for k, v in (("scheme", self.scheme), ("mix", self.mix)) if v
        )
        msg = self.message.splitlines()[0] if self.message else ""
        return (
            f"cell {self.index:4d}  {label or '-':24s} "
            f"{self.exc_type}: {msg}  (attempts={self.attempts})"
        )


class FailureCollector:
    """Accumulates :class:`CellFailure` records across one invocation."""

    def __init__(self) -> None:
        self.failures: list[CellFailure] = []

    def record(self, failure: CellFailure) -> None:
        self.failures.append(failure)

    def as_dicts(self) -> list[dict]:
        return [f.to_dict() for f in self.failures]

    def __bool__(self) -> bool:
        return bool(self.failures)

    def __len__(self) -> int:
        return len(self.failures)


_collector: FailureCollector | None = None


@contextmanager
def collect_failures():
    """Scope in which grid cell failures are recorded, not propagated.

    Nested scopes stack: the innermost collector receives the records.
    """
    global _collector
    previous = _collector
    _collector = collector = FailureCollector()
    try:
        yield collector
    finally:
        _collector = previous


def active_collector() -> FailureCollector | None:
    return _collector


# ----------------------------------------------------------------------
# retry/timeout policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultPolicy:
    """Per-cell retry and wall-clock-timeout configuration."""

    retries: int = 0
    timeout_s: float | None = None
    backoff_s: float = _BACKOFF_DEFAULT_S

    @classmethod
    def from_env(cls) -> "FaultPolicy":
        return cls(
            retries=_int_env(RETRIES_ENV, 0),
            timeout_s=_float_env(TIMEOUT_ENV, None),
            backoff_s=_float_env(BACKOFF_ENV, _BACKOFF_DEFAULT_S) or 0.0,
        )

    @property
    def is_default(self) -> bool:
        """No retries and no timeout: the engine's zero-overhead case."""
        return self.retries <= 0 and self.timeout_s is None

    def backoff(self, index: int, attempt: int) -> float:
        """Deterministic exponential backoff with jitter, in seconds.

        ``base * 2**(attempt-1) * (1 + jitter)`` where jitter in [0, 1)
        is a pure function of (cell index, attempt) — retry schedules
        never depend on wall clock or a shared RNG, so fault-path runs
        are reproducible.
        """
        if self.backoff_s <= 0:
            return 0.0
        raw = self.backoff_s * (2 ** max(0, attempt - 1))
        return min(_BACKOFF_CAP_S, raw * (1.0 + _jitter_fraction(index, attempt)))


def _jitter_fraction(index: int, attempt: int) -> float:
    digest = hashlib.sha256(f"{index}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:4], "big") / 2**32


def _int_env(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return max(0, int(raw))
    except ValueError:
        return default


def _float_env(name: str, default: float | None) -> float | None:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        return default
    return value if value > 0 else default


# ----------------------------------------------------------------------
# serial wall-clock budget
# ----------------------------------------------------------------------
@contextmanager
def cell_timeout(seconds: float | None):
    """Raise :class:`CellTimeoutError` if the block outlives ``seconds``.

    SIGALRM-based, so it preempts even a hung C call or ``time.sleep``.
    A no-op when ``seconds`` is falsy, off the main thread, or on a
    platform without ``SIGALRM`` (pool workers get their budget from the
    parent's wait on the future instead).
    """
    if (
        not seconds
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _expired(signum, frame):
        raise CellTimeoutError(f"cell exceeded {seconds:g}s wall-clock budget")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


# ----------------------------------------------------------------------
# whole-request deadlines
# ----------------------------------------------------------------------
# Thread-local because the server runs each request on a pool thread:
# a deadline installed around one request must never leak into another
# request executing concurrently on a sibling thread.
_deadline = threading.local()


@contextmanager
def deadline_scope(seconds: float | None):
    """Install a wall-clock budget covering the whole enclosed request.

    The scope records an absolute monotonic expiry; the grid engine
    consults it between cells (:func:`check_deadline`) and folds the
    remaining budget into its pool waits, so both serial and parallel
    grids stop promptly once the budget is gone. Nested scopes take the
    tighter expiry. A falsy ``seconds`` is a no-op.
    """
    if not seconds or seconds <= 0:
        yield
        return
    previous = getattr(_deadline, "expires_at", None)
    expires_at = time.monotonic() + seconds
    if previous is not None:
        expires_at = min(expires_at, previous)
    _deadline.expires_at = expires_at
    try:
        yield
    finally:
        _deadline.expires_at = previous


def deadline_remaining() -> float | None:
    """Seconds left in the active deadline scope (None: no deadline).

    May be <= 0 once the budget is spent; callers that only need a
    go/no-go check should use :func:`check_deadline` instead.
    """
    expires_at = getattr(_deadline, "expires_at", None)
    if expires_at is None:
        return None
    return expires_at - time.monotonic()


def check_deadline() -> None:
    """Raise :class:`DeadlineExceededError` if the scope's budget is gone."""
    remaining = deadline_remaining()
    if remaining is not None and remaining <= 0:
        raise DeadlineExceededError(
            "request deadline exceeded (budget spent before completion)"
        )


# ----------------------------------------------------------------------
# deterministic fault injection (tests, CI smoke runs)
# ----------------------------------------------------------------------
_HANG_DEFAULT_S = 3600.0


@dataclass(frozen=True)
class InjectionPlan:
    """Cell-index-keyed fault actions, fired at attempt start."""

    actions: dict = field(default_factory=dict)

    def spec_for(self, index: int) -> dict | None:
        return self.actions.get(index)

    def fire(self, index: int, attempt: int) -> None:
        """Perform the planned fault for ``index``, if any.

        ``attempt`` is 1-based; ``flaky`` specs only fail while
        ``attempt <= fails`` so retried cells recover deterministically.
        """
        spec = self.actions.get(index)
        if spec is None:
            return
        action = spec["action"]
        if action == "raise":
            raise InjectedFault(f"injected failure at cell {index}")
        if action == "flaky":
            if attempt <= int(spec.get("fails", 1)):
                raise InjectedFault(
                    f"injected flaky failure at cell {index} (attempt {attempt})"
                )
            return
        if action == "fatal":
            raise FatalInjectedFault(f"injected fatal crash at cell {index}")
        if action == "hang":
            time.sleep(float(spec.get("seconds", _HANG_DEFAULT_S)))
            return
        if action == "sigkill":
            os.kill(os.getpid(), signal.SIGKILL)
            return
        raise ValueError(f"unknown injected action {action!r}")


def _normalize_spec(spec) -> dict:
    """``"hang:30"``/``"flaky:2"`` shorthand or an explicit dict."""
    if isinstance(spec, dict):
        out = dict(spec)
    else:
        name, _, arg = str(spec).partition(":")
        out = {"action": name}
        if arg:
            if name == "flaky":
                out["fails"] = int(arg)
            elif name == "hang":
                out["seconds"] = float(arg)
    if out.get("action") not in ("raise", "flaky", "fatal", "hang", "sigkill"):
        raise ValueError(f"unknown injected action {out.get('action')!r}")
    return out


def injection_env(plan: dict) -> dict[str, str]:
    """The environment carrying ``plan`` (for CLI subprocess tests)."""
    normalized = {
        str(int(index)): _normalize_spec(spec) for index, spec in plan.items()
    }
    return {INJECT_ENV: json.dumps(normalized, sort_keys=True)}


@contextmanager
def inject(plan: dict):
    """Activate a fault plan for the scope (env-propagated to workers)."""
    previous = os.environ.get(INJECT_ENV)
    os.environ[INJECT_ENV] = injection_env(plan)[INJECT_ENV]
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(INJECT_ENV, None)
        else:
            os.environ[INJECT_ENV] = previous


_plan_cache: tuple[str, InjectionPlan] | None = None


def active_plan() -> InjectionPlan | None:
    """The plan from ``REPRO_FAULT_INJECT``, or None (parse memoized)."""
    global _plan_cache
    raw = os.environ.get(INJECT_ENV, "").strip()
    if not raw:
        return None
    if _plan_cache is not None and _plan_cache[0] == raw:
        return _plan_cache[1]
    try:
        actions = {
            int(index): _normalize_spec(spec)
            for index, spec in json.loads(raw).items()
        }
    except (ValueError, TypeError, AttributeError):
        return None
    plan = InjectionPlan(actions=actions)
    _plan_cache = (raw, plan)
    return plan
