"""Table I: qualitative organization comparison, generated from configs."""

from repro.harness.experiments import table1_feature_matrix


def test_table1_feature_matrix(benchmark, report):
    rows = benchmark.pedantic(table1_feature_matrix, rounds=10, iterations=1)
    report(rows, title="Table I: DRAM cache organization comparison")
    by_attr = {r["attribute"]: r for r in rows}
    # Bi-Modal is the only mixed-granularity organization.
    assert by_attr["block_size"]["bimodal"] == "512B+64B"
    # It combines DRAM metadata (like Alloy/Loh-Hill) with the low
    # metadata overhead of the page-based schemes.
    assert by_attr["metadata"]["bimodal"] == "DRAM"
    assert by_attr["metadata_overhead"]["bimodal"] == "low"
    assert by_attr["hit_latency"]["bimodal"] == "low"
    assert by_attr["hit_rate"]["bimodal"] == "high"
    # Footprint Cache is the only tags-in-SRAM scheme.
    assert by_attr["metadata"]["footprint"] == "SRAM"
