"""One-pass miss-ratio-curve engine over materialized traces.

The grid experiments pay one full timing simulation per design point —
O(configs × trace). This engine answers the *hit-rate* part of every
sweep in a single O(trace) pass: the materialized address column (the
zero-copy SoA view from ``trace_cache.materialized_columns()``) is
walked once per ghost, and each tag-only ghost cache costs a couple of
dict probes per record, so the whole capacity × block-size ×
associativity × (X, Y) family resolves for less than one timing cell
(measured in ``BENCH_perf.json`` under the ``mrc`` perfbench mode;
analysis in ``docs/dse.md``).

Sampling
--------
``sample_rate < 1`` keeps a deterministic subset of the trace, chosen
by hashing the 4 KB *frame* of each address (SHARDS-style spatial
sampling): a frame is either fully in or fully out, so every ghost
geometry sees a consistent sub-stream and reuse distances inside kept
frames survive intact. The hash is a seed-salted splitmix64 finalizer
over the frame number — never ``hash()`` or ambient entropy, so a
(seed, rate) pair always selects the same records (the ``determinism``
simlint rule enforces this for the whole package). Ghost capacities are
scaled by the sampling rate (rounded to the nearest power of two) so a
sampled pass estimates the *full-trace* curve; each curve point carries
a binomial standard error ``sqrt(p(1-p)/n)`` over its sampled access
count. Bounds and methodology: ``docs/dse.md``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.mrc.ghost import AdaptiveGhost, GhostCache

try:  # numpy accelerates sampling; the scalar path is identical.
    import numpy as np
except ImportError:  # pragma: no cover - baked into the image
    np = None

__all__ = [
    "CurvePoint",
    "MRCResult",
    "MRCSpec",
    "mrc_pass",
    "sample_addresses",
]

_MASK64 = (1 << 64) - 1
_FRAME_BITS = 12  # 4 KB sampling frames
# splitmix64 finalizer constants: a single multiply has no avalanche
# into the high bits for small frame numbers (sequential frames would
# all share one keep/drop fate), so the frame hash needs the full
# multiply/xorshift mixing chain.
_MIX_A = 0xBF58476D1CE4E5B9
_MIX_B = 0x94D049BB133111EB
_SEED_MIX = 0x9E3779B97F4A7C15  # 64-bit golden ratio


@dataclass(frozen=True, slots=True)
class MRCSpec:
    """One ghost-sweep request: which curves, at what fidelity.

    The three curves vary one axis at a time around the base point
    (``base_capacity``, ``base_block_size``, ``base_associativity``).
    ``xy_capacities`` adds the bi-modal occupancy sweep: for each
    capacity, every allowed (X, Y) split of a
    ``set_size``/``big_block_size`` set is estimated and the best state
    reported. ``warmup_fraction`` mirrors the timing drive: counters
    reset at the ``int(n·fraction)``-th record so estimates line up with
    measured (post-warmup) hit rates.
    """

    capacities: tuple[int, ...] = ()
    block_sizes: tuple[int, ...] = ()
    associativities: tuple[int, ...] = ()
    base_capacity: int = 8 << 20
    base_block_size: int = 64
    base_associativity: int = 8
    xy_capacities: tuple[int, ...] = ()
    set_size: int = 2048
    big_block_size: int = 512
    sample_rate: float = 1.0
    seed: int = 1
    warmup_fraction: float = 0.0

    def validate(self) -> None:
        if not 0.0 < self.sample_rate <= 1.0:
            raise ValueError("sample_rate must be in (0, 1]")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        if not (self.capacities or self.block_sizes or self.associativities
                or self.xy_capacities):
            raise ValueError("spec requests no curves")


@dataclass(frozen=True, slots=True)
class CurvePoint:
    """One estimated point: integer counts plus derived rate and error.

    ``hits``/``accesses`` are kept as exact integers so downstream
    consumers (the Figure 1 rewire) can reproduce ``misses/total``
    arithmetic bit-for-bit; ``stderr`` is the binomial sampling error
    (0.0 at sample rate 1.0 — the estimate is then exact).
    """

    param: int | str
    hits: int
    accesses: int
    hit_rate: float
    stderr: float

    @property
    def miss_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return (self.accesses - self.hits) / self.accesses


@dataclass(frozen=True, slots=True)
class MRCResult:
    """Every curve of one ghost pass, plus sampling bookkeeping."""

    capacity: tuple[CurvePoint, ...] = ()
    block_size: tuple[CurvePoint, ...] = ()
    associativity: tuple[CurvePoint, ...] = ()
    xy: tuple[CurvePoint, ...] = ()
    best_xy: dict = field(default_factory=dict)
    total_records: int = 0
    sampled_records: int = 0
    sample_rate: float = 1.0
    seed: int = 1
    ghosts: int = 0

    def curves(self) -> dict[str, tuple[CurvePoint, ...]]:
        return {
            "capacity": self.capacity,
            "block_size": self.block_size,
            "associativity": self.associativity,
            "xy": self.xy,
        }


def sample_addresses(addresses, rate: float, seed: int) -> list[int]:
    """Deterministic 4 KB-frame subset of an address stream.

    Keeps an address iff ``hash(frame, seed)``'s top 24 bits fall under
    ``rate·2^24`` — a pure function of (address, seed), identical on the
    numpy and scalar paths (the scalar fallback reproduces uint64
    wraparound with explicit masking).
    """
    if rate >= 1.0:
        return addresses.tolist() if hasattr(addresses, "tolist") else list(addresses)
    threshold = int(rate * (1 << 24))
    salt = (seed * _SEED_MIX) & _MASK64
    if np is not None and isinstance(addresses, np.ndarray):
        a = addresses.astype(np.uint64, copy=False)
        h = (a >> np.uint64(_FRAME_BITS)) ^ np.uint64(salt)
        h = (h ^ (h >> np.uint64(30))) * np.uint64(_MIX_A)
        h = (h ^ (h >> np.uint64(27))) * np.uint64(_MIX_B)
        h = h ^ (h >> np.uint64(31))
        keep = ((h >> np.uint64(40)) & np.uint64(0xFFFFFF)) < threshold
        return a[keep].tolist()
    kept = []
    append = kept.append
    for address in addresses:
        h = (int(address) >> _FRAME_BITS) ^ salt
        h = ((h ^ (h >> 30)) * _MIX_A) & _MASK64
        h = ((h ^ (h >> 27)) * _MIX_B) & _MASK64
        h = h ^ (h >> 31)
        if ((h >> 40) & 0xFFFFFF) < threshold:
            append(int(address))
    return kept


def _pow2_scale(value: int, rate: float, minimum: int) -> int:
    """``value·rate`` rounded to the nearest power of two, floored.

    Sampled passes shrink ghost capacity in proportion to the kept
    fraction of the address space (the SHARDS capacity correction);
    exact for rates that are powers of 1/2, nearest-pow2 otherwise.
    """
    target = max(minimum, value * rate)
    exponent = round(math.log2(target))
    return max(minimum, 1 << exponent)


def _point(param, ghost, *, sampled: bool) -> CurvePoint:
    n = ghost.accesses
    p = ghost.hit_rate
    stderr = math.sqrt(p * (1.0 - p) / n) if (sampled and n) else 0.0
    return CurvePoint(
        param=param, hits=ghost.hits, accesses=n, hit_rate=p, stderr=stderr
    )


def mrc_pass(addresses, spec: MRCSpec) -> MRCResult:
    """Drive one address stream through the whole ghost family.

    ``addresses`` is any integer sequence — canonically the first
    column of ``trace_cache.materialized_columns()``. Returns the four
    curves of :class:`MRCResult`; cost is O(sampled records × ghosts)
    dict probes and nothing else.
    """
    spec.validate()
    total = len(addresses)
    stream = sample_addresses(addresses, spec.sample_rate, spec.seed)
    sampled = spec.sample_rate < 1.0
    n = len(stream)
    warmup = int(n * spec.warmup_fraction) if spec.warmup_fraction else 0

    def scaled(capacity: int, minimum: int) -> int:
        if not sampled:
            return capacity
        return _pow2_scale(capacity, spec.sample_rate, minimum)

    ghosts: list[tuple[str, int | str, object]] = []
    for capacity in spec.capacities:
        floor = spec.base_block_size * spec.base_associativity
        ghost = GhostCache(
            scaled(capacity, floor), spec.base_associativity, spec.base_block_size
        )
        ghosts.append(("capacity", capacity, ghost))
    for block_size in spec.block_sizes:
        floor = block_size * spec.base_associativity
        ghost = GhostCache(
            scaled(spec.base_capacity, floor),
            spec.base_associativity,
            block_size,
        )
        ghosts.append(("block_size", block_size, ghost))
    for assoc in spec.associativities:
        floor = spec.base_block_size * assoc
        ghost = GhostCache(
            scaled(spec.base_capacity, floor), assoc, spec.base_block_size
        )
        ghosts.append(("associativity", assoc, ghost))
    for capacity in spec.xy_capacities:
        ghost = AdaptiveGhost(
            scaled(capacity, spec.set_size),
            set_size=spec.set_size,
            big_block_size=spec.big_block_size,
        )
        ghosts.append(("xy", capacity, ghost))

    for _, _, ghost in ghosts:
        ghost.consume(stream, warmup)

    curves: dict[str, list[CurvePoint]] = {
        "capacity": [], "block_size": [], "associativity": [], "xy": []
    }
    best_xy: dict[int, tuple[int, int]] = {}
    ghost_count = 0
    for axis, param, ghost in ghosts:
        curves[axis].append(_point(param, ghost, sampled=sampled))
        if isinstance(ghost, AdaptiveGhost):
            best_xy[param] = ghost.best_state
            ghost_count += len(ghost.ghosts)
        else:
            ghost_count += 1

    from repro.obs import get_metrics

    metrics = get_metrics()
    metrics.add("mrc.passes")
    metrics.add("mrc.records", total)
    metrics.add("mrc.sampled_records", n)
    metrics.add("mrc.ghosts", ghost_count)

    return MRCResult(
        capacity=tuple(curves["capacity"]),
        block_size=tuple(curves["block_size"]),
        associativity=tuple(curves["associativity"]),
        xy=tuple(curves["xy"]),
        best_xy=best_xy,
        total_records=total,
        sampled_records=n,
        sample_rate=spec.sample_rate,
        seed=spec.seed,
        ghosts=ghost_count,
    )
