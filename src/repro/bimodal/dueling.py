"""Set-dueling alternative to the demand-counter global adaptation.

The paper's global (X, Y) selection uses demand counters with a weight W
(Section III-B4) and cites set-dueling [Qureshi et al., 9] as the
related sampling technique. This module implements the set-dueling
variant as an extension study: a few *leader sets* are pinned to each
candidate (X, Y) state; per-leader miss counters elect the state for all
*follower sets* at interval boundaries.

The ablation benchmark compares the two controllers' adapted states and
resulting hit rates, quantifying how much the simpler demand-ratio
controller gives up against the classic dueling approach.
"""

from __future__ import annotations

__all__ = ["SetDuelingController"]


class SetDuelingController:
    """Leader-set election of the cache-wide (X, Y) state.

    Drop-in replacement for
    :class:`~repro.bimodal.global_state.GlobalStateController`: exposes
    the same ``state``/``rank``/``record_miss``/``record_access`` API so
    the Bi-Modal cache can run either controller unchanged.

    Leader assignment: set ``s`` leads state ``k`` when
    ``s % (leader_spacing * num_states) == k * leader_spacing``. Leaders
    keep their pinned rank; followers use the elected rank.
    """

    def __init__(
        self,
        states: tuple[tuple[int, int], ...],
        *,
        interval: int = 1_000_000,
        leader_spacing: int = 16,
        smalls_per_big: int = 8,
    ) -> None:
        if not states:
            raise ValueError("states must be non-empty")
        if interval < 1 or leader_spacing < 1:
            raise ValueError("interval and leader_spacing must be >= 1")
        self._states = states
        self.interval = interval
        self.leader_spacing = leader_spacing
        self.smalls_per_big = smalls_per_big
        self._rank = 0
        self._accesses_in_interval = 0
        self._leader_misses = [0] * len(states)
        self._leader_accesses = [0] * len(states)
        self.updates = 0
        self.transitions = 0
        # compatibility with the demand-counter controller's interface
        self.demand_big = 0
        self.demand_small = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> tuple[int, int]:
        return self._states[self._rank]

    @property
    def rank(self) -> int:
        return self._rank

    def leader_rank(self, set_index: int) -> int | None:
        """The pinned rank when ``set_index`` is a leader, else None."""
        period = self.leader_spacing * len(self._states)
        offset = set_index % period
        if offset % self.leader_spacing == 0:
            return offset // self.leader_spacing
        return None

    # ------------------------------------------------------------------
    def observe_leader(self, set_index: int, *, miss: bool) -> None:
        """Feed a leader set's access outcome into the election."""
        rank = self.leader_rank(set_index)
        if rank is None:
            return
        self._leader_accesses[rank] += 1
        if miss:
            self._leader_misses[rank] += 1

    def record_miss(self, *, predicted_big: bool) -> None:
        """Interface parity with the demand controller (kept for stats)."""
        if predicted_big:
            self.demand_big += 1
        else:
            self.demand_small += 1

    def record_access(self) -> None:
        self._accesses_in_interval += 1
        if self._accesses_in_interval >= self.interval:
            self._accesses_in_interval = 0
            self._elect()

    # ------------------------------------------------------------------
    def _elect(self) -> None:
        self.updates += 1
        rates = []
        for rank in range(len(self._states)):
            accesses = self._leader_accesses[rank]
            if accesses < 8:  # insufficient evidence: neutral
                rates.append(None)
            else:
                rates.append(self._leader_misses[rank] / accesses)
        observed = [(r, k) for k, r in enumerate(rates) if r is not None]
        self._leader_misses = [0] * len(self._states)
        self._leader_accesses = [0] * len(self._states)
        self.demand_big = 0
        self.demand_small = 0
        if not observed:
            return
        best_rate, best_rank = min(observed)
        if best_rank != self._rank:
            self._rank = best_rank
            self.transitions += 1

    def force_state(self, rank: int) -> None:
        if not 0 <= rank < len(self._states):
            raise ValueError("rank out of range")
        self._rank = rank
