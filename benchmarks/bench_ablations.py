"""Ablations beyond the paper (DESIGN.md section 5).

* threshold T sweep — the paper fixes T=5 and notes a stricter threshold
  trades off-chip bandwidth against hit rate; we measure the sweep;
* adaptation weight W sweep — the paper fixes W=0.75;
* tracker sampling-rate sweep — the paper samples ~4% of sets;
* parallel vs serial tag+data issue on locator misses — quantifies the
  concurrency the dedicated metadata bank enables.
"""

from repro.harness.experiments import (
    ablation_parallel_tag,
    ablation_sampling,
    ablation_threshold,
    ablation_weight,
)


def test_ablation_threshold(benchmark, report, quad_setup):
    rows = benchmark.pedantic(
        lambda: ablation_threshold(setup=quad_setup, mix_name="Q7"),
        rounds=1,
        iterations=1,
    )
    report(rows, title="Ablation: utilization threshold T (Q7)")
    by_t = {r["T"]: r for r in rows}
    # A stricter threshold (higher T) classifies more blocks small,
    # shifting traffic toward small blocks.
    assert by_t[8]["small_fraction"] >= by_t[2]["small_fraction"]
    # A permissive threshold (T=2) stores nearly everything big and
    # spends the most off-chip bandwidth.
    assert by_t[2]["offchip_mb"] >= by_t[8]["offchip_mb"] * 0.9


def test_ablation_weight(benchmark, report, quad_setup):
    rows = benchmark.pedantic(
        lambda: ablation_weight(setup=quad_setup, mix_name="Q7"),
        rounds=1,
        iterations=1,
    )
    report(rows, title="Ablation: adaptation weight W (Q7)")
    by_w = {r["W"]: r for r in rows}
    # Heavier W boosts the small-block quota demand.
    assert by_w[1.5]["small_fraction"] >= by_w[0.25]["small_fraction"] - 0.02


def test_ablation_sampling(benchmark, report, quad_setup):
    rows = benchmark.pedantic(
        lambda: ablation_sampling(setup=quad_setup, mix_name="Q7"),
        rounds=1,
        iterations=1,
    )
    report(rows, title="Ablation: tracker set-sampling rate (Q7)")
    by_rate = {r["sample_every"]: r for r in rows}
    # Sparse sampling trains the predictor less -> fewer small decisions.
    assert by_rate[32]["small_fraction"] <= by_rate[1]["small_fraction"] + 0.05


def test_ablation_parallel_tag(benchmark, report, quad_setup):
    rows = benchmark.pedantic(
        lambda: ablation_parallel_tag(setup=quad_setup, mix_names=["Q2", "Q7"]),
        rounds=1,
        iterations=1,
    )
    report(rows, title="Ablation: parallel vs serial tag+data issue")
    for row in rows:
        # Parallel tag+data on locator misses never hurts.
        assert row["parallel_latency"] <= row["serial_latency"] * 1.02
