"""Property tests for the metadata/data placement (Figure 4)."""

from hypothesis import given, settings, strategies as st

from repro.bimodal.metadata import MetadataLayout


layouts = st.builds(
    MetadataLayout,
    num_sets=st.sampled_from([512, 1024, 4096]),
    channels=st.sampled_from([1, 2, 4]),
    banks_per_channel=st.sampled_from([4, 8, 16]),
    page_size=st.just(2048),
    meta_bytes_per_set=st.sampled_from([64, 128, 192]),
    colocated=st.booleans(),
)


@settings(max_examples=60, deadline=None)
@given(layout=layouts, set_index=st.integers(min_value=0, max_value=4095))
def test_locations_are_always_in_range(layout, set_index):
    set_index %= layout.num_sets
    for channel, bank, row in (
        layout.data_location(set_index),
        layout.metadata_location(set_index),
    ):
        assert 0 <= channel < layout.channels
        assert 0 <= bank < layout.banks_per_channel
        assert row >= 0


@settings(max_examples=40, deadline=None)
@given(layout=layouts)
def test_data_placement_is_injective(layout):
    """No two sets share a data page."""
    n = min(layout.num_sets, 1024)
    locations = {layout.data_location(s) for s in range(n)}
    assert len(locations) == n


@settings(max_examples=40, deadline=None)
@given(layout=layouts)
def test_separate_mode_reserves_bank_zero(layout):
    if layout.colocated:
        return
    n = min(layout.num_sets, 512)
    for s in range(n):
        assert layout.data_location(s)[1] != 0
        assert layout.metadata_location(s)[1] == 0


@settings(max_examples=40, deadline=None)
@given(layout=layouts)
def test_metadata_density(layout):
    """Exactly sets_per_metadata_page sets share each metadata row."""
    if layout.colocated:
        return
    per_page = layout.sets_per_metadata_page
    n = min(layout.num_sets, 1024)
    from collections import Counter

    rows = Counter(layout.metadata_location(s) for s in range(n))
    assert max(rows.values()) <= per_page


@settings(max_examples=40, deadline=None)
@given(layout=layouts, set_index=st.integers(0, 4095))
def test_concurrency_guarantee(layout, set_index):
    """Separate mode: a set's tag read and data activation never target
    the same bank (the parallel tag+data requirement)."""
    if layout.colocated:
        return
    set_index %= layout.num_sets
    data = layout.data_location(set_index)
    meta = layout.metadata_location(set_index)
    assert (data[0], data[1]) != (meta[0], meta[1])
