"""Physical address manipulation for DRAM cache organizations.

The paper (Section III-B1) fixes the fundamental units used throughout:

* 64-byte *sub-blocks* — the granularity of the LLSC, of AlloyCache blocks,
  of small bi-modal blocks, and of dirty-data writebacks.
* 512-byte *big blocks* — eight consecutive sub-blocks.
* 2 KB (or 4 KB) *sets* — a set's data maps onto a single DRAM page.

For a cache of size ``C`` with set size ``S`` there are ``2**M = C / S``
sets. With a 512 B big block, the low 9 address bits are the block offset,
the next ``M`` bits select the set, and the remaining bits are the tag.
Small (64 B) blocks additionally store the 3 high-order offset bits
(bits 6..8) so that a 64 B block can be matched exactly within the 512 B
frame that indexes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

SUB_BLOCK_SIZE = 64
SUB_BLOCK_BITS = 6

__all__ = [
    "SUB_BLOCK_SIZE",
    "SUB_BLOCK_BITS",
    "AddressMap",
    "is_power_of_two",
    "log2_int",
    "align_down",
    "sub_block_index",
]


def is_power_of_two(value: int) -> bool:
    """Return True for positive powers of two (1, 2, 4, ...)."""
    return value > 0 and (value & (value - 1)) == 0


def log2_int(value: int) -> int:
    """Exact integer log2; raises ValueError for non powers of two."""
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a positive power of two")
    return value.bit_length() - 1


def align_down(address: int, granularity: int) -> int:
    """Align ``address`` down to a power-of-two ``granularity``."""
    return address & ~(granularity - 1)


def sub_block_index(address: int, block_size: int) -> int:
    """Index of the 64B sub-block of ``address`` within its enclosing block.

    For the paper's 512B big blocks this is the 3-bit value in address
    bits 6..8 (0..7).
    """
    return (address & (block_size - 1)) >> SUB_BLOCK_BITS


@dataclass(frozen=True)
class AddressMap:
    """Splits physical addresses into (tag, set index, offset) fields.

    Parameters
    ----------
    cache_size:
        Total data capacity of the cache in bytes.
    set_size:
        Bytes of data per set (the paper maps one set per DRAM page,
        so 2048 or 4096).
    block_size:
        The *indexing* block size. For the bi-modal cache this is the big
        block size (512 B): small blocks share the big-block index and are
        disambiguated by the stored high-order offset bits.
    address_bits:
        Width of the physical address space (paper uses 40 bits for its
        illustrative tag-latency model).
    """

    cache_size: int
    set_size: int
    block_size: int
    address_bits: int = 40

    def __post_init__(self) -> None:
        for name in ("cache_size", "set_size", "block_size"):
            if not is_power_of_two(getattr(self, name)):
                raise ValueError(f"{name} must be a power of two")
        if self.block_size < SUB_BLOCK_SIZE:
            raise ValueError("block_size must be >= 64B sub-block")
        if self.set_size < self.block_size:
            raise ValueError("set_size must be >= block_size")
        if self.cache_size < self.set_size:
            raise ValueError("cache_size must be >= set_size")

    # Derived fields are pure functions of the frozen configuration;
    # cached_property keeps the per-access address-split methods free of
    # repeated log2 computation.
    @cached_property
    def num_sets(self) -> int:
        return self.cache_size // self.set_size

    @cached_property
    def set_index_bits(self) -> int:
        return log2_int(self.num_sets)

    @cached_property
    def offset_bits(self) -> int:
        return log2_int(self.block_size)

    @cached_property
    def tag_bits(self) -> int:
        """Tag width for big blocks (paper: A - M - 9 bits)."""
        return self.address_bits - self.set_index_bits - self.offset_bits

    @cached_property
    def small_extra_bits(self) -> int:
        """Extra offset bits stored for small-block tags (paper: 3)."""
        return self.offset_bits - SUB_BLOCK_BITS

    @cached_property
    def _set_mask(self) -> int:
        return self.num_sets - 1

    @cached_property
    def _tag_shift(self) -> int:
        return self.offset_bits + self.set_index_bits

    def set_index(self, address: int) -> int:
        return (address >> self.offset_bits) & self._set_mask

    def tag(self, address: int) -> int:
        return address >> self._tag_shift

    def block_address(self, address: int) -> int:
        """Address aligned to the big-block granularity."""
        return align_down(address, self.block_size)

    def sub_block(self, address: int) -> int:
        """0..(block_size/64 - 1): which 64B sub-block within the block."""
        return sub_block_index(address, self.block_size)

    def small_tag(self, address: int) -> int:
        """Tag used to match a small (64 B) block.

        Concatenation of the big-block tag and the high-order offset bits,
        exactly the comparison the paper's metadata stores for small ways.
        """
        return (self.tag(address) << self.small_extra_bits) | self.sub_block(address)

    def rebuild(self, tag: int, set_index: int, sub_block: int = 0) -> int:
        """Inverse of the split: reconstruct a sub-block-aligned address."""
        return (
            (tag << (self.offset_bits + self.set_index_bits))
            | (set_index << self.offset_bits)
            | (sub_block << SUB_BLOCK_BITS)
        )

    def sub_blocks_per_block(self) -> int:
        return self.block_size // SUB_BLOCK_SIZE
