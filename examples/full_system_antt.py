#!/usr/bin/env python3
"""Full-system ANTT measurement (the paper's headline metric).

Runs a multiprogrammed mix under AlloyCache and under the Bi-Modal cache
— each program both shared and standalone, per the Section IV protocol —
and reports the ANTT improvement (Figure 7's per-mix bars).

Usage:
    python examples/full_system_antt.py [mix-name] [accesses-per-core]
"""

import sys

from repro.cores.metrics import improvement_percent
from repro.harness import ExperimentSetup, print_table
from repro.harness.experiments import measure_antt


def main() -> None:
    mix_name = sys.argv[1] if len(sys.argv) > 1 else "Q7"
    accesses = int(sys.argv[2]) if len(sys.argv) > 2 else 10_000
    setup = ExperimentSetup(num_cores=4, accesses_per_core=accesses, seed=1)

    rows = []
    antts = {}
    for scheme in ("alloy", "bimodal"):
        antt_value, mp = measure_antt(scheme, mix_name, setup=setup)
        antts[scheme] = antt_value
        rows.append(
            {
                "scheme": scheme,
                "antt": antt_value,
                "hit_rate": mp.cache.hit_rate,
                "avg_latency": mp.cache.avg_read_latency,
                "per_core_mcycles": ", ".join(
                    f"{c / 1e6:.1f}" for c in mp.per_core_cycles
                ),
            }
        )

    print_table(rows, title=f"ANTT on mix {mix_name} ({accesses} accesses/core)")
    gain = improvement_percent(antts["alloy"], antts["bimodal"])
    print(
        f"\nBi-Modal ANTT improvement over AlloyCache: {gain:+.1f}% "
        "(paper's 4-core average: +10.8%)"
    )


if __name__ == "__main__":
    main()
