"""Latency experiments: Figure 3 (breakdown) and Figure 8(c) (averages).

Figure 3 is reproduced analytically from the timing configuration — the
paper's own figure is a schematic of the latency components per scheme —
while Figure 8(c) is measured from timed runs of every organization.
"""

from __future__ import annotations

from repro.common.config import DRAMTimingConfig
from repro.common.tables import TAG_STORE_LATENCY
from repro.harness.parallel import GridCell, complete_groups, drive_cell, run_grid
from repro.harness.runner import ExperimentSetup
from repro.workloads.mixes import mixes_for_cores

__all__ = ["fig3_latency_breakdown", "fig8c_access_latency", "LATENCY_SCHEMES"]

LATENCY_SCHEMES = ("alloy", "lohhill", "atcache", "footprint", "fixed512", "bimodal")


def fig3_latency_breakdown(
    *, timing: DRAMTimingConfig | None = None
) -> list[dict]:
    """Figure 3: uncontended hit-path latency composition per scheme.

    Components (CPU cycles): SRAM structure lookups, row activation
    (ACT includes any needed PRE in the worst case shown), column access
    (CL) and data transfer, plus tag-compare cycles. Each row is one of
    the paper's schematic cases.
    """
    t = timing or DRAMTimingConfig.stacked()
    act = t.trcd
    pre = t.trp
    cl = t.cl
    xfer64 = t.burst_cycles
    rows = [
        {
            "scheme": "AlloyCache",
            "case": "row closed",
            "sram": 1,  # MAP predictor
            "dram_core": act + cl,
            "transfer": 5,  # 72B TAD burst
            "compare": 1,
            "total": 1 + act + cl + 5 + 1,
        },
        {
            "scheme": "Footprint Cache",
            "case": "tags-in-SRAM hit",
            "sram": TAG_STORE_LATENCY[1 << 20],  # >=1MB tag store
            "dram_core": act + cl,
            "transfer": xfer64,
            "compare": 0,
            "total": TAG_STORE_LATENCY[1 << 20] + act + cl + xfer64,
        },
        {
            "scheme": "ATCache",
            "case": "tag-cache hit",
            "sram": 2,
            "dram_core": act + cl,
            "transfer": xfer64,
            "compare": 0,
            "total": 2 + act + cl + xfer64,
        },
        {
            "scheme": "ATCache",
            "case": "tag-cache miss",
            "sram": 2,
            "dram_core": act + cl + cl,  # tag read then data column
            "transfer": 2 * xfer64 + xfer64,
            "compare": 1,
            "total": 2 + act + cl + 2 * xfer64 + 1 + cl + xfer64,
        },
        {
            "scheme": "BiModal",
            "case": "way locator hit",
            "sram": 1,
            "dram_core": act + cl,
            "transfer": xfer64,
            "compare": 1,  # 2-way locator compare folded into lookup
            "total": 1 + act + cl + xfer64 + 1,
        },
        {
            "scheme": "BiModal",
            "case": "loc. miss, tag row hit",
            "sram": 1,
            # metadata column read (row hit) in parallel with data ACT;
            # data column issues after the 18-way compare.
            "dram_core": max(cl + 2 * xfer64 + 1, act) + cl,
            "transfer": xfer64,
            "compare": 1,
            "total": 1 + max(cl + 2 * xfer64 + 1, act) + cl + xfer64,
        },
        {
            "scheme": "BiModal",
            "case": "loc. miss, tag row miss",
            "sram": 1,
            "dram_core": max(pre + act + cl + 2 * xfer64 + 1, act) + cl,
            "transfer": xfer64,
            "compare": 1,
            "total": 1 + max(pre + act + cl + 2 * xfer64 + 1, act) + cl + xfer64,
        },
        {
            "scheme": "Loh-Hill",
            "case": "compound access",
            "sram": 0,
            "dram_core": act + cl + cl,  # tags then data, same open row
            "transfer": 2 * xfer64 + xfer64,
            "compare": 1,
            "total": act + cl + 2 * xfer64 + 1 + cl + xfer64,
        },
    ]
    return rows


def fig8c_access_latency(
    *,
    setup: ExperimentSetup | None = None,
    mix_names: list[str] | None = None,
    schemes: tuple[str, ...] = LATENCY_SCHEMES,
    jobs: int | None = None,
) -> list[dict]:
    """Figure 8(c): average LLSC miss penalty per scheme.

    The paper reports Bi-Modal achieving a 22.9% lower average access
    latency than AlloyCache, 12% lower than Footprint Cache and 26.5%
    lower than ATCache.
    """
    setup = setup or ExperimentSetup()
    names = mix_names or list(mixes_for_cores(setup.num_cores))
    cells = [
        GridCell(scheme=scheme, mix=name, setup=setup)
        for name in names
        for scheme in schemes
    ]
    stats = run_grid(drive_cell, cells, jobs=jobs)
    rows = []
    for name, chunk in complete_groups(names, stats, len(schemes)):
        row: dict = {"mix": name}
        for scheme, cell_stats in zip(schemes, chunk):
            row[scheme] = cell_stats["avg_read_latency"]
        rows.append(row)
    if rows:
        avg: dict = {"mix": "mean"}
        for scheme in schemes:
            avg[scheme] = sum(r[scheme] for r in rows) / len(rows)
        for scheme in schemes:
            if scheme != "bimodal" and avg[scheme]:
                avg_key = f"bimodal_vs_{scheme}"
                avg[avg_key] = (avg[scheme] - avg["bimodal"]) / avg[scheme]
        rows.append(avg)
    return rows
