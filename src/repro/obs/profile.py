"""Lightweight profiling hooks: phase timers and per-cell cProfile.

Two levels of depth, both opt-in:

* :class:`SectionTimer` — named ``perf_counter`` sections inside a unit
  of work (build / trace / drive of one cell). Costs two clock reads
  per section, so callers may leave it on whenever tracing is on.
* :func:`profile_call` / ``REPRO_PROFILE=<dir>`` — full ``cProfile`` of
  one callable, dumped as a ``.prof`` file for ``snakeviz``/``pstats``.
  Heavy (2-4x slowdown); meant for one-off "why is this cell slow"
  sessions, never for measurement runs.
"""

from __future__ import annotations

import cProfile
import os
import re
import time
from pathlib import Path

__all__ = ["SectionTimer", "profile_call", "profile_dir"]

_ENV_VAR = "REPRO_PROFILE"


class SectionTimer:
    """Accumulates named wall-time sections within one unit of work.

    Usage::

        timer = SectionTimer()
        with timer.section("build"):
            ...
        timer.as_attrs()  # {"build_s": 0.12, ...}
    """

    def __init__(self) -> None:
        self.sections: dict[str, float] = {}

    def section(self, name: str) -> "_Section":
        return _Section(self, name)

    def add(self, name: str, seconds: float) -> None:
        self.sections[name] = self.sections.get(name, 0.0) + seconds

    def as_attrs(self, *, digits: int = 6) -> dict[str, float]:
        """Sections as flat span attributes (``<name>_s`` keys)."""
        return {f"{k}_s": round(v, digits) for k, v in self.sections.items()}


class _Section:
    __slots__ = ("_timer", "_name", "_start")

    def __init__(self, timer: SectionTimer, name: str) -> None:
        self._timer = timer
        self._name = name

    def __enter__(self) -> "_Section":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._timer.add(self._name, time.perf_counter() - self._start)


def profile_dir() -> Path | None:
    """Directory for ``.prof`` dumps, from ``REPRO_PROFILE`` (or None)."""
    value = os.environ.get(_ENV_VAR, "").strip()
    if not value or value == "0":
        return None
    return Path(value)


def profile_call(func, /, *args, label: str = "call", out_dir=None, **kwargs):
    """Run ``func(*args, **kwargs)`` under cProfile, dump, return result.

    The dump lands at ``<out_dir>/<label>.prof`` (``out_dir`` defaults
    to ``REPRO_PROFILE``; with neither set the call runs unprofiled).
    """
    directory = Path(out_dir) if out_dir is not None else profile_dir()
    if directory is None:
        return func(*args, **kwargs)
    directory.mkdir(parents=True, exist_ok=True)
    safe = re.sub(r"[^A-Za-z0-9._-]+", "_", label) or "call"
    profiler = cProfile.Profile()
    try:
        return profiler.runcall(func, *args, **kwargs)
    finally:
        profiler.dump_stats(str(directory / f"{safe}.prof"))
