"""Crash-safe grid checkpoints and resume."""

import json

from repro.harness import checkpoint, faults
from repro.harness.checkpoint import MISSING, GridCheckpoint, cell_key
from repro.harness.parallel import run_grid


def _square(x):
    return x * x


def _cube(x):
    return x * x * x


class TestCellKey:
    def test_stable_across_calls(self):
        assert cell_key(_square, 3) == cell_key(_square, 3)

    def test_distinguishes_cell_and_func(self):
        assert cell_key(_square, 3) != cell_key(_square, 4)
        assert cell_key(_square, 3) != cell_key(_cube, 3)


class TestGridCheckpoint:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "run.ckpt.jsonl"
        ckpt = GridCheckpoint(path)
        ckpt.append(index=0, key="k0", result={"hit_rate": 0.25}, wall_s=1.0)
        ckpt.append(index=1, key="k1", result=2.5, wall_s=0.5)
        ckpt.close()

        resumed = GridCheckpoint(path, resume=True)
        assert resumed.loaded == 2
        assert resumed.lookup("k0") == {"hit_rate": 0.25}
        assert resumed.lookup("k1") == 2.5
        assert resumed.lookup("k2") is MISSING
        resumed.close()

    def test_fresh_open_truncates_stale_cells(self, tmp_path):
        path = tmp_path / "run.ckpt.jsonl"
        first = GridCheckpoint(path)
        first.append(index=0, key="old", result=1, wall_s=0.0)
        first.close()
        fresh = GridCheckpoint(path)  # resume not requested: start over
        fresh.close()
        resumed = GridCheckpoint(path, resume=True)
        assert resumed.lookup("old") is MISSING
        resumed.close()

    def test_torn_tail_line_is_skipped(self, tmp_path):
        path = tmp_path / "run.ckpt.jsonl"
        ckpt = GridCheckpoint(path)
        ckpt.append(index=0, key="k0", result=1.5, wall_s=0.1)
        ckpt.close()
        with open(path, "a") as fh:
            fh.write('{"schema": 1, "kind": "cell", "key": "k1", "resu')

        resumed = GridCheckpoint(path, resume=True)
        assert resumed.loaded == 1
        assert resumed.skipped_lines == 1
        assert resumed.lookup("k0") == 1.5
        assert resumed.lookup("k1") is MISSING
        resumed.close()

    def test_foreign_and_wrong_schema_lines_skipped(self, tmp_path):
        path = tmp_path / "run.ckpt.jsonl"
        path.write_text(
            "\n".join(
                [
                    json.dumps({"schema": 1, "kind": "header"}),
                    json.dumps({"schema": 99, "kind": "cell", "key": "x"}),
                    json.dumps({"something": "else"}),
                    json.dumps(
                        {"schema": 1, "kind": "cell", "key": "ok", "result": 7}
                    ),
                ]
            )
            + "\n"
        )
        resumed = GridCheckpoint(path, resume=True)
        assert resumed.loaded == 1
        assert resumed.skipped_lines == 2
        assert resumed.lookup("ok") == 7
        resumed.close()

    def test_tuples_survive_the_json_round_trip(self, tmp_path):
        path = tmp_path / "run.ckpt.jsonl"
        ckpt = GridCheckpoint(path)
        ckpt.append(
            index=0,
            key="k0",
            result={"global_state": (4, 0), "hit_rate": 0.5},
            wall_s=0.0,
        )
        ckpt.close()
        resumed = GridCheckpoint(path, resume=True)
        assert resumed.lookup("k0") == {"global_state": (4, 0), "hit_rate": 0.5}
        resumed.close()

    def test_unserializable_result_does_not_kill_the_run(self, tmp_path):
        ckpt = GridCheckpoint(tmp_path / "run.ckpt.jsonl")
        ckpt.append(index=0, key="k0", result=object(), wall_s=0.0)  # no raise
        ckpt.close()

    def test_default_path(self):
        assert checkpoint.default_path("out/fig7.csv") == "out/fig7.csv.ckpt.jsonl"


class TestAttachScope:
    def test_attach_installs_and_restores(self, tmp_path):
        assert checkpoint.active() is None
        with checkpoint.attach(tmp_path / "a.ckpt.jsonl") as ckpt:
            assert checkpoint.active() is ckpt
        assert checkpoint.active() is None


class TestGridIntegration:
    def test_completed_cells_checkpoint_and_resume(self, tmp_path):
        path = tmp_path / "grid.ckpt.jsonl"
        clean = run_grid(_square, range(4), jobs=1)

        # First pass: cell 2 fails permanently; the others checkpoint.
        with faults.inject({2: "raise"}):
            with faults.collect_failures():
                with checkpoint.attach(path):
                    partial = run_grid(_square, range(4), jobs=1)
        assert partial == [0, 1, None, 9]

        # Second pass resumes: only the missing cell is recomputed.
        with faults.collect_failures() as collector:
            with checkpoint.attach(path, resume=True) as ckpt:
                resumed = run_grid(_square, range(4), jobs=1)
                assert ckpt.hits == 3  # cells 0, 1, 3 served from the file
        assert resumed == clean
        assert not collector

    def test_resume_with_different_grid_recomputes(self, tmp_path):
        path = tmp_path / "grid.ckpt.jsonl"
        with checkpoint.attach(path):
            run_grid(_square, range(3), jobs=1)
        with checkpoint.attach(path, resume=True) as ckpt:
            results = run_grid(_cube, range(3), jobs=1)  # other worker func
            assert ckpt.hits == 0
        assert results == [0, 1, 8]

    def test_pool_grid_checkpoints_too(self, tmp_path):
        path = tmp_path / "grid.ckpt.jsonl"
        with checkpoint.attach(path):
            first = run_grid(_square, range(5), jobs=2)
        with checkpoint.attach(path, resume=True) as ckpt:
            second = run_grid(_square, range(5), jobs=2)
            assert ckpt.hits == 5
        assert second == first
