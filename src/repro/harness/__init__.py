"""Experiment harness: construction, driving, experiments, reporting."""

from repro.harness.export import export_csv, export_json, load_json
from repro.harness.figures import bar_chart, grouped_bar_chart
from repro.harness.reporting import format_percent, format_table, print_table
from repro.harness.runner import (
    SCALE,
    ExperimentSetup,
    build_cache,
    build_offchip,
    drive_cache,
    run_scheme_on_mix,
    scaled_locator_bits,
)

__all__ = [
    "bar_chart",
    "grouped_bar_chart",
    "export_csv",
    "export_json",
    "load_json",
    "format_percent",
    "format_table",
    "print_table",
    "SCALE",
    "ExperimentSetup",
    "build_cache",
    "build_offchip",
    "drive_cache",
    "run_scheme_on_mix",
    "scaled_locator_bits",
]
