"""Channel tests: bus serialization and multi-burst transfers."""

import pytest

from repro.common.config import DRAMGeometry, DRAMTimingConfig
from repro.dram.channel import Channel, build_channels


@pytest.fixture
def timings():
    return DRAMTimingConfig.stacked()


@pytest.fixture
def channel(timings):
    return Channel(timings, num_banks=4)


class TestBasicAccess:
    def test_single_burst_latency(self, channel, timings):
        access = channel.access(bank=0, row=1, now=0)
        expected = timings.trcd + timings.cl + timings.burst_cycles
        assert access.latency == expected
        assert access.bursts == 1

    def test_multi_burst_occupies_bus(self, channel, timings):
        access = channel.access(bank=0, row=1, now=0, bursts=8)
        assert access.data_end - access.data_start == 8 * timings.burst_cycles

    def test_transfer_cycles_override(self, channel, timings):
        access = channel.access(bank=0, row=1, now=0, transfer_cycles=5)
        assert access.data_end - access.data_start == 5

    def test_bursts_must_be_positive(self, channel):
        with pytest.raises(ValueError):
            channel.access(bank=0, row=1, now=0, bursts=0)


class TestBusSerialization:
    def test_bank_parallel_but_bus_serial(self, channel, timings):
        """Two banks can overlap ACT/CAS but share the data bus."""
        a = channel.access(bank=0, row=1, now=0)
        b = channel.access(bank=1, row=1, now=0)
        # Same issue time, same core latency, but b's transfer is pushed
        # behind a's on the bus.
        assert b.data_start >= a.data_end

    def test_bus_busy_accounting(self, channel, timings):
        channel.access(bank=0, row=1, now=0, bursts=2)
        assert channel.bus_busy_cycles == 2 * timings.burst_cycles

    def test_bus_idle_gap_not_counted(self, channel, timings):
        channel.access(bank=0, row=1, now=0)
        channel.access(bank=0, row=1, now=10_000)
        assert channel.bus_busy_cycles == 2 * timings.burst_cycles


class TestActivatePlusColumn:
    def test_column_after_activate(self, channel, timings):
        ready = channel.activate(bank=2, row=9, now=0)
        access = channel.column_after_activate(bank=2, now=ready)
        assert access.data_end == ready + timings.cl + timings.burst_cycles

    def test_parallel_tag_data_pattern(self, channel, timings):
        """The Bi-Modal locator-miss pattern: tag read on one bank while
        the data row opens on another; data column issues after tags."""
        tag = channel.access(bank=0, row=1, now=0, bursts=2)
        channel.activate(bank=1, row=2, now=0)
        data = channel.column_after_activate(bank=1, now=tag.data_end + 1)
        # The data access pays only CAS + transfer after the tag check.
        assert data.data_end - (tag.data_end + 1) <= timings.cl + 2 * timings.burst_cycles


class TestRBH:
    def test_row_buffer_hit_rate_aggregates_banks(self, channel):
        channel.access(bank=0, row=1, now=0)
        channel.access(bank=0, row=1, now=500)
        channel.access(bank=1, row=2, now=1000)
        assert channel.row_buffer_hit_rate() == pytest.approx(1 / 3)

    def test_reset(self, channel):
        channel.access(bank=0, row=1, now=0)
        channel.reset_stats()
        assert channel.row_buffer_hit_rate() == 0.0
        assert channel.bus_busy_cycles == 0


def test_build_channels():
    geo = DRAMGeometry(channels=3, banks_per_channel=4, page_size=2048)
    channels = build_channels(geo, DRAMTimingConfig.stacked())
    assert len(channels) == 3
    assert all(c.num_banks == 4 for c in channels)


def test_channel_requires_banks():
    with pytest.raises(ValueError):
        Channel(DRAMTimingConfig.stacked(), num_banks=0)
