"""ProgramProfile validation and library invariants."""

import pytest

from repro.workloads.profile import PROGRAM_LIBRARY, ProgramProfile, program


class TestValidation:
    def test_utilization_must_sum_to_one(self):
        with pytest.raises(ValueError):
            ProgramProfile("x", 10.0, utilization_dist={8: 0.5})

    def test_utilization_keys_in_range(self):
        with pytest.raises(ValueError):
            ProgramProfile("x", 10.0, utilization_dist={9: 1.0})
        with pytest.raises(ValueError):
            ProgramProfile("x", 10.0, utilization_dist={0: 1.0})

    def test_footprint_positive(self):
        with pytest.raises(ValueError):
            ProgramProfile("x", 0.0)

    def test_write_frac_range(self):
        with pytest.raises(ValueError):
            ProgramProfile("x", 10.0, write_frac=1.5)

    def test_revisit_bounds(self):
        with pytest.raises(ValueError):
            ProgramProfile("x", 10.0, revisit_prob=1.0)
        with pytest.raises(ValueError):
            ProgramProfile("x", 10.0, revisit_window=0)

    def test_burst_and_intensity(self):
        with pytest.raises(ValueError):
            ProgramProfile("x", 10.0, burst_len=0.5)
        with pytest.raises(ValueError):
            ProgramProfile("x", 10.0, intensity_apki=0)


class TestDerived:
    def test_expected_utilization(self):
        p = ProgramProfile("x", 10.0, utilization_dist={1: 0.5, 8: 0.5})
        assert p.expected_utilization() == pytest.approx(4.5)

    def test_memory_intensity_marking(self):
        hot = ProgramProfile("x", 10.0, intensity_apki=30.0)
        cold = ProgramProfile("x", 10.0, intensity_apki=5.0)
        assert hot.is_memory_intensive
        assert not cold.is_memory_intensive

    def test_scaled_divides_footprint_only(self):
        p = program("stream_hi")
        q = p.scaled(16)
        assert q.footprint_mb == pytest.approx(p.footprint_mb / 16)
        assert q.utilization_dist == p.utilization_dist
        assert q.reuse_alpha == p.reuse_alpha

    def test_scaled_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            program("stream_hi").scaled(0)

    def test_with_salt(self):
        p = program("stream_hi").with_salt(3)
        assert p.seed_salt == 3
        assert p.name == "stream_hi"


class TestLibrary:
    def test_lookup(self):
        assert program("sparse_ptr").name == "sparse_ptr"

    def test_unknown_program(self):
        with pytest.raises(ValueError):
            program("nonexistent")

    def test_library_is_valid(self):
        # Construction already validates; spot-check diversity.
        assert len(PROGRAM_LIBRARY) >= 10
        utils = [p.expected_utilization() for p in PROGRAM_LIBRARY.values()]
        assert min(utils) < 3.0  # sparse programs exist
        assert max(utils) > 7.0  # dense programs exist

    def test_library_spans_figure2_range(self):
        """Some programs >90% fully-utilized blocks, some far below 30%."""
        full_fracs = [
            p.utilization_dist.get(8, 0.0) for p in PROGRAM_LIBRARY.values()
        ]
        assert max(full_fracs) >= 0.9
        assert min(full_fracs) <= 0.3

    def test_intensity_mix(self):
        intensive = sum(1 for p in PROGRAM_LIBRARY.values() if p.is_memory_intensive)
        assert 0 < intensive < len(PROGRAM_LIBRARY)
