"""Miss Status Holding Registers.

The LLSC of Table IV carries 128/256/512 MSHRs for 4/8/16 cores. In the
trace-driven model, MSHRs serve two purposes:

* **merging** — a request to a block that already has an outstanding miss
  does not produce a second DRAM cache access; it completes when the
  primary miss fills; and
* **throttling** — when all MSHRs are busy, a new miss stalls until one
  frees, which feeds back into the core model as extra stall time.
"""

from __future__ import annotations

__all__ = ["MSHRFile"]


class MSHRFile:
    """Bounded set of outstanding block misses keyed by block address."""

    def __init__(self, entries: int) -> None:
        if entries < 1:
            raise ValueError("entries must be >= 1")
        self.capacity = entries
        self._inflight: dict[int, int] = {}  # block addr -> fill time
        self.primary_misses = 0
        self.merged_misses = 0
        self.stalls = 0

    def _expire(self, now: int) -> None:
        if len(self._inflight) < self.capacity // 2:
            return
        done = [addr for addr, t in self._inflight.items() if t <= now]
        for addr in done:
            del self._inflight[addr]

    def lookup(self, block_address: int, now: int) -> int | None:
        """If the block has an outstanding miss, return its fill time."""
        fill = self._inflight.get(block_address)
        if fill is not None and fill > now:
            self.merged_misses += 1
            return fill
        if fill is not None:
            del self._inflight[block_address]
        return None

    def allocate(self, block_address: int, now: int, fill_time: int) -> int:
        """Reserve an MSHR; returns the (possibly stalled) issue time."""
        self._expire(now)
        issue = now
        if len(self._inflight) >= self.capacity:
            earliest = min(self._inflight.values())
            if earliest > now:
                issue = earliest
                self.stalls += 1
            self._expire(issue)
            if len(self._inflight) >= self.capacity:
                # Evict the earliest-completing entry outright; it is the
                # next to retire in any case.
                oldest = min(self._inflight, key=self._inflight.get)
                del self._inflight[oldest]
        self._inflight[block_address] = fill_time
        self.primary_misses += 1
        return issue

    @property
    def outstanding(self) -> int:
        return len(self._inflight)

    def reset_stats(self) -> None:
        self.primary_misses = 0
        self.merged_misses = 0
        self.stalls = 0
