"""Envelope framing: request/response lines and their strictness."""

import pytest

from repro.api import facade
from repro.api.protocol import (
    VERBS,
    parse_request_line,
    parse_response_line,
    request_line,
    response_line,
)
from repro.api.wire import WireError


def _sim_request():
    return facade.sim_request("alloy", "Q1", accesses_per_core=1000)


class TestRequestLines:
    def test_sim_round_trip(self):
        request = _sim_request()
        rid, verb, decoded = parse_request_line(request_line("r1", "sim", request))
        assert (rid, verb, decoded) == ("r1", "sim", request)

    def test_grid_round_trip(self):
        request = facade.grid_request("fig10", mixes=("Q1",))
        rid, verb, decoded = parse_request_line(
            request_line("g1", "grid", request)
        )
        assert (rid, verb, decoded) == ("g1", "grid", request)

    def test_dse_round_trip(self):
        request = facade.dse_request(mixes=("Q1",), sample_rate=0.5)
        rid, verb, decoded = parse_request_line(
            request_line("d1", "dse", request)
        )
        assert (rid, verb, decoded) == ("d1", "dse", request)

    def test_dse_without_payload_rejected(self):
        with pytest.raises(WireError, match="needs a request payload"):
            parse_request_line(b'{"id": "d1", "verb": "dse"}\n')

    def test_dse_with_wrong_payload_type_rejected(self):
        line = request_line("d1", "dse", _sim_request())
        with pytest.raises(WireError, match="expects a DseRequest"):
            parse_request_line(line)

    @pytest.mark.parametrize("verb", ["stats", "ping", "health"])
    def test_bare_verbs_round_trip(self, verb):
        rid, parsed_verb, decoded = parse_request_line(request_line("s1", verb))
        assert (rid, parsed_verb, decoded) == ("s1", verb, None)

    def test_unknown_verb_rejected(self):
        with pytest.raises(WireError, match="unknown verb"):
            parse_request_line(b'{"id": "r1", "verb": "explode"}\n')

    def test_missing_id_rejected(self):
        with pytest.raises(WireError, match="'id'"):
            parse_request_line(b'{"verb": "ping"}\n')

    def test_sim_without_payload_rejected(self):
        with pytest.raises(WireError, match="needs a request payload"):
            parse_request_line(b'{"id": "r1", "verb": "sim"}\n')

    def test_bare_verb_with_payload_rejected(self):
        line = request_line("r1", "sim", _sim_request())
        tampered = line.replace(b'"verb":"sim"', b'"verb":"ping"')
        with pytest.raises(WireError, match="takes no request payload"):
            parse_request_line(tampered)

    def test_wrong_payload_type_for_verb_rejected(self):
        line = request_line("r1", "grid", _sim_request())
        with pytest.raises(WireError, match="expects a GridRequest"):
            parse_request_line(line)

    def test_verb_table_is_closed(self):
        assert VERBS == ("sim", "grid", "dse", "stats", "ping", "health")


class TestResponseLines:
    def test_event_round_trip(self):
        event = facade.progress_event("cell", request_id="r1", completed=2, total=5)
        rid, kind, payload = parse_response_line(
            response_line("r1", "event", event)
        )
        assert (rid, kind, payload) == ("r1", "event", event)

    def test_error_round_trip(self):
        error = facade.api_error("overloaded", "queue full")
        rid, kind, payload = parse_response_line(
            response_line("r9", "error", error)
        )
        assert (rid, kind) == ("r9", "error")
        assert payload.code == "overloaded"

    def test_unknown_kind_rejected_on_encode(self):
        with pytest.raises(WireError, match="unknown response kind"):
            response_line("r1", "banter", facade.api_error("x", "y"))

    def test_unknown_kind_rejected_on_decode(self):
        with pytest.raises(WireError, match="unknown response kind"):
            parse_response_line(b'{"id": "r1", "kind": "banter", "payload": {}}\n')

    def test_payload_required(self):
        with pytest.raises(WireError, match="payload"):
            parse_response_line(b'{"id": "r1", "kind": "result"}\n')
