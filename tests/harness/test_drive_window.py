"""Window-stall equivalence: the heap-based drive loop vs a list scan.

``runner._drive_batch`` bounds outstanding requests with a heap
(``heapq.heappush``/``heapreplace``). Only the *minimum* in-flight
completion time is ever consumed, so a plain list with a ``min()`` +
``list.index`` scan — the original implementation — is semantically
identical. This test keeps that equivalence pinned across window sizes:
the reference implementation below is the old list-scan loop, and every
``DriveResult`` field it produces must match the production loop
byte for byte.
"""

from __future__ import annotations

import pytest

from repro.harness.runner import (
    DriveResult,
    ExperimentSetup,
    build_cache,
    drive_cache,
)

SETUP = ExperimentSetup(num_cores=4, accesses_per_core=1_000)
TOTAL = SETUP.num_cores * SETUP.accesses_per_core


def _drive_listmin(cache, chunks, *, window, min_gap, pace, stall_scale, warmup):
    """The pre-heap drive loop: list-backed window, min()/index() scan."""
    access = cache.access
    inflight: list[int] = []
    now = 0.0
    end = 0
    issued = 0
    for chunk in chunks:
        addresses = chunk.addresses.tolist()
        is_writes = chunk.is_write.tolist()
        icounts = chunk.icount.tolist()
        for address, is_write, icount in zip(addresses, is_writes, icounts):
            issued += 1
            if warmup and issued == warmup:
                cache.reset_stats()
            gap = icount * pace
            now += gap if gap > min_gap else min_gap
            if len(inflight) >= window:
                earliest = min(inflight)
                if earliest > now:
                    now = float(earliest)
                result = access(address, int(now), is_write=is_write)
                inflight[inflight.index(earliest)] = result.complete
            else:
                result = access(address, int(now), is_write=is_write)
                inflight.append(result.complete)
            complete = result.complete
            if not is_write:
                now += (complete - result.start) * stall_scale
            if complete > end:
                end = complete
    return DriveResult(
        cache=cache, accesses=issued, end_time=end, stats=cache.stats_snapshot()
    )


@pytest.mark.parametrize("window", [1, 4, 16, 64])
def test_heap_window_identical_to_list_scan(window):
    records = SETUP.trace_records("Q1")
    warmup = TOTAL // 2

    reference_cache = build_cache("bimodal", SETUP.system)
    pace = 0.6 / 4
    stall_scale = 1.0 / (2.2 * 4)
    reference = _drive_listmin(
        reference_cache,
        (records,),
        window=window,
        min_gap=1,
        pace=pace,
        stall_scale=stall_scale,
        warmup=warmup,
    )

    production_cache = build_cache("bimodal", SETUP.system)
    production = drive_cache(
        production_cache,
        records,
        window=window,
        streams=SETUP.num_cores,
        warmup=warmup,
    )

    assert production.stats == reference.stats, f"window={window}"
    assert production.end_time == reference.end_time
    assert production.accesses == reference.accesses == TOTAL


@pytest.mark.parametrize("window", [1, 4])
def test_heap_window_identical_for_alloy(window):
    """A second scheme, so the equivalence is not bimodal-specific."""
    records = SETUP.trace_records("Q2")
    reference = _drive_listmin(
        build_cache("alloy", SETUP.system),
        (records,),
        window=window,
        min_gap=1,
        pace=0.6 / 4,
        stall_scale=1.0 / (2.2 * 4),
        warmup=0,
    )
    production = drive_cache(
        build_cache("alloy", SETUP.system),
        records,
        window=window,
        streams=SETUP.num_cores,
    )
    assert production.stats == reference.stats
    assert production.end_time == reference.end_time
