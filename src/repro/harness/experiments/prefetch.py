"""Table VI: interaction with a next-N-lines prefetcher.

Both the baseline (AlloyCache) and the Bi-Modal cache get the same
prefetcher between the LLSC and the DRAM cache; improvements are
measured against the *prefetch-enabled* baseline, as in the paper
(Section V-I). Two Bi-Modal policies: PREF_NORMAL (prefetches allocate)
and PREF_BYPASS (prefetch misses do not allocate).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cores.metrics import improvement_percent
from repro.cores.multiprog import MultiProgramRunner
from repro.harness.parallel import complete_groups, run_grid
from repro.harness.runner import ExperimentSetup, build_cache
from repro.prefetch.nextn import PREF_BYPASS, PREF_NORMAL, NextNPrefetcher
from repro.workloads.mixes import mixes_for_cores

__all__ = ["table6_prefetch"]


@dataclass(frozen=True)
class _PrefetchCell:
    scheme: str
    mix: str
    setup: ExperimentSetup
    degree: int
    mode: str


def _prefetch_antt(cell: _PrefetchCell) -> float:
    setup = cell.setup
    mix = mixes_for_cores(setup.num_cores)[cell.mix]
    total = setup.accesses_per_core * setup.num_cores

    def factory():
        cache = build_cache(
            cell.scheme,
            setup.system,
            scale=setup.scale,
            adaptation_interval=max(1_000, total // 150),
        )
        return NextNPrefetcher(cache, degree=cell.degree, mode=cell.mode)

    runner = MultiProgramRunner(
        mix,
        factory,
        accesses_per_core=setup.accesses_per_core,
        seed=setup.seed,
        footprint_scale=setup.footprint_scale,
    )
    antt, _ = runner.run_antt()
    return antt


def _antt_with_prefetch(
    scheme: str,
    mix_name: str,
    *,
    setup: ExperimentSetup,
    degree: int,
    mode: str,
) -> float:
    return _prefetch_antt(
        _PrefetchCell(
            scheme=scheme, mix=mix_name, setup=setup, degree=degree, mode=mode
        )
    )


def table6_prefetch(
    *,
    setup: ExperimentSetup | None = None,
    mix_names: list[str] | None = None,
    degrees: tuple[int, ...] = (1, 3),
    jobs: int | None = None,
) -> list[dict]:
    """Table VI: ANTT improvement over the prefetch-enabled baseline.

    Paper (quad-core): N=1 -> 9.8% (NORMAL) / 10.4% (BYPASS);
    N=3 -> 8.7% / 9.3%. The shape to reproduce: gains persist under
    prefetching, BYPASS slightly ahead of NORMAL, and the aggressive
    prefetcher narrows the gap.
    """
    setup = setup or ExperimentSetup()
    names = mix_names or list(mixes_for_cores(setup.num_cores))[:6]
    variants = (
        ("alloy", PREF_NORMAL),
        ("bimodal", PREF_NORMAL),
        ("bimodal", PREF_BYPASS),
    )
    cells = [
        _PrefetchCell(
            scheme=scheme, mix=name, setup=setup, degree=degree, mode=mode
        )
        for degree in degrees
        for name in names
        for scheme, mode in variants
    ]
    antts = run_grid(_prefetch_antt, cells, jobs=jobs)
    per_degree = len(names) * len(variants)
    rows = []
    for degree, chunk in complete_groups(degrees, antts, per_degree):
        normal_gains = []
        bypass_gains = []
        for i in range(len(names)):
            base, normal, bypass = chunk[3 * i : 3 * i + 3]
            normal_gains.append(improvement_percent(base, normal))
            bypass_gains.append(improvement_percent(base, bypass))
        rows.append(
            {
                "N": degree,
                "pref_normal_pct": sum(normal_gains) / len(normal_gains),
                "pref_bypass_pct": sum(bypass_gains) / len(bypass_gains),
            }
        )
    return rows
