"""Property-based timing-model invariants."""

from hypothesis import given, settings, strategies as st

from repro.common.config import DRAMGeometry, DRAMTimingConfig
from repro.dram.bank import Bank
from repro.dram.channel import Channel
from repro.dram.device import DRAMDevice


@settings(max_examples=50, deadline=None)
@given(
    requests=st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 200)),  # (row, gap)
        min_size=1,
        max_size=60,
    )
)
def test_bank_time_is_causal_and_monotone(requests):
    """With non-decreasing arrivals, service times never go backwards
    and every access completes after it was issued."""
    bank = Bank(DRAMTimingConfig.stacked())
    now = 0
    last_ready = 0
    for row, gap in requests:
        now += gap
        access = bank.access(row, now)
        assert access.issue_time >= now
        assert access.data_ready > access.issue_time
        assert access.data_ready >= last_ready
        last_ready = access.data_ready


@settings(max_examples=50, deadline=None)
@given(
    requests=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 7), st.integers(1, 8)),
        min_size=1,
        max_size=50,
    )
)
def test_channel_bus_never_overlaps(requests):
    """Data-bus occupancy windows of successive transfers are disjoint."""
    channel = Channel(DRAMTimingConfig.stacked(), num_banks=4)
    now = 0
    windows = []
    for bank, row, bursts in requests:
        now += 3
        access = channel.access(bank, row, now, bursts=bursts)
        windows.append((access.data_start, access.data_end))
    for (s1, e1), (s2, e2) in zip(windows, windows[1:]):
        assert s2 >= e1


@settings(max_examples=50, deadline=None)
@given(
    requests=st.lists(
        st.tuples(st.integers(0, (1 << 26) - 1), st.booleans()),
        min_size=1,
        max_size=40,
    )
)
def test_device_latency_bounds(requests):
    """Every access latency is at least the uncontended row-hit cost and
    bounded by queueing behind all earlier requests."""
    timings = DRAMTimingConfig.ddr3_1600h()
    device = DRAMDevice(
        DRAMGeometry(channels=2, banks_per_channel=8, page_size=2048), timings
    )
    floor = timings.cl + timings.burst_cycles
    now = 0
    for address, is_write in requests:
        now += 5
        fn = device.write if is_write else device.read
        access = fn(address & ~63, now)
        assert access.latency >= floor
        # loose upper bound: all prior traffic plus one worst-case access
        assert access.latency < (len(requests) + 1) * (
            timings.trp + timings.trcd + timings.cl + timings.burst_cycles
        ) + timings.trfc


@settings(max_examples=30, deadline=None)
@given(seed_rows=st.lists(st.integers(0, 3), min_size=2, max_size=30))
def test_rbh_counts_consistent(seed_rows):
    """hits + misses == accesses for any access pattern."""
    bank = Bank(DRAMTimingConfig.stacked())
    now = 0
    for row in seed_rows:
        now += 100
        bank.access(row, now)
    assert bank.row_buffer.total == len(seed_rows)
    assert bank.activations >= 1
    assert bank.precharges <= bank.activations
