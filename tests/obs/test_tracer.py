"""Tracer: event well-formedness, disabled-mode cost, span pairing."""

import io
import json
import time

import pytest

from repro.obs import tracer as tracer_mod
from repro.obs.tracer import Tracer, configure, get_tracer, install, trace_enabled


@pytest.fixture(autouse=True)
def _restore_tracer():
    previous = get_tracer()
    yield
    install(previous)


def _events(buffer: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in buffer.getvalue().splitlines()]


class TestEvents:
    def test_events_are_one_json_object_per_line(self):
        buffer = io.StringIO()
        t = Tracer(enabled=True, stream=buffer)
        t.point("alpha", value=1)
        t.emit("begin", "beta", id=7)
        events = _events(buffer)
        assert [e["ev"] for e in events] == ["point", "begin"]
        assert events[0]["name"] == "alpha" and events[0]["value"] == 1
        assert all("ts" in e for e in events)

    def test_span_emits_paired_begin_end_with_wall_time(self):
        buffer = io.StringIO()
        t = Tracer(enabled=True, stream=buffer)
        with t.span("cell", scheme="bimodal") as extra:
            extra["records"] = 123
        begin, end = _events(buffer)
        assert begin["ev"] == "begin" and end["ev"] == "end"
        assert begin["id"] == end["id"]
        assert begin["scheme"] == end["scheme"] == "bimodal"
        assert end["records"] == 123
        assert end["wall_s"] >= 0
        assert end["ts"] >= begin["ts"]

    def test_span_end_emitted_on_exception(self):
        buffer = io.StringIO()
        t = Tracer(enabled=True, stream=buffer)
        with pytest.raises(RuntimeError):
            with t.span("cell"):
                raise RuntimeError("boom")
        events = _events(buffer)
        assert [e["ev"] for e in events] == ["begin", "end"]

    def test_non_json_values_are_stringified(self):
        buffer = io.StringIO()
        t = Tracer(enabled=True, stream=buffer)
        t.point("p", obj=object(), nested={"k": (1, 2)})
        (event,) = _events(buffer)
        assert isinstance(event["obj"], str)
        assert event["nested"]["k"] == [1, 2]

    def test_file_sink_appends_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        t = Tracer(enabled=True, path=str(path))
        t.point("one")
        t.point("two")
        t.close()
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert [e["name"] for e in events] == ["one", "two"]


class TestDisabled:
    def test_disabled_tracer_emits_nothing(self):
        buffer = io.StringIO()
        t = Tracer(enabled=False, stream=buffer)
        t.point("alpha")
        with t.span("cell") as extra:
            extra["x"] = 1
        assert buffer.getvalue() == ""
        assert t.events_emitted == 0

    def test_disabled_calls_are_cheap(self):
        # Not a precision benchmark — just a guard against the disabled
        # path ever growing serialization or I/O work.
        t = Tracer(enabled=False)
        start = time.perf_counter()
        for _ in range(10_000):
            t.point("alpha", value=1)
        assert time.perf_counter() - start < 0.5

    def test_env_unset_means_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        configure(None)
        assert not trace_enabled()

    def test_env_zero_means_disabled(self):
        configure("0")
        assert not trace_enabled()


class TestConfigure:
    def test_configure_path_enables_and_propagates_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        path = tmp_path / "t.jsonl"
        t = configure(str(path), propagate_env=True)
        assert t.enabled and trace_enabled()
        import os

        assert os.environ["REPRO_TRACE"] == str(path)
        t.point("hello")
        t.close()
        assert "hello" in path.read_text()

    def test_configure_stream(self):
        buffer = io.StringIO()
        t = configure(buffer)
        assert t.enabled
        t.point("x")
        assert "x" in buffer.getvalue()

    def test_install_swaps_and_returns_previous(self):
        buffer = io.StringIO()
        replacement = Tracer(enabled=True, stream=buffer)
        previous = install(replacement)
        try:
            assert get_tracer() is replacement
        finally:
            install(previous)
        assert get_tracer() is previous

    def test_global_disabled_singleton_is_shared(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        configure(None)
        assert get_tracer() is tracer_mod._DISABLED
