"""Figure 11: off-chip + cache energy savings of Bi-Modal (8-core).

Paper: 11.8% average total memory-energy reduction for 8-core (14.9%
quad, 12.4% 16-core), from fewer off-chip activations (higher hit rate)
and better off-chip spatial locality. In this reproduction the off-chip
mechanism reproduces (activations drop ~30%, off-chip energy falls),
while the *total* is roughly neutral: residual big-fill waste and the
metadata/fill traffic on the stacked side eat the margin — see
EXPERIMENTS.md D3.
"""

from repro.harness.experiments import fig11_energy
from repro.harness.runner import ExperimentSetup

# Dense and mixed 8-core workloads, where the activation-efficiency
# mechanism the paper describes dominates. Sparse-heavy synthetic mixes
# (E8/E15-style) over-drive big-fill waste relative to the paper's SPEC
# mixes and can regress — see EXPERIMENTS.md for the analysis.
ENERGY_MIXES = ["E1", "E4", "E9"]


def test_fig11_energy(benchmark, report):
    setup = ExperimentSetup(
        num_cores=8, scale=32, accesses_per_core=25_000, seed=1
    )
    rows = benchmark.pedantic(
        lambda: fig11_energy(setup=setup, mix_names=ENERGY_MIXES),
        rounds=1,
        iterations=1,
    )
    report(rows, title="Figure 11: memory energy vs AlloyCache (8-core)")
    mean = rows[-1]
    assert mean["mix"] == "mean"
    assert mean["alloy_uj"] > 0
    # The paper's off-chip mechanism reproduces: Bi-Modal spends
    # meaningfully less off-chip energy (paper's driver of the 11.8%).
    assert mean["offchip_saving_pct"] > 4.0
    # Total memory energy is roughly neutral in our calibration (D3):
    # never a large regression.
    assert mean["total_saving_pct"] > -8.0
