"""Victim buffer study (Related Work, Section VI).

The paper reports: "At the DRAM cache level, we found very little benefit
of retaining evicted (or likely to be evicted) blocks in a victim cache
since there was very little temporal reuse." This module implements the
victim buffer so the claim can be measured rather than asserted: a small
fully-associative buffer holds recently evicted blocks (at 64 B
sub-block granularity, the only granularity a mixed-size cache can share
re-insertion at), and a wrapper cache consults it on misses.

The ablation benchmark measures the fraction of DRAM cache misses the
buffer would have served — the upper bound on any victim cache benefit.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.dramcache.base import DRAMCacheAccess
from repro.bimodal.cache import BiModalCache

__all__ = ["VictimBuffer", "VictimProbeWrapper"]


class VictimBuffer:
    """Fully-associative FIFO of recently evicted 64 B block addresses."""

    def __init__(self, entries: int = 512) -> None:
        if entries < 1:
            raise ValueError("entries must be >= 1")
        self.capacity = entries
        self._blocks: OrderedDict[int, None] = OrderedDict()
        self.insertions = 0
        self.probe_hits = 0
        self.probes = 0

    def insert(self, block_address: int) -> None:
        block = block_address >> 6
        self._blocks[block] = None
        self._blocks.move_to_end(block)
        self.insertions += 1
        while len(self._blocks) > self.capacity:
            self._blocks.popitem(last=False)

    def probe(self, address: int) -> bool:
        """Would this miss have hit in the victim buffer?"""
        self.probes += 1
        hit = (address >> 6) in self._blocks
        if hit:
            self.probe_hits += 1
        return hit

    def remove(self, address: int) -> None:
        self._blocks.pop(address >> 6, None)

    @property
    def hit_rate(self) -> float:
        return self.probe_hits / self.probes if self.probes else 0.0

    def __len__(self) -> int:
        return len(self._blocks)


class VictimProbeWrapper:
    """Wraps a BiModalCache, tracking would-be victim-cache hits.

    Evictions feed the buffer; every DRAM cache miss probes it. The
    wrapper is measurement-only (it does not short-circuit misses), so
    the wrapped cache's behaviour is unchanged and the probe hit rate is
    exactly the paper's "benefit of retaining evicted blocks" quantity.
    """

    def __init__(self, cache: BiModalCache, *, entries: int = 512) -> None:
        self.cache = cache
        self.buffer = VictimBuffer(entries)
        self._hook_evictions()

    def _hook_evictions(self) -> None:
        original = self.cache._handle_evictions

        def hooked(set_index, evictions, now):
            am = self.cache.addr_map
            for record in evictions:
                base = am.rebuild(record.tag, set_index, record.sub_offset)
                if record.big:
                    for sub in range(self.cache.smalls_per_big):
                        self.buffer.insert(
                            am.rebuild(record.tag, set_index, sub)
                        )
                else:
                    self.buffer.insert(base)
            original(set_index, evictions, now)

        self.cache._handle_evictions = hooked

    def access_fast(self, address: int, now: int, is_write: bool = False) -> int:
        """Flat drive-loop entry point (mirrors DRAMCacheBase.access_fast)."""
        complete = self.cache.access_fast(address, now, is_write)
        if not self.cache._hit:
            self.buffer.probe(address)
        else:
            self.buffer.remove(address)
        return complete

    def access(self, address: int, now: int, *, is_write: bool = False) -> DRAMCacheAccess:
        result = self.cache.access(address, now, is_write=is_write)
        if not result.hit:
            self.buffer.probe(address)
        else:
            self.buffer.remove(address)
        return result

    @property
    def victim_hit_fraction(self) -> float:
        """Fraction of DRAM cache misses a victim cache would convert."""
        return self.buffer.hit_rate

    # -- delegation so the wrapper drops into drive_cache unchanged -----
    def stats_snapshot(self) -> dict:
        snap = self.cache.stats_snapshot()
        snap["victim_hit_fraction"] = self.victim_hit_fraction
        snap["victim_insertions"] = self.buffer.insertions
        return snap

    def reset_stats(self) -> None:
        self.cache.reset_stats()
