"""Rule ``fork-safety`` — worker submissions must not capture live handles.

``harness.parallel.run_grid`` ships each cell to a worker process by
pickling the worker function and its cells. An open file, a connected
socket or an asyncio event loop captured by that closure either fails
to pickle at submission time (the lucky case) or — under fork — arrives
in the child as a *shared* descriptor, where two processes interleave
writes on one file offset or one socket. The grid engine's crash
attribution (PR 3) can tell you a worker died, but not why; this rule
rejects the capture statically.

Detected submission points: ``run_grid(worker, cells)`` (resolved
through imports) and ``submit``/``map`` on a ``ProcessPoolExecutor``
assigned in the same function. For each, the rule checks:

* the worker argument's dataflow deps (a lambda's deps are its
  captures) for names bound to handle factories — ``open()``,
  ``socket.socket``/``create_connection``, asyncio loop getters;
* a worker passed by *name* (module-level or nested ``def``): its free
  variables against handle-bound names in the enclosing scope;
* a worker passed as ``self.method``: the class's ``self.<attr>``
  assignments for handle factories (pickling ``self`` ships them all);
* every other argument for directly-passed handles.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.analysis.model import ProjectModel, Violation
from repro.analysis.rules import Rule, register_rule

HANDLE_FACTORIES: dict[str, str] = {
    "open": "open file",
    "socket.socket": "socket",
    "socket.create_connection": "socket",
    "asyncio.get_event_loop": "asyncio event loop",
    "asyncio.get_running_loop": "asyncio event loop",
    "asyncio.new_event_loop": "asyncio event loop",
}

_GRID_ENTRIES = {"repro.harness.parallel.run_grid"}
_POOL_FACTORIES = {"ProcessPoolExecutor", "Pool"}


@register_rule
class ForkSafetyRule(Rule):
    name = "fork-safety"
    version = 1
    description = (
        "run_grid / process-pool submissions may not capture open "
        "files, sockets or event loops"
    )
    rationale = (
        "Grid cells are pickled into worker processes. A captured live "
        "handle (open file, socket, event loop) either breaks pickling "
        "at submission time or, under fork, becomes a descriptor "
        "shared between parent and child — interleaved writes, "
        "double-closed sockets, a loop running in two processes. "
        "Workers must be module-level functions over plain-data cells; "
        "handles are opened inside the worker."
    )
    example_bad = """\
from repro.harness.parallel import run_grid

def campaign(cells):
    log = open("grid.log", "w")
    return run_grid(lambda cell: log.write(str(cell)), cells)
"""
    example_good = """\
from repro.harness.parallel import run_grid

def worker(cell):
    return cell * 2

def campaign(cells):
    return run_grid(worker, cells)
"""

    def check_project(self, project: ProjectModel) -> Iterator[Violation]:
        graph = project.graph
        for mod in graph.modules.values():
            module_handles = _handle_names(
                next(f for f in mod.functions if f.qualname == "<module>")
            )
            class_handle_attrs = _class_handle_attrs(mod)
            for fn in mod.functions:
                handles = dict(module_handles) if fn.qualname != "<module>" \
                    else module_handles
                handles.update(_handle_names(fn))
                pools = _pool_names(fn)
                for call in fn.calls:
                    site = self._submission_kind(graph, mod, fn, call, pools)
                    if site is None:
                        continue
                    yield from self._check_submission(
                        project, graph, mod, fn, call, site,
                        handles, class_handle_attrs,
                    )

    # -- submission-site detection ----------------------------------------
    def _submission_kind(self, graph, mod, fn, call, pools) -> str | None:
        target = graph.resolve_project(mod, fn, call)
        resolved = call.resolved or ""
        if resolved in _GRID_ENTRIES:
            return "run_grid"
        if target is not None and target.endswith(":run_grid"):
            return "run_grid"
        tail = call.chain[-1]
        if tail in ("submit", "map") and len(call.chain) == 2 \
                and call.chain[0] in pools:
            return f"pool.{tail}"
        return None

    # -- capture checks ----------------------------------------------------
    def _check_submission(self, project, graph, mod, fn, call, site,
                          handles, class_handle_attrs) -> Iterator[Violation]:
        refs = list(call.func_refs)
        for i, deps in enumerate(call.arg_deps):
            role = "worker function" if i == 0 else f"argument {i}"
            # dataflow deps: direct handles and lambda captures
            for dep in deps:
                if dep.startswith("n:") and dep[2:] in handles:
                    yield self._violation(
                        project, mod.rel, call.lineno,
                        f"{site} {role} captures {dep[2:]!r}, a live "
                        f"{handles[dep[2:]]} — workers must open handles "
                        "themselves, cells carry plain data",
                    )
                elif dep.startswith("c:"):
                    inner = fn.calls[int(dep[2:])]
                    kind = HANDLE_FACTORIES.get(inner.resolved or "")
                    if kind is not None:
                        yield self._violation(
                            project, mod.rel, call.lineno,
                            f"{site} {role} is a freshly-created {kind}; "
                            "it cannot cross the process boundary",
                        )
        # worker passed by reference: free variables / bound self
        if refs:
            worker = refs[0]
            if "." in worker:
                head, _, meth = worker.partition(".")
                if head == "self" and fn.cls is not None:
                    for attr, kind in class_handle_attrs.get(fn.cls, {}).items():
                        yield self._violation(
                            project, mod.rel, call.lineno,
                            f"{site} worker self.{meth} is a bound method of "
                            f"{fn.cls}, whose self.{attr} holds a live "
                            f"{kind}; pickling self ships the handle — use "
                            "a module-level worker over plain cells",
                        )
            else:
                key = graph.resolve_ref(mod, fn, worker)
                if key is not None:
                    free = graph.functions[key].free_names
                    for name in free:
                        if name in handles:
                            yield self._violation(
                                project, mod.rel, call.lineno,
                                f"{site} worker {worker!r} closes over "
                                f"{name!r}, a live {handles[name]} — open "
                                "it inside the worker instead",
                            )

    def _violation(self, project, rel, lineno, message) -> Violation:
        source = project.source_for(rel)
        if source is not None:
            return source.violation(self.name, lineno, message)
        return Violation(self.name, rel, lineno, 0, message)


def _handle_names(fn) -> dict[str, str]:
    """Names in ``fn`` bound (possibly transitively) to a live handle."""
    out: dict[str, str] = {}
    for _ in range(3):
        changed = False
        for target, deps in fn.assigns:
            if target in out:
                continue
            for dep in deps:
                kind = None
                if dep.startswith("c:"):
                    call = fn.calls[int(dep[2:])]
                    kind = HANDLE_FACTORIES.get(call.resolved or "")
                elif dep.startswith("n:") and dep[2:] in out:
                    kind = out[dep[2:]]
                if kind is not None:
                    out[target] = kind
                    changed = True
                    break
        if not changed:
            break
    return out


def _pool_names(fn) -> set[str]:
    """Local names bound to a process-pool instance."""
    out: set[str] = set()
    for target, deps in fn.assigns:
        for dep in deps:
            if dep.startswith("c:"):
                call = fn.calls[int(dep[2:])]
                if call.chain[-1] in _POOL_FACTORIES:
                    out.add(target)
    return out


def _class_handle_attrs(mod) -> dict[str, dict[str, str]]:
    """class -> {attr: handle kind} for self.<attr> = <handle factory>()."""
    out: dict[str, dict[str, str]] = {}
    for fn in mod.functions:
        if fn.cls is None:
            continue
        for attr, _lineno, deps in fn.self_attr_assigns:
            for dep in deps:
                if dep.startswith("c:"):
                    call = fn.calls[int(dep[2:])]
                    kind = HANDLE_FACTORIES.get(call.resolved or "")
                    if kind is not None:
                        out.setdefault(fn.cls, {})[attr] = kind
    return out
