"""Memory-system energy model (Section V-H).

The paper computes energy from event counts: "the number of accesses,
DRAM cache hit rate, way locator hit rate, row buffer hit rates in the
cache and main memory, and the amount of data transferred". We do the
same over the substrate's counters:

* every row activation (and its eventual precharge) costs a fixed
  activate/precharge energy — off-chip activations are several times
  more expensive than stacked ones (page size and I/O drivers);
* every 64-byte transfer costs a per-burst access+I/O energy, with
  off-chip transfers paying pad/termination energy the TSV-based stack
  avoids;
* SRAM structures (way locator, predictors, tag stores) cost a small
  per-lookup energy.

Absolute joules are representative (DDR3-1600 and stacked-DRAM
literature values); the experiments only consume *relative* savings,
which depend on the event-count ratios the simulator measures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.controller import MemoryController
from repro.dramcache.base import DRAMCacheBase

__all__ = ["EnergyParams", "EnergyBreakdown", "EnergyModel"]


@dataclass(frozen=True)
class EnergyParams:
    """Per-event energies in nanojoules.

    Derived from DDR3-1600 datasheet currents (IDD0/IDD4 windows) and
    die-stacked DRAM literature: an off-chip 2 KB activation+precharge
    pair costs ~30 nJ, a 64 B off-chip burst ~10 nJ including I/O and
    termination; on-stack events avoid pad drivers (~4 nJ / ~1.5 nJ).
    The experiments consume only *relative* savings; EXPERIMENTS.md
    notes the sensitivity of Figure 11 to this weighting.
    """

    offchip_activate_nj: float = 30.0  # ACT+PRE pair, 2 KB page, DDR3
    offchip_burst_nj: float = 10.0  # 64 B read/write incl. I/O + termination
    stacked_activate_nj: float = 4.0  # smaller effective page, TSV I/O
    stacked_burst_nj: float = 1.5  # 64 B over wide on-stack bus
    sram_lookup_nj: float = 0.01


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy per component in nanojoules."""

    offchip_activate: float
    offchip_transfer: float
    stacked_activate: float
    stacked_transfer: float
    sram: float

    @property
    def offchip_total(self) -> float:
        return self.offchip_activate + self.offchip_transfer

    @property
    def total(self) -> float:
        return (
            self.offchip_activate
            + self.offchip_transfer
            + self.stacked_activate
            + self.stacked_transfer
            + self.sram
        )

    def to_dict(self) -> dict[str, float]:
        """Flat-key export (shared stats protocol; see harness.export)."""
        return {
            "offchip_activate_nj": self.offchip_activate,
            "offchip_transfer_nj": self.offchip_transfer,
            "stacked_activate_nj": self.stacked_activate,
            "stacked_transfer_nj": self.stacked_transfer,
            "sram_nj": self.sram,
            "offchip_total_nj": self.offchip_total,
            "total_nj": self.total,
        }


class EnergyModel:
    """Computes an :class:`EnergyBreakdown` from simulator counters."""

    def __init__(self, params: EnergyParams | None = None) -> None:
        self.params = params or EnergyParams()

    def measure(
        self,
        cache: DRAMCacheBase,
        offchip: MemoryController,
        *,
        sram_lookups: int | None = None,
    ) -> EnergyBreakdown:
        p = self.params
        if sram_lookups is None:
            locator = getattr(cache, "locator", None)
            sram_lookups = locator.lookups.total if locator is not None else 0
        stacked_bursts = cache.dram.bytes_transferred / 64
        offchip_bursts = offchip.device.bytes_transferred / 64
        return EnergyBreakdown(
            offchip_activate=offchip.device.total_activations() * p.offchip_activate_nj,
            offchip_transfer=offchip_bursts * p.offchip_burst_nj,
            stacked_activate=cache.dram.total_activations() * p.stacked_activate_nj,
            stacked_transfer=stacked_bursts * p.stacked_burst_nj,
            sram=sram_lookups * p.sram_lookup_nj,
        )

    def savings_percent(
        self, baseline: EnergyBreakdown, improved: EnergyBreakdown
    ) -> float:
        """Relative total-energy reduction, in percent."""
        if baseline.total <= 0:
            raise ValueError("baseline energy must be positive")
        return 100.0 * (baseline.total - improved.total) / baseline.total
