"""System-performance experiments: Figure 7, Figure 8(a), Figure 8(b).

ANTT measurements follow the paper's protocol exactly: every program in
the mix runs multiprogrammed, then standalone under the *same* cache
scheme, and ANTT is the mean slowdown. Improvement is reported as the
relative ANTT reduction of Bi-Modal over the AlloyCache baseline.
"""

from __future__ import annotations

from repro.cores.metrics import improvement_percent
from repro.cores.multiprog import MultiProgramRunner
from repro.harness.runner import ExperimentSetup, build_cache
from repro.workloads.mixes import mixes_for_cores

__all__ = ["measure_antt", "fig7_antt", "fig8a_component_analysis", "fig8b_hit_rate"]


def measure_antt(
    scheme: str,
    mix_name: str,
    *,
    setup: ExperimentSetup,
    accesses_per_core: int | None = None,
) -> tuple[float, object]:
    """ANTT of one scheme on one mix under the scaled Table IV config."""
    mixes = mixes_for_cores(setup.num_cores)
    mix = mixes[mix_name]
    total = (accesses_per_core or setup.accesses_per_core) * setup.num_cores
    runner = MultiProgramRunner(
        mix,
        lambda: build_cache(
            scheme,
            setup.system,
            scale=setup.scale,
            adaptation_interval=max(1_000, total // 150),
        ),
        accesses_per_core=accesses_per_core or setup.accesses_per_core,
        seed=setup.seed,
        footprint_scale=setup.footprint_scale,
        intensity_scale=setup.intensity_scale,
        warmup_fraction=0.5,
    )
    return runner.run_antt()


def fig7_antt(
    *,
    num_cores: int = 4,
    mix_names: list[str] | None = None,
    setup: ExperimentSetup | None = None,
    schemes: tuple[str, str] = ("alloy", "bimodal"),
) -> list[dict]:
    """Figure 7: ANTT improvement of Bi-Modal over AlloyCache.

    Paper: 10.8% (4-core), 13.8% (8-core), 14.0% (16-core) on average.
    """
    setup = setup or ExperimentSetup(num_cores=num_cores)
    names = mix_names or list(mixes_for_cores(setup.num_cores))
    baseline_name, improved_name = schemes
    rows = []
    for name in names:
        base_antt, _ = measure_antt(baseline_name, name, setup=setup)
        new_antt, _ = measure_antt(improved_name, name, setup=setup)
        rows.append(
            {
                "mix": name,
                baseline_name: base_antt,
                improved_name: new_antt,
                "improvement_pct": improvement_percent(base_antt, new_antt),
            }
        )
    if rows:
        rows.append(
            {
                "mix": "mean",
                baseline_name: sum(r[baseline_name] for r in rows) / len(rows),
                improved_name: sum(r[improved_name] for r in rows) / len(rows),
                "improvement_pct": sum(r["improvement_pct"] for r in rows)
                / len(rows),
            }
        )
    return rows


def fig8a_component_analysis(
    *,
    mix_names: list[str] | None = None,
    setup: ExperimentSetup | None = None,
) -> list[dict]:
    """Figure 8(a): Bi-Modal-Only and Way-Locator-Only vs the full design.

    Both components independently improve ANTT over AlloyCache; the full
    Bi-Modal cache captures both gains (8-core workloads in the paper).
    """
    setup = setup or ExperimentSetup(num_cores=8)
    names = mix_names or list(mixes_for_cores(setup.num_cores))
    schemes = ("alloy", "bimodal-only", "wayloc-only", "bimodal")
    rows = []
    for name in names:
        antts = {s: measure_antt(s, name, setup=setup)[0] for s in schemes}
        row = {"mix": name}
        for s in schemes[1:]:
            row[f"{s}_pct"] = improvement_percent(antts["alloy"], antts[s])
        rows.append(row)
    if rows:
        avg = {"mix": "mean"}
        for key in rows[0]:
            if key != "mix":
                avg[key] = sum(r[key] for r in rows) / len(rows)
        rows.append(avg)
    return rows


def fig8b_hit_rate(
    *,
    mix_names: list[str] | None = None,
    setup: ExperimentSetup | None = None,
) -> list[dict]:
    """Figure 8(b): DRAM cache hit rates of Alloy, fixed-512B and Bi-Modal.

    The paper reports average hit-rate gains over AlloyCache of 29%
    (fixed 512 B) and 38% (Bi-Modal, via better space utilization).
    """
    from repro.harness.runner import run_scheme_on_mix

    setup = setup or ExperimentSetup()
    names = mix_names or list(mixes_for_cores(setup.num_cores))
    rows = []
    for name in names:
        row: dict = {"mix": name}
        for scheme in ("alloy", "fixed512", "bimodal"):
            row[scheme] = run_scheme_on_mix(scheme, name, setup=setup).stats[
                "hit_rate"
            ]
        row["fixed512_gain_pct"] = improvement_percent(
            1 - row["alloy"], 1 - row["fixed512"]
        )
        row["bimodal_gain_pct"] = improvement_percent(
            1 - row["alloy"], 1 - row["bimodal"]
        )
        rows.append(row)
    if rows:
        avg: dict = {"mix": "mean"}
        for key in rows[0]:
            if key != "mix":
                avg[key] = sum(r[key] for r in rows) / len(rows)
        rows.append(avg)
    return rows
