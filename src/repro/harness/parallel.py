"""Parallel experiment engine: fan (scheme, mix, setup) cells over processes.

Every figure in the harness is a grid of independent simulation cells —
one cache instance driven by one trace under one configuration. This
module gives them a single fan-out point: describe each cell as a small
picklable dataclass, hand the list to :func:`run_grid` with a worker
function, and get results back **in submission order**, bit-identical to
a serial run (each cell builds its own cache and trace from the cell's
parameters, so parallelism cannot perturb any RNG or timing state).

Worker processes return plain floats/dicts, never simulator objects:
caches hold posted-operation lambdas that do not pickle, and shipping a
few numbers keeps IPC negligible next to simulation time.

Job-count resolution: an explicit ``jobs`` argument wins, then the
``REPRO_JOBS`` environment variable, else serial. ``0`` or ``"auto"``
means one worker per CPU. ``jobs=1`` (the default everywhere) runs the
cells inline with no pool, and any failure to *create* the pool (e.g. a
sandbox forbidding fork) silently falls back to the serial path.
"""

from __future__ import annotations

import os
import sys
import time
from collections.abc import Callable, Iterable
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import TypeVar

from repro.bimodal.cache import BiModalConfig
from repro.cores.multiprog import MultiProgramRunner
from repro.harness.runner import ExperimentSetup, build_cache, run_scheme_on_mix
from repro.obs import get_metrics, get_tracer, profile_call, profile_dir
from repro.workloads.mixes import mixes_for_cores

__all__ = [
    "resolve_jobs",
    "run_grid",
    "GridCell",
    "AnttCell",
    "drive_cell",
    "antt_cell",
]

_Cell = TypeVar("_Cell")
_Result = TypeVar("_Result")


def resolve_jobs(jobs: int | str | None = None) -> int:
    """Effective worker count: explicit argument > ``REPRO_JOBS`` > 1."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if not env:
            return 1
        jobs = env
    if isinstance(jobs, str):
        if jobs.lower() == "auto":
            jobs = 0
        else:
            try:
                jobs = int(jobs)
            except ValueError:
                return 1
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


def run_grid(
    func: Callable[[_Cell], _Result],
    cells: Iterable[_Cell],
    *,
    jobs: int | str | None = None,
) -> list[_Result]:
    """Apply ``func`` to every cell, optionally across processes.

    Results come back in the order the cells were given regardless of
    completion order. With ``jobs`` resolving to 1 (the default when
    ``REPRO_JOBS`` is unset) or fewer than two cells, no pool is created
    at all. Pool-level failures (fork refused, workers killed) degrade
    to the serial path; exceptions raised *by the worker function*
    propagate unchanged in both modes.

    Observability: with tracing on (``REPRO_TRACE`` / ``--trace-out``)
    the grid streams one progress line per finished cell to stderr and
    emits ``grid``/``grid.cell`` events carrying per-cell wall time;
    with ``REPRO_PROFILE=<dir>`` each cell additionally runs under
    ``cProfile`` and dumps ``cell_<i>.prof``. Both paths wrap the
    worker *around* the cell function, so cell results are identical to
    the uninstrumented run.
    """
    cell_list = list(cells)
    workers = resolve_jobs(jobs)
    tracer = get_tracer()
    prof = profile_dir()
    if not tracer.enabled and prof is None:
        if workers <= 1 or len(cell_list) <= 1:
            return [func(cell) for cell in cell_list]
        try:
            with ProcessPoolExecutor(
                max_workers=min(workers, len(cell_list))
            ) as pool:
                return list(pool.map(func, cell_list))
        except (OSError, PermissionError, BrokenProcessPool):
            return [func(cell) for cell in cell_list]
    return _run_grid_instrumented(func, cell_list, workers, tracer, prof)


@dataclass(frozen=True)
class _InstrumentedCell:
    """Picklable wrapper timing (and optionally profiling) one cell."""

    func: Callable
    profile_to: str | None

    def __call__(self, pair):
        index, cell = pair
        start = time.perf_counter()
        if self.profile_to is not None:
            result = profile_call(
                self.func, cell, label=f"cell_{index:04d}",
                out_dir=self.profile_to,
            )
        else:
            result = self.func(cell)
        return result, time.perf_counter() - start


def _cell_attrs(cell) -> dict:
    """Scheme/mix labels for progress lines, when the cell carries them."""
    attrs = {}
    for key in ("scheme", "mix"):
        value = getattr(cell, key, None)
        if isinstance(value, str):
            attrs[key] = value
    return attrs


def _run_grid_instrumented(
    func: Callable, cell_list: list, workers: int, tracer, prof
) -> list:
    """run_grid with per-cell timing, progress and optional profiling."""
    wrapped = _InstrumentedCell(func, str(prof) if prof is not None else None)
    pairs = list(enumerate(cell_list))
    total = len(pairs)
    results: list = []
    registry = get_metrics()

    def consume(timed_results: Iterable) -> None:
        for index, (result, wall) in enumerate(timed_results):
            attrs = _cell_attrs(cell_list[index])
            tracer.point(
                "grid.cell",
                index=index,
                total=total,
                wall_s=round(wall, 6),
                **attrs,
            )
            registry.add("grid.cells")
            registry.observe("grid.cell_wall_s", wall)
            if tracer.enabled:
                label = " ".join(f"{k}={v}" for k, v in attrs.items())
                print(
                    f"[repro] cell {index + 1}/{total} {wall:7.2f}s {label}".rstrip(),
                    file=sys.stderr,
                )
            results.append(result)

    with tracer.span("grid", cells=total, workers=min(workers, max(total, 1))):
        if workers <= 1 or total <= 1:
            consume(map(wrapped, pairs))
        else:
            try:
                with ProcessPoolExecutor(max_workers=min(workers, total)) as pool:
                    consume(pool.map(wrapped, pairs))
            except (OSError, PermissionError, BrokenProcessPool):
                results.clear()
                consume(map(wrapped, pairs))
    return results


# ----------------------------------------------------------------------
# standard cells
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GridCell:
    """One trace-driven run: scheme x mix under a setup (drive protocol)."""

    scheme: str
    mix: str
    setup: ExperimentSetup
    bimodal_config: BiModalConfig | None = None
    window: int = 16
    warmup_fraction: float = 0.5


def drive_cell(cell: GridCell) -> dict:
    """Worker: run one cell, return its stats snapshot (picklable)."""
    result = run_scheme_on_mix(
        cell.scheme,
        cell.mix,
        setup=cell.setup,
        bimodal_config=cell.bimodal_config,
        window=cell.window,
        warmup_fraction=cell.warmup_fraction,
    )
    return dict(result.stats)


@dataclass(frozen=True)
class AnttCell:
    """One ANTT measurement: multiprogrammed plus per-program standalone.

    Defaults mirror :class:`~repro.cores.multiprog.MultiProgramRunner`
    (``warmup_fraction=0.3``, ``intensity_scale=1.0``); the Figure 7/8
    protocol passes 0.5 and the setup's intensity explicitly.
    """

    scheme: str
    mix: str
    setup: ExperimentSetup
    accesses_per_core: int | None = None
    cache_mb: int | None = None
    bimodal_config: BiModalConfig | None = None
    warmup_fraction: float = 0.3
    intensity_scale: float = 1.0


def antt_cell(cell: AnttCell) -> float:
    """Worker: ANTT of one scheme on one mix (the paper's metric)."""
    setup = cell.setup
    mix = mixes_for_cores(setup.num_cores)[cell.mix]
    system = setup.system
    if cell.cache_mb is not None:
        system = system.scaled_cache(cell.cache_mb << 20)
    per_core = cell.accesses_per_core or setup.accesses_per_core
    total = per_core * setup.num_cores

    def factory():
        return build_cache(
            cell.scheme,
            system,
            scale=setup.scale,
            bimodal_config=cell.bimodal_config,
            adaptation_interval=max(1_000, total // 150),
        )

    runner = MultiProgramRunner(
        mix,
        factory,
        accesses_per_core=per_core,
        seed=setup.seed,
        footprint_scale=setup.footprint_scale,
        intensity_scale=cell.intensity_scale,
        warmup_fraction=cell.warmup_fraction,
    )
    antt, _ = runner.run_antt()
    return antt
