"""Rule ``api-stability`` — the ``repro.api`` wire surface stays stable.

The typed facade is a compatibility contract: clients on other machines
decode these dataclasses from the wire, and the CLI/server byte-identity
guarantee (``docs/service.md``) depends on requests being immutable and
versioned. Within the configured api-types modules this rule requires,
for every class:

* it is a ``@dataclass(frozen=True, slots=True)`` — a request that can
  be mutated after validation, or that grows ad-hoc attributes, breaks
  the "value accepted is the value executed" invariant;
* it declares a ``schema`` field defaulting to the module's
  ``API_SCHEMA`` constant, so every instance is version-stamped and
  decoders can reject skew.

Everywhere else in the package (outside the ``api_construction_allow``
globs) the wire types must not be constructed directly: the facade
constructors/factories are the single place defaulting and validation
happen, so a bare ``SimRequest(...)`` elsewhere is a validation bypass
waiting to drift. (Tests are not linted and construct freely.)
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.model import ClassInfo, ProjectModel, SourceFile, Violation
from repro.analysis.rules import Rule, register_rule

_SCHEMA_CONST = "API_SCHEMA"


def _dataclass_flags(info: ClassInfo) -> tuple[bool, bool]:
    """(frozen, slots) as written in the @dataclass decorator."""
    frozen = slots = False
    for deco in info.node.decorator_list:
        if not isinstance(deco, ast.Call):
            continue
        target = deco.func
        name = target.id if isinstance(target, ast.Name) else getattr(target, "attr", None)
        if name != "dataclass":
            continue
        for kw in deco.keywords:
            if isinstance(kw.value, ast.Constant):
                if kw.arg == "frozen":
                    frozen = bool(kw.value.value)
                elif kw.arg == "slots":
                    slots = bool(kw.value.value)
    return frozen, slots


def _has_schema_field(info: ClassInfo) -> bool:
    """``schema: int = API_SCHEMA`` present in the class body?"""
    for item in info.node.body:
        if (
            isinstance(item, ast.AnnAssign)
            and isinstance(item.target, ast.Name)
            and item.target.id == "schema"
            and isinstance(item.value, ast.Name)
            and item.value.id == _SCHEMA_CONST
        ):
            return True
    return False


def _called_name(node: ast.Call) -> str | None:
    """Simple (last-attribute) name of a call target."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


@register_rule
class ApiStabilityRule(Rule):
    name = "api-stability"
    version = 1
    description = (
        "api wire types must be frozen, slotted and schema-versioned, "
        "and constructed only via the repro.api facade"
    )
    rationale = (
        "Clients on other machines decode the repro.api dataclasses "
        "from the wire; the byte-identity guarantee depends on requests "
        "being immutable and version-stamped. A mutable wire type "
        "breaks 'the value accepted is the value executed', a missing "
        "schema field makes version skew undetectable, and direct "
        "construction outside the facade bypasses defaulting and "
        "validation."
    )
    example_bad = """\
from dataclasses import dataclass

API_SCHEMA = 1

@dataclass
class SimRequest:
    seed: int = 0
"""
    example_good = """\
from dataclasses import dataclass

API_SCHEMA = 1

@dataclass(frozen=True, slots=True)
class SimRequest:
    seed: int = 0
    schema: int = API_SCHEMA
"""

    def _api_type_names(self, project: ProjectModel) -> set[str]:
        """Every dataclass defined in the configured api-types modules."""
        return {
            info.name
            for info in project.classes
            if info.is_dataclass
            and any(
                info.source.matches(glob)
                for glob in project.config.api_types_modules
            )
        }

    def check_file(
        self, source: SourceFile, project: ProjectModel
    ) -> Iterator[Violation]:
        config = project.config
        if any(source.matches(glob) for glob in config.api_types_modules):
            yield from self._check_type_definitions(source, project)
            return
        if any(source.matches(glob) for glob in config.api_construction_allow):
            return
        yield from self._check_construction(source, project)

    # ------------------------------------------------------------------
    def _check_type_definitions(
        self, source: SourceFile, project: ProjectModel
    ) -> Iterator[Violation]:
        for info in project.classes:
            if info.source is not source:
                continue
            if not info.is_dataclass:
                yield source.violation(
                    self.name, info.node,
                    f"api type {info.name} must be a frozen dataclass "
                    "(plain classes have no stable wire shape)",
                )
                continue
            frozen, slots = _dataclass_flags(info)
            if not frozen or not slots:
                yield source.violation(
                    self.name, info.node,
                    f"api type {info.name} must declare "
                    "@dataclass(frozen=True, slots=True)",
                )
            if not _has_schema_field(info):
                yield source.violation(
                    self.name, info.node,
                    f"api type {info.name} must carry a "
                    f"'schema: int = {_SCHEMA_CONST}' field so decoders "
                    "can reject version skew",
                )

    def _check_construction(
        self, source: SourceFile, project: ProjectModel
    ) -> Iterator[Violation]:
        api_types = self._api_type_names(project)
        if not api_types:
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _called_name(node)
            if name in api_types:
                yield source.violation(
                    self.name, node,
                    f"construct {name} through the repro.api facade "
                    "(repro.api.facade / its factories), not directly — "
                    "direct construction bypasses validation",
                )
