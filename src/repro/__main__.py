"""Command-line front-end: regenerate any paper table/figure.

Examples::

    python -m repro list
    python -m repro fig1 --mixes Q2 Q7 --accesses 20000
    python -m repro fig8c
    python -m repro table3
    python -m repro fig7 --cores 4 --mixes Q2 Q7
"""

from __future__ import annotations

import argparse
import sys

import repro.harness.experiments as experiments
from repro.harness.reporting import print_table
from repro.harness.runner import ExperimentSetup

# name -> (function attr, needs-setup, default core count, description)
_EXPERIMENTS: dict[str, tuple[str, bool, int, str]] = {
    "fig1": ("fig1_miss_rate_vs_block_size", True, 4, "miss rate vs block size"),
    "fig2": ("fig2_block_utilization", True, 4, "sub-block utilization distribution"),
    "fig3": ("fig3_latency_breakdown", False, 4, "hit-path latency breakdown"),
    "fig5": ("fig5_mru_hits", True, 8, "hits by MRU position"),
    "fig7": ("fig7_antt", True, 4, "ANTT improvement over AlloyCache"),
    "fig8a": ("fig8a_component_analysis", True, 8, "component ANTT analysis"),
    "fig8b": ("fig8b_hit_rate", True, 4, "hit rates by scheme"),
    "fig8c": ("fig8c_access_latency", True, 4, "average LLSC miss penalty"),
    "fig9a": ("fig9a_wasted_bandwidth", True, 8, "wasted off-chip bandwidth"),
    "fig9b": ("fig9b_metadata_rbh", True, 4, "metadata RBH separate vs co-located"),
    "fig9c": ("fig9c_way_locator_hit_rate", True, 4, "way locator hit rate vs K"),
    "fig10": ("fig10_small_block_fraction", True, 4, "small-block access fraction"),
    "fig11": ("fig11_energy", True, 8, "memory energy vs AlloyCache"),
    "fig12": ("fig12_sensitivity", True, 4, "cache/block/assoc sensitivity"),
    "table1": ("table1_feature_matrix", False, 4, "qualitative feature matrix"),
    "table3": ("table3_way_locator_storage", False, 4, "way locator storage/latency"),
    "table6": ("table6_prefetch", True, 4, "interaction with prefetching"),
    "abl-threshold": ("ablation_threshold", True, 4, "utilization threshold sweep"),
    "abl-weight": ("ablation_weight", True, 4, "adaptation weight sweep"),
    "abl-sampling": ("ablation_sampling", True, 4, "tracker sampling sweep"),
    "abl-parallel": ("ablation_parallel_tag", True, 4, "parallel vs serial tags"),
    "ext-victim": ("victim_buffer_study", True, 4, "victim-buffer benefit bound"),
    "ext-dueling": ("controller_comparison", True, 4, "demand vs set-dueling"),
    "ext-spaceutil": (
        "space_utilization_comparison", True, 4, "cache space utilization"
    ),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables/figures of the Bi-Modal DRAM Cache paper.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see `python -m repro list`)",
    )
    parser.add_argument("--mixes", nargs="*", default=None, help="mix subset")
    parser.add_argument("--cores", type=int, default=None, help="4, 8 or 16")
    parser.add_argument(
        "--accesses", type=int, default=20_000, help="accesses per core"
    )
    parser.add_argument("--scale", type=int, default=16, help="capacity scale")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--export", default=None, help="write rows to this .json or .csv path"
    )
    parser.add_argument(
        "--chart",
        default=None,
        metavar="COLUMN",
        help="also render a bar chart of this numeric column",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv[:1] == ["list"]:
        for name, (_, _, cores, desc) in _EXPERIMENTS.items():
            print(f"  {name:14s} ({cores}-core default)  {desc}")
        return 0
    args = _build_parser().parse_args(argv)
    if args.experiment not in _EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; try `python -m repro list`")
        return 2
    attr, needs_setup, default_cores, desc = _EXPERIMENTS[args.experiment]
    fn = getattr(experiments, attr)
    kwargs: dict = {}
    if needs_setup:
        setup = ExperimentSetup(
            num_cores=args.cores or default_cores,
            scale=args.scale,
            accesses_per_core=args.accesses,
            seed=args.seed,
        )
        kwargs["setup"] = setup
        if args.mixes and "mix_name" not in fn.__code__.co_varnames:
            kwargs["mix_names"] = args.mixes
    rows = fn(**kwargs)
    print_table(rows, title=f"{args.experiment}: {desc}")
    if args.chart and rows:
        from repro.harness.figures import bar_chart

        label = next(iter(rows[0]))
        print()
        print(bar_chart(rows, label=label, value=args.chart))
    if args.export:
        from repro.harness.export import export_csv, export_json

        if args.export.endswith(".csv"):
            export_csv(rows, args.export)
        else:
            export_json(rows, args.export, experiment=args.experiment)
        print(f"\nwrote {args.export}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
