"""Trace record/replay tests."""

import numpy as np
import pytest

from repro.workloads.mixes import get_mix
from repro.workloads.trace import MultiProgramTrace
from repro.workloads.tracefile import load_trace, replay, save_trace


def make_trace(accesses=800):
    return MultiProgramTrace(
        get_mix("Q1"), accesses_per_core=accesses, seed=5, footprint_scale=64
    )


class TestRoundTrip:
    def test_save_and_load(self, tmp_path):
        path = save_trace(make_trace(), tmp_path / "q1.npz")
        saved = load_trace(path)
        assert saved.metadata["mix"] == "Q1"
        assert saved.metadata["num_cores"] == 4
        assert len(saved) == saved.metadata["records"] == 4 * 800

    def test_replay_matches_regeneration(self, tmp_path):
        path = save_trace(make_trace(), tmp_path / "q1.npz")
        saved = load_trace(path)
        regenerated = [
            (r.address, r.is_write, r.icount) for r in make_trace()
        ]
        replayed = list(replay(saved))
        assert replayed == regenerated

    def test_limit(self, tmp_path):
        path = save_trace(make_trace(), tmp_path / "q1.npz", limit=100)
        assert len(load_trace(path)) == 100

    def test_dtype_economy(self, tmp_path):
        saved = load_trace(save_trace(make_trace(), tmp_path / "q1.npz"))
        assert saved.cores.dtype == np.uint8
        assert saved.addresses.dtype == np.uint64
        assert saved.icount.dtype == np.uint32

    def test_version_check(self, tmp_path):
        path = save_trace(make_trace(200), tmp_path / "q1.npz")
        # corrupt the version field
        import json

        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        meta = json.loads(bytes(arrays["metadata"].tobytes()).decode())
        meta["format_version"] = 99
        arrays["metadata"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        )
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError):
            load_trace(path)

    def test_replay_drives_a_cache(self, tmp_path):
        from repro.harness.runner import ExperimentSetup, build_cache, drive_cache

        path = save_trace(make_trace(500), tmp_path / "q1.npz")
        saved = load_trace(path)
        setup = ExperimentSetup()
        cache = build_cache("alloy", setup.system, scale=setup.scale)
        result = drive_cache(cache, replay(saved), streams=4)
        assert result.accesses == len(saved)
