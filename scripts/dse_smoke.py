#!/usr/bin/env python
"""CI smoke for the MRC engine + dse driver (docs/dse.md).

Three gates, cheapest first:

1. **Exactness** — at sampling rate 1.0 the tag-only ghost cache must
   agree *exactly* (same hit/access integers) with the reference
   :class:`~repro.sram.cache.SetAssociativeCache` LRU walk. The ghost
   is an algorithmic restatement of set-associative LRU, not an
   approximation, so any drift is a bug.
2. **Accuracy** — the ghost estimate of a fixed-geometry design point
   must land within 2% absolute hit rate of the full timing simulation
   of the same point, on two mixes. This is the cross-validation bound
   ISSUE acceptance requires (the adaptive-policy estimate is an
   optimistic bracket and is deliberately not gated — docs/dse.md).
3. **Cost** — a full `run_design_space` must finish with >= 5x fewer
   full-simulation equivalents than the exhaustive grid.

Exit 0 on success, 1 with a one-line reason on any violation.
"""

from __future__ import annotations

import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.harness.runner import ExperimentSetup  # noqa: E402
from repro.mrc.dse import (  # noqa: E402
    DesignPoint,
    DseSimCell,
    dse_sim_cell,
    run_design_space,
)
from repro.mrc.ghost import GhostCache  # noqa: E402
from repro.sram.cache import SetAssociativeCache  # noqa: E402
from repro.workloads.trace_cache import materialized_columns  # noqa: E402

MIXES = ("Q1", "Q7")
ACCESSES = 4_000
TOLERANCE = 0.02


def fail(reason: str) -> None:
    print(f"dse_smoke: FAIL: {reason}", file=sys.stderr)
    raise SystemExit(1)


def addresses_for(setup: ExperimentSetup, mix: str):
    addresses, _, _ = materialized_columns(
        mix,
        accesses_per_core=setup.accesses_per_core,
        seed=setup.seed,
        footprint_scale=setup.footprint_scale,
        intensity_scale=setup.intensity_scale,
    )
    return addresses


def check_exactness(setup: ExperimentSetup) -> None:
    """Gate 1: ghost == reference LRU cache, integer for integer."""
    capacity = setup.system.dram_cache.capacity
    for mix in MIXES:
        stream = addresses_for(setup, mix).tolist()
        for block_size in (64, 512):
            ghost = GhostCache(capacity, 8, block_size)
            ghost.consume(stream)
            reference = SetAssociativeCache(capacity, 8, block_size, policy="lru")
            for address in stream:
                reference.access(address)
            if (ghost.hits, ghost.accesses) != (
                reference.accesses.hits,
                reference.accesses.total,
            ):
                fail(
                    f"ghost != reference LRU on {mix}/{block_size}B: "
                    f"{ghost.hits}/{ghost.accesses} vs "
                    f"{reference.accesses.hits}/{reference.accesses.total}"
                )
        print(f"dse_smoke: exactness ok on {mix} (64B, 512B)")


def check_accuracy(setup: ExperimentSetup) -> None:
    """Gate 2: |ghost - timing| <= 2% absolute on fixed geometry."""
    point = DesignPoint(
        cache_mb=8, block_size=512, associativity=4, policy="fixed"
    )
    warmup_fraction = 0.5
    for mix in MIXES:
        stream = addresses_for(setup, mix).tolist()
        ghost = GhostCache(
            point.cache_mb << 20, point.associativity, point.block_size
        )
        ghost.consume(stream, int(len(stream) * warmup_fraction))
        estimated = ghost.hit_rate
        timed = dse_sim_cell(
            DseSimCell(
                point=point,
                mix=mix,
                setup=setup,
                warmup_fraction=warmup_fraction,
            )
        )["hit_rate"]
        delta = abs(estimated - timed)
        print(
            f"dse_smoke: accuracy {mix} {point.label()}: "
            f"ghost {estimated:.4f} vs timing {timed:.4f} "
            f"(delta {delta:.4f}, tolerance {TOLERANCE})"
        )
        if delta > TOLERANCE:
            fail(
                f"ghost estimate off by {delta:.4f} > {TOLERANCE} "
                f"on {mix} {point.label()}"
            )


def check_cost(setup: ExperimentSetup) -> None:
    """Gate 3: the pruned driver spends >= 5x less than exhaustive."""
    outcome = run_design_space(setup=setup, mix_names=list(MIXES), jobs=2)
    stats = outcome["stats"]
    print(
        f"dse_smoke: dse spent {stats['full_sims_equivalent']:g} "
        f"full-sim equivalents vs {stats['exhaustive_sims']:g} exhaustive "
        f"({stats['speedup']:g}x)"
    )
    if stats["speedup"] < 5.0:
        fail(f"dse speedup {stats['speedup']:g}x < required 5x")
    if outcome["winner"] is None:
        fail("dse produced no fully-simulated winner")


def main() -> int:
    setup = ExperimentSetup(num_cores=4, accesses_per_core=ACCESSES)
    check_exactness(setup)
    check_accuracy(setup)
    check_cost(setup)
    print("dse_smoke: all gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
