"""Incremental-cache correctness: replay identity and invalidation.

The cache may only ever cost time, never change results — every test
here is some form of "warm equals cold". Invalidation must trigger on
file edits, file renames (facts embed path-derived module names) and
rule version bumps (rule behavior changed, cached findings are stale).
"""

import json
import textwrap
import time
from pathlib import Path

import repro
from repro.analysis.cache import LintCache
from repro.analysis.config import load_config
from repro.analysis.engine import find_repo_root, run_lint
from tests.analysis.conftest import STRICT

DIRTY = """
    import time

    def stamp():
        return time.time()
"""

PACKAGE = Path(repro.__file__).resolve().parent


def fingerprints(result):
    return [v.fingerprint() for v in result.violations]


def make_tree(tmp_path, name="mod.py", source=DIRTY):
    (tmp_path / name).write_text(textwrap.dedent(source))
    return tmp_path


def lint(root, cache):
    return run_lint([root], config=STRICT, root=root, cache=cache)


class TestReplayIdentity:
    def test_warm_run_replays_identical_findings(self, tmp_path):
        root = make_tree(tmp_path)
        cache = LintCache(root / ".simlint-cache")
        cold = lint(root, cache)
        warm = lint(root, cache)
        assert not cold.cache_hit and warm.cache_hit
        assert warm.violations == cold.violations
        assert warm.suppressed == cold.suppressed
        assert warm.files_scanned == cold.files_scanned
        assert warm.rules_run == cold.rules_run

    def test_no_cache_and_cached_run_agree(self, tmp_path):
        root = make_tree(tmp_path)
        cached = lint(root, LintCache(root / ".simlint-cache"))
        uncached = lint(root, None)
        assert fingerprints(cached) == fingerprints(uncached)

    def test_cache_layout_on_disk(self, tmp_path):
        root = make_tree(tmp_path)
        cache_dir = root / ".simlint-cache"
        lint(root, LintCache(cache_dir))
        assert (cache_dir / "CACHEDIR.TAG").is_file()
        assert list((cache_dir / "runs").glob("*.json"))
        assert list((cache_dir / "facts").glob("*.json"))


class TestInvalidation:
    def test_edited_file_misses_and_reflects_the_edit(self, tmp_path):
        root = make_tree(tmp_path)
        cache = LintCache(root / ".simlint-cache")
        first = lint(root, cache)
        assert len(first.violations) == 1
        (root / "mod.py").write_text(
            textwrap.dedent(DIRTY) + "\n\ndef more():\n    return time.time_ns()\n"
        )
        second = lint(root, cache)
        assert not second.cache_hit
        assert len(second.violations) == 2

    def test_unchanged_sibling_reuses_facts_after_edit(self, tmp_path):
        root = make_tree(tmp_path)
        (root / "other.py").write_text("def ok():\n    return 1\n")
        cache = LintCache(root / ".simlint-cache")
        lint(root, cache)
        (root / "mod.py").write_text("def fixed(now):\n    return now\n")
        partial = lint(root, cache)
        assert not partial.cache_hit
        assert partial.facts_reused == 1  # other.py, not the edited file
        assert partial.ok

    def test_renamed_file_misses_and_reports_new_path(self, tmp_path):
        root = make_tree(tmp_path)
        cache = LintCache(root / ".simlint-cache")
        lint(root, cache)
        (root / "mod.py").rename(root / "renamed.py")
        result = lint(root, cache)
        assert not result.cache_hit
        assert result.facts_reused == 0  # same content, new rel: facts miss
        assert [v.path for v in result.violations] == ["renamed.py"]

    def test_rule_version_bump_invalidates_the_run(self, tmp_path, monkeypatch):
        from repro.analysis.rules.determinism import DeterminismRule

        root = make_tree(tmp_path)
        cache = LintCache(root / ".simlint-cache")
        lint(root, cache)
        monkeypatch.setattr(DeterminismRule, "version", 99)
        result = lint(root, cache)
        assert not result.cache_hit
        assert len(result.violations) == 1

    def test_config_change_invalidates_the_run(self, tmp_path):
        from dataclasses import replace

        root = make_tree(tmp_path)
        cache = LintCache(root / ".simlint-cache")
        lint(root, cache)
        relaxed = replace(STRICT, determinism_allow=("*.py",))
        result = run_lint([root], config=relaxed, root=root, cache=cache)
        assert not result.cache_hit
        assert result.ok


class TestRobustness:
    def test_corrupt_cache_entries_are_misses_not_errors(self, tmp_path):
        root = make_tree(tmp_path)
        cache_dir = root / ".simlint-cache"
        cache = LintCache(cache_dir)
        cold = lint(root, cache)
        for entry in cache_dir.rglob("*.json"):
            entry.write_text("{ not json")
        recovered = lint(root, cache)
        assert not recovered.cache_hit
        assert fingerprints(recovered) == fingerprints(cold)

    def test_wrong_schema_run_entry_is_a_miss(self, tmp_path):
        root = make_tree(tmp_path)
        cache_dir = root / ".simlint-cache"
        cache = LintCache(cache_dir)
        lint(root, cache)
        for entry in (cache_dir / "runs").glob("*.json"):
            document = json.loads(entry.read_text())
            del document["violations"]
            entry.write_text(json.dumps(document))
        result = lint(root, cache)
        assert not result.cache_hit
        assert len(result.violations) == 1


class TestRealTreeSpeedup:
    def test_warm_is_at_least_5x_faster_on_the_package(self, tmp_path):
        """The acceptance gate: warm >= 5x cold on an unchanged tree.

        Measured in-process (no interpreter startup) against the real
        package; the observed ratio is >50x, so 5x leaves headroom for
        slow CI runners.
        """
        root = find_repo_root(PACKAGE)
        config = load_config(root)
        cache = LintCache(tmp_path / "cache")

        t0 = time.perf_counter()
        cold = run_lint([PACKAGE], config=config, root=root, cache=cache)
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = run_lint([PACKAGE], config=config, root=root, cache=cache)
        warm_s = time.perf_counter() - t0

        assert not cold.cache_hit and warm.cache_hit
        assert fingerprints(warm) == fingerprints(cold)
        assert cold_s >= 5 * warm_s, (
            f"warm {warm_s:.3f}s not 5x faster than cold {cold_s:.3f}s"
        )
