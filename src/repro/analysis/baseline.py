"""Committed baseline: known findings the gate tolerates (for now).

The baseline lets the lint gate land green on a tree with pre-existing
findings, then ratchet: new findings fail immediately, baselined ones
are reported as debt, and entries whose code was fixed become *stale*
so the file shrinks monotonically. Entries match on the violation
fingerprint (rule + file + offending source line, not line numbers), as
a multiset — identical lines consume one entry each.

The file is JSON so diffs review cleanly::

    {"version": 1, "entries": [
        {"rule": "slots", "path": "src/...", "snippet": "class Foo:"}
    ]}
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.model import Violation

__all__ = [
    "Baseline",
    "BaselineError",
    "missing_file_entries",
    "split_by_baseline",
]

_VERSION = 1


class BaselineError(ValueError):
    """Unreadable or structurally invalid baseline file."""


@dataclass
class Baseline:
    """The committed multiset of tolerated finding fingerprints."""

    path: Path | None = None
    entries: list[dict] = field(default_factory=list)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        path = Path(path)
        try:
            document = json.loads(path.read_text())
        except OSError as exc:
            raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
        except ValueError as exc:
            raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
        if (
            not isinstance(document, dict)
            or document.get("version") != _VERSION
            or not isinstance(document.get("entries"), list)
        ):
            raise BaselineError(
                f"baseline {path} must be {{'version': {_VERSION}, 'entries': [...]}}"
            )
        entries = []
        for entry in document["entries"]:
            if not isinstance(entry, dict) or not {"rule", "path", "snippet"} <= set(entry):
                raise BaselineError(
                    f"baseline {path}: each entry needs rule/path/snippet keys"
                )
            entries.append(entry)
        return cls(path=path, entries=entries)

    @classmethod
    def from_violations(cls, violations: list[Violation]) -> "Baseline":
        return cls(
            entries=[
                {
                    "rule": v.rule,
                    "path": v.path,
                    "snippet": v.snippet,
                    "message": v.message,
                }
                for v in violations
            ]
        )

    def fingerprints(self) -> Counter:
        return Counter(
            f"{entry['rule']}|{entry['path']}|{entry['snippet']}"
            for entry in self.entries
        )

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        document = {"version": _VERSION, "entries": self.entries}
        path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
        return path


def split_by_baseline(
    violations: list[Violation], baseline: Baseline
) -> tuple[list[Violation], list[Violation], int]:
    """(new, tolerated, stale_entry_count) under ``baseline``."""
    budget = baseline.fingerprints()
    new: list[Violation] = []
    tolerated: list[Violation] = []
    for violation in violations:
        print_ = violation.fingerprint()
        if budget.get(print_, 0) > 0:
            budget[print_] -= 1
            tolerated.append(violation)
        else:
            new.append(violation)
    stale = sum(count for count in budget.values() if count > 0)
    return new, tolerated, stale


def missing_file_entries(baseline: Baseline, root: Path) -> list[dict]:
    """Baseline entries whose file no longer exists under ``root``.

    A deleted (or renamed) file used to surface only as an anonymous
    stale-fingerprint count, which a renumber-tolerant fingerprint can
    never re-match — permanent, unexplained debt. These entries are
    reported by path so the operator knows *why* they are stale, and
    ``--update-baseline`` prunes them (the rewrite keeps only findings
    from files that still exist).
    """
    root = Path(root)
    missing: list[dict] = []
    for entry in baseline.entries:
        path = entry.get("path", "")
        if path and not (root / path).exists():
            missing.append(entry)
    return missing
