"""Figure 7: ANTT improvement of Bi-Modal over AlloyCache.

Paper averages: 10.8% (4-core), 13.8% (8-core), 14.0% (16-core). The
benchmark reproduces the 4-core series on a representative mix subset;
the experiment function accepts the full mix lists for complete sweeps.
"""

from repro.harness.experiments import fig7_antt
from repro.harness.runner import ExperimentSetup

ANTT_MIXES = ["Q2", "Q5", "Q7", "Q12", "Q17", "Q20", "Q23"]


def test_fig7_antt_quad_core(benchmark, report):
    # ANTT needs steady-state measurement: longer per-core quotas than
    # the other quad benchmarks (the runner warm-up covers half the run).
    setup = ExperimentSetup(num_cores=4, accesses_per_core=25_000, seed=1)
    rows = benchmark.pedantic(
        lambda: fig7_antt(setup=setup, mix_names=ANTT_MIXES),
        rounds=1,
        iterations=1,
    )
    report(rows, title="Figure 7: ANTT improvement over AlloyCache (4-core)")
    mean = rows[-1]
    assert mean["mix"] == "mean"
    # Both are valid ANTTs (>= 1) and Bi-Modal improves on average —
    # strongly on dense mixes; our synthetic ultra-sparse mixes give a
    # small regression (see EXPERIMENTS.md), so the mean sits below the
    # paper's +10.8% but stays clearly positive.
    assert mean["alloy"] >= 1.0
    assert mean["bimodal"] >= 1.0
    assert mean["improvement_pct"] > 1.5
    by_mix = {r["mix"]: r["improvement_pct"] for r in rows[:-1]}
    assert by_mix["Q2"] > 8.0  # dense mixes reproduce the paper's gains
