"""Extension studies beyond the paper (victim buffer, set dueling,
space utilization) — DESIGN.md section 5."""

from repro.harness.experiments import (
    controller_comparison,
    space_utilization_comparison,
    victim_buffer_study,
)
from repro.harness.runner import ExperimentSetup


def test_victim_buffer_benefit_is_small(benchmark, report, quad_setup):
    """Reproduces the Related-Work claim: evicted DRAM-cache blocks see
    very little near-term reuse, so a victim cache would help little."""
    rows = benchmark.pedantic(
        lambda: victim_buffer_study(
            setup=quad_setup, mix_names=["Q2", "Q7", "Q23"]
        ),
        rounds=1,
        iterations=1,
    )
    report(rows, title="Extension: victim-buffer benefit bound")
    total = rows[-1]
    assert total["mix"] == "total"
    # A 512-entry victim buffer converts only a tiny miss fraction.
    assert total["victim_hit_fraction"] < 0.10


def test_controller_comparison(benchmark, report, quad_setup):
    """The paper's demand-ratio adaptation is competitive with the
    set-dueling election it cites."""
    rows = benchmark.pedantic(
        lambda: controller_comparison(setup=quad_setup, mix_names=["Q2", "Q23"]),
        rounds=1,
        iterations=1,
    )
    report(rows, title="Extension: demand-ratio vs set-dueling adaptation")
    for row in rows:
        # Similar hit rates — neither controller collapses.
        assert abs(row["demand_hit"] - row["dueling_hit"]) < 0.10


def test_space_utilization(benchmark, report):
    """Bi-modality improves referenced/committed bytes on sparse mixes
    (the block-internal-fragmentation argument of Section II-B)."""
    setup = ExperimentSetup(num_cores=4, accesses_per_core=40_000, seed=1)
    rows = benchmark.pedantic(
        lambda: space_utilization_comparison(
            setup=setup, mix_names=["Q2", "Q7", "Q23"]
        ),
        rounds=1,
        iterations=1,
    )
    report(rows, title="Extension: cache space utilization")
    by_mix = {r["mix"]: r for r in rows}
    # On the sparse mixes, bi-modal sets commit less dead space.
    assert by_mix["Q23"]["gain"] > 0.02
    assert by_mix["Q7"]["gain"] > 0.0
    # Dense mixes are already well utilized either way.
    assert by_mix["Q2"]["fixed512_space_util"] > 0.5
