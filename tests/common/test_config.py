"""Tests for Table IV configuration construction."""

import pytest

from repro.common.config import (
    CORE_COUNTS,
    CoreConfig,
    DRAMGeometry,
    DRAMTimingConfig,
    LLSCConfig,
    system_config,
)


class TestDRAMTimings:
    def test_stacked_is_9_9_9_at_1600mhz(self):
        t = DRAMTimingConfig.stacked()
        # 9 DRAM cycles at 1.6 GHz = 18 CPU cycles at 3.2 GHz
        assert t.cl == t.trcd == t.trp == 18
        assert t.burst_cycles == 4  # 64B over 128-bit DDR bus

    def test_ddr3_1600h(self):
        t = DRAMTimingConfig.ddr3_1600h()
        assert t.cl == t.trcd == t.trp == 36
        assert t.burst_cycles == 16  # BL=4 DRAM cycles at 800 MHz

    def test_latency_compositions(self):
        t = DRAMTimingConfig.stacked()
        assert t.row_hit_latency == 18
        assert t.row_closed_latency == 36
        assert t.row_conflict_latency == 54

    def test_offchip_slower_than_stacked(self):
        assert (
            DRAMTimingConfig.ddr3_1600h().row_conflict_latency
            > DRAMTimingConfig.stacked().row_conflict_latency
        )


class TestGeometry:
    def test_total_banks(self):
        geo = DRAMGeometry(channels=2, banks_per_channel=8, page_size=2048)
        assert geo.total_banks == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            DRAMGeometry(channels=0, banks_per_channel=8, page_size=2048)
        with pytest.raises(ValueError):
            DRAMGeometry(channels=1, banks_per_channel=8, page_size=1000)


class TestLLSC:
    def test_sets(self):
        cfg = LLSCConfig(size=4 << 20, associativity=8)
        assert cfg.num_sets == (4 << 20) // (64 * 8)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            LLSCConfig(size=4 << 20, associativity=3)


class TestCoreConfig:
    def test_defaults(self):
        cfg = CoreConfig()
        assert cfg.freq_hz == 3.2e9
        assert cfg.memory_level_parallelism >= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CoreConfig(base_cpi=0)
        with pytest.raises(ValueError):
            CoreConfig(memory_level_parallelism=0.5)


class TestSystemConfig:
    @pytest.mark.parametrize("cores", CORE_COUNTS)
    def test_table_iv_rows(self, cores):
        cfg = system_config(cores)
        assert cfg.num_cores == cores
        # Table IV: 4/8/16 cores -> 128/256/512 MB cache, 4/8/16 GB memory
        assert cfg.dram_cache.capacity == (128 << 20) * (cores // 4)
        assert cfg.offchip_capacity == (4 << 30) * (cores // 4)
        assert cfg.llsc.size == (4 << 20) * (cores // 4)

    def test_channel_scaling(self):
        assert system_config(4).offchip_channels == 1
        assert system_config(8).offchip_channels == 2
        assert system_config(16).offchip_channels == 4
        assert system_config(4).dram_cache.geometry.channels == 2
        assert system_config(16).dram_cache.geometry.channels == 8

    def test_invalid_core_count(self):
        with pytest.raises(ValueError):
            system_config(2)

    def test_cache_override(self):
        cfg = system_config(4, dram_cache_mb=64)
        assert cfg.dram_cache.capacity == 64 << 20

    def test_scaled_cache(self):
        cfg = system_config(4).scaled_cache(8 << 20)
        assert cfg.dram_cache.capacity == 8 << 20
        assert cfg.num_cores == 4
