"""Tag-only ghost caches: the functional models behind the MRC engine.

A ghost cache keeps *only* the tag/recency state of an organization —
no data, no timing, no bank model — so probing one costs a couple of
dict operations per record. One materialized trace can therefore be
driven through dozens of ghost configurations for less than the cost of
a single timing simulation (``docs/dse.md``).

Two models cover the design space the paper sweeps:

* :class:`GhostCache` — set-associative LRU at an arbitrary
  (capacity, associativity, block size). Its hit/miss sequence is
  **exactly** that of :class:`repro.sram.cache.SetAssociativeCache`
  with the LRU policy (pinned by tests/mrc/test_ghost.py), because
  both allocate on miss, fill empty ways first and evict the
  least-recently-used way. Figure 1 runs on this model.
* :class:`GhostBiModal` — a fixed-(X, Y) bi-modal set (X big ways,
  Y small ways, the states of :func:`repro.bimodal.sets.allowed_states`)
  with a per-ghost region-utilization predictor deciding miss-fill
  size, LRU within each way class. It *approximates* the timing
  model's random-not-recent replacement with LRU (the accuracy bound
  is measured and documented in ``docs/dse.md``).

Determinism: ghost state is a pure function of the address stream —
no wall clock, no ambient entropy (the ``determinism`` simlint rule
covers this package; sampling randomness lives in
:mod:`repro.mrc.engine` and derives from the request seed).
"""

from __future__ import annotations

from repro.bimodal.sets import allowed_states
from repro.common.addressing import is_power_of_two, log2_int

__all__ = [
    "AdaptiveGhost",
    "GhostBiModal",
    "GhostCache",
    "best_xy_state",
]


class GhostCache:
    """Tag-only set-associative LRU cache.

    Per-set state is one insertion-ordered dict mapping tag -> None:
    dict order *is* recency order (hits re-insert their tag), so a hit
    probe, an LRU eviction and a fill are all O(1). ``consume`` is the
    batch entry point the engine uses — a tight local loop over a
    shared address list, so an N-ghost sweep costs N dict probes per
    record and nothing else.

    Non-power-of-two associativities (Loh-Hill's 29 ways) round the set
    count *down* to a power of two, slightly over-provisioning each set;
    ``approximate`` records that the geometry was adjusted.
    """

    __slots__ = (
        "capacity",
        "associativity",
        "block_size",
        "num_sets",
        "approximate",
        "hits",
        "accesses",
        "_offset_bits",
        "_index_mask",
        "_index_bits",
        "_sets",
    )

    def __init__(
        self, capacity: int, associativity: int, block_size: int = 64
    ) -> None:
        if not is_power_of_two(capacity) or not is_power_of_two(block_size):
            raise ValueError("capacity and block_size must be powers of two")
        if associativity < 1:
            raise ValueError("associativity must be >= 1")
        num_sets = capacity // (block_size * associativity)
        if num_sets < 1:
            raise ValueError(
                f"capacity {capacity} too small for {associativity} ways "
                f"of {block_size} B blocks"
            )
        self.approximate = not is_power_of_two(num_sets)
        if self.approximate:
            num_sets = 1 << (num_sets.bit_length() - 1)
        self.capacity = capacity
        self.associativity = associativity
        self.block_size = block_size
        self.num_sets = num_sets
        self._offset_bits = log2_int(block_size)
        self._index_bits = log2_int(num_sets)
        self._index_mask = num_sets - 1
        self._sets: list[dict[int, None]] = [{} for _ in range(num_sets)]
        self.hits = 0
        self.accesses = 0

    def access(self, address: int) -> bool:
        """Probe/allocate one address; True on hit."""
        block = address >> self._offset_bits
        ways = self._sets[block & self._index_mask]
        tag = block >> self._index_bits
        self.accesses += 1
        if tag in ways:
            del ways[tag]
            ways[tag] = None
            self.hits += 1
            return True
        if len(ways) >= self.associativity:
            del ways[next(iter(ways))]
        ways[tag] = None
        return False

    def consume(self, addresses, warmup: int = 0) -> None:
        """Drive a whole address batch (the engine's hot loop).

        ``warmup`` > 0 resets the hit/access counters immediately
        before the ``warmup``-th record is issued (contents and recency
        are kept), mirroring the timing drive's warm-up semantics.
        """
        offset_bits = self._offset_bits
        index_mask = self._index_mask
        index_bits = self._index_bits
        sets = self._sets
        assoc = self.associativity
        hits = 0
        issued = 0
        for address in addresses:
            issued += 1
            if issued == warmup:
                hits = 0
                self.hits = 0
                self.accesses = -issued + 1  # counters restart at this record
            block = address >> offset_bits
            ways = sets[block & index_mask]
            tag = block >> index_bits
            if tag in ways:
                del ways[tag]
                ways[tag] = None
                hits += 1
            elif len(ways) >= assoc:
                del ways[next(iter(ways))]
                ways[tag] = None
            else:
                ways[tag] = None
        self.hits += hits
        self.accesses += issued

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        # (accesses - hits)/accesses, matching RateStat.miss_rate's
        # misses/total arithmetic bit-for-bit (same division).
        if not self.accesses:
            return 0.0
        return (self.accesses - self.hits) / self.accesses


#: Region-utilization predictor geometry shared by the bi-modal ghosts:
#: a bounded recency-ordered table of big-block regions -> 64 B used
#: masks. Small and fixed — the SRAM tracker it stands in for is too.
_TRACKER_ENTRIES = 4096


class GhostBiModal:
    """Fixed-(X, Y) bi-modal set model: X big ways + Y small (64 B) ways.

    A hit is residency in either way class. A miss consults the ghost's
    region-utilization predictor: a region whose observed 64 B-use
    count has reached ``utilization_threshold`` fills a big block,
    otherwise a single small block (the paper's fill policy, Section
    III). With ``Y == 0`` every fill is big and the model degenerates
    to :class:`GhostCache` at the big-block grain (pinned by tests).

    Replacement within each class is LRU — an approximation of the
    timing model's random-not-recent choice; see the module docstring.
    """

    __slots__ = (
        "capacity",
        "set_size",
        "big_block_size",
        "big_ways",
        "small_ways",
        "utilization_threshold",
        "hits",
        "accesses",
        "_big_offset_bits",
        "_small_to_big_bits",
        "_sub_mask",
        "_index_mask",
        "_index_bits",
        "_big",
        "_small",
        "_tracker",
    )

    def __init__(
        self,
        capacity: int,
        *,
        set_size: int = 2048,
        big_block_size: int = 512,
        big_ways: int,
        small_ways: int,
        utilization_threshold: int = 5,
    ) -> None:
        if not is_power_of_two(capacity) or not is_power_of_two(set_size):
            raise ValueError("capacity and set_size must be powers of two")
        if (big_ways, small_ways) not in allowed_states(set_size, big_block_size):
            raise ValueError(
                f"({big_ways}, {small_ways}) is not an allowed state for "
                f"{set_size} B sets of {big_block_size} B blocks"
            )
        num_sets = capacity // set_size
        if num_sets < 1 or not is_power_of_two(num_sets):
            raise ValueError("capacity/set_size must be a power-of-two set count")
        self.capacity = capacity
        self.set_size = set_size
        self.big_block_size = big_block_size
        self.big_ways = big_ways
        self.small_ways = small_ways
        self.utilization_threshold = utilization_threshold
        self._big_offset_bits = log2_int(big_block_size)
        self._small_to_big_bits = log2_int(big_block_size) - 6
        self._sub_mask = (big_block_size // 64) - 1
        self._index_bits = log2_int(num_sets)
        self._index_mask = num_sets - 1
        self._big: list[dict[int, None]] = [{} for _ in range(num_sets)]
        self._small: list[dict[int, None]] = [{} for _ in range(num_sets)]
        self._tracker: dict[int, int] = {}
        self.hits = 0
        self.accesses = 0

    def consume(self, addresses, warmup: int = 0) -> None:
        """Drive a whole address batch through the bi-modal set model."""
        to_big = self._small_to_big_bits
        sub_mask = self._sub_mask
        index_mask = self._index_mask
        index_bits = self._index_bits
        big_sets = self._big
        small_sets = self._small
        tracker = self._tracker
        x = self.big_ways
        y = self.small_ways
        threshold = self.utilization_threshold
        hits = 0
        issued = 0
        for address in addresses:
            issued += 1
            if issued == warmup:
                hits = 0
                self.hits = 0
                self.accesses = -issued + 1
            small_id = address >> 6
            big_id = small_id >> to_big
            index = big_id & index_mask
            big_tag = big_id >> index_bits
            # Train the region predictor on every access (bounded LRU).
            mask = tracker.pop(big_id, 0) | (1 << (small_id & sub_mask))
            tracker[big_id] = mask
            if len(tracker) > _TRACKER_ENTRIES:
                del tracker[next(iter(tracker))]
            big = big_sets[index]
            if big_tag in big:
                del big[big_tag]
                big[big_tag] = None
                hits += 1
                continue
            small = small_sets[index]
            if y and small_id in small:
                del small[small_id]
                small[small_id] = None
                hits += 1
                continue
            # Miss: fill big for predicted-dense regions, small otherwise.
            if not y or bin(mask).count("1") >= threshold:
                if len(big) >= x:
                    del big[next(iter(big))]
                big[big_tag] = None
            else:
                if len(small) >= y:
                    del small[next(iter(small))]
                small[small_id] = None
        self.hits += hits
        self.accesses += issued

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return (self.accesses - self.hits) / self.accesses


class AdaptiveGhost:
    """Bi-modal *adaptive* estimate: the best fixed-(X, Y) ghost.

    The timing model re-partitions each set toward the best-performing
    (X, Y) state; its steady-state hit rate is therefore bracketed by
    the best fixed state. This composite drives one ghost per allowed
    state and reports the maximum — which doubles as the (X, Y)
    occupancy estimate of the sweep (``best_state``).
    """

    __slots__ = ("ghosts",)

    def __init__(
        self,
        capacity: int,
        *,
        set_size: int = 2048,
        big_block_size: int = 512,
        utilization_threshold: int = 5,
    ) -> None:
        self.ghosts: dict[tuple[int, int], GhostBiModal] = {
            (x, y): GhostBiModal(
                capacity,
                set_size=set_size,
                big_block_size=big_block_size,
                big_ways=x,
                small_ways=y,
                utilization_threshold=utilization_threshold,
            )
            for x, y in allowed_states(set_size, big_block_size)
        }

    def consume(self, addresses, warmup: int = 0) -> None:
        for ghost in self.ghosts.values():
            ghost.consume(addresses, warmup)

    @property
    def best(self) -> GhostBiModal:
        return max(self.ghosts.values(), key=lambda g: g.hit_rate)

    @property
    def best_state(self) -> tuple[int, int]:
        return best_xy_state(self.ghosts)

    @property
    def hits(self) -> int:
        return self.best.hits

    @property
    def accesses(self) -> int:
        return self.best.accesses

    @property
    def hit_rate(self) -> float:
        return self.best.hit_rate

    @property
    def miss_rate(self) -> float:
        return self.best.miss_rate


def best_xy_state(ghosts: dict[tuple[int, int], GhostBiModal]) -> tuple[int, int]:
    """The (X, Y) state with the highest estimated hit rate (ties: first)."""
    best = None
    best_rate = -1.0
    for state, ghost in ghosts.items():
        if ghost.hit_rate > best_rate:
            best = state
            best_rate = ghost.hit_rate
    if best is None:
        raise ValueError("no ghost states to choose from")
    return best
