"""DRAM substrate: bank/channel timing, devices, memory controller."""

from repro.dram.bank import Bank, BankAccess, RowOutcome
from repro.dram.channel import Channel, ChannelAccess, build_channels
from repro.dram.controller import MemoryController
from repro.dram.device import DRAMDevice, DRAMLocation
from repro.dram.reference import ReferenceAccess, ReferenceBank

__all__ = [
    "Bank",
    "BankAccess",
    "RowOutcome",
    "Channel",
    "ChannelAccess",
    "build_channels",
    "MemoryController",
    "DRAMDevice",
    "DRAMLocation",
    "ReferenceAccess",
    "ReferenceBank",
]
