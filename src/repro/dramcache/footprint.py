"""Footprint Cache (Jevdjic, Volos & Falsafi, ISCA'13).

Organizes the DRAM cache in large (2 KB) pages with **tags in SRAM**, but
fetches only the 64-byte blocks of a page that the *footprint predictor*
expects to be used, and bypasses pages predicted to be touched exactly
once. On a page hit to a block that was not fetched (a *footprint miss*)
the block is fetched on demand.

This paper's two critiques, both of which this model reproduces:

* the large SRAM tag store costs several cycles on every access
  (serialized tag-then-data, Figure 3), and
* a page *commits* a full 2 KB frame even when only a few blocks are
  predicted — utilization levels between 2 and 7 sub-blocks cause
  internal fragmentation and extra misses from the virtually smaller
  cache (Section V-C1).

Substitution note: the original predictor is indexed by (PC, page
offset); our traces carry no PCs, so the footprint history table is
indexed by (super-region hash, first-touch offset) where a super-region
is a 1 MB span of pages. Pages of the same data structure (contiguous
spans in the synthetic workloads, as in real arrays/heaps) share
footprint history exactly the way pages touched by the same load
instruction do under PC indexing — in particular, *cold* pages of a
structure inherit the footprints observed on its earlier pages.
"""

from __future__ import annotations

from repro.common.config import DRAMCacheGeometry
from repro.common.stats import RateStat
from repro.common.tables import sram_latency_cycles
from repro.dram.controller import MemoryController
from repro.dramcache.base import DRAMCacheBase
from repro.sram.replacement import LRU

__all__ = ["FootprintPredictor", "FootprintCache"]

_PAGE_SIZE = 2048
_BLOCKS_PER_PAGE = _PAGE_SIZE // 64


class FootprintPredictor:
    """Footprint history table: page-class -> predicted block bit-vector."""

    __slots__ = ("_table", "_mask", "lookups", "history_hits")

    def __init__(self, entries: int = 16384) -> None:
        self._table: dict[int, int] = {}
        self._mask = entries - 1
        self.lookups = 0
        self.history_hits = 0

    def _index(self, page_number: int) -> int:
        super_region = page_number >> 9  # 512 pages = 1 MB span
        return ((super_region * 2_654_435_761) >> 15) & self._mask

    @staticmethod
    def _rotate(footprint: int, shift: int) -> int:
        """Circular left rotation of the 32-bit footprint vector."""
        shift %= _BLOCKS_PER_PAGE
        mask = (1 << _BLOCKS_PER_PAGE) - 1
        return (
            (footprint << shift) | (footprint >> (_BLOCKS_PER_PAGE - shift))
        ) & mask

    def predict(self, page_number: int, first_offset: int) -> int:
        """Predicted footprint bit-vector; full page when no history.

        Footprints are stored normalized to their first-touch offset and
        rotated back on prediction, as in the original design — the shape
        of a structure's footprint generalizes across pages even when the
        entry offset differs.
        """
        self.lookups += 1
        footprint = self._table.get(self._index(page_number))
        if footprint is None:
            return (1 << _BLOCKS_PER_PAGE) - 1  # cold default: whole page
        self.history_hits += 1
        return self._rotate(footprint, first_offset) | (1 << first_offset)

    def record(self, page_number: int, first_offset: int, footprint: int) -> None:
        normalized = self._rotate(footprint, -first_offset)
        self._table[self._index(page_number)] = normalized


class _Page:
    __slots__ = ("page", "present", "used", "dirty", "first_offset", "last_use")

    def __init__(self, page: int, first_offset: int) -> None:
        self.page = page
        self.present = 0  # bit-vector of fetched 64B blocks
        self.used = 0  # bit-vector of CPU-referenced blocks
        self.dirty = 0
        self.first_offset = first_offset
        self.last_use = 0


class FootprintCache(DRAMCacheBase):
    """Page-granular tags-in-SRAM cache with footprint prediction."""

    name = "footprint"

    def __init__(
        self,
        geometry: DRAMCacheGeometry,
        offchip: MemoryController,
        *,
        associativity: int = 8,
        enable_bypass: bool = True,
    ) -> None:
        super().__init__(geometry, offchip)
        self.associativity = associativity
        self.num_sets = geometry.capacity // (_PAGE_SIZE * associativity)
        if self.num_sets < 1:
            raise ValueError("cache too small for page-granular organization")
        self._sets: dict[int, list[_Page]] = {}
        self._lru = LRU()
        self.predictor = FootprintPredictor()
        self.enable_bypass = enable_bypass
        self._channels = geometry.geometry.channels
        self._banks = geometry.geometry.banks_per_channel
        self._tick = 0
        # SRAM tag store: ~12 B/page entry (tag + footprint/valid/dirty
        # vectors). The paper quotes 6-9 cycles for the 1-4 MB stores a
        # full-size Footprint Cache needs; that cost is the scheme's
        # intrinsic disadvantage (Section III-C2), so capacity-scaled
        # runs keep the full-scale floor rather than letting a shrunken
        # tag store become unrealistically fast.
        pages = geometry.capacity // _PAGE_SIZE
        self.tag_latency = max(
            sram_latency_cycles(1 << 20), sram_latency_cycles(pages * 12)
        )
        self.footprint_misses = RateStat()  # hits in page, missing block
        self.bypasses = 0

    # ------------------------------------------------------------------
    def _split(self, address: int) -> tuple[int, int, int]:
        page = address // _PAGE_SIZE
        return page % self.num_sets, page, (address % _PAGE_SIZE) // 64

    def _location(self, set_index: int, way: int) -> tuple[int, int, int]:
        frame = set_index * self.associativity + way
        channel = frame % self._channels
        bank = (frame // self._channels) % self._banks
        row = frame // (self._channels * self._banks)
        return channel, bank, row

    def _fetch_blocks(self, page: int, footprint: int, now: int) -> int:
        """Fetch the footprint's blocks from memory; returns data-end."""
        bursts = footprint.bit_count()
        return self._fetch_offchip(page * _PAGE_SIZE, now, bursts=bursts)

    def _evict(self, set_index: int, way: int, frame: _Page, now: int) -> None:
        """Writeback dirty blocks, train the predictor, account waste."""
        fetched = frame.present.bit_count()
        used = (frame.present & frame.used).bit_count()
        self._account_waste(fetched - used)
        dirty = frame.dirty.bit_count()
        if dirty:
            self._writeback_offchip(frame.page * _PAGE_SIZE, now, bursts=dirty)
        self.predictor.record(frame.page, frame.first_offset, frame.used)

    def resident(self, address: int) -> bool:
        """True when the page is resident *and* the block was fetched."""
        set_index, page, offset = self._split(address)
        for frame in self._sets.get(set_index, []):
            if frame.page == page:
                return bool(frame.present & (1 << offset))
        return False

    # ------------------------------------------------------------------
    def _access_fast(self, address: int, now: int, is_write: bool) -> int:
        self._tick += 1
        set_index, page, offset = self._split(address)
        ways = self._sets.setdefault(set_index, [])
        tags_known = now + self.tag_latency

        frame = None
        way_idx = -1
        for idx, candidate in enumerate(ways):
            if candidate.page == page:
                frame, way_idx = candidate, idx
                break

        bit = 1 << offset
        if frame is not None:
            frame.last_use = self._tick
            frame.used |= bit
            if is_write:
                frame.dirty |= bit
            if frame.present & bit:
                self.footprint_misses.misses += 1
                self._hit = True
                if is_write:
                    return tags_known
                channel, bank, row = self._location(set_index, way_idx)
                return self.dram.access_direct_fast(channel, bank, row, tags_known, 1)
            # Footprint miss: page resident, block not fetched.
            self.footprint_misses.hits += 1
            self._hit = False
            fetch_end = self._fetch_offchip(address, tags_known, bursts=1)
            frame.present |= bit
            channel, bank, row = self._location(set_index, way_idx)
            self._post_call(
                fetch_end,
                self.dram.access_direct_fast,
                channel, bank, row, fetch_end, 1,
            )
            return fetch_end

        # Page miss: predict footprint, optionally bypass singletons.
        self._hit = False
        footprint = self.predictor.predict(page, offset) | bit
        if self.enable_bypass and footprint.bit_count() == 1:
            self.bypasses += 1
            return self._fetch_offchip(address, tags_known, bursts=1)

        fetch_end = self._fetch_blocks(page, footprint, tags_known)
        new_frame = _Page(page, offset)
        new_frame.present = footprint
        new_frame.used = bit
        new_frame.dirty = bit if is_write else 0
        new_frame.last_use = self._tick

        if len(ways) < self.associativity:
            ways.append(new_frame)
            way_idx = len(ways) - 1
        else:
            last_use = []
            for w in ways:
                last_use.append(w.last_use)
            way_idx = self._lru.victim(list(range(len(ways))), last_use=last_use)
            self._evict(set_index, way_idx, ways[way_idx], fetch_end)
            ways[way_idx] = new_frame

        channel, bank, row = self._location(set_index, way_idx)
        fill_bursts = max(1, footprint.bit_count())
        self._post_call(
            fetch_end,
            self.dram.access_direct_fast,
            channel, bank, row, fetch_end, fill_bursts,
        )
        return fetch_end

    def reset_stats(self) -> None:
        super().reset_stats()
        self.footprint_misses.reset()
        self.bypasses = 0

    def stats_snapshot(self) -> dict[str, float]:
        snap = super().stats_snapshot()
        snap["footprint_miss_count"] = self.footprint_misses.hits
        snap["bypasses"] = self.bypasses
        snap["tag_latency"] = self.tag_latency
        return snap
