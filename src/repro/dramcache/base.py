"""Common contract for all DRAM cache organizations.

Every organization (AlloyCache, Loh-Hill, ATCache, Footprint Cache and the
Bi-Modal cache) plugs between the LLSC and off-chip memory and exposes one
operation: :meth:`DRAMCacheBase.access`. The returned completion time *is*
the LLSC miss penalty the paper's Figure 8(c) compares; hit/miss, off-chip
traffic and wasted-fetch accounting use one shared stats vocabulary so the
harness can tabulate all schemes uniformly.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from dataclasses import dataclass
from collections.abc import Callable

from repro.common.config import DRAMCacheGeometry
from repro.common.stats import RateStat, RunningMean
from repro.dram.controller import MemoryController
from repro.dram.device import DRAMDevice

__all__ = ["DRAMCacheAccess", "DRAMCacheBase"]


@dataclass(slots=True)
class DRAMCacheAccess:
    """Outcome of one LLSC-miss access to the DRAM cache."""

    hit: bool
    start: int
    complete: int

    @property
    def latency(self) -> int:
        return self.complete - self.start


class DRAMCacheBase(ABC):
    """Shared state and accounting for DRAM cache organizations.

    Subclasses implement :meth:`_access` and use the provided
    ``self.dram`` (stacked device) and ``self.offchip`` (memory
    controller) plus the accounting helpers.
    """

    name = "base"

    def __init__(
        self,
        geometry: DRAMCacheGeometry,
        offchip: MemoryController,
    ) -> None:
        self.geometry = geometry
        self.offchip = offchip
        self.dram = DRAMDevice(
            geometry.geometry, geometry.timing, name=f"{self.name}-stack"
        )
        self.hit_stat = RateStat()
        self.read_latency = RunningMean()
        self.hit_latency = RunningMean()
        self.miss_latency = RunningMean()
        # Off-chip traffic accounting (bytes).
        self.offchip_fetched_bytes = 0
        self.offchip_writeback_bytes = 0
        self.offchip_wasted_bytes = 0  # fetched but never referenced
        self.bypassed_accesses = 0
        # Deferred (posted) operations: fills, writebacks and metadata
        # updates complete in the future relative to the access that
        # produced them. They are queued as (when, seq, func, args)
        # tuples — no closure allocation on the hot path — and executed
        # once simulation time reaches their stamp, so a fill scheduled
        # for t+300 can never retroactively block a request that
        # arrives at t+10.
        self._pending: list[tuple[int, int, Callable[..., object], tuple]] = []
        self._pending_seq = 0
        # Fast-path scratch: hit/miss of the access in flight, set by
        # the subclass inside _access_fast before it returns.
        self._hit = False
        # Hoisted off-chip helpers for _fetch_offchip's posted tails.
        self._offchip_spread = offchip.device.timings.burst_cycles
        self._offchip_read_tail = offchip.device.read_fast

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def access(
        self, address: int, now: int, *, is_write: bool = False
    ) -> DRAMCacheAccess:
        """Serve one LLSC miss (read) or LLSC writeback (write).

        Rich wrapper over :meth:`access_fast`: every scheme starts its
        access at the request time, so the record is reconstructed
        exactly from the fast path's plain-int result.
        """
        complete = self.access_fast(address, now, is_write)
        return DRAMCacheAccess(self._hit, now, complete)

    def access_fast(self, address: int, now: int, is_write: bool = False) -> int:
        """Flat access path: returns the completion time as a plain int.

        Read latency statistics feed the average-LLSC-miss-penalty
        comparison; writes are posted (they occupy resources but their
        completion does not stall the core). The hit/miss of the access
        is left in ``self._hit`` by the scheme's ``_access_fast``.
        """
        pending = self._pending
        if pending and pending[0][0] <= now:
            self._drain_posted(now)
        complete = self._access_fast(address, now, is_write)
        hit = self._hit
        hit_stat = self.hit_stat
        if hit:
            hit_stat.hits += 1
        else:
            hit_stat.misses += 1
        if not is_write:
            latency = complete - now
            mean = self.read_latency
            mean.count += 1
            mean.total += latency
            if latency < mean.minimum:
                mean.minimum = latency
            if latency > mean.maximum:
                mean.maximum = latency
            mean = self.hit_latency if hit else self.miss_latency
            mean.count += 1
            mean.total += latency
            if latency < mean.minimum:
                mean.minimum = latency
            if latency > mean.maximum:
                mean.maximum = latency
        return complete

    @abstractmethod
    def _access_fast(self, address: int, now: int, is_write: bool) -> int:
        """Organization-specific access path (flat).

        Returns the completion time and must set ``self._hit`` to the
        access's hit/miss outcome before returning. Every access starts
        at the request time ``now``; :meth:`access` relies on that to
        rebuild the rich :class:`DRAMCacheAccess` record.
        """

    # ------------------------------------------------------------------
    # shared helpers for subclasses
    # ------------------------------------------------------------------
    def _post_call(self, when: int, func: Callable[..., object], *args) -> None:
        """Queue ``func(*args)`` to execute at simulation time ``when``.

        Allocation-light posting: the heap entry is a plain tuple, so the
        hot path never builds a closure. ``seq`` breaks ties FIFO and
        guarantees the heap never compares the callables.
        """
        heapq.heappush(self._pending, (when, self._pending_seq, func, args))
        self._pending_seq += 1

    def _post(self, when: int, action: Callable[[], None]) -> None:
        """Queue a posted operation to execute at simulation time ``when``."""
        heapq.heappush(self._pending, (when, self._pending_seq, action, ()))
        self._pending_seq += 1

    def _drain_posted(self, now: int) -> None:
        """Run every posted operation whose time has arrived."""
        pending = self._pending
        pop = heapq.heappop
        while pending and pending[0][0] <= now:
            entry = pop(pending)
            entry[2](*entry[3])

    def flush_posted(self) -> None:
        """Run all remaining posted operations (end of a drive)."""
        pending = self._pending
        while pending:
            entry = heapq.heappop(pending)
            entry[2](*entry[3])

    def _fetch_offchip(self, address: int, now: int, *, bursts: int) -> int:
        """Fetch ``bursts`` * 64 B from main memory.

        Critical-word-first with interleavable tail: the demand request
        moves only the critical 64 B beat (its completion unblocks the
        core); the remaining bursts of a multi-block fetch are posted as
        individual transfers spread behind it, so other requesters'
        demands can slot between them the way an FR-FCFS scheduler
        interleaves a long cacheline fill with competing traffic. Total
        bytes moved and bus occupancy are unchanged.
        """
        end = self.offchip.read_fast(address, now, 1)
        self.offchip_fetched_bytes += bursts * 64
        if bursts > 1:
            # Inline of _post_call: a big-block fill posts bursts-1 tail
            # transfers, making this the hottest posting site.
            spread = self._offchip_spread
            read_tail = self._offchip_read_tail
            pending = self._pending
            seq = self._pending_seq
            push = heapq.heappush
            for i in range(1, bursts):
                when = end + i * spread
                push(pending, (when, seq, read_tail, (address + 64 * i, when, 1)))
                seq += 1
            self._pending_seq = seq
        return end

    def _writeback_offchip(self, address: int, now: int, *, bursts: int) -> None:
        """Posted dirty writeback to main memory (deferred to ``now``)."""
        self.offchip_writeback_bytes += bursts * 64
        self._post_call(now, self.offchip.write_fast, address, now, bursts)

    def _account_waste(self, unused_sub_blocks: int) -> None:
        """Record fetched-but-never-referenced sub-blocks at eviction."""
        self.offchip_wasted_bytes += unused_sub_blocks * 64

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        return self.hit_stat.rate

    @property
    def miss_rate(self) -> float:
        return self.hit_stat.miss_rate

    @property
    def avg_read_latency(self) -> float:
        """Average LLSC miss penalty in CPU cycles (paper Fig. 8c)."""
        return self.read_latency.mean

    def offchip_traffic_bytes(self) -> int:
        return self.offchip_fetched_bytes + self.offchip_writeback_bytes

    def wasted_fraction(self) -> float:
        """Fraction of fetched bytes never referenced before eviction."""
        if not self.offchip_fetched_bytes:
            return 0.0
        return self.offchip_wasted_bytes / self.offchip_fetched_bytes

    def reset_stats(self) -> None:
        """Clear measurement state, keeping all cache contents/training.

        Used at the end of a warmup phase, mirroring the paper's
        fast-forward + warm-up protocol: statistics cover only the
        measured region of the run.
        """
        self.hit_stat.reset()
        self.read_latency.reset()
        self.hit_latency.reset()
        self.miss_latency.reset()
        self.offchip_fetched_bytes = 0
        self.offchip_writeback_bytes = 0
        self.offchip_wasted_bytes = 0
        self.bypassed_accesses = 0
        self.dram.reset_stats()
        self.offchip.reset_stats()

    def stats_snapshot(self) -> dict[str, float]:
        return {
            "accesses": self.hit_stat.total,
            "hit_rate": self.hit_rate,
            "avg_read_latency": self.avg_read_latency,
            "avg_hit_latency": self.hit_latency.mean,
            "avg_miss_latency": self.miss_latency.mean,
            "offchip_fetched_bytes": self.offchip_fetched_bytes,
            "offchip_writeback_bytes": self.offchip_writeback_bytes,
            "offchip_wasted_bytes": self.offchip_wasted_bytes,
            "wasted_fraction": self.wasted_fraction(),
            "stack_rbh": self.dram.row_buffer_hit_rate(),
        }

    def report_metrics(self, registry, *, prefix: str = "cache") -> None:
        """Copy finished counters into an observability registry.

        Pull-based tap: called at drive/span boundaries, never from the
        access hot path, so observability cannot perturb simulation
        results. Subclass snapshot extras flow through automatically.
        """
        registry.update(self.stats_snapshot(), prefix=prefix)
        registry.gauge(f"{prefix}.scheme", self.name)
        registry.add(f"{prefix}.hits_total", self.hit_stat.hits)
        registry.add(f"{prefix}.misses_total", self.hit_stat.misses)
        self.offchip.report_metrics(registry, prefix=f"{prefix}.offchip")
