"""Bi-modal cache sets: (X, Y) states, way layout and Table II replacement.

A set of size 2 KB (one DRAM page) holds ``X`` big (512 B) and ``Y`` small
(64 B) blocks with the allowed states ``{(4,0), (3,8), (2,16)}``; a 4 KB
set allows ``{(8,0), (7,8), (6,16), (5,24), (4,32)}`` (Section III-B1).
Converting one big way frees exactly ``big/small = 8`` small ways, and
state changes always involve the **highest-numbered** ways so that the
data layout (big ways packed left-to-right, small ways right-to-left in
the DRAM page) stays valid without data movement.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "SMALLS_PER_BIG",
    "allowed_states",
    "BigBlock",
    "SmallBlock",
    "EvictedBlock",
    "BiModalSet",
]

SMALLS_PER_BIG = 8  # 512 B / 64 B


def allowed_states(set_size: int, big_block_size: int = 512) -> tuple[tuple[int, int], ...]:
    """Legal (X, Y) states for a set (paper: 2 KB and 4 KB sets).

    The maximum number of small ways is capped at 4 * SMALLS_PER_BIG
    worth of conversions... concretely the paper allows converting big
    ways down to a floor of X = max_big // 2 for 2 KB sets ((2,16)) and
    X = 4 for 4 KB sets ((4,32)) — i.e. at most half the big ways convert.
    """
    max_big = set_size // big_block_size
    if max_big < 2:
        raise ValueError("set must hold at least two big blocks")
    smalls_per_big = big_block_size // 64
    floor = max_big - (max_big // 2)
    states = []
    for x in range(max_big, floor - 1, -1):
        states.append((x, (max_big - x) * smalls_per_big))
    return tuple(states)


@dataclass(slots=True)
class BigBlock:
    """A resident 512 B block: tag plus per-sub-block use/dirty vectors."""

    tag: int
    used_mask: int = 0
    dirty_mask: int = 0
    fetched_mask: int = (1 << SMALLS_PER_BIG) - 1

    def touch(self, sub_block: int, *, is_write: bool) -> None:
        bit = 1 << sub_block
        self.used_mask |= bit
        if is_write:
            self.dirty_mask |= bit

    @property
    def utilization(self) -> int:
        return self.used_mask.bit_count()

    @property
    def dirty_sub_blocks(self) -> int:
        return self.dirty_mask.bit_count()


@dataclass(slots=True)
class SmallBlock:
    """A resident 64 B block: big-block tag + the 3 high offset bits."""

    tag: int
    sub_offset: int
    dirty: bool = False


@dataclass(frozen=True, slots=True)
class EvictedBlock:
    """Eviction record handed back to the cache for writebacks/locator."""

    big: bool
    tag: int
    way: int
    sub_offset: int = 0  # small blocks only
    dirty_bursts: int = 0  # 64 B writebacks owed
    unused_sub_blocks: int = 0  # fetched-but-unreferenced (waste)
    utilization: int = 0  # used sub-block count (tracker food)


class BiModalSet:
    """One bi-modal set: X big ways + Y small ways.

    Way numbering follows the paper's layout: big ways 0..X-1 from the
    left of the DRAM page, small ways 0..Y-1 from the right. The MRU pair
    (the information the way locator would hold for this set) is kept for
    the random-not-recent replacement policy.
    """

    __slots__ = (
        "_states",
        "smalls_per_big",
        "_state_index",
        "big_ways",
        "small_ways",
        "_mru",
    )

    def __init__(
        self,
        states: tuple[tuple[int, int], ...],
        *,
        smalls_per_big: int = SMALLS_PER_BIG,
    ) -> None:
        self._states = states
        self.smalls_per_big = smalls_per_big
        self._state_index = 0  # start at (max X, 0): all blocks big
        x, y = states[0]
        self.big_ways: list[BigBlock | None] = [None] * x
        self.small_ways: list[SmallBlock | None] = [None] * y
        self._mru: list[tuple[bool, int]] = []  # [(is_big, way)], newest first

    # ------------------------------------------------------------------
    @property
    def state(self) -> tuple[int, int]:
        return self._states[self._state_index]

    @property
    def x(self) -> int:
        return self.state[0]

    @property
    def y(self) -> int:
        return self.state[1]

    def state_rank(self) -> int:
        """0 = all-big; increasing rank = more small ways."""
        return self._state_index

    # ------------------------------------------------------------------
    def find_big(self, tag: int) -> int | None:
        for way, block in enumerate(self.big_ways):
            if block is not None and block.tag == tag:
                return way
        return None

    def find_small(self, tag: int, sub_offset: int) -> int | None:
        for way, block in enumerate(self.small_ways):
            if (
                block is not None
                and block.tag == tag
                and block.sub_offset == sub_offset
            ):
                return way
        return None

    def lookup(self, tag: int, sub_offset: int) -> tuple[bool, int] | None:
        """(is_big, way) of the block covering (tag, sub_offset), if any."""
        way = self.find_big(tag)
        if way is not None:
            return True, way
        way = self.find_small(tag, sub_offset)
        if way is not None:
            return False, way
        return None

    def touch_mru(self, is_big: bool, way: int) -> None:
        """Promote a way to MRU (top-2 tracked, like the way locator)."""
        key = (is_big, way)
        if key in self._mru:
            self._mru.remove(key)
        self._mru.insert(0, key)
        del self._mru[2:]

    def mru_ways(self) -> frozenset[tuple[bool, int]]:
        return frozenset(self._mru)

    def _drop_mru(self, is_big: bool, way: int) -> None:
        key = (is_big, way)
        if key in self._mru:
            self._mru.remove(key)

    # ------------------------------------------------------------------
    # eviction primitives (all produce EvictedBlock records)
    # ------------------------------------------------------------------
    def _evict_big_way(self, way: int) -> EvictedBlock | None:
        block = self.big_ways[way]
        self.big_ways[way] = None
        self._drop_mru(True, way)
        if block is None:
            return None
        return EvictedBlock(
            big=True,
            tag=block.tag,
            way=way,
            dirty_bursts=block.dirty_sub_blocks,
            unused_sub_blocks=self.smalls_per_big - block.utilization,
            utilization=block.utilization,
        )

    def _evict_small_way(self, way: int) -> EvictedBlock | None:
        block = self.small_ways[way]
        self.small_ways[way] = None
        self._drop_mru(False, way)
        if block is None:
            return None
        return EvictedBlock(
            big=False,
            tag=block.tag,
            way=way,
            sub_offset=block.sub_offset,
            dirty_bursts=1 if block.dirty else 0,
            unused_sub_blocks=0,
            utilization=1,
        )

    def grow_small(self) -> list[EvictedBlock]:
        """(X, Y) -> (X-1, Y+8): convert the highest big way to 8 smalls."""
        if self._state_index + 1 >= len(self._states):
            raise RuntimeError("already at the smallest-X state")
        victim_way = self.x - 1
        evicted = self._evict_big_way(victim_way)
        self._state_index += 1
        self.big_ways.pop()
        self.small_ways.extend([None] * self.smalls_per_big)
        return [evicted] if evicted else []

    def grow_big(self) -> list[EvictedBlock]:
        """(X, Y) -> (X+1, Y-8): evict the 8 highest small ways."""
        if self._state_index == 0:
            raise RuntimeError("already at the all-big state")
        evictions = []
        for _ in range(self.smalls_per_big):
            way = len(self.small_ways) - 1
            record = self._evict_small_way(way)
            if record:
                evictions.append(record)
            self.small_ways.pop()
        self._state_index -= 1
        self.big_ways.append(None)
        return evictions

    # ------------------------------------------------------------------
    # allocation (Table II)
    # ------------------------------------------------------------------
    def allocate_big(
        self, tag: int, victim_chooser
    ) -> tuple[int, list[EvictedBlock]]:
        """Install a big block; returns (way, evictions).

        Idempotent: allocating an already-resident tag returns its way.
        """
        existing = self.find_big(tag)
        if existing is not None:
            return existing, []
        for way, block in enumerate(self.big_ways):
            if block is None:
                self.big_ways[way] = BigBlock(tag)
                return way, []
        candidates = list(range(len(self.big_ways)))
        protected = {w for big, w in self.mru_ways() if big}
        way = victim_chooser(candidates, protected)
        record = self._evict_big_way(way)
        self.big_ways[way] = BigBlock(tag)
        return way, [record] if record else []

    def allocate_small(
        self, tag: int, sub_offset: int, victim_chooser
    ) -> tuple[int, list[EvictedBlock]]:
        """Install a small block; returns (way, evictions).

        Idempotent: allocating an already-resident block returns its way.
        """
        existing = self.find_small(tag, sub_offset)
        if existing is not None:
            return existing, []
        for way, block in enumerate(self.small_ways):
            if block is None:
                self.small_ways[way] = SmallBlock(tag, sub_offset)
                return way, []
        candidates = list(range(len(self.small_ways)))
        protected = {w for big, w in self.mru_ways() if not big}
        way = victim_chooser(candidates, protected)
        record = self._evict_small_way(way)
        self.small_ways[way] = SmallBlock(tag, sub_offset)
        return way, [record] if record else []

    # ------------------------------------------------------------------
    def resident_bytes(self) -> int:
        big = sum(1 for b in self.big_ways if b is not None)
        small = sum(1 for b in self.small_ways if b is not None)
        return big * 512 + small * 64

    def used_bytes(self) -> int:
        """Bytes actually referenced (space-utilization metric)."""
        big = sum(b.utilization for b in self.big_ways if b is not None)
        small = sum(1 for b in self.small_ways if b is not None)
        return big * 64 + small * 64

    @property
    def associativity(self) -> int:
        return self.x + self.y
