"""Figure 2: distribution of 64 B sub-block utilization in 512 B blocks.

Paper: some workloads (Q2, Q4, Q5) have >90% fully-utilized blocks while
others (Q7, Q8, Q19, Q23) have <30% — the motivation for bi-modality.
"""

from repro.harness.experiments import fig2_block_utilization

DENSE = ["Q2", "Q4", "Q5"]
SPARSE = ["Q7", "Q8", "Q19", "Q23"]


def test_fig2_block_utilization(benchmark, report, quad_setup):
    rows = benchmark.pedantic(
        lambda: fig2_block_utilization(setup=quad_setup, mix_names=DENSE + SPARSE),
        rounds=1,
        iterations=1,
    )
    report(rows, title="Figure 2: block utilization distribution")
    by_mix = {r["mix"]: r for r in rows}
    for mix in DENSE:
        assert by_mix[mix]["full_frac"] > 0.55, mix
    for mix in SPARSE:
        assert by_mix[mix]["full_frac"] < 0.30, mix
    # the dense and sparse populations are clearly separated
    dense_min = min(by_mix[m]["full_frac"] for m in DENSE)
    sparse_max = max(by_mix[m]["full_frac"] for m in SPARSE)
    assert dense_min > 2 * sparse_max
