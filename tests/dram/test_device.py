"""Device tests: address interleaving and direct (cache-managed) access."""

import pytest
from hypothesis import given, strategies as st

from repro.common.config import DRAMGeometry, DRAMTimingConfig
from repro.dram.device import DRAMDevice


@pytest.fixture
def device():
    geo = DRAMGeometry(channels=2, banks_per_channel=8, page_size=2048)
    return DRAMDevice(geo, DRAMTimingConfig.ddr3_1600h())


class TestDecode:
    def test_consecutive_blocks_share_row(self, device):
        """Column bits sit below the channel bits, so a 512B span stays
        in one row (big-block fetches need a single activation)."""
        locs = [device.decode(0x10000 + 64 * i) for i in range(8)]
        assert len({(l.channel, l.bank, l.row) for l in locs}) == 1
        assert [l.column for l in locs] == list(range(locs[0].column, locs[0].column + 8))

    def test_rows_interleave_channels(self, device):
        page = 2048
        a = device.decode(0x0)
        b = device.decode(page)
        assert a.channel != b.channel

    def test_fields_in_range(self, device):
        loc = device.decode((1 << 33) + 12345)
        assert 0 <= loc.channel < 2
        assert 0 <= loc.bank < 8
        assert loc.row >= 0

    @given(address=st.integers(min_value=0, max_value=(1 << 34) - 1))
    def test_decode_total(self, address):
        geo = DRAMGeometry(channels=2, banks_per_channel=8, page_size=2048)
        device = DRAMDevice(geo, DRAMTimingConfig.ddr3_1600h())
        loc = device.decode(address)
        assert 0 <= loc.channel < geo.channels
        assert 0 <= loc.bank < geo.banks_per_channel
        assert 0 <= loc.column < geo.page_size // 64


class TestTimedAccess:
    def test_read_accounting(self, device):
        device.read(0x1000, now=0, bursts=8)
        assert device.reads == 1
        assert device.bytes_transferred == 512

    def test_big_fetch_single_activation(self, device):
        device.read(0x10000, now=0, bursts=8)
        assert device.total_activations() == 1

    def test_write_uses_row_buffer(self, device):
        device.read(0x10000, now=0)
        device.write(0x10000 + 64, now=500)
        assert device.row_buffer_hit_rate() == pytest.approx(0.5)

    def test_direct_access_bypasses_decode(self, device):
        access = device.access_direct(1, 3, 42, now=0, bursts=2)
        assert access.bursts == 2
        bank = device.channels[1].banks[3]
        assert bank.open_row == 42

    def test_activate_then_column_direct(self, device):
        ready = device.activate_direct(0, 0, 9, now=0)
        access = device.column_direct(0, 0, now=ready)
        assert access.data_end > ready

    def test_reset_stats(self, device):
        device.read(0x1000, now=0)
        device.reset_stats()
        assert device.reads == 0
        assert device.bytes_transferred == 0
        assert device.total_activations() == 0


def test_non_power_of_two_channels_wrap():
    geo = DRAMGeometry(channels=3, banks_per_channel=4, page_size=2048)
    device = DRAMDevice(geo, DRAMTimingConfig.ddr3_1600h())
    for i in range(64):
        loc = device.decode(i * 2048)
        assert 0 <= loc.channel < 3
