"""Observability wired through the harness: identity, traces, profiling.

The load-bearing guarantee: enabling the tracer changes *nothing* about
simulation results — the taps are pull-based copies of counters the
simulation already keeps, taken at drive/cell boundaries.
"""

import io
import json

import pytest

from repro.harness.parallel import GridCell, drive_cell, run_grid
from repro.harness.runner import ExperimentSetup, build_cache, drive_cache
from repro.obs import Tracer, get_tracer, install

SETUP = ExperimentSetup(num_cores=4, accesses_per_core=1_200)


@pytest.fixture()
def traced():
    """Install a buffer-backed tracer; yields the buffer."""
    buffer = io.StringIO()
    previous = install(Tracer(enabled=True, stream=buffer))
    yield buffer
    install(previous)


def _run(scheme: str = "bimodal", mix: str = "Q1") -> dict:
    cache = build_cache(scheme, SETUP.system, scale=SETUP.scale)
    result = drive_cache(
        cache, SETUP.trace_records(mix), streams=SETUP.num_cores, warmup=2_000
    )
    return dict(result.stats)


def _events(buffer: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in buffer.getvalue().splitlines()]


class TestByteIdentity:
    def test_tracing_does_not_perturb_drive_results(self, traced):
        with_trace = _run()
        buffer_len = len(traced.getvalue())
        assert buffer_len > 0, "tracer should have captured events"
        install(Tracer(enabled=False))
        without_trace = _run()
        assert with_trace == without_trace

    def test_tracing_does_not_perturb_grid_results(self, traced):
        cells = [
            GridCell(scheme=scheme, mix="Q1", setup=SETUP)
            for scheme in ("alloy", "bimodal")
        ]
        with_trace = run_grid(drive_cell, cells, jobs=1)
        install(Tracer(enabled=False))
        without_trace = run_grid(drive_cell, cells, jobs=1)
        assert with_trace == without_trace

    def test_disabled_tracer_emits_no_events_from_drive(self):
        tracer = get_tracer()
        before = tracer.events_emitted
        _run(scheme="alloy")
        assert tracer.events_emitted == before


class TestDriveTrace:
    def test_drive_emits_throughput_point(self, traced):
        _run(scheme="alloy")
        drives = [e for e in _events(traced) if e["name"] == "drive"]
        assert len(drives) == 1
        event = drives[0]
        assert event["scheme"] == "alloy"
        assert event["records"] == 4_800
        assert event["records_per_sec"] > 0
        assert 0.0 <= event["hit_rate"] <= 1.0

    def test_run_scheme_on_mix_emits_cell_span_with_sections(self, traced):
        from repro.harness.runner import run_scheme_on_mix

        run_scheme_on_mix("alloy", "Q1", setup=SETUP)
        events = _events(traced)
        ends = [e for e in events if e["ev"] == "end" and e["name"] == "cell"]
        assert len(ends) == 1
        end = ends[0]
        assert end["scheme"] == "alloy" and end["mix"] == "Q1"
        for section in ("build_s", "trace_s", "drive_s"):
            assert end[section] >= 0
        assert end["records"] == 4_800


class TestGridTrace:
    def test_grid_emits_span_and_per_cell_points(self, traced, capsys):
        cells = [
            GridCell(scheme="alloy", mix=mix, setup=SETUP) for mix in ("Q1", "Q2")
        ]
        results = run_grid(drive_cell, cells, jobs=1)
        assert len(results) == 2
        events = _events(traced)
        grid_ends = [e for e in events if e["ev"] == "end" and e["name"] == "grid"]
        assert len(grid_ends) == 1 and grid_ends[0]["cells"] == 2
        cell_points = [e for e in events if e["name"] == "grid.cell"]
        assert [e["index"] for e in cell_points] == [0, 1]
        assert all(e["wall_s"] > 0 for e in cell_points)
        assert {e["mix"] for e in cell_points} == {"Q1", "Q2"}
        progress = capsys.readouterr().err
        assert "cell 1/2" in progress and "cell 2/2" in progress

    def test_grid_parallel_matches_serial_under_tracing(self, traced):
        cells = [
            GridCell(scheme="alloy", mix="Q1", setup=SETUP),
            GridCell(scheme="bimodal", mix="Q1", setup=SETUP),
        ]
        serial = run_grid(drive_cell, cells, jobs=1)
        fanned = run_grid(drive_cell, cells, jobs=2)
        assert fanned == serial


class TestProfileHooks:
    def test_profile_dir_enables_per_cell_dumps(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", str(tmp_path))
        cells = [GridCell(scheme="alloy", mix="Q1", setup=SETUP)]
        results = run_grid(drive_cell, cells, jobs=1)
        assert results and results[0]["accesses"]
        dumps = list(tmp_path.glob("cell_*.prof"))
        assert len(dumps) == 1

    def test_profile_call_returns_result(self, tmp_path):
        from repro.obs import profile_call

        value = profile_call(lambda x: x + 1, 41, label="t", out_dir=tmp_path)
        assert value == 42
        assert (tmp_path / "t.prof").exists()


class TestSystemTrace:
    def test_run_system_antt_emits_phase_spans(self, traced):
        from repro.harness.system import run_system_antt
        from repro.workloads.mixes import mixes_for_cores

        setup = ExperimentSetup(num_cores=4, accesses_per_core=400)
        config = setup.system
        mix = mixes_for_cores(4)["Q1"]
        antt, stats = run_system_antt(
            config,
            mix,
            lambda: build_cache("alloy", config, scale=setup.scale),
            accesses_per_core=400,
        )
        assert antt >= 1.0
        events = _events(traced)
        names = [e["name"] for e in events if e["ev"] == "end"]
        assert names.count("system.multiprog") == 1
        assert names.count("system.standalone") == mix.num_cores
        points = [e for e in events if e["name"] == "system.antt"]
        assert points and points[0]["antt"] == antt
        flat = stats.to_dict()
        assert flat["num_cores"] == 4
        assert "dram_cache.hit_rate" in flat


class TestStatsProtocol:
    def test_drive_result_to_dict_is_flat(self):
        from repro.harness.export import flatten_stats
        from repro.harness.runner import run_scheme_on_mix

        result = run_scheme_on_mix("alloy", "Q1", setup=SETUP)
        flat = flatten_stats(result)
        assert flat["records"] == result.accesses
        assert flat["accesses"] == result.stats["accesses"]
        assert flat["hit_rate"] == result.stats["hit_rate"]

    def test_energy_breakdown_to_dict(self):
        from repro.energy.model import EnergyModel

        cache = build_cache("alloy", SETUP.system, scale=SETUP.scale)
        drive_cache(cache, SETUP.trace_records("Q1"), streams=4)
        breakdown = EnergyModel().measure(cache, cache.offchip)
        flat = breakdown.to_dict()
        assert flat["total_nj"] == breakdown.total
        assert flat["offchip_total_nj"] == breakdown.offchip_total

    def test_flatten_stats_rejects_non_mappings(self):
        from repro.harness.export import flatten_stats

        with pytest.raises(TypeError):
            flatten_stats(42)
