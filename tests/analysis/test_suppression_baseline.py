"""Inline suppressions and the committed-baseline ratchet."""

import json

import pytest

from repro.analysis.baseline import Baseline, BaselineError, split_by_baseline
from repro.analysis.model import Violation

TIMED = """
    import time

    def stamp():
        return time.time(){comment}
"""


class TestSuppression:
    def test_named_suppression_silences_the_rule(self, lint):
        result = lint(
            TIMED.format(comment="  # simlint: off=determinism -- CI stamp"),
            rules=["determinism"],
        )
        assert result.ok
        assert result.suppressed == 1

    def test_bare_off_silences_every_rule(self, lint):
        result = lint(
            TIMED.format(comment="  # simlint: off"),
            rules=["determinism"],
        )
        assert result.ok
        assert result.suppressed == 1

    def test_other_rule_suppression_does_not_apply(self, lint):
        result = lint(
            TIMED.format(comment="  # simlint: off=slots"),
            rules=["determinism"],
        )
        assert [v.rule for v in result.violations] == ["determinism"]
        assert result.suppressed == 0

    def test_suppression_only_covers_its_line(self, lint):
        result = lint(
            """
            import time  # simlint: off=determinism

            def stamp():
                return time.time()
            """,
            rules=["determinism"],
        )
        assert [v.rule for v in result.violations] == ["determinism"]


def _violation(snippet="return time.time()", line=4):
    return Violation(
        rule="determinism",
        path="mod.py",
        line=line,
        col=11,
        message="time.time reads the wall clock",
        snippet=snippet,
    )


class TestBaseline:
    def test_round_trip(self, tmp_path):
        violation = _violation()
        path = tmp_path / "simlint-baseline.json"
        Baseline.from_violations([violation]).write(path)
        loaded = Baseline.load(path)
        new, tolerated, stale = split_by_baseline([violation], loaded)
        assert new == []
        assert tolerated == [violation]
        assert stale == 0

    def test_fingerprint_survives_renumbering(self, tmp_path):
        path = tmp_path / "b.json"
        Baseline.from_violations([_violation(line=4)]).write(path)
        moved = _violation(line=40)  # same content, file renumbered
        new, tolerated, stale = split_by_baseline([moved], Baseline.load(path))
        assert new == [] and tolerated == [moved] and stale == 0

    def test_new_findings_are_not_absorbed(self, tmp_path):
        path = tmp_path / "b.json"
        Baseline.from_violations([_violation()]).write(path)
        fresh = _violation(snippet="return time.time_ns()")
        new, tolerated, stale = split_by_baseline(
            [_violation(), fresh], Baseline.load(path)
        )
        assert new == [fresh]
        assert tolerated == [_violation()]

    def test_fixed_entries_become_stale(self, tmp_path):
        path = tmp_path / "b.json"
        Baseline.from_violations([_violation()]).write(path)
        new, tolerated, stale = split_by_baseline([], Baseline.load(path))
        assert new == [] and tolerated == []
        assert stale == 1

    def test_identical_lines_match_as_multiset(self, tmp_path):
        path = tmp_path / "b.json"
        Baseline.from_violations([_violation(line=4)]).write(path)
        twins = [_violation(line=4), _violation(line=9)]
        new, tolerated, stale = split_by_baseline(twins, Baseline.load(path))
        assert len(tolerated) == 1  # one budget entry consumed
        assert len(new) == 1  # the twin is a genuine new finding

    @pytest.mark.parametrize(
        "document",
        [
            "not json at all",
            json.dumps([1, 2, 3]),
            json.dumps({"version": 99, "entries": []}),
            json.dumps({"version": 1, "entries": [{"rule": "x"}]}),
        ],
    )
    def test_malformed_baseline_raises(self, tmp_path, document):
        path = tmp_path / "b.json"
        path.write_text(document)
        with pytest.raises(BaselineError):
            Baseline.load(path)

    def test_missing_baseline_raises(self, tmp_path):
        with pytest.raises(BaselineError):
            Baseline.load(tmp_path / "nope.json")
