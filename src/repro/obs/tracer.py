"""Structured JSONL tracing with a zero-cost disabled path.

The tracer answers "where did the wall-clock go" for every level of the
harness: runs, grid cells, drive loops and full-system phases emit span
events carrying wall time and throughput, and any layer can attach
counter snapshots to them. Output is one JSON object per line so traces
compose with ``jq``/pandas without a reader library.

Event schema (all events share ``ts``/``ev``/``name``)::

    {"ts": 12.345, "ev": "begin", "name": "cell", "id": 3, ...attrs}
    {"ts": 13.456, "ev": "end",   "name": "cell", "id": 3,
     "wall_s": 1.111, ...attrs}
    {"ts": 14.0,   "ev": "point", "name": "grid.progress", ...attrs}

``ts`` is seconds since the tracer was configured (monotonic,
``perf_counter`` based); ``id`` pairs a span's begin/end lines when
spans from several processes interleave in one file.

Enablement — all paths resolve through :func:`configure`:

* ``REPRO_TRACE`` unset, empty or ``0``: tracing disabled. The global
  tracer is a singleton whose ``enabled`` attribute is ``False``;
  instrumented code guards its taps with one attribute check per
  *drive/cell* (never per record), so the disabled cost is zero.
* ``REPRO_TRACE=1``: enabled, events go to stderr.
* ``REPRO_TRACE=/path/file.jsonl`` (or ``--trace-out``): enabled,
  events append to the file. Each process re-opens the file after a
  fork and writes whole lines in append mode, so worker events from
  :func:`repro.harness.parallel.run_grid` interleave without tearing.
"""

from __future__ import annotations

import json
import os
import sys
import time
from contextlib import contextmanager
from typing import IO

__all__ = [
    "Tracer",
    "configure",
    "configure_from_env",
    "get_tracer",
    "install",
    "trace_enabled",
]

_ENV_VAR = "REPRO_TRACE"


def _json_safe(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return str(value)


class Tracer:
    """Emits structured JSONL events; inert unless ``enabled``.

    A disabled tracer is safe to call — every method returns
    immediately — but instrumented code should prefer guarding whole
    taps behind ``tracer.enabled`` so attribute packing never runs.
    """

    def __init__(
        self,
        *,
        enabled: bool = False,
        path: str | None = None,
        stream: IO[str] | None = None,
    ) -> None:
        self.enabled = enabled
        self.path = path
        self._stream = stream
        self._pid = os.getpid()
        self._epoch = time.perf_counter()
        self._next_span = 0
        self.events_emitted = 0

    # ------------------------------------------------------------------
    def _sink(self) -> IO[str]:
        if self.path is not None:
            if self._stream is None or self._pid != os.getpid():
                # Fresh handle per process: forked workers must not share
                # a file offset with the parent.
                self._stream = open(self.path, "a", buffering=1)
                self._pid = os.getpid()
            return self._stream
        return self._stream if self._stream is not None else sys.stderr

    def emit(self, ev: str, name: str, **attrs) -> None:
        """Write one event line. No-op when disabled."""
        if not self.enabled:
            return
        record = {"ts": round(time.perf_counter() - self._epoch, 6), "ev": ev,
                  "name": name}
        record.update({k: _json_safe(v) for k, v in attrs.items()})
        try:
            self._sink().write(json.dumps(record) + "\n")
        except (OSError, ValueError):
            return
        self.events_emitted += 1

    def point(self, name: str, **attrs) -> None:
        """A single instant event (progress line, annotation)."""
        self.emit("point", name, **attrs)

    @contextmanager
    def span(self, name: str, **attrs):
        """Begin/end pair around a block, carrying wall time.

        Yields a mutable dict; keys added inside the block land on the
        ``end`` event (e.g. ``records_per_sec``, counter snapshots).
        """
        if not self.enabled:
            yield {}
            return
        span_id = self._next_span = self._next_span + 1
        self.emit("begin", name, id=span_id, **attrs)
        extra: dict = {}
        start = time.perf_counter()
        try:
            yield extra
        finally:
            wall = time.perf_counter() - start
            self.emit(
                "end", name, id=span_id, wall_s=round(wall, 6), **attrs, **extra
            )

    def close(self) -> None:
        if self.path is not None and self._stream is not None:
            try:
                self._stream.close()
            except OSError:
                pass
            self._stream = None


# ----------------------------------------------------------------------
# global tracer
# ----------------------------------------------------------------------
_DISABLED = Tracer(enabled=False)
_tracer: Tracer = _DISABLED
_env_checked = False


def configure(
    target: str | IO[str] | None,
    *,
    propagate_env: bool = False,
) -> Tracer:
    """Install the global tracer.

    ``target`` may be ``None``/``"0"``/``""`` (disable), ``"1"``/
    ``"stderr"`` (stderr), a file path, or an open text stream (tests).
    With ``propagate_env`` the equivalent ``REPRO_TRACE`` value is
    exported so worker processes spawned later trace to the same file.
    """
    global _tracer, _env_checked
    _env_checked = True
    old = _tracer
    if old is not _DISABLED:
        old.close()
    if target is None or target in ("", "0"):
        _tracer = _DISABLED
        if propagate_env:
            os.environ.pop(_ENV_VAR, None)
        return _tracer
    if hasattr(target, "write"):
        _tracer = Tracer(enabled=True, stream=target)
        return _tracer
    if target in ("1", "stderr"):
        _tracer = Tracer(enabled=True)
        if propagate_env:
            os.environ[_ENV_VAR] = "1"
        return _tracer
    _tracer = Tracer(enabled=True, path=str(target))
    if propagate_env:
        os.environ[_ENV_VAR] = str(target)
    return _tracer


def configure_from_env() -> Tracer:
    """Apply ``REPRO_TRACE`` once (idempotent until reconfigured)."""
    global _env_checked
    if not _env_checked:
        configure(os.environ.get(_ENV_VAR) or None)
    return _tracer


def install(tracer: Tracer) -> Tracer:
    """Swap in ``tracer`` as the global; returns the previous one.

    For scoped instrumentation (overhead benchmarks, tests) where the
    caller restores the original afterwards — unlike :func:`configure`
    it never touches the environment or closes the old tracer.
    """
    global _tracer, _env_checked
    _env_checked = True
    previous = _tracer
    _tracer = tracer
    return previous


def get_tracer() -> Tracer:
    """The process-wide tracer (env-configured on first use)."""
    if not _env_checked:
        configure_from_env()
    return _tracer


def trace_enabled() -> bool:
    return get_tracer().enabled
