"""Figure 9(a): wasted off-chip bandwidth — fixed-512B vs Bi-Modal.

Paper: bi-modality removes >60% of the fixed-512B organization's wasted
off-chip traffic on average (67%/62%/71% for 4/8/16 cores), with the
worst-wasting workloads benefiting most.
"""

from repro.harness.experiments import fig9a_wasted_bandwidth
from repro.harness.runner import ExperimentSetup

# The heavy-wastage workloads the paper calls out, plus one mixed mix.
WASTE_MIXES = ["E5", "E8", "E15"]


def test_fig9a_wasted_bandwidth(benchmark, report):
    # Adaptation needs run length for steady-state waste accounting.
    setup = ExperimentSetup(
        num_cores=8, scale=32, accesses_per_core=25_000, seed=1
    )
    rows = benchmark.pedantic(
        lambda: fig9a_wasted_bandwidth(setup=setup, mix_names=WASTE_MIXES),
        rounds=1,
        iterations=1,
    )
    report(rows, title="Figure 9a: wasted off-chip bandwidth (8-core)")
    total = rows[-1]
    assert total["mix"] == "total"
    assert total["fixed512_wasted_mb"] > 0
    # Substantial aggregate saving from bi-modality (paper: ~62%).
    assert total["saving_pct"] > 35.0
    # Every workload is no worse off.
    for row in rows[:-1]:
        assert row["bimodal_wasted_mb"] <= row["fixed512_wasted_mb"] * 1.05
