"""Rule ``async-safety`` — the event loop must never block.

The daemon (:mod:`repro.server`) multiplexes every client over one
asyncio loop; one blocking call inside a coroutine stalls *all*
connections, heartbeats and drain handling at once — the exact failure
the PR 8 resilience layer exists to prevent. Syntactic per-function
checks cannot see a ``time.sleep`` buried two helpers down, so this
rule walks the project call graph (:mod:`repro.analysis.flow`):

* **blocking reachability** — from every ``async def`` defined in the
  configured async scope (``server/*``, ``api/client.py``), walk
  direct (non-deferred) call edges; a known blocking sink —
  ``time.sleep``, ``subprocess.*``, sync socket/url I/O, builtin
  ``open`` — anywhere in the closure is reported at the first hop out
  of the coroutine, with the full chain in the message. References
  handed to ``asyncio.to_thread`` / ``run_in_executor`` / executor
  ``submit`` are *deferred* edges and are not followed: that is the
  sanctioned way to run blocking code.

* **unguarded future waits** — ``pool.submit(...).result()`` (directly
  chained or through a local name) inside a coroutine blocks the loop
  until a worker finishes; await the future instead.

* **unawaited coroutines** — a call to a project ``async def`` whose
  result is discarded without ``await`` never runs and hides errors.

* **shared-state mutation off the loop** — a method handed to an
  executor (``to_thread(self._flush)``) that assigns an attribute some
  coroutine of the same class also assigns is a data race between the
  loop thread and the worker thread.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.analysis.model import ProjectModel, SourceFile, Violation
from repro.analysis.rules import Rule, register_rule

#: Resolved call targets that block the calling thread.
BLOCKING_SINKS: dict[str, str] = {
    "time.sleep": "time.sleep() blocks the loop; use asyncio.sleep",
    "subprocess.run": "subprocess.run blocks until the child exits",
    "subprocess.call": "subprocess.call blocks until the child exits",
    "subprocess.check_call": "subprocess.check_call blocks",
    "subprocess.check_output": "subprocess.check_output blocks",
    "subprocess.getoutput": "subprocess.getoutput blocks",
    "subprocess.Popen.communicate": "communicate() blocks",
    "socket.create_connection": "sync socket connect blocks",
    "urllib.request.urlopen": "sync HTTP fetch blocks",
    "os.system": "os.system blocks until the command exits",
    "open": "sync file open/IO blocks; use asyncio.to_thread",
}

_EXECUTOR_TAILS = {"to_thread", "run_in_executor", "submit", "Thread"}


@register_rule
class AsyncSafetyRule(Rule):
    name = "async-safety"
    version = 1
    description = (
        "no blocking call reachable from an async def; no unawaited "
        "coroutines; no executor-thread mutation of loop-shared state"
    )
    rationale = (
        "The repro daemon serves every client from a single asyncio "
        "loop. A blocking call (time.sleep, sync I/O, subprocess, an "
        "unguarded Future.result()) anywhere in a coroutine's call "
        "closure freezes all connections at once, defeating deadlines "
        "and graceful drain. Blocking work must be pushed through "
        "asyncio.to_thread / run_in_executor — those edges are "
        "recognized and not followed. Coroutines whose result is "
        "discarded without await never execute; attributes written "
        "both by coroutines and executor-thread helpers race."
    )
    example_bad = """\
import time

async def handle(request):
    time.sleep(0.1)  # blocks every connection on the loop
    return request
"""
    example_good = """\
import asyncio

async def handle(request):
    await asyncio.sleep(0.1)
    return request
"""

    def check_project(self, project: ProjectModel) -> Iterator[Violation]:
        graph = project.graph
        scope = project.config.async_scope
        roots = [
            key
            for key, fn in graph.functions.items()
            if fn.is_async and _in_scope(graph.facts_of[key], scope)
        ]
        yield from self._blocking(project, graph, roots)
        yield from self._unawaited(project, graph)
        yield from self._executor_state(project, graph, scope)

    # -- blocking reachability --------------------------------------------
    def _blocking(self, project, graph, roots) -> Iterator[Violation]:
        for root in roots:
            fn = graph.functions[root]
            mod = graph.facts_of[root]
            # direct blocking calls and future-waits inside the coroutine
            for lineno, why in _blocking_sites(fn):
                yield self._violation(
                    project, mod.rel, lineno,
                    f"async def {fn.qualname} calls a blocking operation: {why}",
                )
            # transitive: first hop out of the coroutine carries the report
            parent = graph.reach(root)
            seen_first_hops: set[tuple[str, int]] = set()
            for target in parent:
                tfn = graph.functions[target]
                sites = list(_blocking_sites(tfn))
                if not sites:
                    continue
                path = graph.path(root, target, parent)
                if not path:
                    continue
                first = path[0]
                hop_id = (first.target, first.lineno)
                if hop_id in seen_first_hops:
                    continue
                seen_first_hops.add(hop_id)
                lineno, why = sites[0]
                trail = graph.describe_path(path)
                yield self._violation(
                    project, first.rel, first.lineno,
                    f"async def {fn.qualname} reaches a blocking operation "
                    f"({why} at {graph.facts_of[target].rel}:{lineno}) "
                    f"via {trail}; route it through asyncio.to_thread or "
                    "run_in_executor",
                )

    # -- unawaited coroutines ---------------------------------------------
    def _unawaited(self, project, graph) -> Iterator[Violation]:
        for key, fn in graph.functions.items():
            mod = graph.facts_of[key]
            for call in fn.calls:
                if call.awaited or not call.discarded:
                    continue
                target = graph.resolve_project(mod, fn, call)
                if target is None or not graph.functions[target].is_async:
                    continue
                name = graph.functions[target].qualname
                yield self._violation(
                    project, mod.rel, call.lineno,
                    f"coroutine {name}() is never awaited (its body will "
                    "not run); await it or wrap it in "
                    "asyncio.create_task(...)",
                )

    # -- executor-thread mutation of loop-shared attributes ---------------
    def _executor_state(self, project, graph, scope) -> Iterator[Violation]:
        for mod in graph.modules.values():
            if not _in_scope(mod, scope):
                continue
            # attrs assigned by coroutine methods, per class
            async_attrs: dict[str, dict[str, int]] = {}
            for fn in mod.functions:
                if fn.is_async and fn.cls is not None:
                    table = async_attrs.setdefault(fn.cls, {})
                    for attr, lineno, _ in fn.self_attr_assigns:
                        table.setdefault(attr, lineno)
            if not async_attrs:
                continue
            # methods handed to executors anywhere in this module
            entries: set[str] = set()
            for fn in mod.functions:
                for call in fn.calls:
                    if call.chain[-1] not in _EXECUTOR_TAILS:
                        continue
                    for ref in call.func_refs:
                        key = graph.resolve_ref(mod, fn, ref)
                        if key is not None:
                            entries.add(key)
            for key in sorted(entries):
                entry = graph.functions[key]
                if entry.cls is None or entry.is_async:
                    continue
                shared = async_attrs.get(entry.cls, {})
                for attr, lineno, _ in entry.self_attr_assigns:
                    if attr in shared:
                        yield self._violation(
                            project, graph.facts_of[key].rel, lineno,
                            f"{entry.qualname} runs on an executor thread "
                            f"but assigns self.{attr}, which coroutine code "
                            f"of {entry.cls} also assigns (line "
                            f"{shared[attr]}): loop/worker data race — "
                            "marshal the update back onto the loop with "
                            "call_soon_threadsafe",
                        )

    # -- helpers -----------------------------------------------------------
    def _violation(self, project, rel: str, lineno: int,
                   message: str) -> Violation:
        source = project.source_for(rel)
        if source is not None:
            return source.violation(self.name, lineno, message)
        return Violation(self.name, rel, lineno, 0, message)


def _in_scope(mod, scope: tuple[str, ...]) -> bool:
    from fnmatch import fnmatch

    return any(fnmatch(mod.rel, g) or fnmatch(mod.pkgrel, g) for g in scope)


def _blocking_sites(fn) -> Iterator[tuple[int, str]]:
    """(lineno, why) for blocking operations in one function body."""
    submit_futures = {
        target
        for target, deps in fn.assigns
        if any(
            d.startswith("c:") and fn.calls[int(d[2:])].chain[-1] == "submit"
            for d in deps
        )
    }
    for call in fn.calls:
        why = BLOCKING_SINKS.get(call.resolved or "")
        if why is not None:
            yield call.lineno, why
            continue
        if call.chain[-1] == "result" and not call.arg_deps:
            if call.base_call is not None and \
                    fn.calls[call.base_call].chain[-1] == "submit":
                yield call.lineno, (
                    "submit(...).result() blocks until the worker "
                    "finishes; await asyncio.wrap_future(...) instead"
                )
            elif len(call.chain) == 2 and call.chain[0] in submit_futures:
                yield call.lineno, (
                    f"{call.chain[0]}.result() waits on an executor future "
                    "synchronously; await asyncio.wrap_future(...) instead"
                )
