"""Pareto-pruned design-space exploration: ranking units + driver smoke."""

import pytest

from repro.harness.runner import ExperimentSetup
from repro.mrc.dse import (
    DesignPoint,
    DseEstimateCell,
    DseSimCell,
    default_space,
    dse_estimate_cell,
    pareto_frontier,
    run_design_space,
)

TINY = ExperimentSetup(num_cores=4, accesses_per_core=800)


def _point(cache_mb, rate_label=""):
    return DesignPoint(
        cache_mb=cache_mb, block_size=512, associativity=4, policy="fixed"
    )


class TestDesignPoint:
    def test_label(self):
        point = DesignPoint(
            cache_mb=8, block_size=512, associativity=4, policy="fixed"
        )
        assert point.label() == "8MB/512B/4w/fixed"

    def test_sim_cell_scheme_is_the_label(self):
        point = DesignPoint(
            cache_mb=4, block_size=256, associativity=8, policy="adaptive"
        )
        cell = DseSimCell(point=point, mix="Q1", setup=TINY)
        assert cell.scheme == point.label()

    def test_default_space_is_the_36_point_grid(self):
        space = default_space()
        assert len(space) == 36
        assert len(set(space)) == 36
        assert {p.cache_mb for p in space} == {4, 8, 16}
        assert {p.block_size for p in space} == {256, 512, 1024}
        assert {p.associativity for p in space} == {4, 8}
        assert {p.policy for p in space} == {"fixed", "adaptive"}


class TestParetoFrontier:
    def test_dominated_points_are_dropped(self):
        points = [_point(4), _point(8), _point(16)]
        # The 8 MB point is beaten on rate by a smaller cache: dominated.
        rates = [0.90, 0.85, 0.95]
        frontier = pareto_frontier(points, rates)
        assert frontier == [2, 0]

    def test_equal_rate_prefers_smaller_capacity(self):
        points = [_point(4), _point(8)]
        frontier = pareto_frontier(points, [0.9, 0.9])
        assert frontier == [0]

    def test_monotone_tradeoff_keeps_everything(self):
        # Bigger cache, better rate: nothing dominates anything.
        points = [_point(4), _point(8), _point(16)]
        frontier = pareto_frontier(points, [0.80, 0.85, 0.90])
        assert sorted(frontier) == [0, 1, 2]

    def test_ordered_by_estimated_rate_descending(self):
        points = [_point(4), _point(8), _point(16)]
        frontier = pareto_frontier(points, [0.80, 0.85, 0.90])
        assert frontier == [2, 1, 0]

    def test_cap_keeps_the_best(self):
        points = [_point(1 << i) for i in range(6)]
        rates = [0.5, 0.6, 0.7, 0.8, 0.9, 0.95]
        frontier = pareto_frontier(points, rates, max_frontier=2)
        assert frontier == [5, 4]


class TestEstimateCell:
    def test_row_per_point_with_integer_counts(self):
        space = default_space()[:4]
        rows = dse_estimate_cell(
            DseEstimateCell(mix="Q1", setup=TINY, space=space)
        )
        assert len(rows) == len(space)
        for (hits, accesses, best_x, best_y), point in zip(rows, space):
            assert isinstance(hits, int) and isinstance(accesses, int)
            assert 0 <= hits <= accesses
            if point.policy == "fixed":
                assert (best_x, best_y) == (0, 0)
            else:
                assert (best_x, best_y) != (0, 0)


class TestRunDesignSpace:
    @pytest.fixture(scope="class")
    def outcome(self):
        return run_design_space(setup=TINY, mix_names=["Q1"], jobs=2)

    def test_row_per_design_point(self, outcome):
        rows = outcome["rows"]
        assert len(rows) == 36
        for row in rows:
            assert row["sim_fraction"] in (0.0, 0.25, 1.0)
            assert 0.0 <= row["est_hit_rate"] <= 1.0
            assert ("hit_rate" in row) == (row["sim_fraction"] == 1.0)

    def test_only_frontier_points_are_simulated(self, outcome):
        for row in outcome["rows"]:
            if row["sim_fraction"] > 0.0:
                assert row["frontier"]

    def test_winner_is_a_fully_simulated_best(self, outcome):
        winner = outcome["winner"]
        assert winner is not None
        assert winner["sim_fraction"] == 1.0
        fully = [r for r in outcome["rows"] if r["sim_fraction"] == 1.0]
        assert winner["hit_rate"] == max(r["hit_rate"] for r in fully)

    def test_cost_accounting(self, outcome):
        stats = outcome["stats"]
        assert stats["points"] == stats["exhaustive_sims"] == 36
        assert stats["frontier_size"] <= 8
        assert stats["survivors"] == max(1, (stats["frontier_size"] + 1) // 2)
        spent = 0.25 * stats["frontier_size"] + stats["survivors"]
        assert stats["full_sims_equivalent"] == spent
        assert stats["full_sims_avoided"] == 36 - spent
        assert stats["speedup"] == pytest.approx(36 / spent)
        # The ISSUE acceptance bound, also gated in CI by dse_smoke.
        assert stats["speedup"] >= 5.0

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            run_design_space(setup=TINY, mix_names=["Q1"], space=())

    @pytest.mark.parametrize("rate", [0.0, 1.5])
    def test_bad_sample_rate_rejected(self, rate):
        with pytest.raises(ValueError, match="sample_rate"):
            run_design_space(
                setup=TINY, mix_names=["Q1"], sample_rate=rate
            )
