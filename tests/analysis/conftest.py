"""Shared simlint test helpers: lint a source snippet in isolation."""

import textwrap

import pytest

from repro.analysis.config import LintConfig
from repro.analysis.engine import run_lint
from repro.analysis.rules import all_rules

# Strict configuration for fixtures: no determinism allowlist, every
# module counts as hot for the slots rule. Tests select the rule under
# test explicitly so the strictness never cross-contaminates.
STRICT = LintConfig(determinism_allow=(), slots_modules=("*.py",))


@pytest.fixture
def lint(tmp_path):
    """lint(source, rules=[...]) -> LintResult over a temp module.

    ``extra`` adds sibling modules (for cross-file project rules);
    ``config`` overrides the strict default.
    """

    def write(name, text):
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))

    def run(source, *, rules, filename="mod.py", config=STRICT, extra=None):
        write(filename, source)
        for name, text in (extra or {}).items():
            write(name, text)
        return run_lint(
            [tmp_path], config=config, root=tmp_path, rules=all_rules(rules)
        )

    return run
