"""Figure 12 sensitivity study and the ablations beyond the paper.

``BiModal(X-Y-Z)`` in the paper's notation: cache size X, big block size
Y, big-block associativity Z. All improvements are over a same-sized
AlloyCache. Capacities are expressed at paper scale and shifted by the
experiment's capacity scale factor.
"""

from __future__ import annotations

from dataclasses import replace

from repro.bimodal.cache import BiModalConfig
from repro.cores.metrics import improvement_percent
from repro.harness.parallel import (
    AnttCell,
    GridCell,
    antt_cell,
    complete_groups,
    drive_cell,
    run_grid,
)
from repro.harness.runner import ExperimentSetup, scaled_locator_bits

__all__ = [
    "fig12_sensitivity",
    "ablation_threshold",
    "ablation_weight",
    "ablation_sampling",
    "ablation_parallel_tag",
]


def _antt_for(
    scheme: str,
    mix_name: str,
    *,
    setup: ExperimentSetup,
    cache_mb: int | None = None,
    bimodal_config: BiModalConfig | None = None,
) -> float:
    return antt_cell(
        AnttCell(
            scheme=scheme,
            mix=mix_name,
            setup=setup,
            cache_mb=cache_mb,
            bimodal_config=bimodal_config,
        )
    )


def fig12_sensitivity(
    *,
    setup: ExperimentSetup | None = None,
    mix_names: list[str] | None = None,
    jobs: int | None = None,
) -> list[dict]:
    """Figure 12: gains hold across cache size, block size, associativity.

    Paper configurations (at full scale): BiModal(64M-512-4),
    BiModal(512M-512-4), BiModal(128M-256-8), BiModal(128M-1024-2) and an
    8-way variant via a 4 KB set; each vs a same-sized AlloyCache.
    """
    setup = setup or ExperimentSetup()
    names = mix_names or ["Q2", "Q7", "Q12", "Q20"]
    k = scaled_locator_bits(scale=setup.scale)
    base_cfg = BiModalConfig(
        locator_index_bits=k,
        predictor_index_bits=10,
        tracker_sample_every=2,
        adaptation_interval=2_000,
    )
    paper_cache_mb = setup.system.dram_cache.capacity >> 20  # already scaled

    variants = [
        # (label, scaled cache MB, config tweak)
        ("BiModal(64M-512-4)", max(1, paper_cache_mb // 2), base_cfg),
        ("BiModal(128M-512-4)", paper_cache_mb, base_cfg),
        ("BiModal(512M-512-4)", paper_cache_mb * 4, base_cfg),
        (
            "BiModal(128M-256-8)",
            paper_cache_mb,
            replace(base_cfg, big_block_size=256),
        ),
        (
            "BiModal(128M-1024-2)",
            paper_cache_mb,
            replace(base_cfg, big_block_size=1024),
        ),
        (
            "BiModal(128M-512-8)",
            paper_cache_mb,
            replace(base_cfg, set_size=4096),
        ),
    ]
    cells = []
    for _, cache_mb, cfg in variants:
        for name in names:
            cells.append(
                AnttCell(scheme="alloy", mix=name, setup=setup, cache_mb=cache_mb)
            )
            cells.append(
                AnttCell(
                    scheme="bimodal",
                    mix=name,
                    setup=setup,
                    cache_mb=cache_mb,
                    bimodal_config=cfg,
                )
            )
    antts = run_grid(antt_cell, cells, jobs=jobs)
    rows = []
    per_variant = 2 * len(names)
    for (label, cache_mb, _), chunk in complete_groups(
        variants, antts, per_variant
    ):
        gains = [
            improvement_percent(chunk[2 * i], chunk[2 * i + 1])
            for i in range(len(names))
        ]
        rows.append(
            {
                "config": label,
                "scaled_cache_mb": cache_mb,
                "mean_antt_gain_pct": sum(gains) / len(gains),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Ablations beyond the paper (DESIGN.md section 5)
# ----------------------------------------------------------------------
def _bimodal_cell(
    mix_name: str, setup: ExperimentSetup, cfg: BiModalConfig
) -> GridCell:
    return GridCell(scheme="bimodal", mix=mix_name, setup=setup, bimodal_config=cfg)


def _bimodal_stats(
    mix_name: str, setup: ExperimentSetup, cfg: BiModalConfig
) -> dict:
    return drive_cell(_bimodal_cell(mix_name, setup, cfg))


def _base_config(setup: ExperimentSetup) -> BiModalConfig:
    return BiModalConfig(
        locator_index_bits=scaled_locator_bits(scale=setup.scale),
        predictor_index_bits=10,
        tracker_sample_every=2,
        adaptation_interval=2_000,
    )


def ablation_threshold(
    *,
    setup: ExperimentSetup | None = None,
    mix_name: str = "Q7",
    thresholds: tuple[int, ...] = (2, 3, 5, 7, 8),
    jobs: int | None = None,
) -> list[dict]:
    """Utilization threshold T sweep (paper fixes T=5, suggests stricter
    T trades bandwidth for hit rate)."""
    setup = setup or ExperimentSetup()
    cells = [
        _bimodal_cell(
            mix_name, setup, replace(_base_config(setup), utilization_threshold=t)
        )
        for t in thresholds
    ]
    results = run_grid(drive_cell, cells, jobs=jobs)
    return [
        {
            "T": t,
            "hit_rate": stats["hit_rate"],
            "offchip_mb": stats["offchip_fetched_bytes"] / (1 << 20),
            "small_fraction": stats["small_access_fraction"],
        }
        for t, (stats,) in complete_groups(thresholds, results, 1)
    ]


def ablation_weight(
    *,
    setup: ExperimentSetup | None = None,
    mix_name: str = "Q7",
    weights: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0, 1.5),
    jobs: int | None = None,
) -> list[dict]:
    """Adaptation weight W sweep (paper fixes W=0.75)."""
    setup = setup or ExperimentSetup()
    cells = [
        _bimodal_cell(
            mix_name, setup, replace(_base_config(setup), adaptation_weight=w)
        )
        for w in weights
    ]
    results = run_grid(drive_cell, cells, jobs=jobs)
    return [
        {
            "W": w,
            "hit_rate": stats["hit_rate"],
            "small_fraction": stats["small_access_fraction"],
            "global_state": str(stats["global_state"]),
        }
        for w, (stats,) in complete_groups(weights, results, 1)
    ]


def ablation_sampling(
    *,
    setup: ExperimentSetup | None = None,
    mix_name: str = "Q7",
    rates: tuple[int, ...] = (1, 2, 8, 32),
    jobs: int | None = None,
) -> list[dict]:
    """Tracker set-sampling sweep (paper uses ~4% of sets)."""
    setup = setup or ExperimentSetup()
    cells = [
        _bimodal_cell(
            mix_name, setup, replace(_base_config(setup), tracker_sample_every=every)
        )
        for every in rates
    ]
    results = run_grid(drive_cell, cells, jobs=jobs)
    return [
        {
            "sample_every": every,
            "hit_rate": stats["hit_rate"],
            "predictor_accuracy": stats["predictor_accuracy"],
            "small_fraction": stats["small_access_fraction"],
        }
        for every, (stats,) in complete_groups(rates, results, 1)
    ]


def ablation_parallel_tag(
    *,
    setup: ExperimentSetup | None = None,
    mix_names: list[str] | None = None,
    jobs: int | None = None,
) -> list[dict]:
    """Parallel vs serial tag+data issue on way locator misses."""
    setup = setup or ExperimentSetup()
    names = mix_names or ["Q2", "Q7"]
    modes = (("parallel", True), ("serial", False))
    cells = [
        _bimodal_cell(
            name, setup, replace(_base_config(setup), parallel_tag_data=parallel)
        )
        for name in names
        for _, parallel in modes
    ]
    results = run_grid(drive_cell, cells, jobs=jobs)
    rows = []
    for name, chunk in complete_groups(names, results, len(modes)):
        res = {
            label: stats["avg_read_latency"]
            for (label, _), stats in zip(modes, chunk)
        }
        rows.append(
            {
                "mix": name,
                "parallel_latency": res["parallel"],
                "serial_latency": res["serial"],
                "saving_pct": 100.0
                * (res["serial"] - res["parallel"])
                / res["serial"]
                if res["serial"]
                else 0.0,
            }
        )
    return rows
