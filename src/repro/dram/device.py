"""A complete DRAM device: channels, banks and address interleaving.

Used twice in the system:

* as **off-chip main memory** (DDR3-1600H) where requests carry physical
  addresses decoded with the paper's ``row-rank-bank-mc-column``
  interleaving (Table IV) — ranks are folded into the bank dimension; and
* as the **stacked DRAM** of the cache, where organizations compute their
  own (channel, bank, row) placement (e.g. the Bi-Modal metadata bank) and
  use :meth:`DRAMDevice.access_direct`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.addressing import SUB_BLOCK_BITS, log2_int
from repro.common.config import DRAMGeometry, DRAMTimingConfig
from repro.dram.channel import Channel, ChannelAccess, build_channels

__all__ = ["DRAMLocation", "DRAMDevice"]


@dataclass(slots=True)
class DRAMLocation:
    """Decoded placement of an address."""

    channel: int
    bank: int
    row: int
    column: int  # 64B-burst index within the row


class DRAMDevice:
    """Channels + open-page banks + row-rank-bank-mc-column interleaving."""

    def __init__(
        self,
        geometry: DRAMGeometry,
        timings: DRAMTimingConfig,
        *,
        name: str = "dram",
    ) -> None:
        self.name = name
        self.geometry = geometry
        self.timings = timings
        self.channels: list[Channel] = build_channels(geometry, timings)
        self._column_bits = log2_int(geometry.page_size // 64)
        self._channel_bits = log2_int(_ceil_pow2(geometry.channels))
        self._bank_bits = log2_int(_ceil_pow2(geometry.banks_per_channel))
        self._column_mask = (1 << self._column_bits) - 1
        self._channel_mask = (1 << self._channel_bits) - 1
        self._bank_mask = (1 << self._bank_bits) - 1
        self.reads = 0
        self.writes = 0
        self.bytes_transferred = 0

    # ------------------------------------------------------------------
    # address decoding (off-chip use)
    # ------------------------------------------------------------------
    def decode(self, address: int) -> DRAMLocation:
        """Split an address: LSB -> column, channel (mc), bank, row."""
        bits = address >> SUB_BLOCK_BITS
        column = bits & ((1 << self._column_bits) - 1)
        bits >>= self._column_bits
        channel = bits & ((1 << self._channel_bits) - 1)
        bits >>= self._channel_bits
        bank = bits & ((1 << self._bank_bits) - 1)
        bits >>= self._bank_bits
        row = bits
        channel %= self.geometry.channels
        bank %= self.geometry.banks_per_channel
        return DRAMLocation(channel=channel, bank=bank, row=row, column=column)

    def _decode_cbr(self, address: int) -> tuple[int, int, int]:
        """(channel, bank, row) only — the timed access path never needs
        the column, so skip building a DRAMLocation for it."""
        bits = address >> SUB_BLOCK_BITS
        bits >>= self._column_bits
        channel = bits & self._channel_mask
        bits >>= self._channel_bits
        bank = bits & self._bank_mask
        return (
            channel % self.geometry.channels,
            bank % self.geometry.banks_per_channel,
            bits >> self._bank_bits,
        )

    # ------------------------------------------------------------------
    # timed accesses
    # ------------------------------------------------------------------
    def read(self, address: int, now: int, *, bursts: int = 1) -> ChannelAccess:
        """Read ``bursts`` consecutive 64 B beats starting at ``address``.

        Multi-burst reads stay within one row for any transfer that does
        not cross a page boundary (the paper's big blocks never do).
        """
        channel, bank, row = self._decode_cbr(address)
        self.reads += 1
        self.bytes_transferred += bursts * 64
        return self.channels[channel].access(bank, row, now, bursts=bursts)

    def write(self, address: int, now: int, *, bursts: int = 1) -> ChannelAccess:
        """Write; same row-buffer management as reads in this model."""
        channel, bank, row = self._decode_cbr(address)
        self.writes += 1
        self.bytes_transferred += bursts * 64
        return self.channels[channel].access(bank, row, now, bursts=bursts)

    def access_direct(
        self,
        channel: int,
        bank: int,
        row: int,
        now: int,
        *,
        bursts: int = 1,
        transfer_cycles: int | None = None,
    ) -> ChannelAccess:
        """Access an explicitly placed row (stacked-DRAM cache use)."""
        self.reads += 1
        self.bytes_transferred += bursts * 64
        return self.channels[channel].access(
            bank, row, now, bursts=bursts, transfer_cycles=transfer_cycles
        )

    def activate_direct(self, channel: int, bank: int, row: int, now: int) -> int:
        """Open a row without data transfer (anticipatory activation)."""
        return self.channels[channel].activate(bank, row, now)

    def column_direct(
        self, channel: int, bank: int, now: int, *, bursts: int = 1
    ) -> ChannelAccess:
        """Column access to a row opened via :meth:`activate_direct`."""
        self.reads += 1
        self.bytes_transferred += bursts * 64
        return self.channels[channel].column_after_activate(bank, now, bursts=bursts)

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def row_buffer_hit_rate(self) -> float:
        hits = sum(b.row_buffer.hits for ch in self.channels for b in ch.banks)
        total = sum(b.row_buffer.total for ch in self.channels for b in ch.banks)
        return hits / total if total else 0.0

    def total_activations(self) -> int:
        return sum(b.activations for ch in self.channels for b in ch.banks)

    def total_precharges(self) -> int:
        return sum(b.precharges for ch in self.channels for b in ch.banks)

    def reset_stats(self) -> None:
        for channel in self.channels:
            channel.reset_stats()
        self.reads = 0
        self.writes = 0
        self.bytes_transferred = 0


def _ceil_pow2(value: int) -> int:
    """Smallest power of two >= value (for non-power-of-two channel counts)."""
    return 1 << (value - 1).bit_length()
