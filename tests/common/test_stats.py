"""Tests for the statistics primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.common.stats import Counter, Histogram, RateStat, RunningMean, StatGroup


class TestCounter:
    def test_add_and_reset(self):
        c = Counter()
        c.add()
        c.add(5)
        assert c.value == 6
        c.reset()
        assert c.value == 0


class TestRunningMean:
    def test_empty_mean_is_zero(self):
        assert RunningMean().mean == 0.0

    def test_mean_min_max(self):
        m = RunningMean()
        for x in (2.0, 4.0, 9.0):
            m.add(x)
        assert m.mean == pytest.approx(5.0)
        assert m.minimum == 2.0
        assert m.maximum == 9.0
        assert m.count == 3

    def test_merge(self):
        a, b = RunningMean(), RunningMean()
        a.add(1.0)
        b.add(3.0)
        a.merge(b)
        assert a.count == 2
        assert a.mean == pytest.approx(2.0)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
    def test_mean_matches_reference(self, samples):
        m = RunningMean()
        for s in samples:
            m.add(s)
        assert m.mean == pytest.approx(sum(samples) / len(samples))
        assert m.minimum == min(samples)
        assert m.maximum == max(samples)


class TestHistogram:
    def test_fractions_sum_to_one(self):
        h = Histogram()
        for bucket, n in ((1, 3), (2, 5), (8, 2)):
            h.add(bucket, n)
        fractions = h.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert h.fraction(2) == pytest.approx(0.5)

    def test_cumulative(self):
        h = Histogram()
        h.add(0, 6)
        h.add(1, 3)
        h.add(5, 1)
        assert h.cumulative_fraction(1) == pytest.approx(0.9)
        assert h.cumulative_fraction(5) == pytest.approx(1.0)

    def test_empty(self):
        h = Histogram()
        assert h.total == 0
        assert h.fraction(1) == 0.0
        assert h.fractions() == {}
        assert h.cumulative_fraction(10) == 0.0


class TestRateStat:
    def test_rates(self):
        r = RateStat()
        for hit in (True, True, False, True):
            r.record(hit)
        assert r.rate == pytest.approx(0.75)
        assert r.miss_rate == pytest.approx(0.25)
        assert r.total == 4

    def test_empty_rate(self):
        assert RateStat().rate == 0.0

    @given(st.lists(st.booleans(), max_size=100))
    def test_rate_complement(self, hits):
        r = RateStat()
        for h in hits:
            r.record(h)
        if hits:
            assert r.rate + r.miss_rate == pytest.approx(1.0)


class TestStatGroup:
    def test_registration_and_snapshot(self):
        g = StatGroup("x")
        g.counter("events").add(3)
        g.rate("hits").record(True)
        g.mean("lat").add(10.0)
        g.histogram("dist").add(4)
        snap = g.snapshot()
        assert snap["events"] == 3
        assert snap["hits"]["rate"] == 1.0
        assert snap["lat"]["mean"] == 10.0
        assert snap["dist"] == {4: 1}

    def test_duplicate_name_rejected(self):
        g = StatGroup("x")
        g.counter("a")
        with pytest.raises(ValueError):
            g.rate("a")

    def test_contains_and_getitem(self):
        g = StatGroup("x")
        c = g.counter("a")
        assert "a" in g
        assert g["a"] is c

    def test_reset_clears_all(self):
        g = StatGroup("x")
        g.counter("a").add(2)
        g.rate("b").record(False)
        g.reset()
        assert g.snapshot()["a"] == 0
        assert g.snapshot()["b"]["misses"] == 0
