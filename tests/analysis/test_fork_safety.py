"""Rule ``fork-safety``: no live handles across the worker boundary."""

from tests.analysis.conftest import STRICT


def run(lint, source, **kwargs):
    return lint(source, rules=["fork-safety"], config=STRICT, **kwargs)


class TestRunGridCaptures:
    def test_lambda_capturing_open_file(self, lint):
        result = run(lint, """
            from repro.harness.parallel import run_grid

            def campaign(cells):
                log = open("grid.log", "w")
                return run_grid(lambda cell: log.write(str(cell)), cells)
        """)
        assert len(result.violations) == 1
        assert "open file" in result.violations[0].message

    def test_named_worker_closing_over_socket(self, lint):
        result = run(lint, """
            import socket
            from repro.harness.parallel import run_grid

            def campaign(cells):
                conn = socket.create_connection(("localhost", 9))

                def worker(cell):
                    conn.send(cell)
                    return cell

                return run_grid(worker, cells)
        """)
        assert len(result.violations) == 1
        assert "socket" in result.violations[0].message

    def test_handle_passed_as_plain_argument(self, lint):
        result = run(lint, """
            from repro.harness.parallel import run_grid

            def campaign(worker, cells):
                journal = open("journal.jsonl", "w")
                return run_grid(worker, cells, journal)
        """)
        assert len(result.violations) == 1
        assert "journal" in result.violations[0].message

    def test_clean_module_level_worker(self, lint):
        result = run(lint, """
            from repro.harness.parallel import run_grid

            def worker(cell):
                with open(f"out-{cell}.json", "w") as fh:
                    fh.write(str(cell))
                return cell

            def campaign(cells):
                return run_grid(worker, cells)
        """)
        assert result.ok


class TestPoolSubmissions:
    def test_bound_method_shipping_event_loop(self, lint):
        result = run(lint, """
            import asyncio
            from concurrent.futures import ProcessPoolExecutor

            class Runner:
                def __init__(self):
                    self.loop = asyncio.get_event_loop()

                def work(self, cell):
                    return cell

                def launch(self, cells):
                    pool = ProcessPoolExecutor()
                    return [pool.submit(self.work, c) for c in cells]
        """)
        assert len(result.violations) == 1
        assert "event loop" in result.violations[0].message

    def test_fresh_handle_argument_to_submit(self, lint):
        result = run(lint, """
            from concurrent.futures import ProcessPoolExecutor

            def launch(worker, cells):
                pool = ProcessPoolExecutor()
                return pool.submit(worker, open("state.json"))
        """)
        assert len(result.violations) == 1
        assert "freshly-created" in result.violations[0].message

    def test_plain_data_submission_is_clean(self, lint):
        result = run(lint, """
            from concurrent.futures import ProcessPoolExecutor

            def worker(cell):
                return cell * 2

            def launch(cells):
                pool = ProcessPoolExecutor()
                return [pool.submit(worker, c) for c in cells]
        """)
        assert result.ok
