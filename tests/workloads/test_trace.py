"""Multiprogrammed trace merge tests."""

import pytest

from repro.workloads.mixes import get_mix
from repro.workloads.trace import CORE_ADDRESS_STRIDE, MultiProgramTrace


@pytest.fixture
def trace():
    return MultiProgramTrace(
        get_mix("Q1"), accesses_per_core=2000, seed=3, footprint_scale=64
    )


class TestMerge:
    def test_total_records(self, trace):
        records = list(trace)
        assert len(records) == 8000
        assert trace.total_accesses == 8000

    def test_all_cores_present(self, trace):
        cores = {r.core for r in trace}
        assert cores == {0, 1, 2, 3}

    def test_address_spaces_disjoint(self, trace):
        for record in trace:
            assert record.address // CORE_ADDRESS_STRIDE == record.core

    def test_instruction_time_ordering(self, trace):
        """The merge interleaves cores while all streams are live.

        Once the memory-intensive cores exhaust their per-core access
        quota, the low-intensity stragglers legitimately run alone (the
        paper likewise lets finished cores keep executing), so only the
        first half of the merged stream must show fine interleaving.
        """
        cores_sequence = [r.core for r in trace]
        first_half = cores_sequence[: len(cores_sequence) // 2]
        longest_run = 1
        run = 1
        for a, b in zip(first_half, first_half[1:]):
            run = run + 1 if a == b else 1
            longest_run = max(longest_run, run)
        assert longest_run < 200
        # all cores participate early
        assert set(first_half) == {0, 1, 2, 3}

    def test_deterministic(self):
        def collect():
            t = MultiProgramTrace(
                get_mix("Q3"), accesses_per_core=1000, seed=7, footprint_scale=64
            )
            return [(r.core, r.address, r.is_write) for r in t]

        assert collect() == collect()

    def test_rejects_zero_accesses(self):
        with pytest.raises(ValueError):
            MultiProgramTrace(get_mix("Q1"), accesses_per_core=0)


def test_footprint_scale_applied():
    unscaled = MultiProgramTrace(get_mix("Q1"), accesses_per_core=10, seed=1)
    scaled = MultiProgramTrace(
        get_mix("Q1"), accesses_per_core=10, seed=1, footprint_scale=16
    )
    assert scaled.traces[0].num_regions < unscaled.traces[0].num_regions
