"""Victim buffer study tests."""

import pytest

from repro.bimodal.victim import VictimBuffer, VictimProbeWrapper
from repro.bimodal.cache import BiModalCache, BiModalConfig
from repro.common.config import DRAMCacheGeometry, DRAMGeometry, DRAMTimingConfig
from repro.dram.controller import MemoryController


def make_cache() -> BiModalCache:
    geometry = DRAMCacheGeometry(
        capacity=1 << 19,
        geometry=DRAMGeometry(channels=2, banks_per_channel=8, page_size=2048),
    )
    offchip = MemoryController(
        DRAMGeometry(channels=1, banks_per_channel=16, page_size=2048),
        DRAMTimingConfig.ddr3_1600h(),
    )
    return BiModalCache(
        geometry,
        offchip,
        BiModalConfig(
            locator_index_bits=7,
            predictor_index_bits=8,
            tracker_sample_every=1,
            adaptation_interval=10_000,
            address_bits=36,
        ),
    )


class TestVictimBuffer:
    def test_insert_and_probe(self):
        buf = VictimBuffer(4)
        buf.insert(0x1000)
        assert buf.probe(0x1000)
        assert buf.probe(0x1030)  # same 64B block
        assert not buf.probe(0x2000)

    def test_fifo_capacity(self):
        buf = VictimBuffer(2)
        for addr in (0x1000, 0x2000, 0x3000):
            buf.insert(addr)
        assert not buf.probe(0x1000)
        assert buf.probe(0x2000)
        assert buf.probe(0x3000)
        assert len(buf) == 2

    def test_remove(self):
        buf = VictimBuffer(4)
        buf.insert(0x1000)
        buf.remove(0x1000)
        assert not buf.probe(0x1000)

    def test_hit_rate(self):
        buf = VictimBuffer(4)
        buf.insert(0x1000)
        buf.probe(0x1000)
        buf.probe(0x2000)
        assert buf.hit_rate == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            VictimBuffer(0)


class TestVictimProbeWrapper:
    def test_behaviour_unchanged(self):
        """Measurement-only: the wrapped cache's hits are identical."""
        plain = make_cache()
        wrapped = VictimProbeWrapper(make_cache())
        t = 0
        for i in range(600):
            addr = ((i * 977) % 512) * 512
            a = plain.access(addr, t)
            b = wrapped.access(addr, t)
            assert a.hit == b.hit
            t = a.complete + 10

    def test_evictions_feed_buffer(self):
        wrapped = VictimProbeWrapper(make_cache(), entries=4096)
        am = wrapped.cache.addr_map
        t = 0
        for tag in range(8):  # overflow a 4-way set
            r = wrapped.access(am.rebuild(tag, 3, 0), t)
            t = r.complete + 10
        assert wrapped.buffer.insertions > 0

    def test_conflict_reuse_is_a_victim_hit(self):
        """A block evicted and immediately re-accessed probes as a hit —
        the situation a victim cache exists for."""
        wrapped = VictimProbeWrapper(make_cache(), entries=4096)
        am = wrapped.cache.addr_map
        t = 0
        victim_addr = am.rebuild(0, 3, 0)
        r = wrapped.access(victim_addr, t)
        t = r.complete + 10
        for tag in range(1, 12):
            r = wrapped.access(am.rebuild(tag, 3, 0), t)
            t = r.complete + 10
        assert not wrapped.cache.resident(victim_addr)
        before = wrapped.buffer.probe_hits
        wrapped.access(victim_addr, t)
        assert wrapped.buffer.probe_hits == before + 1
        assert wrapped.victim_hit_fraction > 0.0
