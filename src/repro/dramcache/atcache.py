"""ATCache (Huang & Nagarajan, PACT'14) — tags-in-DRAM + SRAM tag cache.

The DRAM organization mirrors Loh-Hill (tags co-located with 64 B data in
29-way set-rows); a small SRAM *tag cache* holds the full tag arrays of
recently accessed sets so that, on a tag-cache hit, only the data access
goes to DRAM. On a tag-cache miss the DRAM tag read happens first and the
data access follows serially — plus the tags of ``prefetch_granularity``
(PG = 8, the configuration this paper used) neighbouring sets are
installed to exploit spatial locality across sets.

This paper's critique (Section II-B, V-C1): with 64 B blocks the set
population is huge, so the tag cache's reach is limited and its hit rate
moderate — which is what bounds ATCache's average latency.
"""

from __future__ import annotations

from repro.common.config import DRAMCacheGeometry
from repro.common.stats import RateStat
from repro.dram.controller import MemoryController
from repro.dramcache.base import DRAMCacheBase
from repro.dramcache.lohhill import _Set, _TAG_BURSTS, _TAG_COMPARE_CYCLES, _WAYS
from repro.sram.cache import SetAssociativeCache
from repro.sram.replacement import LRU

__all__ = ["ATCache"]

_TAG_CACHE_LATENCY = 2  # small SRAM structure


class ATCache(DRAMCacheBase):
    """Loh-Hill DRAM organization fronted by an SRAM tag cache."""

    name = "atcache"

    def __init__(
        self,
        geometry: DRAMCacheGeometry,
        offchip: MemoryController,
        *,
        tag_cache_sets: int | None = None,
        tag_cache_assoc: int = 16,
        prefetch_granularity: int = 8,
        tag_cache_coverage: float = 0.01,
    ) -> None:
        super().__init__(geometry, offchip)
        self.num_sets = geometry.capacity // geometry.geometry.page_size
        self._sets: dict[int, _Set] = {}
        self._lru = LRU()
        self._channels = geometry.geometry.channels
        self._banks = geometry.geometry.banks_per_channel
        self._tick = 0
        self.pg = prefetch_granularity
        if tag_cache_sets is None:
            # Size the tag cache to ~1% of the DRAM cache's sets. This
            # paper's characterization (Fig. 3, Sec. V-C1) is that the
            # tag cache reaches only a moderate hit rate because 64 B
            # blocks make the set population huge; the coverage ratio is
            # held across capacity-scaled studies.
            groups = max(
                tag_cache_assoc, int(self.num_sets * tag_cache_coverage) // self.pg
            )
            tag_cache_sets = max(1, groups // tag_cache_assoc)
        # The tag cache tracks *which sets'* tags are SRAM-resident; one
        # "block" per PG-aligned group of sets.
        self.tag_cache = SetAssociativeCache(
            size=tag_cache_sets * tag_cache_assoc * 64,
            associativity=tag_cache_assoc,
            block_size=64,
            policy="lru",
            name="atcache-tags",
        )
        self.tag_cache_stat = RateStat()

    # -- shared Loh-Hill style helpers ---------------------------------
    def _set_of(self, address: int) -> tuple[int, int]:
        block = address >> 6
        return block % self.num_sets, block

    def _location(self, set_index: int) -> tuple[int, int, int]:
        channel = set_index % self._channels
        bank = (set_index // self._channels) % self._banks
        row = set_index // (self._channels * self._banks)
        return channel, bank, row

    def _get_set(self, set_index: int) -> _Set:
        entry = self._sets.get(set_index)
        if entry is None:
            entry = _Set()
            self._sets[set_index] = entry
        return entry

    def _group_key(self, set_index: int) -> int:
        """Tag-cache lookup key: PG-aligned set group, 64 B-granular."""
        return (set_index // self.pg) * 64

    def resident(self, address: int) -> bool:
        """State-only residency probe (prefetch bypass support)."""
        set_index, block = self._set_of(address)
        entry = self._sets.get(set_index)
        return entry is not None and block in entry.blocks

    # -------------------------------------------------------------------
    def _access_fast(self, address: int, now: int, is_write: bool) -> int:
        self._tick += 1
        block = address >> 6
        set_index = block % self.num_sets
        entry = self._get_set(set_index)
        channel, bank, row = self._location(set_index)

        tc_hit = self.tag_cache.access(self._group_key(set_index)).hit
        tc_stat = self.tag_cache_stat
        if tc_hit:
            tc_stat.hits += 1
            tags_known = now + _TAG_CACHE_LATENCY
            open_row_for_data = False
        else:
            tc_stat.misses += 1
            # Serial DRAM tag read (row stays open for the data column).
            tag_end = self.dram.access_direct_fast(
                channel, bank, row, now + _TAG_CACHE_LATENCY, _TAG_BURSTS
            )
            tags_known = tag_end + _TAG_COMPARE_CYCLES
            open_row_for_data = True

        way = None
        for w, resident in enumerate(entry.blocks):
            if resident == block:
                way = w
                break

        if way is not None:
            self._hit = True
            entry.last_use[way] = self._tick
            if is_write:
                entry.dirty[way] = True
                return tags_known
            if open_row_for_data:
                return self.dram.column_direct_fast(channel, bank, tags_known, 1)
            return self.dram.access_direct_fast(channel, bank, row, tags_known, 1)

        self._hit = False
        fetch_end = self._fetch_offchip(address, tags_known, bursts=1)
        victim_way = self._victim_way(entry)
        victim = entry.blocks[victim_way]
        if victim is not None and entry.dirty[victim_way]:
            self._writeback_offchip(victim << 6, fetch_end, bursts=1)
        entry.blocks[victim_way] = block
        entry.dirty[victim_way] = is_write
        entry.last_use[victim_way] = self._tick
        self._post_call(
            fetch_end, self.dram.access_direct_fast, channel, bank, row, fetch_end, 1
        )
        return fetch_end

    def _victim_way(self, entry: _Set) -> int:
        for way, resident in enumerate(entry.blocks):
            if resident is None:
                return way
        return self._lru.victim(list(range(_WAYS)), last_use=entry.last_use)

    def reset_stats(self) -> None:
        super().reset_stats()
        self.tag_cache_stat.reset()
        self.tag_cache.reset_stats()

    @property
    def tag_cache_hit_rate(self) -> float:
        return self.tag_cache_stat.rate

    def stats_snapshot(self) -> dict[str, float]:
        snap = super().stats_snapshot()
        snap["tag_cache_hit_rate"] = self.tag_cache_hit_rate
        return snap
