"""Off-chip memory controller.

Approximates the paper's FR-FCFS, open-page controller (Table IV) at
access granularity:

* *open-page / row-hit-first* behaviour comes from the per-bank open-row
  state — requests that hit an open row pay CAS only, which is the
  first-ready prioritization FR-FCFS provides in steady state;
* *queueing* is modeled by a bounded per-channel in-flight window (the
  256-entry command queue of Table IV): a request arriving at a full
  queue waits for the oldest in-flight access to complete;
* *bank/bus contention* is inherent in the bank busy-until and shared
  data-bus occupancy of the substrate.
"""

from __future__ import annotations

from collections import deque

from repro.common.config import DRAMGeometry, DRAMTimingConfig
from repro.common.stats import RunningMean
from repro.dram.channel import ChannelAccess
from repro.dram.device import DRAMDevice

__all__ = ["MemoryController"]


class MemoryController:
    """Timed front-end to an off-chip :class:`DRAMDevice`."""

    __slots__ = (
        "device",
        "_queue_depth",
        "_inflight",
        "read_latency",
        "reads",
        "writes",
    )

    def __init__(
        self,
        geometry: DRAMGeometry,
        timings: DRAMTimingConfig,
        *,
        queue_depth: int = 256,
        name: str = "offchip",
    ) -> None:
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.device = DRAMDevice(geometry, timings, name=name)
        self._queue_depth = queue_depth
        self._inflight: list[deque[int]] = [deque() for _ in range(geometry.channels)]
        self.read_latency = RunningMean()
        self.reads = 0
        self.writes = 0

    def _queue_delayed_time(self, channel: int, now: int) -> int:
        """Arrival time adjusted for command-queue occupancy."""
        queue = self._inflight[channel]
        while queue and queue[0] <= now:
            queue.popleft()
        if len(queue) >= self._queue_depth:
            now = queue[len(queue) - self._queue_depth]
        return now

    def _track(self, channel: int, completion: int) -> None:
        queue = self._inflight[channel]
        queue.append(completion)
        if len(queue) > 4 * self._queue_depth:
            # Bound memory: drop the oldest half; they are long complete
            # relative to any future arrival that could consult them.
            for _ in range(2 * self._queue_depth):
                queue.popleft()

    def read_fast(self, address: int, now: int, bursts: int = 1) -> int:
        """Read ``bursts`` * 64 B; returns the data-end time (flat path)."""
        channel = self.device.channel_of(address)
        start = self._queue_delayed_time(channel, now)
        end = self.device.read_fast(address, start, bursts)
        self._track(channel, end)
        self.reads += 1
        latency = end - now
        mean = self.read_latency
        mean.count += 1
        mean.total += latency
        if latency < mean.minimum:
            mean.minimum = latency
        if latency > mean.maximum:
            mean.maximum = latency
        return end

    def write_fast(self, address: int, now: int, bursts: int = 1) -> int:
        """Posted write: timing matters only for contention, not latency."""
        channel = self.device.channel_of(address)
        start = self._queue_delayed_time(channel, now)
        end = self.device.write_fast(address, start, bursts)
        self._track(channel, end)
        self.writes += 1
        return end

    def read(self, address: int, now: int, *, bursts: int = 1) -> ChannelAccess:
        """Rich wrapper: same queueing and stats as :meth:`read_fast`.

        The returned record's ``request_time`` is the queue-delayed issue
        time (matching the device-level convention), so this cannot be a
        trivial wrapper around the int-returning fast path.
        """
        channel = self.device.channel_of(address)
        start = self._queue_delayed_time(channel, now)
        access = self.device.read(address, start, bursts=bursts)
        self._track(channel, access.data_end)
        self.reads += 1
        self.read_latency.add(access.data_end - now)
        return access

    def write(self, address: int, now: int, *, bursts: int = 1) -> ChannelAccess:
        channel = self.device.channel_of(address)
        start = self._queue_delayed_time(channel, now)
        access = self.device.write(address, start, bursts=bursts)
        self._track(channel, access.data_end)
        self.writes += 1
        return access

    @property
    def bytes_transferred(self) -> int:
        return self.device.bytes_transferred

    def row_buffer_hit_rate(self) -> float:
        return self.device.row_buffer_hit_rate()

    def reset_stats(self) -> None:
        self.device.reset_stats()
        self.read_latency.reset()
        self.reads = 0
        self.writes = 0

    def report_metrics(self, registry, *, prefix: str = "offchip") -> None:
        """Pull-based observability tap (span boundaries, not hot path)."""
        registry.add(f"{prefix}.reads", self.reads)
        registry.add(f"{prefix}.writes", self.writes)
        registry.add(f"{prefix}.bytes", self.bytes_transferred)
        registry.gauge(f"{prefix}.rbh", self.row_buffer_hit_rate())
        registry.gauge(f"{prefix}.avg_read_latency", self.read_latency.mean)
