"""System-level performance metrics (Eyerman & Eeckhout, IEEE Micro'08).

The paper's headline metric is ANTT:

    ANTT = (1/n) * sum_i C_i^MP / C_i^SP

where ``C_i^MP`` are the cycles program ``i`` takes in the
multiprogrammed run and ``C_i^SP`` standalone. Lower is better; the
paper reports *improvement* of scheme A over baseline B as
``(ANTT_B - ANTT_A) / ANTT_B`` in percent.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["antt", "weighted_speedup", "improvement_percent"]


def antt(multiprog_cycles: Sequence[float], standalone_cycles: Sequence[float]) -> float:
    """Average normalized turnaround time (>= 1.0 in practice)."""
    if len(multiprog_cycles) != len(standalone_cycles) or not multiprog_cycles:
        raise ValueError("need equal, non-empty cycle vectors")
    for sp in standalone_cycles:
        if sp <= 0:
            raise ValueError("standalone cycles must be positive")
    ratios = [mp / sp for mp, sp in zip(multiprog_cycles, standalone_cycles)]
    return sum(ratios) / len(ratios)


def weighted_speedup(
    multiprog_cycles: Sequence[float], standalone_cycles: Sequence[float]
) -> float:
    """System throughput metric: sum of per-program IPC ratios."""
    if len(multiprog_cycles) != len(standalone_cycles) or not multiprog_cycles:
        raise ValueError("need equal, non-empty cycle vectors")
    return sum(sp / mp for mp, sp in zip(multiprog_cycles, standalone_cycles))


def improvement_percent(baseline: float, improved: float) -> float:
    """Relative reduction of a lower-is-better metric, in percent."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return 100.0 * (baseline - improved) / baseline
