"""Rule ``determinism-flow``: entropy taint reaching export surfaces."""

from dataclasses import replace

from tests.analysis.conftest import STRICT

CONFIG = STRICT  # determinism_allow=() : no sanitizer modules


def run(lint, source, **kwargs):
    return lint(source, rules=["determinism-flow"], config=CONFIG, **kwargs)


class TestStatsExportSink:
    def test_wallclock_into_flatten_stats(self, lint):
        result = run(lint, """
            import time
            from repro.harness.export import flatten_stats

            def emit(stats):
                stats["run.stamp"] = time.time()
                flatten_stats(stats)
        """)
        assert len(result.violations) == 1
        assert "wallclock" in result.violations[0].message

    def test_taint_through_helper_and_to_dict_return(self, lint):
        result = run(lint, """
            import os

            def token():
                return os.urandom(8).hex()

            class Result:
                def to_dict(self):
                    return {"run.token": token()}
        """)
        assert len(result.violations) == 1
        assert "entropy" in result.violations[0].message

    def test_plain_config_values_are_clean(self, lint):
        result = run(lint, """
            from repro.harness.export import flatten_stats

            def emit(config, stats):
                stats["sim.seed"] = config.seed
                flatten_stats(stats)
        """)
        assert result.ok


class TestWireEncodeSink:
    def test_object_address_into_wire(self, lint):
        result = run(lint, """
            from repro.api.wire import to_wire

            def encode(request):
                tag = id(request)
                return to_wire({"tag": tag})
        """)
        assert len(result.violations) == 1
        assert "object-address" in result.violations[0].message


class TestCheckpointSink:
    def test_tainted_result_kwarg_flagged(self, lint):
        result = run(lint, """
            import time

            def save(ckpt, cell):
                ckpt.append(cell, result=time.time_ns())
        """)
        assert len(result.violations) == 1

    def test_wall_s_metadata_kwarg_is_allowed(self, lint):
        # Deliberate design: checkpoint timing metadata (wall_s) may be
        # nondeterministic; only the replayed result payload must not be.
        result = run(lint, """
            import time

            def save(ckpt, cell, value):
                ckpt.append(cell, result=value, wall_s=time.time())
        """)
        assert result.ok


class TestSanitizers:
    def test_allowlisted_module_is_a_sanitizer(self, lint):
        result = lint(
            """
            from obs.clock import stamp
            from repro.harness.export import flatten_stats

            def emit(stats):
                stats["run.stamp"] = stamp()
                flatten_stats(stats)
            """,
            rules=["determinism-flow"],
            config=replace(STRICT, determinism_allow=("obs/*",)),
            extra={
                "obs/clock.py": """
                    import time

                    def stamp():
                        return time.time()
                    """,
            },
        )
        assert result.ok

    def test_sorted_set_iteration_is_clean(self, lint):
        tainted = run(lint, """
            from repro.harness.export import flatten_stats

            def emit(names):
                flatten_stats(set(names))
        """)
        clean = run(lint, """
            from repro.harness.export import flatten_stats

            def emit(names):
                flatten_stats(sorted(set(names)))
        """)
        assert len(tainted.violations) == 1
        assert "set-order" in tainted.violations[0].message
        assert clean.ok
