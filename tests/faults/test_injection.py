"""Deterministic fault-injection harness."""

import json
import os

import pytest

from repro.harness import faults
from repro.harness.faults import (
    FatalInjectedFault,
    InjectedFault,
    InjectionPlan,
)


class TestInjectionPlan:
    def test_no_spec_is_noop(self):
        InjectionPlan(actions={}).fire(0, 1)

    def test_raise_action(self):
        plan = InjectionPlan(actions={2: {"action": "raise"}})
        plan.fire(1, 1)  # other cells untouched
        with pytest.raises(InjectedFault):
            plan.fire(2, 1)

    def test_flaky_recovers_after_k_attempts(self):
        plan = InjectionPlan(actions={0: {"action": "flaky", "fails": 2}})
        with pytest.raises(InjectedFault):
            plan.fire(0, 1)
        with pytest.raises(InjectedFault):
            plan.fire(0, 2)
        plan.fire(0, 3)  # third attempt succeeds

    def test_fatal_is_not_an_exception(self):
        plan = InjectionPlan(actions={0: {"action": "fatal"}})
        with pytest.raises(FatalInjectedFault):
            plan.fire(0, 1)
        assert not issubclass(FatalInjectedFault, Exception)

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            InjectionPlan(actions={0: {"action": "explode"}}).fire(0, 1)


class TestSpecParsing:
    def test_shorthand_strings(self):
        env = faults.injection_env({1: "flaky:2", 3: "hang:30", 5: "raise"})
        plan = json.loads(env[faults.INJECT_ENV])
        assert plan["1"] == {"action": "flaky", "fails": 2}
        assert plan["3"] == {"action": "hang", "seconds": 30.0}
        assert plan["5"] == {"action": "raise"}

    def test_unknown_action_rejected_at_parse(self):
        with pytest.raises(ValueError):
            faults.injection_env({0: "vanish"})


class TestEnvPropagation:
    def test_inject_sets_and_restores_env(self, monkeypatch):
        monkeypatch.delenv(faults.INJECT_ENV, raising=False)
        with faults.inject({1: "raise"}):
            assert faults.INJECT_ENV in os.environ
            plan = faults.active_plan()
            assert plan is not None
            assert plan.spec_for(1) == {"action": "raise"}
            assert plan.spec_for(0) is None
        assert faults.INJECT_ENV not in os.environ
        assert faults.active_plan() is None

    def test_active_plan_memoizes_parse(self, monkeypatch):
        with faults.inject({0: "raise"}):
            assert faults.active_plan() is faults.active_plan()

    def test_bad_env_json_is_ignored(self, monkeypatch):
        monkeypatch.setenv(faults.INJECT_ENV, "{not json")
        assert faults.active_plan() is None
