"""Rule ``fast-reference-parity`` — fast and reference paths share code.

PR 4 keeps two entry points per scheme: the merged/inlined
``access_fast`` and a clean reference ``_access_fast`` whose equality
the golden byte-identity tests pin at runtime. Runtime tests only catch
drift on the inputs they replay; this rule enforces the *structural*
invariants that make drift unlikely in the first place:

* a class overriding both ``access_fast`` and ``_access_fast`` must
  route both through the same shared ``_access*`` continuation (for
  ``BiModalCache``: both call ``self._access_cold``), and the merged
  entry must leave the ``self._hit`` scratch attribute set;
* a scheme overriding the rich ``access`` wrapper must delegate to
  ``access_fast`` and rebuild the record from the same scratch
  attribute (``self._hit``) rather than recomputing hit/miss.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.model import ClassInfo, ProjectModel, Violation
from repro.analysis.rules import Rule, register_rule


def _self_method_calls(func: ast.FunctionDef, prefix: str = "") -> set[str]:
    """Names of ``self.<name>(...)`` calls in ``func`` (filtered by prefix)."""
    found: set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
            and node.func.attr.startswith(prefix)
        ):
            found.add(node.func.attr)
    return found


def _reads_self_attr(func: ast.FunctionDef, attr: str) -> bool:
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Attribute)
            and node.attr == attr
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return True
    return False


def _assigns_self_attr(func: ast.FunctionDef, attr: str) -> bool:
    for node in ast.walk(func):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and target.attr == attr
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                return True
    return False


def _is_abstract(func: ast.FunctionDef) -> bool:
    for deco in func.decorator_list:
        target = deco.attr if isinstance(deco, ast.Attribute) else getattr(deco, "id", "")
        if target == "abstractmethod":
            return True
    body = [
        node
        for node in func.body
        if not (
            isinstance(node, ast.Expr)
            and isinstance(node.value, ast.Constant)
        )
        and not isinstance(node, ast.Pass)
    ]
    return not body


@register_rule
class FastReferenceParityRule(Rule):
    name = "fast-reference-parity"
    version = 1
    description = (
        "merged fast entries must structurally share their reference "
        "copy's continuation and the _hit scratch contract"
    )
    rationale = (
        "Each scheme keeps a merged/inlined access_fast and a clean "
        "reference _access_fast whose equality the golden tests pin at "
        "runtime — but runtime tests only catch drift on inputs they "
        "replay. Requiring both entries to route through the same "
        "_access* continuation, and the fast entry to maintain the "
        "self._hit scratch contract, makes silent divergence "
        "structurally unlikely."
    )
    example_bad = """\
class Cache:
    def access_fast(self, address, now, is_write):
        self._hit = address in self.lines
        return 1 if self._hit else 40

    def _access_fast(self, address, now, is_write):
        return self._access_cold(address, now, is_write)
"""
    example_good = """\
class Cache:
    def access_fast(self, address, now, is_write):
        self._hit = self._access_cold(address, now, is_write) == 1
        return 1 if self._hit else 40

    def _access_fast(self, address, now, is_write):
        self._hit = self._access_cold(address, now, is_write) == 1
        return 1 if self._hit else 40
"""

    def check_project(self, project: ProjectModel) -> Iterator[Violation]:
        base = project.config.scheme_base
        for info in project.classes:
            methods = info.methods
            fast = methods.get("access_fast")
            reference = methods.get("_access_fast")
            if fast is not None and reference is not None:
                yield from self._check_pair(info, fast, reference)
            if (
                base
                and (info.name == base or project.is_subclass_of(info, base))
                and "access" in methods
            ):
                yield from self._check_rich_wrapper(info, methods["access"])

    def _check_pair(
        self, info: ClassInfo, fast: ast.FunctionDef, reference: ast.FunctionDef
    ) -> Iterator[Violation]:
        source = info.source
        if _is_abstract(reference):
            # Dispatcher pattern (DRAMCacheBase): access_fast is the
            # accounting shell and must route through the subclass hook
            # and consume its scratch outcome.
            if "_access_fast" not in _self_method_calls(fast):
                yield source.violation(
                    self.name, fast,
                    f"{info.name}.access_fast must dispatch to "
                    "self._access_fast (abstract scheme hook)",
                )
            elif not _reads_self_attr(fast, "_hit"):
                yield source.violation(
                    self.name, fast,
                    f"{info.name}.access_fast dispatches to _access_fast "
                    "but never reads the self._hit scratch outcome",
                )
            return
        fast_shared = _self_method_calls(fast, prefix="_access")
        ref_shared = _self_method_calls(reference, prefix="_access")
        ref_shared.discard("_access_fast")  # base-class dispatch, not sharing
        shared = fast_shared & ref_shared
        if not shared:
            yield source.violation(
                self.name, fast,
                f"{info.name}.access_fast and ._access_fast share no "
                "_access* continuation method; the merged entry must call "
                "the same cold-path helper as the reference copy (e.g. "
                "_access_cold) so the two cannot drift",
            )
        missing = ref_shared - fast_shared
        if shared and missing:
            yield source.violation(
                self.name, fast,
                f"{info.name}._access_fast routes through "
                f"{', '.join(sorted(missing))} but access_fast does not; "
                "the merged entry no longer covers the reference path",
            )
        if not _assigns_self_attr(fast, "_hit"):
            yield source.violation(
                self.name, fast,
                f"{info.name}.access_fast never assigns self._hit; the "
                "rich access() wrapper rebuilds its record from that "
                "scratch attribute",
            )

    def _check_rich_wrapper(
        self, info: ClassInfo, access: ast.FunctionDef
    ) -> Iterator[Violation]:
        source = info.source
        calls = _self_method_calls(access)
        if "access_fast" not in calls:
            yield source.violation(
                self.name, access,
                f"{info.name}.access must delegate to self.access_fast so "
                "the rich and fast paths cannot diverge",
            )
        elif not _reads_self_attr(access, "_hit"):
            yield source.violation(
                self.name, access,
                f"{info.name}.access delegates to access_fast but ignores "
                "the self._hit scratch attribute; the record must be "
                "rebuilt from the fast path's own outcome",
            )
