"""Cache-wide (X_glob, Y_glob) adaptation (Section III-B4).

The DRAM cache controller keeps a global preferred state and two demand
counters, ``D_big`` and ``D_small``, incremented on each cache miss by
the predicted size of the missing block. After every interval of
``interval`` DRAM cache accesses (paper: 1M), it computes

    R = W * D_small / D_big          (W = 0.75 boosts big blocks)

and nudges the global state one step toward more small ways when
``R > Y/X`` or toward more big ways when ``R < (Y-8)/(X+1)``. Individual
sets then drift toward the global state through the Table II replacement
actions on their own misses.
"""

from __future__ import annotations

__all__ = ["GlobalStateController"]


class GlobalStateController:
    """Demand-driven selector of the preferred (X, Y) set state."""

    def __init__(
        self,
        states: tuple[tuple[int, int], ...],
        *,
        weight: float = 0.75,
        interval: int = 1_000_000,
        smalls_per_big: int = 8,
    ) -> None:
        if not states:
            raise ValueError("states must be non-empty")
        if weight <= 0:
            raise ValueError("weight must be positive")
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self._states = states
        self.weight = weight
        self.interval = interval
        self.smalls_per_big = smalls_per_big
        self._rank = 0  # index into states; 0 = all big
        self._accesses_in_interval = 0
        self.demand_big = 0
        self.demand_small = 0
        self.updates = 0
        self.transitions = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> tuple[int, int]:
        return self._states[self._rank]

    @property
    def rank(self) -> int:
        return self._rank

    def record_miss(self, *, predicted_big: bool) -> None:
        """Account demand at each miss event."""
        if predicted_big:
            self.demand_big += 1
        else:
            self.demand_small += 1

    def record_access(self) -> None:
        """Advance the interval clock; adapt at interval boundaries."""
        self._accesses_in_interval += 1
        if self._accesses_in_interval >= self.interval:
            self._accesses_in_interval = 0
            self._adapt()

    # ------------------------------------------------------------------
    def _adapt(self) -> None:
        self.updates += 1
        x, y = self.state
        d_big, d_small = self.demand_big, self.demand_small
        self.demand_big = 0
        self.demand_small = 0
        if d_big == 0 and d_small == 0:
            return
        # R = W * D_small / D_big; an all-big demand drives R to 0, an
        # all-small demand to +inf, both handled without division hazards.
        ratio = (
            float("inf") if d_big == 0 else self.weight * d_small / d_big
        )
        step = self.smalls_per_big
        if ratio > y / x and self._rank + 1 < len(self._states):
            self._rank += 1
            self.transitions += 1
        elif self._rank > 0 and (
            ratio < (y - step) / (x + 1)
            # The paper's strict inequality can never fire at the boundary
            # (Y-8 = 0 demands R < 0); zero small demand is the unambiguous
            # all-big signal, so it steps back toward (4, 0) as intended.
            or d_small == 0
        ):
            self._rank -= 1
            self.transitions += 1

    def force_state(self, rank: int) -> None:
        """Pin the global state (used by fixed-block ablations)."""
        if not 0 <= rank < len(self._states):
            raise ValueError("rank out of range")
        self._rank = rank
