"""simlint rule registry.

A rule is a class with a unique ``name``, a one-line ``description``
and two generator hooks:

* ``check_file(source, project)`` — per-module findings;
* ``check_project(project)`` — cross-file findings (hierarchy,
  registry completeness, ...).

Register with the :func:`register_rule` class decorator; the engine
instantiates each rule once per run. Rule modules are imported here so
``all_rules()`` is complete after ``import repro.analysis.rules``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.analysis.model import ProjectModel, SourceFile, Violation

__all__ = ["Rule", "all_rules", "register_rule"]


class Rule:
    """Base class: override one or both check hooks.

    ``version`` participates in the incremental-cache key: bump it
    whenever a rule's behavior changes so stale cached findings are
    invalidated. ``rationale`` plus the ``example_bad``/``example_good``
    pair back ``python -m repro lint --explain <rule>``; the pair is
    validated by tests/analysis/test_explain.py (bad must trigger the
    rule, good must not).
    """

    name: str = ""
    description: str = ""
    version: int = 1
    rationale: str = ""
    example_bad: str = ""
    example_good: str = ""

    def check_file(
        self, source: SourceFile, project: ProjectModel
    ) -> Iterator[Violation]:
        return iter(())

    def check_project(self, project: ProjectModel) -> Iterator[Violation]:
        return iter(())


_RULES: dict[str, type[Rule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    if not cls.name:
        raise ValueError(f"rule {cls.__name__} must set a name")
    if cls.name in _RULES:
        raise ValueError(f"rule {cls.name!r} already registered")
    _RULES[cls.name] = cls
    return cls


def all_rules(select: Iterable[str] = ()) -> dict[str, Rule]:
    """Instantiate registered rules (optionally a named subset)."""
    wanted = list(select)
    unknown = [name for name in wanted if name not in _RULES]
    if unknown:
        raise KeyError(
            f"unknown rule(s) {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(_RULES))}"
        )
    names = wanted or list(_RULES)
    return {name: _RULES[name]() for name in names}


# Import rule modules for their registration side effects.
from repro.analysis.rules import (  # noqa: E402
    api_stability,
    async_safety,
    backend_parity,
    determinism,
    determinism_flow,
    fork_safety,
    hotpath,
    parity,
    scheme_registry,
    slots,
    stats_protocol,
)

_ = (
    api_stability,
    async_safety,
    backend_parity,
    determinism,
    determinism_flow,
    fork_safety,
    hotpath,
    parity,
    scheme_registry,
    slots,
    stats_protocol,
)
