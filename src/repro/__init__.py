"""repro — reproduction of the Bi-Modal DRAM Cache (MICRO 2014).

A from-scratch Python implementation of Gulur et al.'s Bi-Modal stacked
DRAM cache and of everything its evaluation depends on: stacked/off-chip
DRAM timing, SRAM hierarchy, baseline DRAM cache organizations
(AlloyCache, Loh-Hill, ATCache, Footprint Cache), synthetic
multiprogrammed workloads, an interval core model producing ANTT, a
memory energy model, and per-figure experiment harnesses.

Quick start::

    from repro.harness import ExperimentSetup, run_scheme_on_mix

    setup = ExperimentSetup(num_cores=4, accesses_per_core=40_000)
    result = run_scheme_on_mix("bimodal", "Q7", setup=setup)
    print(result.stats["hit_rate"], result.stats["avg_read_latency"])
"""

from repro.bimodal import BiModalCache, BiModalConfig
from repro.dramcache import (
    AlloyCache,
    ATCache,
    DRAMCacheBase,
    FootprintCache,
    LohHillCache,
)

__version__ = "1.0.0"

__all__ = [
    "BiModalCache",
    "BiModalConfig",
    "AlloyCache",
    "ATCache",
    "DRAMCacheBase",
    "FootprintCache",
    "LohHillCache",
    "__version__",
]
