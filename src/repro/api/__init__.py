"""``repro.api``: the typed public facade of the simulator.

Everything outside-world-facing goes through here: the CLI subcommands,
the ``repro serve`` daemon and library callers all build requests with
the facade constructors, execute them with the facade runners, and
exchange them as the frozen wire dataclasses. See ``docs/service.md``
for the socket protocol built on top.

    from repro import api

    request = api.sim_request("bimodal-cache", "MIX1", backend="numpy")
    result = api.run_sim(request)          # locally, or
    result = api.ServiceClient().run_sim(request)   # on a warm daemon
"""

from repro.api.catalog import (
    ExperimentSpec,
    experiment_catalog,
    experiment_ids,
    get_experiment,
)
from repro.api.client import AsyncServiceClient, ServiceClient
from repro.api.errors import (
    ERR_BAD_REQUEST,
    ERR_BAD_SCHEMA,
    ERR_INTERNAL,
    ERR_OVERLOADED,
    EXIT_OK,
    EXIT_PARTIAL,
    EXIT_PERF_GATE,
    EXIT_USAGE,
    RequestError,
    ServiceError,
)
from repro.api.facade import (
    api_error,
    grid_request,
    grid_setup,
    progress_event,
    run_grid,
    run_sim,
    sim_request,
    stats_result,
    validate_grid,
    validate_sim,
)
from repro.api.types import (
    API_SCHEMA,
    ApiError,
    GridRequest,
    GridResult,
    ProgressEvent,
    SimRequest,
    SimResult,
    StatsResult,
)
from repro.api.wire import WireError, decode_line, encode_line, from_wire, to_wire

__all__ = [
    "API_SCHEMA",
    "ApiError",
    "AsyncServiceClient",
    "ERR_BAD_REQUEST",
    "ERR_BAD_SCHEMA",
    "ERR_INTERNAL",
    "ERR_OVERLOADED",
    "EXIT_OK",
    "EXIT_PARTIAL",
    "EXIT_PERF_GATE",
    "EXIT_USAGE",
    "ExperimentSpec",
    "GridRequest",
    "GridResult",
    "ProgressEvent",
    "RequestError",
    "ServiceClient",
    "ServiceError",
    "SimRequest",
    "SimResult",
    "StatsResult",
    "WireError",
    "api_error",
    "decode_line",
    "encode_line",
    "experiment_catalog",
    "experiment_ids",
    "from_wire",
    "get_experiment",
    "grid_request",
    "grid_setup",
    "progress_event",
    "run_grid",
    "run_sim",
    "sim_request",
    "stats_result",
    "to_wire",
    "validate_grid",
    "validate_sim",
]
