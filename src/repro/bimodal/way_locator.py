"""SRAM Way Locator (Section III-C).

A small 2-way set-associative table indexed by ``K`` bits drawn from the
tag and set-index bits of the incoming address. Each entry stores a valid
bit, a block-size bit, the *remaining* set+tag bits, the 3 leading offset
bits (so small blocks match exactly) and the way identification number.

Because the full address (set + tag + leading offset bits for small
blocks) is compared, the locator **never mispredicts**: a hit identifies
a resident block and its exact DRAM column, so no metadata access is
needed on reads. Entries are installed on locator misses that turn out to
be DRAM cache hits or fills, and are invalidated when their block is
evicted (keeping the no-misprediction invariant).
"""

from __future__ import annotations

from repro.common.stats import RateStat
from repro.common.tables import sram_latency_cycles, way_locator_storage_bytes

__all__ = ["WayLocatorEntry", "WayLocator"]


class WayLocatorEntry:
    """One locator entry (Figure 6)."""

    __slots__ = ("key", "is_big", "sub_offset", "way", "last_use")

    def __init__(self, key: int, is_big: bool, sub_offset: int, way: int, tick: int):
        self.key = key
        self.is_big = is_big
        self.sub_offset = sub_offset
        self.way = way
        self.last_use = tick


class WayLocator:
    """2-way set-associative way cache with exact-match lookups."""

    __slots__ = (
        "index_bits",
        "address_bits",
        "set_index_bits",
        "offset_bits",
        "max_ways",
        "_mask",
        "_table",
        "_tick",
        "lookups",
        "insertions",
        "invalidations",
        "storage_bytes",
        "latency_cycles",
    )

    def __init__(
        self,
        index_bits: int,
        *,
        address_bits: int = 40,
        set_index_bits: int = 16,
        offset_bits: int = 9,
        max_ways: int = 18,
    ) -> None:
        if index_bits < 1:
            raise ValueError("index_bits must be >= 1")
        self.index_bits = index_bits
        self.address_bits = address_bits
        self.set_index_bits = set_index_bits
        self.offset_bits = offset_bits
        self.max_ways = max_ways
        self._mask = (1 << index_bits) - 1
        self._table: list[list[WayLocatorEntry]] = [
            [] for _ in range(1 << index_bits)
        ]
        self._tick = 0
        self.lookups = RateStat()
        self.insertions = 0
        self.invalidations = 0
        # Geometry-derived constants, computed once (the access path reads
        # latency_cycles on every lookup).
        #: Total SRAM footprint (Table III formula).
        self.storage_bytes: float = way_locator_storage_bytes(
            address_bits, set_index_bits, offset_bits, index_bits, max_ways
        )
        #: Lookup latency from the CACTI staircase (Table III: 1-2 cy).
        self.latency_cycles: int = sram_latency_cycles(
            max(1, int(self.storage_bytes))
        )

    @property
    def num_entries(self) -> int:
        return 2 << self.index_bits

    # ------------------------------------------------------------------
    def _split(self, set_index: int, tag: int) -> tuple[int, int]:
        """(table index, stored key) from the set+tag bits."""
        combined = (tag << self.set_index_bits) | set_index
        return combined & self._mask, combined >> self.index_bits

    def lookup(self, set_index: int, tag: int, sub_offset: int) -> tuple[bool, int] | None:
        """Return (is_big, way) on a locator hit, else None.

        A big-block entry matches any sub-offset of its 512 B frame; a
        small-block entry additionally requires the 3 offset bits to
        match — this is what makes hits always correct.

        Called once per cache access, so _split and RateStat.record are
        inlined here.
        """
        tick = self._tick + 1
        self._tick = tick
        combined = (tag << self.set_index_bits) | set_index
        key = combined >> self.index_bits
        lookups = self.lookups
        for entry in self._table[combined & self._mask]:
            if entry.key != key:
                continue
            if entry.is_big or entry.sub_offset == sub_offset:
                entry.last_use = tick
                lookups.hits += 1
                return entry.is_big, entry.way
        lookups.misses += 1
        return None

    def insert(
        self, set_index: int, tag: int, sub_offset: int, *, is_big: bool, way: int
    ) -> None:
        """Install the way of a just-accessed block (LRU within the pair)."""
        self._tick += 1
        index, key = self._split(set_index, tag)
        bucket = self._table[index]
        for entry in bucket:
            if entry.key == key and entry.is_big == is_big and (
                is_big or entry.sub_offset == sub_offset
            ):
                entry.way = way
                entry.last_use = self._tick
                return
        entry = WayLocatorEntry(key, is_big, 0 if is_big else sub_offset, way, self._tick)
        if len(bucket) < 2:
            bucket.append(entry)
        else:
            lru = min(range(2), key=lambda i: bucket[i].last_use)
            bucket[lru] = entry
        self.insertions += 1

    def invalidate(self, set_index: int, tag: int, sub_offset: int, *, is_big: bool) -> bool:
        """Remove a block's entry on eviction; True if one was dropped."""
        index, key = self._split(set_index, tag)
        bucket = self._table[index]
        for i, entry in enumerate(bucket):
            if entry.key == key and entry.is_big == is_big and (
                is_big or entry.sub_offset == sub_offset
            ):
                del bucket[i]
                self.invalidations += 1
                return True
        return False

    @property
    def hit_rate(self) -> float:
        return self.lookups.rate

    def occupancy(self) -> int:
        return sum(len(bucket) for bucket in self._table)
