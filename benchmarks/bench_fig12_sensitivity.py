"""Figure 12: sensitivity to cache size, big-block size and associativity.

Paper: the ANTT gains over same-sized AlloyCache configurations hold at
64 MB and 512 MB caches, with 256 B and 1024 B big blocks, and at 8-way
big-block associativity (4 KB sets) — notation BiModal(X-Y-Z).
"""

from repro.harness.experiments import fig12_sensitivity
from repro.harness.runner import ExperimentSetup

SENSITIVITY_MIXES = ["Q2", "Q12"]


def test_fig12_sensitivity(benchmark, report):
    setup = ExperimentSetup(num_cores=4, accesses_per_core=10_000, seed=1)
    rows = benchmark.pedantic(
        lambda: fig12_sensitivity(setup=setup, mix_names=SENSITIVITY_MIXES),
        rounds=1,
        iterations=1,
    )
    report(rows, title="Figure 12: ANTT gain across configurations")
    assert len(rows) == 6
    gains = {r["config"]: r["mean_antt_gain_pct"] for r in rows}
    # The organization keeps its advantage across the configuration
    # space (the 1024B-big-block variant is the weakest, as its misses
    # are the costliest).
    positive = sum(1 for g in gains.values() if g > 0)
    assert positive >= 4, gains
    # The paper's default configuration is among the winners.
    assert gains["BiModal(128M-512-4)"] > 0
