"""Error and exit-code contract shared by the CLI, facade and server.

One table of process exit codes, used identically by ``repro run``,
``repro bench``, ``repro serve`` and the perfbench gate, so scripting
against any entry point reads the same contract:

======  ==========================================================
0       success
2       bad request/configuration (one-line ``error: ...`` on stderr)
3       grid completed but one or more cells permanently failed
4       perf gate: measured throughput regressed below the threshold
======  ==========================================================

:class:`RequestError` is how the facade rejects invalid requests; it
carries the :class:`~repro.api.types.ApiError` envelope the server
puts on the wire, and the CLI maps it to exit code 2.
:class:`ServiceError` is its client-side mirror: raised by
:mod:`repro.api.client` when the server answers with an error envelope.
"""

from __future__ import annotations

from repro.api.types import ApiError

__all__ = [
    "EXIT_OK",
    "EXIT_USAGE",
    "EXIT_PARTIAL",
    "EXIT_PERF_GATE",
    "ERR_BAD_REQUEST",
    "ERR_BAD_SCHEMA",
    "ERR_DEADLINE",
    "ERR_DRAINING",
    "ERR_OVERLOADED",
    "ERR_INTERNAL",
    "RETRYABLE_CODES",
    "RequestError",
    "ServiceError",
]

EXIT_OK = 0
EXIT_USAGE = 2
EXIT_PARTIAL = 3
EXIT_PERF_GATE = 4

ERR_BAD_REQUEST = "bad-request"
ERR_BAD_SCHEMA = "bad-schema"
ERR_OVERLOADED = "overloaded"
ERR_INTERNAL = "internal"
#: The request's ``deadline_s`` wall-clock budget elapsed before it
#: finished. Completed grid cells stay checkpointed, so a resubmit
#: (with a larger budget) resumes rather than recomputes.
ERR_DEADLINE = "deadline_exceeded"
#: The server is draining (SIGTERM/SIGINT received): no new work is
#: admitted; resubmit after the restart — journaled grids recover.
ERR_DRAINING = "draining"

#: Error codes a client may safely retry against the same request:
#: transient server conditions, not properties of the request itself.
RETRYABLE_CODES = (ERR_OVERLOADED, ERR_DRAINING)


class RequestError(ValueError):
    """A request the facade refuses; message is one clean line."""

    def __init__(self, message: str, *, code: str = ERR_BAD_REQUEST) -> None:
        super().__init__(message)
        self.code = code

    def envelope(self) -> ApiError:
        return ApiError(code=self.code, message=str(self))


class ServiceError(RuntimeError):
    """The server answered a request with an error envelope."""

    def __init__(self, error: ApiError) -> None:
        super().__init__(f"{error.code}: {error.message}")
        self.error = error

    @property
    def code(self) -> str:
        return self.error.code
