"""A DRAM channel: a set of banks sharing one data bus.

Bank-level parallelism is captured by per-bank state; the shared data bus
serializes transfers. A multi-burst read (e.g. a 512 B big-block fill =
8 bursts of 64 B, or the 2-burst metadata read of 18 tags) occupies the
bus for ``bursts * burst_cycles``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import DRAMGeometry, DRAMTimingConfig
from repro.dram.bank import Bank, RowOutcome

__all__ = ["ChannelAccess", "Channel"]

_OUTCOMES = (RowOutcome.HIT, RowOutcome.CLOSED, RowOutcome.CONFLICT)


@dataclass(slots=True)
class ChannelAccess:
    """Completed access: request time -> last data beat on the bus."""

    outcome: RowOutcome
    request_time: int
    data_start: int
    data_end: int
    bursts: int

    @property
    def latency(self) -> int:
        return self.data_end - self.request_time

    @property
    def critical_end(self) -> int:
        """When the first (critical) 64 B beat is available.

        Multi-burst fetches deliver critical-word-first: the requesting
        core unblocks after the first beat while the rest of the block
        streams into the fill buffer.
        """
        if self.bursts <= 1:
            return self.data_end
        per_burst = (self.data_end - self.data_start) // self.bursts
        return self.data_start + per_burst


class Channel:
    """Banks plus one shared, serializing data bus."""

    __slots__ = (
        "_timings",
        "_burst_cycles",
        "banks",
        "_bus_free_at",
        "bus_busy_cycles",
        "last_data_start",
    )

    def __init__(
        self,
        timings: DRAMTimingConfig,
        num_banks: int,
        *,
        refresh_stagger: int = 0,
    ) -> None:
        if num_banks < 1:
            raise ValueError("num_banks must be >= 1")
        self._timings = timings
        self._burst_cycles = timings.burst_cycles
        self.banks = [
            Bank(timings, refresh_offset=(i * refresh_stagger)) for i in range(num_banks)
        ]
        self._bus_free_at = 0
        self.bus_busy_cycles = 0
        # Fast-path scratch: bus data-start of the most recent access_fast.
        self.last_data_start = 0

    @property
    def num_banks(self) -> int:
        return len(self.banks)

    @property
    def bus_free_at(self) -> int:
        return self._bus_free_at

    def _transfer(
        self, cas_done: int, bursts: int, transfer_cycles: int | None
    ) -> tuple[int, int]:
        start = max(cas_done, self._bus_free_at)
        cycles = (
            transfer_cycles
            if transfer_cycles is not None
            else bursts * self._timings.burst_cycles
        )
        end = start + cycles
        self._bus_free_at = end
        self.bus_busy_cycles += end - start
        return start, end

    def access_fast(
        self,
        bank: int,
        row: int,
        now: int,
        bursts: int = 1,
        transfer_cycles: int | None = None,
    ) -> int:
        """Flat fast path of :meth:`access`; returns the data-end time.

        The row-buffer case is left in ``self.banks[bank].last_outcome``
        and the bus data-start in ``self.last_data_start``.
        """
        cas_done = self.banks[bank].access_fast(row, now)
        start = cas_done if cas_done > self._bus_free_at else self._bus_free_at
        cycles = (
            transfer_cycles
            if transfer_cycles is not None
            else bursts * self._burst_cycles
        )
        end = start + cycles
        self._bus_free_at = end
        self.bus_busy_cycles += cycles
        self.last_data_start = start
        return end

    def access(
        self,
        bank: int,
        row: int,
        now: int,
        *,
        bursts: int = 1,
        transfer_cycles: int | None = None,
    ) -> ChannelAccess:
        """One row-buffer-managed access transferring ``bursts`` * 64 B.

        ``transfer_cycles`` overrides the bus occupancy for odd-sized
        transfers (e.g. AlloyCache's 72-byte TAD burst).
        """
        if bursts < 1:
            raise ValueError("bursts must be >= 1")
        end = self.access_fast(bank, row, now, bursts, transfer_cycles)
        return ChannelAccess(
            _OUTCOMES[self.banks[bank].last_outcome],
            now,
            self.last_data_start,
            end,
            bursts,
        )

    def activate(self, bank: int, row: int, now: int) -> int:
        """Open a row without transferring data (anticipatory activation)."""
        return self.banks[bank].activate(row, now)

    def column_after_activate(self, bank: int, now: int, *, bursts: int = 1) -> ChannelAccess:
        """Column access to a row previously opened with :meth:`activate`.

        Used for the Bi-Modal way-locator-miss path: the data row was opened
        concurrently with the metadata read; once tags match, only CAS +
        transfer remain.
        """
        cas_done = self.banks[bank].column_access(now)
        start, end = self._transfer(cas_done, bursts, None)
        return ChannelAccess(
            outcome=RowOutcome.HIT,
            request_time=now,
            data_start=start,
            data_end=end,
            bursts=bursts,
        )

    def row_buffer_hit_rate(self) -> float:
        hits = sum(b.row_buffer.hits for b in self.banks)
        total = sum(b.row_buffer.total for b in self.banks)
        return hits / total if total else 0.0

    def reset_stats(self) -> None:
        for bank in self.banks:
            bank.reset_stats()
        self.bus_busy_cycles = 0


def build_channels(
    geometry: DRAMGeometry, timings: DRAMTimingConfig, *, refresh_stagger: int = 97
) -> list[Channel]:
    """Construct the channels of a device with staggered bank refresh."""
    return [
        Channel(timings, geometry.banks_per_channel, refresh_stagger=refresh_stagger)
        for _ in range(geometry.channels)
    ]
