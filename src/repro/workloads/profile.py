"""Statistical program profiles (substitute for SPEC 2000/2006 programs).

The paper characterizes its workloads along a handful of axes that fully
determine every evaluated cache property:

* **footprint** — distinct bytes touched (Table V discussion: ~990 MB per
  4-core mix, i.e. a few cache-capacities per program);
* **spatial utilization** — the distribution of how many 64 B sub-blocks
  of each 512 B block the program ever touches (Figure 2: some programs
  >90% fully-used blocks, others <30%);
* **temporal reuse skew** — how concentrated accesses are on hot data
  (drives DRAM cache hit rate and MRU-position concentration, Figure 5);
* **memory intensity** — LLSC misses per kilo-instruction (Table V marks
  mixes with LLSC miss rate >= 10% with '*');
* **write fraction** — drives dirty evictions and 64 B-granularity
  writeback traffic.

A :class:`ProgramProfile` pins these axes; the generator in
:mod:`repro.workloads.generator` turns a profile into a concrete,
reproducible access stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ProgramProfile", "PROGRAM_LIBRARY", "program"]


@dataclass(frozen=True)
class ProgramProfile:
    """Statistical description of one benchmark program.

    Parameters
    ----------
    name:
        Identifier (synthetic analogue of a SPEC program).
    footprint_mb:
        Total distinct data touched, in MB. Experiments scale this with
        the same factor as cache capacity so footprint/capacity ratios
        match the paper's setup.
    utilization_dist:
        Mapping {sub-blocks used (1..8): probability} — the per-512B-block
        spatial utilization distribution (Figure 2's x-axis). Must sum
        to ~1.
    reuse_alpha:
        Power-law exponent of region popularity: P(rank r) ∝ 1/r**alpha.
        Higher alpha = more reuse concentration = higher cache hit rates.
    intensity_apki:
        DRAM-cache accesses per kilo-instruction arriving from the LLSC
        (memory intensity at the level the DRAM cache observes). The
        library spans ~2-45; the timing experiments reproduce the
        paper's contended regime, where the intensive Table V mixes
        keep the single off-chip channel under visible pressure.
    write_frac:
        Fraction of accesses that are writes (LLSC writebacks).
    burst_len:
        Mean number of consecutive accesses issued inside one region
        visit (spatial streaming within a block).
    revisit_prob:
        Probability that a visit returns to one of the recently visited
        regions instead of sampling the popularity distribution — the
        short-term dwell (loop) locality of real programs. This is what
        concentrates hits on the top MRU ways (the paper's Figure 5) and
        gives the way locator its high hit rate.
    revisit_window:
        Size of the recent-region pool the dwell draws from.
    seed_salt:
        Mixed into the RNG seed so identical profiles in one mix still
        produce distinct streams.
    """

    name: str
    footprint_mb: float
    utilization_dist: dict[int, float] = field(
        default_factory=lambda: {8: 1.0}
    )
    reuse_alpha: float = 0.9
    intensity_apki: float = 20.0
    write_frac: float = 0.25
    burst_len: float = 4.0
    revisit_prob: float = 0.55
    revisit_window: int = 24
    seed_salt: int = 0

    def __post_init__(self) -> None:
        if self.footprint_mb <= 0:
            raise ValueError("footprint_mb must be positive")
        if not self.utilization_dist:
            raise ValueError("utilization_dist must be non-empty")
        for k, v in self.utilization_dist.items():
            if not 1 <= k <= 8:
                raise ValueError("utilization keys must be in 1..8")
            if v < 0:
                raise ValueError("utilization probabilities must be >= 0")
        total = sum(self.utilization_dist.values())
        if not 0.99 <= total <= 1.01:
            raise ValueError(f"utilization_dist must sum to 1 (got {total})")
        if not 0.0 <= self.write_frac <= 1.0:
            raise ValueError("write_frac must be in [0, 1]")
        if self.intensity_apki <= 0 or self.burst_len < 1:
            raise ValueError("intensity_apki > 0 and burst_len >= 1 required")
        if not 0.0 <= self.revisit_prob < 1.0:
            raise ValueError("revisit_prob must be in [0, 1)")
        if self.revisit_window < 1:
            raise ValueError("revisit_window must be >= 1")

    @property
    def is_memory_intensive(self) -> bool:
        """Analogue of the paper's '*' marking (high memory intensity)."""
        return self.intensity_apki >= 25.0

    def expected_utilization(self) -> float:
        """Mean sub-blocks used per 512 B block (1..8)."""
        return sum(k * v for k, v in self.utilization_dist.items())

    def scaled(self, factor: float) -> "ProgramProfile":
        """Footprint scaled down by ``factor`` (capacity-scaling runs)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return ProgramProfile(
            name=self.name,
            footprint_mb=self.footprint_mb / factor,
            utilization_dist=dict(self.utilization_dist),
            reuse_alpha=self.reuse_alpha,
            intensity_apki=self.intensity_apki,
            write_frac=self.write_frac,
            burst_len=self.burst_len,
            revisit_prob=self.revisit_prob,
            revisit_window=self.revisit_window,
            seed_salt=self.seed_salt,
        )

    def with_intensity(self, factor: float) -> "ProgramProfile":
        """Scale memory intensity (offered-load calibration knob)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return ProgramProfile(
            name=self.name,
            footprint_mb=self.footprint_mb,
            utilization_dist=dict(self.utilization_dist),
            reuse_alpha=self.reuse_alpha,
            intensity_apki=self.intensity_apki * factor,
            write_frac=self.write_frac,
            burst_len=self.burst_len,
            revisit_prob=self.revisit_prob,
            revisit_window=self.revisit_window,
            seed_salt=self.seed_salt,
        )

    def with_salt(self, salt: int) -> "ProgramProfile":
        return ProgramProfile(
            name=self.name,
            footprint_mb=self.footprint_mb,
            utilization_dist=dict(self.utilization_dist),
            reuse_alpha=self.reuse_alpha,
            intensity_apki=self.intensity_apki,
            write_frac=self.write_frac,
            burst_len=self.burst_len,
            revisit_prob=self.revisit_prob,
            revisit_window=self.revisit_window,
            seed_salt=salt,
        )


# ----------------------------------------------------------------------
# Program library: synthetic analogues spanning the SPEC behaviours the
# paper's mixes cover. Utilization distributions are chosen so that the
# library spans Figure 2's range: from >90% fully-utilized blocks down to
# <30%, with a mid group around 18% of blocks at utilization 2..7.
# ----------------------------------------------------------------------
PROGRAM_LIBRARY: dict[str, ProgramProfile] = {
    # dense streaming, very high spatial locality (libquantum/lbm-like)
    "stream_hi": ProgramProfile(
        name="stream_hi",
        footprint_mb=320.0,
        utilization_dist={8: 0.92, 7: 0.05, 6: 0.03},
        reuse_alpha=0.55,
        intensity_apki=38.4,
        write_frac=0.30,
        burst_len=8.0,
    ),
    # dense array sweeps with strong reuse (leslie3d/soplex-like)
    "dense_reuse": ProgramProfile(
        name="dense_reuse",
        footprint_mb=200.0,
        utilization_dist={8: 0.85, 6: 0.08, 4: 0.07},
        reuse_alpha=1.05,
        intensity_apki=25.6,
        write_frac=0.25,
        burst_len=6.0,
    ),
    # pointer chasing, very low spatial utilization (mcf-like)
    "sparse_ptr": ProgramProfile(
        name="sparse_ptr",
        footprint_mb=420.0,
        utilization_dist={1: 0.70, 2: 0.12, 4: 0.06, 8: 0.12},
        reuse_alpha=0.75,
        intensity_apki=41.6,
        write_frac=0.15,
        burst_len=1.3,
        revisit_prob=0.45,
    ),
    # hash/graph random access, low-moderate utilization (omnetpp-like)
    "sparse_rand": ProgramProfile(
        name="sparse_rand",
        footprint_mb=260.0,
        utilization_dist={1: 0.55, 2: 0.15, 3: 0.06, 4: 0.04, 8: 0.20},
        reuse_alpha=0.85,
        intensity_apki=30.4,
        write_frac=0.20,
        burst_len=1.6,
    ),
    # bimodal: some structures dense, some sparse (gcc/astar-like)
    "bimodal_mix": ProgramProfile(
        name="bimodal_mix",
        footprint_mb=180.0,
        utilization_dist={8: 0.52, 7: 0.04, 4: 0.06, 2: 0.10, 1: 0.28},
        reuse_alpha=0.95,
        intensity_apki=22.4,
        write_frac=0.25,
        burst_len=3.0,
    ),
    # moderate utilization spread (bzip2/h264-like)
    "moderate": ProgramProfile(
        name="moderate",
        footprint_mb=120.0,
        utilization_dist={8: 0.62, 6: 0.08, 4: 0.08, 2: 0.07, 1: 0.15},
        reuse_alpha=1.0,
        intensity_apki=14.4,
        write_frac=0.25,
        burst_len=3.5,
    ),
    # cache-friendly small footprint, strong reuse (hmmer/gobmk-like)
    "compact_reuse": ProgramProfile(
        name="compact_reuse",
        footprint_mb=48.0,
        utilization_dist={8: 0.75, 6: 0.12, 4: 0.08, 2: 0.05},
        reuse_alpha=1.25,
        intensity_apki=8.0,
        write_frac=0.30,
        burst_len=4.0,
    ),
    # giant streaming with almost no reuse (GemsFDTD/milc-like)
    "scan_cold": ProgramProfile(
        name="scan_cold",
        footprint_mb=512.0,
        utilization_dist={8: 0.88, 6: 0.07, 4: 0.05},
        reuse_alpha=0.35,
        intensity_apki=44.8,
        write_frac=0.35,
        burst_len=8.0,
        revisit_prob=0.25,
    ),
    # irregular scientific, mixed utilization (sphinx3/wrf-like)
    "irregular_sci": ProgramProfile(
        name="irregular_sci",
        footprint_mb=220.0,
        utilization_dist={8: 0.42, 6: 0.08, 4: 0.10, 2: 0.10, 1: 0.30},
        reuse_alpha=0.9,
        intensity_apki=28.0,
        write_frac=0.22,
        burst_len=2.4,
    ),
    # sparse with high intensity and large footprint (xalancbmk-like)
    "sparse_hot": ProgramProfile(
        name="sparse_hot",
        footprint_mb=300.0,
        utilization_dist={1: 0.62, 2: 0.12, 4: 0.06, 8: 0.20},
        reuse_alpha=1.1,
        intensity_apki=33.6,
        write_frac=0.18,
        burst_len=1.8,
    ),
    # dense with moderate reuse and writes (cactusADM-like)
    "dense_write": ProgramProfile(
        name="dense_write",
        footprint_mb=160.0,
        utilization_dist={8: 0.80, 7: 0.08, 5: 0.07, 3: 0.05},
        reuse_alpha=0.9,
        intensity_apki=24.0,
        write_frac=0.45,
        burst_len=5.0,
    ),
    # low intensity, tiny footprint (povray/namd-like)
    "quiet": ProgramProfile(
        name="quiet",
        footprint_mb=16.0,
        utilization_dist={8: 0.70, 4: 0.20, 2: 0.10},
        reuse_alpha=1.3,
        intensity_apki=3.2,
        write_frac=0.20,
        burst_len=3.0,
    ),
}


def program(name: str) -> ProgramProfile:
    """Look up a library profile by name."""
    try:
        return PROGRAM_LIBRARY[name]
    except KeyError:
        raise ValueError(
            f"unknown program {name!r}; known: {sorted(PROGRAM_LIBRARY)}"
        ) from None
