"""Named registry of DRAM cache organizations.

Every scheme the harness can evaluate registers a builder here; the CLI
(``repro list-schemes``, ``repro run``), the experiment grids and
:func:`repro.harness.runner.build_cache` all resolve schemes by name
through this one table, so adding an organization is a single
:func:`register_scheme` call instead of editing an if/elif chain.

Builders receive a :class:`SchemeBuildContext` carrying everything the
old ``build_cache`` signature threaded through keyword arguments
(system config, shared off-chip controller, bimodal config override,
capacity scale, adaptation interval) and return a ready
:class:`~repro.dramcache.base.DRAMCacheBase`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Callable

from repro.bimodal.cache import BiModalCache, BiModalConfig
from repro.common.config import SystemConfig
from repro.dram.controller import MemoryController
from repro.dramcache.alloy import AlloyCache
from repro.dramcache.atcache import ATCache
from repro.dramcache.base import DRAMCacheBase
from repro.dramcache.footprint import FootprintCache
from repro.dramcache.lohhill import LohHillCache

__all__ = [
    "SchemeBuildContext",
    "SchemeSpec",
    "UnknownSchemeError",
    "available_schemes",
    "build_scheme",
    "get_scheme",
    "register_scheme",
    "scheme_catalog",
    "scheme_descriptions",
]


@dataclass(frozen=True)
class SchemeBuildContext:
    """Everything a scheme builder may need to construct its cache."""

    system: SystemConfig
    offchip: MemoryController
    bimodal_config: BiModalConfig | None = None
    scale: int = 16
    adaptation_interval: int = 10_000

    def default_bimodal_config(self) -> BiModalConfig:
        """The scaled Bi-Modal configuration (see runner.build_cache)."""
        from repro.harness.runner import scaled_locator_bits

        if self.bimodal_config is not None:
            return self.bimodal_config
        # Scale SRAM learning structures so training density per table
        # entry matches the paper's full-size setup (see the rationale
        # in runner.build_cache's original if/elif body).
        scale = self.scale
        return BiModalConfig(
            locator_index_bits=scaled_locator_bits(scale=scale),
            predictor_index_bits=12 if scale > 1 else 16,
            tracker_sample_every=1 if scale > 1 else 25,
            adaptation_interval=self.adaptation_interval,
        )


SchemeBuilder = Callable[[SchemeBuildContext], DRAMCacheBase]

# capacity (bytes) -> tag-only hit-rate model (see repro.mrc.ghost)
GhostAdapter = Callable[[int], object]


@dataclass(frozen=True)
class SchemeSpec:
    """A registered scheme: its builder plus display metadata.

    ``backends`` declares which drive engines have a kernel for the
    scheme (see :mod:`repro.harness.backends`); every scheme supports
    the scalar reference path, and declaring ``"vectorized"`` requires
    a registered chunk kernel (enforced by the ``backend-parity``
    simlint rule and tests/harness/test_backends.py). Undeclared
    backends fall back to scalar transparently at drive time.

    ``ghost`` maps a capacity in bytes to the scheme's tag-only
    hit-rate model for the MRC engine (:mod:`repro.mrc`); ``None``
    means the scheme has no ghost estimate. Adapters are declared
    approximations — each one's fidelity is stated where it is
    registered and measured in ``docs/dse.md``.
    """

    name: str
    builder: SchemeBuilder
    description: str = ""
    backends: tuple[str, ...] = ("scalar",)
    ghost: GhostAdapter | None = None

    def supports_backend(self, backend: str) -> bool:
        return backend in self.backends


class UnknownSchemeError(ValueError):
    """Raised for unregistered scheme names; message lists valid ones."""

    def __init__(self, name: str) -> None:
        valid = ", ".join(available_schemes())
        super().__init__(
            f"unknown scheme {name!r}; available schemes: {valid}"
        )
        self.name = name


_REGISTRY: dict[str, SchemeSpec] = {}


def register_scheme(
    name: str,
    builder: SchemeBuilder,
    *,
    description: str = "",
    backends: tuple[str, ...] = ("scalar",),
    ghost: GhostAdapter | None = None,
    overwrite: bool = False,
) -> SchemeSpec:
    """Register ``builder`` under ``name`` (idempotent re-registration
    requires ``overwrite=True``)."""
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"scheme {name!r} already registered")
    spec = SchemeSpec(
        name=name,
        builder=builder,
        description=description,
        backends=backends,
        ghost=ghost,
    )
    _REGISTRY[name] = spec
    return spec


def available_schemes() -> list[str]:
    """Registered scheme names, in registration order."""
    return list(_REGISTRY)


def scheme_descriptions() -> dict[str, str]:
    """Name -> one-line description for CLI listings."""
    return {name: spec.description for name, spec in _REGISTRY.items()}


def scheme_catalog() -> list[str]:
    """One aligned ``name description`` line per registered scheme.

    The single formatting point for the catalog: ``python -m repro
    list-schemes`` prints exactly these lines and
    :class:`UnknownSchemeError` lists the same names, so neither can
    drift from the registry.
    """
    return [
        f"{name:14s} {spec.description}".rstrip()
        for name, spec in _REGISTRY.items()
    ]


def get_scheme(name: str) -> SchemeSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownSchemeError(name) from None


def build_scheme(name: str, context: SchemeBuildContext) -> DRAMCacheBase:
    """Construct scheme ``name`` under ``context``."""
    return get_scheme(name).builder(context)


# ----------------------------------------------------------------------
# built-in organizations
# ----------------------------------------------------------------------
def _bimodal_variant(**overrides) -> SchemeBuilder:
    def build(ctx: SchemeBuildContext) -> DRAMCacheBase:
        cfg = ctx.default_bimodal_config()
        if overrides:
            cfg = replace(cfg, **overrides)
        return BiModalCache(ctx.system.dram_cache, ctx.offchip, cfg)

    return build


# Ghost adapters (lazy imports keep scheme registration numpy/mrc-free
# for callers that never estimate). Fidelity notes:
# * set-associative LRU ghosts are exact for fixed-geometry schemes
#   whose hit rate ignores timing (alloy, fixed512/wayloc-only);
# * lohhill/atcache share a 29-way geometry — the ghost rounds the set
#   count to a power of two (approximate; GhostCache.approximate);
# * footprint's page-grain residency bounds its hit rate from above
#   (footprint misses fetch-on-demand inside a resident page);
# * bimodal adaptives report the best fixed (X, Y) state — an
#   optimistic bracket of the re-partitioning dynamics (docs/dse.md).
def _ghost_lru(associativity: int, block_size: int) -> GhostAdapter:
    def make(capacity: int):
        from repro.mrc.ghost import GhostCache

        return GhostCache(capacity, associativity, block_size)

    return make


def _ghost_bimodal(capacity: int):
    from repro.mrc.ghost import AdaptiveGhost

    return AdaptiveGhost(capacity)


register_scheme(
    "alloy",
    lambda ctx: AlloyCache(ctx.system.dram_cache, ctx.offchip),
    description="AlloyCache: direct-mapped, 64 B TAD units (baseline)",
    backends=("scalar", "vectorized"),
    ghost=_ghost_lru(1, 64),
)
register_scheme(
    "lohhill",
    lambda ctx: LohHillCache(ctx.system.dram_cache, ctx.offchip),
    description="Loh-Hill: 29-way set-associative, tags-in-DRAM",
    ghost=_ghost_lru(29, 64),
)
register_scheme(
    "atcache",
    lambda ctx: ATCache(ctx.system.dram_cache, ctx.offchip),
    description="ATCache: SRAM tag cache over a set-associative DRAM cache",
    ghost=_ghost_lru(29, 64),
)
register_scheme(
    "footprint",
    lambda ctx: FootprintCache(ctx.system.dram_cache, ctx.offchip),
    description="Footprint Cache: 2 KB pages, predicted-block fetch",
    ghost=_ghost_lru(8, 2048),
)
register_scheme(
    "bimodal",
    _bimodal_variant(),
    description="Bi-Modal cache: adaptive big/small blocks + way locator",
    backends=("scalar", "vectorized"),
    ghost=_ghost_bimodal,
)
register_scheme(
    "wayloc-only",
    _bimodal_variant(enable_bimodal=False),
    description="Bi-Modal with only the way locator (fixed 512 B blocks)",
    backends=("scalar", "vectorized"),
    ghost=_ghost_lru(4, 512),
)
register_scheme(
    "bimodal-only",
    _bimodal_variant(enable_way_locator=False),
    description="Bi-Modal block sizing without the way locator",
    backends=("scalar", "vectorized"),
    ghost=_ghost_bimodal,
)
register_scheme(
    "fixed512",
    _bimodal_variant(enable_bimodal=False, enable_way_locator=False),
    description="Fixed 512 B blocks, no locator (Figure 9a/8b baseline)",
    backends=("scalar", "vectorized"),
    ghost=_ghost_lru(4, 512),
)
