"""The ``python -m repro lint`` front end: exit codes, formats,
baseline flow, and one injected violation per rule (the acceptance
contract: every rule can fail a run through the real CLI)."""

import json
import textwrap

import pytest

from repro.__main__ import main as repro_main
from repro.analysis.cli import main as lint_main

# A pyproject override making the temp tree behave like the real one:
# no determinism allowlist, every module hot for the slots rule. This
# also exercises the [tool.simlint] loading path end to end.
PYPROJECT = """
    [tool.simlint]
    determinism-allow = []
    slots-modules = ["*.py"]
    api-types-modules = ["mod.py"]
    api-construction-allow = []
"""

INJECTED = {
    "api-stability": """
        from dataclasses import dataclass

        API_SCHEMA = 1

        @dataclass
        class LooseRequest:
            value: int = 0
        """,
    "determinism": """
        import time

        def stamp():
            return time.time()
        """,
    "hot-path-purity": """
        def gather_fast(xs):
            return [x + 1 for x in xs]
        """,
    "fast-reference-parity": """
        class DriftCache:
            def access_fast(self, address, now, is_write):
                self._hit = True
                return now

            def _access_fast(self, address, now, is_write):
                return self._access_cold(address, now)

            def _access_cold(self, address, now):
                return now
        """,
    "scheme-registry": """
        class DRAMCacheBase:
            pass

        class OrphanCache(DRAMCacheBase):
            def _access_fast(self, address, now, is_write):
                self._hit = True
                return now

        def register_scheme(name, builder):
            pass

        register_scheme("other", lambda ctx: DRAMCacheBase())
        """,
    "stats-protocol": """
        class Stats:
            def to_dict(self):
                return {"hits": 1, "hits": 2}
        """,
    "slots": """
        class Block:
            def __init__(self):
                self.tag = 0
        """,
    "backend-parity": """
        def register_kernel(name, prep):
            def deco(fn):
                return fn
            return deco

        @register_kernel("ToyCache", None)
        def _run_toy(cache, columns, state, *, window, stall_scale):
            pass
        """,
}

CLEAN = """
    def add_fast(a, b):
        return a + b
"""


@pytest.fixture
def repo(tmp_path):
    (tmp_path / "pyproject.toml").write_text(textwrap.dedent(PYPROJECT))

    def write(source, name="mod.py"):
        (tmp_path / name).write_text(textwrap.dedent(source))
        return tmp_path

    return write


@pytest.mark.parametrize("rule", sorted(INJECTED))
def test_injected_violation_fails_each_rule(repo, rule, capsys):
    root = repo(INJECTED[rule])
    assert lint_main([str(root), "--no-baseline"]) == 1
    out = capsys.readouterr().out
    assert f" {rule}: " in out


def test_clean_tree_exits_zero(repo, capsys):
    root = repo(CLEAN)
    assert lint_main([str(root), "--no-baseline"]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_repro_lint_subcommand_dispatches(repo, capsys):
    root = repo(INJECTED["determinism"])
    assert repro_main(["lint", str(root), "--no-baseline"]) == 1
    assert "determinism" in capsys.readouterr().out


def test_rule_selection_limits_the_run(repo):
    root = repo(INJECTED["determinism"])
    assert lint_main([str(root), "--rules", "slots", "--no-baseline"]) == 0
    assert lint_main([str(root), "--rules", "determinism", "--no-baseline"]) == 1


def test_unknown_rule_is_a_usage_error(repo, capsys):
    root = repo(CLEAN)
    assert lint_main([str(root), "--rules", "nope"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_missing_path_is_a_usage_error(tmp_path, capsys):
    assert lint_main([str(tmp_path / "ghost")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_list_rules_names_all_six(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in INJECTED:
        assert rule in out


def test_json_format_reports_summary(repo, capsys):
    root = repo(INJECTED["determinism"])
    assert lint_main([str(root), "--format", "json", "--no-baseline"]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["summary"]["new"] == 1
    assert document["violations"][0]["rule"] == "determinism"


class TestBaselineFlow:
    def test_update_then_tolerate_then_stale(self, repo, capsys):
        root = repo(INJECTED["determinism"])
        baseline = root / "simlint-baseline.json"

        # 1. findings fail the gate.
        assert lint_main([str(root)]) == 1
        # 2. adopt them into the baseline; the gate goes green.
        assert lint_main([str(root), "--update-baseline"]) == 0
        assert baseline.is_file()
        assert lint_main([str(root)]) == 0
        assert "[baselined]" in capsys.readouterr().out
        # 3. a second, new finding still fails.
        repo(INJECTED["determinism"] + "\n\ndef other():\n    return time.time_ns()\n")
        assert lint_main([str(root)]) == 1
        # 4. fixing the code leaves the entry stale (and the gate green).
        repo(CLEAN)
        assert lint_main([str(root)]) == 0
        assert "stale baseline" in capsys.readouterr().out

    def test_malformed_baseline_is_a_usage_error(self, repo, capsys):
        root = repo(CLEAN)
        (root / "simlint-baseline.json").write_text("[]")
        assert lint_main([str(root)]) == 2
        assert "baseline" in capsys.readouterr().err
