"""MetricsRegistry: counters, gauges, distributions, flat snapshots."""

from repro.obs.metrics import MetricsRegistry, get_metrics, set_metrics


class TestRegistry:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        reg.add("drive.count")
        reg.add("drive.count")
        reg.add("drive.records", 500)
        assert reg.counter_value("drive.count") == 2
        assert reg.snapshot()["drive.records"] == 500

    def test_counters_accessor_filters_by_prefix(self):
        reg = MetricsRegistry()
        reg.add("grid.cells", 4)
        reg.add("grid.cell_failures")
        reg.add("trace_cache.corrupt_evictions")
        assert reg.counters() == {
            "grid.cells": 4,
            "grid.cell_failures": 1,
            "trace_cache.corrupt_evictions": 1,
        }
        assert reg.counters("grid.") == {
            "grid.cells": 4,
            "grid.cell_failures": 1,
        }
        # A copy, not a view into the registry.
        reg.counters()["grid.cells"] = 0
        assert reg.counter_value("grid.cells") == 4

    def test_gauges_keep_latest(self):
        reg = MetricsRegistry()
        reg.gauge("cache.hit_rate", 0.5)
        reg.gauge("cache.hit_rate", 0.75)
        assert reg.snapshot()["cache.hit_rate"] == 0.75

    def test_distributions_summarize(self):
        reg = MetricsRegistry()
        for sample in (1.0, 2.0, 3.0):
            reg.observe("cell.wall_s", sample)
        snap = reg.snapshot()
        assert snap["cell.wall_s.count"] == 3
        assert snap["cell.wall_s.mean"] == 2.0
        assert snap["cell.wall_s.min"] == 1.0
        assert snap["cell.wall_s.max"] == 3.0

    def test_histogram_buckets(self):
        reg = MetricsRegistry()
        reg.bucket("util", 8, 3)
        reg.bucket("util", 1)
        snap = reg.snapshot()
        assert snap["util.8"] == 3 and snap["util.1"] == 1

    def test_update_flattens_nested_dicts(self):
        reg = MetricsRegistry()
        reg.update(
            {"hit_rate": 0.9, "nested": {"rbh": 0.4}, "label": object()},
            prefix="cache",
        )
        snap = reg.snapshot()
        assert snap["cache.hit_rate"] == 0.9
        assert snap["cache.nested.rbh"] == 0.4
        assert isinstance(snap["cache.label"], str)

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.add("a")
        reg.gauge("b", 1)
        reg.observe("c", 1.0)
        reg.bucket("d", 1)
        assert len(reg) == 4
        reg.reset()
        assert len(reg) == 0 and reg.snapshot() == {}

    def test_snapshot_keys_sorted(self):
        reg = MetricsRegistry()
        reg.gauge("z", 1)
        reg.add("a", 2)
        assert list(reg.snapshot()) == ["a", "z"]


class TestGlobal:
    def test_set_metrics_swaps_registry(self):
        replacement = MetricsRegistry()
        previous = set_metrics(replacement)
        try:
            assert get_metrics() is replacement
        finally:
            set_metrics(previous)
        assert get_metrics() is previous


class TestLayerTaps:
    def test_cache_report_metrics_covers_shared_vocabulary(self):
        from repro.harness.runner import ExperimentSetup, build_cache, drive_cache

        setup = ExperimentSetup(num_cores=4, accesses_per_core=800)
        cache = build_cache("alloy", setup.system, scale=setup.scale)
        drive_cache(cache, setup.trace_records("Q1"), streams=4)
        reg = MetricsRegistry()
        cache.report_metrics(reg)
        snap = reg.snapshot()
        assert snap["cache.scheme"] == "alloy"
        assert snap["cache.accesses"] == 3200
        assert 0.0 <= snap["cache.hit_rate"] <= 1.0
        assert snap["cache.offchip.reads"] > 0

    def test_controller_report_metrics(self):
        from repro.common.config import system_config
        from repro.dram.controller import MemoryController

        config = system_config(4)
        controller = MemoryController(
            config.offchip_geometry, config.offchip_timing
        )
        controller.read(0, 0)
        controller.write(4096, 10)
        reg = MetricsRegistry()
        controller.report_metrics(reg)
        snap = reg.snapshot()
        assert snap["offchip.reads"] == 1
        assert snap["offchip.writes"] == 1
        assert snap["offchip.bytes"] == 128
