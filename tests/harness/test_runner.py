"""Harness construction and closed-loop drive tests."""

import pytest

from repro.bimodal.cache import BiModalCache
from repro.dramcache.alloy import AlloyCache
from repro.dramcache.atcache import ATCache
from repro.dramcache.footprint import FootprintCache
from repro.dramcache.lohhill import LohHillCache
from repro.harness.runner import (
    ExperimentSetup,
    build_cache,
    drive_cache,
    run_scheme_on_mix,
    scaled_locator_bits,
)


class TestSetup:
    def test_scaled_capacity(self):
        setup = ExperimentSetup(num_cores=4, scale=16)
        assert setup.system.dram_cache.capacity == (128 << 20) // 16

    def test_mix_table_selection(self):
        assert len(ExperimentSetup(num_cores=4).mixes()) == 23
        assert len(ExperimentSetup(num_cores=8).mixes()) == 16

    def test_trace_factory(self):
        setup = ExperimentSetup(num_cores=4, accesses_per_core=100)
        trace = setup.trace("Q1")
        assert trace.total_accesses == 400

    def test_scaled_locator_bits(self):
        assert scaled_locator_bits(14, 16) == 10
        assert scaled_locator_bits(14, 1) == 14


class TestBuildCache:
    @pytest.mark.parametrize(
        "scheme,cls",
        [
            ("alloy", AlloyCache),
            ("lohhill", LohHillCache),
            ("atcache", ATCache),
            ("footprint", FootprintCache),
            ("bimodal", BiModalCache),
            ("wayloc-only", BiModalCache),
            ("bimodal-only", BiModalCache),
            ("fixed512", BiModalCache),
        ],
    )
    def test_all_schemes_buildable(self, scheme, cls):
        setup = ExperimentSetup()
        cache = build_cache(scheme, setup.system, scale=setup.scale)
        assert isinstance(cache, cls)

    def test_component_flags(self):
        setup = ExperimentSetup()
        wayloc = build_cache("wayloc-only", setup.system, scale=setup.scale)
        bionly = build_cache("bimodal-only", setup.system, scale=setup.scale)
        fixed = build_cache("fixed512", setup.system, scale=setup.scale)
        assert wayloc.locator is not None and not wayloc.config.enable_bimodal
        assert bionly.locator is None and bionly.config.enable_bimodal
        assert fixed.locator is None and not fixed.config.enable_bimodal

    def test_unknown_scheme(self):
        setup = ExperimentSetup()
        with pytest.raises(ValueError):
            build_cache("magic", setup.system)


class TestDriveCache:
    def _records(self, n=400):
        for i in range(n):
            yield (i * 64) % 8192, i % 4 == 0, 20

    def test_drive_counts_accesses(self):
        setup = ExperimentSetup()
        cache = build_cache("alloy", setup.system, scale=setup.scale)
        result = drive_cache(cache, self._records(), streams=4)
        assert result.accesses == 400
        assert result.end_time > 0
        assert result.stats["accesses"] == 400

    def test_window_bounds_outstanding(self):
        setup = ExperimentSetup()
        cache = build_cache("alloy", setup.system, scale=setup.scale)
        result = drive_cache(cache, self._records(), window=2, streams=4)
        assert result.accesses == 400

    def test_warmup_resets_stats(self):
        setup = ExperimentSetup()
        cache = build_cache("alloy", setup.system, scale=setup.scale)
        result = drive_cache(cache, self._records(400), warmup=200, streams=4)
        # only post-warmup accesses are counted
        assert result.stats["accesses"] == 201

    def test_stall_feedback_throttles(self):
        """Higher-latency schemes advance wall-clock further per access."""
        setup = ExperimentSetup()
        fast = build_cache("alloy", setup.system, scale=setup.scale)
        slow = build_cache("fixed512", setup.system, scale=setup.scale)
        # conflicting stream -> misses dominate
        records = [((i * 977 * 64) % (1 << 22), False, 20) for i in range(500)]
        r_fast = drive_cache(fast, iter(records), streams=4)
        r_slow = drive_cache(slow, iter(records), streams=4)
        assert r_slow.end_time > r_fast.end_time * 0.8


class TestRunSchemeOnMix:
    def test_end_to_end(self):
        setup = ExperimentSetup(num_cores=4, accesses_per_core=1500)
        result = run_scheme_on_mix("bimodal", "Q1", setup=setup)
        stats = result.stats
        assert 0.0 <= stats["hit_rate"] <= 1.0
        assert stats["avg_read_latency"] > 0
        assert "way_locator_hit_rate" in stats

    def test_deterministic(self):
        setup = ExperimentSetup(num_cores=4, accesses_per_core=1000)
        a = run_scheme_on_mix("alloy", "Q3", setup=setup).stats
        b = run_scheme_on_mix("alloy", "Q3", setup=setup).stats
        assert a == b
