"""Drive-loop throughput: records simulated per second, legacy vs fast.

Not a paper figure — this benchmark tracks the simulator's own speed,
which bounds every sweep above it. ``legacy`` regenerates the merged
trace and walks per-record tuples through the compatibility path;
``fast`` uses the cached record arrays and the batched drive loop. The
two paths must agree bit-for-bit on every statistic; only wall-clock
may differ.
"""

from repro.harness.perfbench import measure_drive_throughput
from repro.harness.runner import ExperimentSetup


def test_perf_drive_throughput(benchmark, report):
    setup = ExperimentSetup(num_cores=4, accesses_per_core=15_000)

    def measure():
        legacy = measure_drive_throughput(
            scheme="bimodal", mix="Q1", setup=setup, mode="legacy", repeats=2
        )
        fast = measure_drive_throughput(
            scheme="bimodal", mix="Q1", setup=setup, mode="fast", repeats=2
        )
        return legacy, fast

    legacy, fast = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        [legacy.row(), fast.row()],
        title="Drive-loop throughput (records/sec)",
    )
    # Identical simulations: the fast path is an optimization, not a model
    # change. Throughput assertions stay loose — wall-clock on shared CI
    # machines is noisy — the hard ratio target is checked offline via
    # scripts/bench_perf.sh history.
    assert fast.stats == legacy.stats
    assert fast.records == legacy.records
    assert fast.records_per_second > 0
    assert legacy.records_per_second > 0
