"""DRAM cache organizations the paper evaluates against."""

from repro.dramcache.alloy import AlloyCache, MAPPredictor
from repro.dramcache.atcache import ATCache
from repro.dramcache.base import DRAMCacheAccess, DRAMCacheBase
from repro.dramcache.footprint import FootprintCache, FootprintPredictor
from repro.dramcache.lohhill import LohHillCache

__all__ = [
    "AlloyCache",
    "MAPPredictor",
    "ATCache",
    "DRAMCacheAccess",
    "DRAMCacheBase",
    "FootprintCache",
    "FootprintPredictor",
    "LohHillCache",
]
