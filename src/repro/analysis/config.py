"""simlint configuration: baked-in project defaults + pyproject overrides.

The defaults below ARE the repository's configuration; a
``[tool.simlint]`` table in ``pyproject.toml`` can override any field
(used by tests and by downstream forks). Globs match either the
repo-relative path (``src/repro/dram/bank.py``) or the package-relative
one (``dram/bank.py``) — see :meth:`SourceFile.matches`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from pathlib import Path

__all__ = ["LintConfig", "load_config"]


@dataclass(frozen=True)
class LintConfig:
    # Files never scanned at all.
    exclude: tuple[str, ...] = ("*/__pycache__/*",)
    # Rule subset to run; empty means every registered rule.
    select: tuple[str, ...] = ()
    # determinism: modules allowed to touch wall clock / ambient entropy
    # (observability, profiling and harness bookkeeping — never the sim
    # core, whose results must replay bit-identically).
    determinism_allow: tuple[str, ...] = (
        "obs/*",
        "analysis/*",
        "harness/checkpoint.py",
        "harness/perfbench.py",
    )
    # hot-path-purity: function name patterns treated as hot paths.
    hotpath_patterns: tuple[str, ...] = ("*_fast",)
    # slots: modules whose record classes must be allocation-lean.
    slots_modules: tuple[str, ...] = (
        "bimodal/sets.py",
        "bimodal/way_locator.py",
        "sram/cache.py",
        "dram/*.py",
        "dramcache/*.py",
        "common/stats.py",
        "workloads/trace.py",
    )
    # api-stability: modules holding the frozen wire dataclasses, and
    # globs where constructing them directly is allowed (the facade and
    # its codec; everything else must go through the constructors).
    api_types_modules: tuple[str, ...] = ("api/types.py",)
    api_construction_allow: tuple[str, ...] = ("api/*",)
    # scheme-registry: the root class every cache organization extends.
    scheme_base: str = "DRAMCacheBase"
    # async-safety: modules whose ``async def`` functions are treated as
    # event-loop roots for blocking-reachability analysis.
    async_scope: tuple[str, ...] = ("server/*", "api/client.py")
    # Baseline filename looked up from the scan root toward the repo root.
    baseline_name: str = "simlint-baseline.json"


def load_config(root: Path | None = None) -> LintConfig:
    """Defaults, overridden by ``[tool.simlint]`` when present.

    ``tomllib`` ships with Python 3.11+; on 3.10 the pyproject override
    is skipped silently and the baked-in defaults (which match this
    repository's committed configuration) apply.
    """
    config = LintConfig()
    if root is None:
        return config
    pyproject = Path(root) / "pyproject.toml"
    if not pyproject.is_file():
        return config
    try:
        import tomllib
    except ModuleNotFoundError:  # Python 3.10
        return config
    try:
        table = tomllib.loads(pyproject.read_text()).get("tool", {}).get("simlint", {})
    except (OSError, tomllib.TOMLDecodeError):
        return config
    overrides = {}
    valid = {f.name for f in fields(LintConfig)}
    for key, value in table.items():
        name = key.replace("-", "_")
        if name in valid:
            overrides[name] = tuple(value) if isinstance(value, list) else value
    return replace(config, **overrides) if overrides else config
