"""Energy model tests."""

import pytest

from repro.common.config import DRAMCacheGeometry, DRAMGeometry, DRAMTimingConfig
from repro.dram.controller import MemoryController
from repro.dramcache.alloy import AlloyCache
from repro.energy.model import EnergyBreakdown, EnergyModel, EnergyParams


def run_small_workload(n_conflicting=20):
    geometry = DRAMCacheGeometry(
        capacity=1 << 20,
        geometry=DRAMGeometry(channels=2, banks_per_channel=8, page_size=2048),
    )
    offchip = MemoryController(
        DRAMGeometry(channels=1, banks_per_channel=16, page_size=2048),
        DRAMTimingConfig.ddr3_1600h(),
    )
    cache = AlloyCache(geometry, offchip)
    t = 0
    for i in range(n_conflicting):
        r = cache.access(i * 64 * 977, t)
        t = r.complete + 10
    return cache, offchip


class TestBreakdown:
    def test_totals_compose(self):
        b = EnergyBreakdown(
            offchip_activate=10.0,
            offchip_transfer=20.0,
            stacked_activate=5.0,
            stacked_transfer=2.0,
            sram=1.0,
        )
        assert b.offchip_total == 30.0
        assert b.total == 38.0


class TestMeasurement:
    def test_measures_positive_energy(self):
        cache, offchip = run_small_workload()
        breakdown = EnergyModel().measure(cache, offchip)
        assert breakdown.total > 0
        assert breakdown.offchip_activate > 0
        assert breakdown.stacked_transfer > 0

    def test_offchip_costlier_per_event(self):
        p = EnergyParams()
        assert p.offchip_activate_nj > p.stacked_activate_nj
        assert p.offchip_burst_nj > p.stacked_burst_nj

    def test_more_traffic_more_energy(self):
        small_cache, small_off = run_small_workload(10)
        big_cache, big_off = run_small_workload(100)
        model = EnergyModel()
        assert (
            model.measure(big_cache, big_off).total
            > model.measure(small_cache, small_off).total
        )

    def test_explicit_sram_lookups(self):
        cache, offchip = run_small_workload(5)
        model = EnergyModel()
        without = model.measure(cache, offchip, sram_lookups=0)
        with_lookups = model.measure(cache, offchip, sram_lookups=1_000_000)
        assert with_lookups.sram > without.sram

    def test_savings_percent(self):
        model = EnergyModel()
        base = EnergyBreakdown(100.0, 100.0, 10.0, 10.0, 0.0)
        improved = EnergyBreakdown(50.0, 80.0, 20.0, 15.0, 1.0)
        saving = model.savings_percent(base, improved)
        assert saving == pytest.approx(100.0 * (220 - 166) / 220)

    def test_savings_validation(self):
        model = EnergyModel()
        zero = EnergyBreakdown(0, 0, 0, 0, 0)
        with pytest.raises(ValueError):
            model.savings_percent(zero, zero)
