"""Global (X_glob, Y_glob) adaptation tests (Section III-B4 rules)."""

import pytest

from repro.bimodal.global_state import GlobalStateController
from repro.bimodal.sets import allowed_states

STATES = allowed_states(2048, 512)


def make(interval=100, weight=0.75):
    return GlobalStateController(STATES, weight=weight, interval=interval)


def run_interval(ctrl, *, big=0, small=0):
    """Feed one interval's worth of demand then trigger adaptation."""
    for _ in range(big):
        ctrl.record_miss(predicted_big=True)
    for _ in range(small):
        ctrl.record_miss(predicted_big=False)
    for _ in range(ctrl.interval):
        ctrl.record_access()


class TestRules:
    def test_initial_state_all_big(self):
        assert make().state == (4, 0)

    def test_small_demand_grows_small(self):
        ctrl = make()
        run_interval(ctrl, big=10, small=10)  # R = 0.75 > 0/4
        assert ctrl.state == (3, 8)

    def test_needs_enough_small_demand_to_reach_2_16(self):
        ctrl = make()
        run_interval(ctrl, big=10, small=10)  # -> (3,8)
        # R must exceed 8/3 = 2.67: W * small/big > 2.67 -> small > 3.56*big
        run_interval(ctrl, big=10, small=20)  # R = 1.5 < 2.67: stay
        assert ctrl.state == (3, 8)
        run_interval(ctrl, big=10, small=60)  # R = 4.5 > 2.67: grow small
        assert ctrl.state == (2, 16)

    def test_cannot_grow_past_2_16(self):
        ctrl = make()
        run_interval(ctrl, big=1, small=1000)
        run_interval(ctrl, big=1, small=1000)
        run_interval(ctrl, big=1, small=1000)
        assert ctrl.state == (2, 16)

    def test_zero_small_demand_steps_back_toward_all_big(self):
        ctrl = make()
        run_interval(ctrl, big=10, small=10)
        assert ctrl.state == (3, 8)
        run_interval(ctrl, big=50, small=0)
        assert ctrl.state == (4, 0)

    def test_big_demand_shrinks_small_quota(self):
        ctrl = make()
        run_interval(ctrl, big=10, small=100)
        run_interval(ctrl, big=10, small=100)
        assert ctrl.state == (2, 16)
        # R < (16-8)/(2+1) = 2.67 with R = 0.75*10/100 = 0.075
        run_interval(ctrl, big=100, small=10)
        assert ctrl.state == (3, 8)

    def test_no_demand_no_change(self):
        ctrl = make()
        run_interval(ctrl)
        assert ctrl.state == (4, 0)
        assert ctrl.updates == 1
        assert ctrl.transitions == 0

    def test_weight_damps_small_preference(self):
        eager = GlobalStateController(STATES, weight=2.0, interval=100)
        damped = GlobalStateController(STATES, weight=0.1, interval=100)
        for ctrl in (eager, damped):
            run_interval(ctrl, big=50, small=20)
        assert eager.state == (3, 8)
        assert damped.state == (3, 8)  # any positive R > 0 moves off (4,0)
        # second interval differentiates: R_eager = 2*20/50 = 0.8 < 2.67
        run_interval(eager, big=50, small=120)  # R = 4.8 -> (2,16)
        run_interval(damped, big=50, small=120)  # R = 0.24 -> stays
        assert eager.state == (2, 16)
        assert damped.state == (3, 8)


class TestBookkeeping:
    def test_demand_counters_reset_each_interval(self):
        ctrl = make()
        run_interval(ctrl, big=5, small=3)
        assert ctrl.demand_big == 0
        assert ctrl.demand_small == 0

    def test_interval_cadence(self):
        ctrl = make(interval=10)
        for _ in range(35):
            ctrl.record_access()
        assert ctrl.updates == 3

    def test_force_state(self):
        ctrl = make()
        ctrl.force_state(2)
        assert ctrl.state == (2, 16)
        with pytest.raises(ValueError):
            ctrl.force_state(5)

    def test_validation(self):
        with pytest.raises(ValueError):
            GlobalStateController((), interval=10)
        with pytest.raises(ValueError):
            GlobalStateController(STATES, weight=0)
        with pytest.raises(ValueError):
            GlobalStateController(STATES, interval=0)
