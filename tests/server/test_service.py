"""`repro serve` integration: concurrency, fairness, admission,
warm-state reuse and crash recovery through real sockets."""

import asyncio
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro import api
from repro.api import facade
from repro.api.protocol import parse_response_line, request_line
from repro.server import GridStore, ReproServer, ServerConfig, grid_key


def run_async(coro):
    return asyncio.run(coro)


async def start_server(**overrides):
    config = ServerConfig(**{"port": 0, "max_inflight": 2, **overrides})
    server = ReproServer(config)
    host, port = await server.start()
    return server, host, port


def sim_request(scheme="alloy", mix="Q1", accesses=900, **kw):
    return facade.sim_request(
        scheme, mix, accesses_per_core=accesses, **kw
    )


class TestConcurrentClients:
    def test_three_clients_no_interleaving_corruption(self):
        """3 clients x 2 concurrent sims each: every client gets its own
        correct, complete results back over one shared server."""

        async def scenario():
            server, host, port = await start_server(max_inflight=3)
            try:
                specs = [("alloy", "Q1"), ("bimodal", "Q2"), ("fixed512", "Q3")]
                clients = [
                    await api.AsyncServiceClient.connect(host, port)
                    for _ in specs
                ]
                try:
                    tasks = []
                    for client, (scheme, mix) in zip(clients, specs):
                        tasks.append(client.run_sim(sim_request(scheme, mix)))
                        tasks.append(client.run_sim(sim_request(scheme, mix, seed=2)))
                    results = await asyncio.gather(*tasks)
                finally:
                    for client in clients:
                        await client.close()
            finally:
                await server.aclose()
            return specs, results

        specs, results = run_async(scenario())
        for index, result in enumerate(results):
            scheme, mix = specs[index // 2]
            assert result.scheme == scheme, index
            assert result.mix == mix, index
            assert result.seed == (1 if index % 2 == 0 else 2)
            assert result.records > 0
        # Same request locally and via the server: identical stats.
        local = facade.run_sim(sim_request("alloy", "Q1"))
        assert results[0].stats == local.stats

    def test_fair_share_across_clients(self):
        """With one execution slot, a client queueing many jobs cannot
        starve a later client's single job (round-robin, not FIFO)."""

        async def scenario():
            server, host, port = await start_server(max_inflight=1)
            completions = []
            try:
                greedy = await api.AsyncServiceClient.connect(host, port)
                modest = await api.AsyncServiceClient.connect(host, port)
                try:
                    async def tracked(client, label, **kw):
                        await client.run_sim(sim_request(**kw))
                        completions.append(label)

                    greedy_tasks = [
                        asyncio.create_task(
                            tracked(greedy, f"greedy-{i}", seed=i + 1,
                                    accesses=12_000)
                        )
                        for i in range(3)
                    ]
                    await asyncio.sleep(0.05)  # greedy queue forms first
                    modest_task = asyncio.create_task(
                        tracked(modest, "modest", mix="Q2")
                    )
                    await asyncio.gather(*greedy_tasks, modest_task)
                finally:
                    await greedy.close()
                    await modest.close()
            finally:
                await server.aclose()
            return completions

        completions = run_async(scenario())
        assert len(completions) == 4
        # Round-robin must schedule the modest client's single job ahead
        # of the greedy client's last one; FIFO would finish it dead last.
        assert completions[-1] != "modest", completions
        assert completions.index("modest") < completions.index("greedy-2")


class TestAdmissionControl:
    def test_per_client_queue_bound_rejects_with_typed_error(self):
        async def scenario():
            server, _, _ = await start_server(
                max_inflight=1, max_queued_per_client=2
            )
            try:
                from repro.server.daemon import _Job

                job = lambda n: _Job(  # noqa: E731
                    conn=None, request_id=n, verb="sim",
                    request=sim_request(),
                )
                assert server._admit(job("a"), client="c1")
                assert server._admit(job("b"), client="c1")
                assert not server._admit(job("c"), client="c1")
                assert server._admit(job("d"), client="c2")  # other client fine
            finally:
                await server.aclose()

        run_async(scenario())

    def test_overloaded_error_reaches_the_client(self):
        async def scenario():
            server, host, port = await start_server(
                max_inflight=1, max_queued_per_client=1
            )
            # Pause the scheduler so submissions stay queued and the
            # second one deterministically overflows the client bound.
            server._scheduler_task.cancel()
            try:
                client = await api.AsyncServiceClient.connect(host, port)
                try:
                    first = asyncio.create_task(client.run_sim(sim_request()))
                    await asyncio.sleep(0.05)
                    with pytest.raises(api.ServiceError) as excinfo:
                        await asyncio.wait_for(
                            client.run_sim(sim_request(seed=2)), timeout=5
                        )
                    assert excinfo.value.code == "overloaded"
                    first.cancel()
                    await asyncio.gather(first, return_exceptions=True)
                finally:
                    await client.close()
            finally:
                await server.aclose()

        run_async(scenario())


class TestProtocolErrors:
    def test_schema_skew_and_garbage_get_typed_errors(self):
        async def scenario():
            server, host, port = await start_server()
            try:
                reader, writer = await asyncio.open_connection(host, port)
                try:
                    wire = api.to_wire(sim_request())
                    wire["schema"] = 999
                    writer.write(
                        (json.dumps({"id": "r1", "verb": "sim", "request": wire})
                         + "\n").encode()
                    )
                    writer.write(b"this is not json\n")
                    writer.write(b'{"id": "r3", "verb": "explode"}\n')
                    await writer.drain()
                    lines = [await reader.readline() for _ in range(3)]
                finally:
                    writer.close()
                    await writer.wait_closed()
            finally:
                await server.aclose()
            return lines

        lines = run_async(scenario())
        by_id = {}
        for line in lines:
            rid, kind, payload = parse_response_line(line)
            assert kind == "error"
            by_id[rid] = payload
        assert by_id["r1"].code == "bad-schema"
        assert "schema 999" in by_id["r1"].message
        assert by_id[""].code == "bad-schema"  # unattributable garbage
        assert "unknown verb" in by_id["r3"].message

    def test_bad_request_is_rejected_before_scheduling(self):
        async def scenario():
            server, host, port = await start_server()
            try:
                client = await api.AsyncServiceClient.connect(host, port)
                try:
                    with pytest.raises(api.ServiceError) as excinfo:
                        await client.run_sim(
                            api.SimRequest(scheme="nope", mix="Q1")
                        )
                    return excinfo.value, await client.stats()
                finally:
                    await client.close()
            finally:
                await server.aclose()

        error, stats = run_async(scenario())
        assert error.code == "bad-request"
        assert "unknown scheme" in str(error)
        assert stats.server["sims_done"] == 0  # never reached the pool


class TestWarmServer:
    def test_second_identical_sim_hits_warm_trace_cache(self):
        async def scenario():
            server, host, port = await start_server()
            try:
                client = await api.AsyncServiceClient.connect(host, port)
                try:
                    request = sim_request(accesses=1200)
                    first = await client.run_sim(request)
                    hits_before = (await client.stats()).trace_cache["memory_hits"]
                    second = await client.run_sim(request)
                    hits_after = (await client.stats()).trace_cache["memory_hits"]
                finally:
                    await client.close()
            finally:
                await server.aclose()
            return first, second, hits_before, hits_after

        first, second, hits_before, hits_after = run_async(scenario())
        assert second.stats == first.stats  # warm path, identical result
        assert hits_after > hits_before, "warm request missed the trace cache"

    def test_grid_dedupe_joins_identical_inflight_requests(self):
        async def scenario():
            server, host, port = await start_server()
            try:
                client = await api.AsyncServiceClient.connect(host, port)
                try:
                    request = facade.grid_request(
                        "fig10", mixes=("Q1",), accesses_per_core=700
                    )
                    first, second = await asyncio.gather(
                        client.run_grid(request), client.run_grid(request)
                    )
                    stats = await client.stats()
                finally:
                    await client.close()
            finally:
                await server.aclose()
            return first, second, stats

        first, second, stats = run_async(scenario())
        assert first.rows == second.rows
        assert stats.server["grids_done"] == 1
        assert stats.server["grids_joined"] == 1

    def test_cli_and_server_grid_results_are_byte_identical(self):
        request = facade.grid_request(
            "fig10", mixes=("Q1", "Q2"), accesses_per_core=700
        )
        local = facade.run_grid(request)

        async def scenario():
            server, host, port = await start_server()
            try:
                client = await api.AsyncServiceClient.connect(host, port)
                try:
                    return await client.run_grid(request)
                finally:
                    await client.close()
            finally:
                await server.aclose()

        remote = run_async(scenario())
        # The facade is the single engine: rows identical down to the
        # wire encoding (tuples revived, floats exact).
        assert remote.rows == local.rows
        assert (
            json.dumps([dict(r) for r in remote.rows], sort_keys=True)
            == json.dumps([dict(r) for r in local.rows], sort_keys=True)
        )


class TestCrashRecovery:
    def test_grid_store_scan_finds_unfinished_requests(self, tmp_path):
        store = GridStore(str(tmp_path))
        request = facade.grid_request("fig10", mixes=("Q1",))
        key = grid_key(request)
        store.journal(key, request)
        assert store.incomplete() == [(key, request)]
        store.complete(key, facade.run_grid(request))
        assert store.incomplete() == []

    def test_killed_server_resumes_grid_from_checkpoint(self, tmp_path):
        """SIGKILL mid-grid; a restarted server finishes from the
        checkpoint and a resubmitted identical grid is byte-identical."""
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(api.__file__), "..", "..")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        state_dir = str(tmp_path / "state")
        request = facade.grid_request(
            "fig10", mixes=("Q1", "Q2"), accesses_per_core=12_000
        )
        key = grid_key(request)
        ckpt = os.path.join(state_dir, f"{key}.ckpt.jsonl")

        def boot():
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro", "serve", "--port", "0",
                 "--state-dir", state_dir],
                env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
                text=True,
            )
            banner = proc.stdout.readline()
            port = int(banner.rsplit(":", 1)[1].split()[0].rstrip(")"))
            return proc, port

        proc, port = boot()
        try:
            with api.ServiceClient("127.0.0.1", port, timeout=60) as client:
                client.ping()
                # Fire the grid and kill the server once >= 1 cell is
                # durably checkpointed but before the grid finishes.
                client._sock.sendall(request_line("kill-run", "grid", request))
                deadline = time.time() + 60
                while time.time() < deadline:
                    if os.path.exists(ckpt) and os.path.getsize(ckpt) > 0:
                        break
                    time.sleep(0.02)
                else:
                    pytest.fail("checkpoint never appeared")
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)
        finally:
            if proc.poll() is None:
                proc.kill()

        # The journal records the request; the result file does not exist.
        store = GridStore(state_dir)
        assert [k for k, _ in store.incomplete()] == [key]

        proc, port = boot()
        try:
            with api.ServiceClient("127.0.0.1", port, timeout=300) as client:
                result = client.run_grid(request)
            assert result.status == "ok"
            assert result.resumed_cells > 0, "nothing came from the checkpoint"
        finally:
            proc.terminate()
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()

        local = facade.run_grid(request)
        assert result.rows == local.rows, "recovered grid diverged"
