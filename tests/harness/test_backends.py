"""Backend seam + vectorized engine: selection, fallback, byte-identity.

The vectorized backend's correctness contract is *byte-identity* with
the scalar reference kernel — not approximate agreement. These tests
pin it three ways:

* randomized cross-validation over every vectorized scheme x mix x
  seed, comparing the full JSON-round-tripped stats snapshot;
* adversarial chunk sizes (1, 2, a prime, longer than the trace) so
  every chunk-boundary synchronization point is exercised, including
  forced mid-chunk (X, Y) adaptation transitions;
* the committed golden-stats file: the vectorized engine must match
  the *scalar* golden snapshot exactly, not its own.

Plus the seam semantics: resolution order, unknown-backend errors,
transparent scalar fallback for non-vectorized schemes, and the rule
that the scalar path never imports numpy.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.harness import backends
from repro.harness.backends import (
    BackendUnavailableError,
    UnknownBackendError,
    backend_available,
    resolve_backend,
    require_backend,
)
from repro.harness.backends.vectorized import VECTORIZED_SCHEMES
from repro.harness.runner import (
    DriveResult,
    ExperimentSetup,
    build_cache,
    drive_cache,
)
from repro.harness.schemes import available_schemes, get_scheme

GOLDEN_PATH = (
    Path(__file__).resolve().parent.parent / "golden" / "drive_stats_q1.json"
)

SETUP = ExperimentSetup(num_cores=4, accesses_per_core=1_500)
TOTAL = SETUP.num_cores * SETUP.accesses_per_core
WARMUP = TOTAL // 2


def _snapshot(scheme, mix="Q1", *, backend=None, setup=None, **build_kwargs):
    setup = setup or SETUP
    total = setup.num_cores * setup.accesses_per_core
    cache = build_cache(scheme, setup.system, scale=setup.scale, **build_kwargs)
    result = drive_cache(
        cache,
        setup.trace_records(mix),
        window=16,
        streams=setup.num_cores,
        warmup=total // 2,
        backend=backend,
    )
    return json.loads(
        json.dumps(
            {
                "records": result.accesses,
                "end_time": result.end_time,
                "stats": result.stats,
            }
        )
    ), result


# ----------------------------------------------------------------------
# seam semantics
# ----------------------------------------------------------------------
class TestResolution:
    def test_default_is_scalar(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend() == "scalar"

    def test_env_resolves(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "vectorized")
        assert resolve_backend() == "vectorized"

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "vectorized")
        assert resolve_backend("scalar") == "scalar"

    def test_name_is_normalized(self):
        assert resolve_backend("  Vectorized ") == "vectorized"

    def test_unknown_backend_raises_listing_valid(self):
        with pytest.raises(UnknownBackendError, match="scalar, vectorized"):
            resolve_backend("bogus")

    def test_drive_cache_rejects_unknown_backend(self):
        cache = build_cache("alloy", SETUP.system, scale=SETUP.scale)
        with pytest.raises(UnknownBackendError):
            drive_cache(cache, SETUP.trace_records("Q1"), backend="bogus")

    def test_scalar_always_available(self):
        assert backend_available("scalar")
        assert require_backend("scalar") == "scalar"

    def test_unavailable_vectorized_is_one_line_runtime_error(
        self, monkeypatch
    ):
        monkeypatch.setattr(
            backends.importlib.util, "find_spec", lambda name: None
        )
        assert not backend_available("vectorized")
        with pytest.raises(BackendUnavailableError) as excinfo:
            require_backend("vectorized")
        assert "\n" not in str(excinfo.value)
        assert "numpy" in str(excinfo.value)

    def test_scalar_modules_never_import_numpy(self):
        # The scalar path must work on a numpy-less interpreter; the
        # seam probes availability via find_spec only.
        import ast

        package = Path(backends.__file__).parent
        for name in ("__init__.py", "scalar.py"):
            tree = ast.parse((package / name).read_text())
            imported = set()
            for node in ast.walk(tree):
                if isinstance(node, ast.Import):
                    imported.update(alias.name for alias in node.names)
                elif isinstance(node, ast.ImportFrom):
                    imported.add(node.module or "")
            assert not any(
                mod == "numpy" or mod.startswith("numpy.")
                for mod in imported
            ), f"backends/{name} must not import numpy"


class TestSchemeFlags:
    def test_vectorized_schemes_matches_registry_flags(self):
        declared = {
            name
            for name in available_schemes()
            if get_scheme(name).supports_backend("vectorized")
        }
        assert declared == set(VECTORIZED_SCHEMES)

    def test_every_scheme_supports_scalar(self):
        for name in available_schemes():
            assert get_scheme(name).supports_backend("scalar")


class TestDriveResultExport:
    def test_scalar_result_omits_backend_keys(self):
        _, result = _snapshot("alloy", backend="scalar")
        out = result.to_dict()
        assert "backend" not in out
        assert "backend_fallbacks" not in out

    def test_vectorized_result_exports_backend_keys(self):
        _, result = _snapshot("alloy", backend="vectorized")
        assert result.backend == "vectorized"
        out = result.to_dict()
        assert out["backend"] == "vectorized"
        assert out["backend_fallbacks"] == 0


class TestFallback:
    def test_non_vectorized_scheme_falls_back_transparently(self):
        scalar, _ = _snapshot("lohhill", backend="scalar")
        vector, result = _snapshot("lohhill", backend="vectorized")
        assert result.backend == "vectorized"
        assert result.backend_fallbacks == 1
        assert vector == scalar

    def test_tuple_records_fall_back(self):
        cache = build_cache("alloy", SETUP.system, scale=SETUP.scale)
        trace = SETUP.trace("Q1")
        records = ((r.address, r.is_write, r.icount) for r in trace)
        result = drive_cache(
            cache,
            records,
            window=16,
            streams=SETUP.num_cores,
            backend="vectorized",
        )
        assert result.backend_fallbacks == 1
        assert result.accesses == TOTAL


# ----------------------------------------------------------------------
# byte-identity cross-validation
# ----------------------------------------------------------------------
class TestCrossValidation:
    @pytest.mark.parametrize("scheme", sorted(VECTORIZED_SCHEMES))
    @pytest.mark.parametrize("mix", ["Q1", "Q2"])
    @pytest.mark.parametrize("seed", [1, 7])
    def test_randomized_byte_identity(self, scheme, mix, seed):
        setup = ExperimentSetup(
            num_cores=4, accesses_per_core=1_200, seed=seed
        )
        scalar, _ = _snapshot(scheme, mix, backend="scalar", setup=setup)
        vector, result = _snapshot(
            scheme, mix, backend="vectorized", setup=setup
        )
        assert result.backend == "vectorized"
        assert result.backend_fallbacks == 0
        assert vector == scalar

    @pytest.mark.parametrize("scheme", ["bimodal", "alloy"])
    @pytest.mark.parametrize(
        "chunk", [1, 2, 97, 10**9], ids=["one", "two", "prime", "huge"]
    )
    def test_adversarial_chunk_sizes(self, scheme, chunk, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND_CHUNK", raising=False)
        scalar, _ = _snapshot(scheme, backend="scalar")
        monkeypatch.setenv("REPRO_BACKEND_CHUNK", str(chunk))
        vector, _ = _snapshot(scheme, backend="vectorized")
        assert vector == scalar

    @pytest.mark.parametrize("chunk", [97, 256])
    def test_mid_chunk_adaptation_transitions(self, chunk, monkeypatch):
        # A tiny adaptation interval forces (X, Y) reconfigurations to
        # land inside vectorized sub-chunks, not only at boundaries;
        # a prime/odd chunk size keeps the boundaries incommensurate
        # with the interval.
        scalar, _ = _snapshot(
            "bimodal", backend="scalar", adaptation_interval=211
        )
        monkeypatch.setenv("REPRO_BACKEND_CHUNK", str(chunk))
        vector, _ = _snapshot(
            "bimodal", backend="vectorized", adaptation_interval=211
        )
        assert vector == scalar

    def test_vectorized_matches_committed_scalar_golden(self):
        if not GOLDEN_PATH.exists():
            pytest.skip("golden file not generated yet")
        golden = json.loads(GOLDEN_PATH.read_text())
        for scheme in sorted(VECTORIZED_SCHEMES):
            snapshot, _ = _snapshot(scheme, backend="vectorized")
            assert snapshot == golden[scheme], (
                f"vectorized {scheme!r} drifted from the scalar golden "
                "snapshot"
            )
