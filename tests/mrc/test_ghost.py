"""Ghost caches vs the reference timing structures (exactness pins).

GhostCache claims to be an algorithmic restatement of set-associative
LRU, not an approximation — these tests pin the hit/access integers
against :class:`repro.sram.cache.SetAssociativeCache` on real mix
traces, plus the GhostBiModal Y == 0 degeneracy and the warm-up
counter contract the dse driver relies on.
"""

import pytest

from repro.bimodal.sets import allowed_states
from repro.harness.runner import ExperimentSetup
from repro.mrc.ghost import AdaptiveGhost, GhostBiModal, GhostCache
from repro.sram.cache import SetAssociativeCache

SETUP = ExperimentSetup(num_cores=4, accesses_per_core=1500)


@pytest.fixture(scope="module")
def stream():
    return SETUP.trace_records("Q2").addresses.tolist()


def _reference_counts(stream, capacity, associativity, block_size):
    cache = SetAssociativeCache(capacity, associativity, block_size, policy="lru")
    for address in stream:
        cache.access(address)
    return cache.accesses.hits, cache.accesses.total


class TestGhostCacheExactness:
    @pytest.mark.parametrize("block_size", [64, 256, 1024])
    def test_matches_reference_lru_across_block_sizes(self, stream, block_size):
        capacity = SETUP.system.dram_cache.capacity
        ghost = GhostCache(capacity, 8, block_size)
        ghost.consume(stream)
        assert (ghost.hits, ghost.accesses) == _reference_counts(
            stream, capacity, 8, block_size
        )

    @pytest.mark.parametrize("associativity", [1, 4, 16])
    def test_matches_reference_lru_across_associativities(
        self, stream, associativity
    ):
        capacity = 1 << 20  # small enough to force evictions
        ghost = GhostCache(capacity, associativity, 64)
        ghost.consume(stream)
        assert (ghost.hits, ghost.accesses) == _reference_counts(
            stream, capacity, associativity, 64
        )

    def test_access_and_consume_agree(self, stream):
        one_by_one = GhostCache(1 << 20, 4, 64)
        for address in stream:
            one_by_one.access(address)
        batched = GhostCache(1 << 20, 4, 64)
        batched.consume(stream)
        assert (one_by_one.hits, one_by_one.accesses) == (
            batched.hits,
            batched.accesses,
        )

    def test_miss_rate_matches_reference_division(self, stream):
        # The Figure 1 rewire requires misses/total bit-for-bit.
        capacity = SETUP.system.dram_cache.capacity
        ghost = GhostCache(capacity, 8, 512)
        ghost.consume(stream)
        reference = SetAssociativeCache(capacity, 8, 512, policy="lru")
        for address in stream:
            reference.access(address)
        assert ghost.miss_rate == reference.accesses.miss_rate


class TestWarmup:
    def test_counters_restart_at_warmup_record(self, stream):
        warmup = len(stream) // 2
        ghost = GhostCache(1 << 20, 4, 64)
        ghost.consume(stream, warmup)
        # The warmup-th record is the first measured one.
        assert ghost.accesses == len(stream) - warmup + 1
        assert 0 <= ghost.hits <= ghost.accesses

    def test_warmup_keeps_contents(self, stream):
        # Warm contents must survive the counter reset: a warmed ghost
        # cannot measure fewer hits than a cold one over the same tail.
        warmup = len(stream) // 2
        warmed = GhostCache(1 << 22, 8, 64)
        warmed.consume(stream, warmup)
        cold = GhostCache(1 << 22, 8, 64)
        cold.consume(stream[warmup - 1:])
        assert warmed.accesses == cold.accesses
        assert warmed.hits >= cold.hits

    def test_zero_warmup_counts_everything(self, stream):
        ghost = GhostCache(1 << 20, 4, 64)
        ghost.consume(stream, 0)
        assert ghost.accesses == len(stream)


class TestGhostBiModal:
    def test_y_zero_degenerates_to_big_block_lru(self, stream):
        # With no small ways every fill is a 512 B block: the bi-modal
        # set is plain X-way LRU at the big-block grain.
        capacity = 1 << 20
        bimodal = GhostBiModal(
            capacity, set_size=2048, big_block_size=512, big_ways=4, small_ways=0
        )
        bimodal.consume(stream)
        plain = GhostCache(capacity, 4, 512)
        plain.consume(stream)
        assert (bimodal.hits, bimodal.accesses) == (plain.hits, plain.accesses)

    def test_disallowed_state_rejected(self):
        with pytest.raises(ValueError, match="not an allowed state"):
            GhostBiModal(
                1 << 20, set_size=2048, big_block_size=512, big_ways=4, small_ways=1
            )

    def test_warmup_contract_matches_ghost_cache(self, stream):
        warmup = len(stream) // 2
        ghost = GhostBiModal(
            1 << 20, set_size=2048, big_block_size=512, big_ways=2, small_ways=16
        )
        ghost.consume(stream, warmup)
        assert ghost.accesses == len(stream) - warmup + 1


class TestAdaptiveGhost:
    def test_reports_the_best_fixed_state(self, stream):
        adaptive = AdaptiveGhost(1 << 20, set_size=2048, big_block_size=512)
        adaptive.consume(stream)
        rates = {s: g.hit_rate for s, g in adaptive.ghosts.items()}
        assert adaptive.hit_rate == max(rates.values())
        assert adaptive.best_state in allowed_states(2048, 512)
        assert rates[adaptive.best_state] == adaptive.hit_rate

    def test_covers_every_allowed_state(self):
        adaptive = AdaptiveGhost(1 << 20, set_size=2048, big_block_size=512)
        assert set(adaptive.ghosts) == set(allowed_states(2048, 512))


class TestValidation:
    def test_non_power_of_two_capacity_rejected(self):
        with pytest.raises(ValueError, match="powers of two"):
            GhostCache(3 << 20, 8, 64)

    def test_capacity_below_one_set_rejected(self):
        with pytest.raises(ValueError, match="too small"):
            GhostCache(1 << 10, 8, 512)

    def test_bad_associativity_rejected(self):
        with pytest.raises(ValueError, match="associativity"):
            GhostCache(1 << 20, 0, 64)

    def test_non_pow2_set_count_rounds_down_and_flags(self):
        # Loh-Hill's 29 ways: 1 MiB / (64 B * 29) = 565 sets -> 512.
        ghost = GhostCache(1 << 20, 29, 64)
        assert ghost.approximate
        assert ghost.num_sets == 512

    def test_empty_ghost_rates_are_zero(self):
        ghost = GhostCache(1 << 20, 8, 64)
        assert ghost.hit_rate == 0.0
        assert ghost.miss_rate == 0.0
