"""Dedicated tests for the generator's LLSC-share filter."""

import numpy as np
import pytest

from repro.workloads.generator import ProgramTrace, TraceChunk
from repro.workloads.profile import ProgramProfile


def profile(**overrides) -> ProgramProfile:
    base = dict(
        name="filter-test",
        footprint_mb=0.25,
        utilization_dist={8: 1.0},
        reuse_alpha=1.0,
        intensity_apki=20.0,
        write_frac=0.5,
        burst_len=4.0,
    )
    base.update(overrides)
    return ProgramProfile(**base)


def make_trace(**kw) -> ProgramTrace:
    defaults = dict(seed=11)
    defaults.update(kw)
    return ProgramTrace(profile(), **defaults)


def raw_chunk(trace: ProgramTrace, n: int) -> TraceChunk:
    return trace._generate_chunk(n)


class TestFilterSemantics:
    def test_emits_reads_for_misses(self):
        trace = make_trace()
        chunk = trace.one_chunk(3000)
        # reads dominate; every emitted read is an LLSC miss
        assert (~chunk.is_write).sum() > 0

    def test_writebacks_are_previously_written_blocks(self):
        """Every writeback address was earlier emitted/installed dirty."""
        trace = make_trace(llsc_filter_blocks=64)
        chunk = trace.one_chunk(5000)
        seen: set[int] = set()
        for addr, is_write in zip(
            chunk.addresses.tolist(), chunk.is_write.tolist()
        ):
            block = addr >> 6
            if is_write:
                # a writeback must concern a block we fetched earlier
                assert block in seen
            seen.add(block)

    def test_write_fraction_becomes_writeback_rate(self):
        """The emitted write fraction reflects dirty-victim rates, not
        the raw store fraction."""
        hot = make_trace()
        chunk = hot.one_chunk(10000)
        assert 0.0 < chunk.is_write.mean() < 0.5

    def test_zero_write_program_emits_no_writebacks(self):
        trace = ProgramTrace(profile(write_frac=0.0), seed=3)
        chunk = trace.one_chunk(5000)
        assert chunk.is_write.sum() == 0

    def test_filter_capacity_controls_absorption(self):
        """A bigger LLSC share absorbs more accesses: generating the
        same number of emitted records consumes more raw visits."""
        small = ProgramTrace(profile(), seed=7, llsc_filter_blocks=32)
        large = ProgramTrace(profile(), seed=7, llsc_filter_blocks=2048)
        small_gaps = small.one_chunk(4000).icount.astype(np.int64).sum()
        large_gaps = large.one_chunk(4000).icount.astype(np.int64).sum()
        # more absorption => more raw instructions per emitted record
        assert large_gaps > small_gaps

    def test_instruction_clock_preserved(self):
        """Absorbed records donate their gaps: the emitted stream's mean
        instruction gap is at least the raw stream's (1000/apki), scaled
        by the absorption the filter performs."""
        filtered = ProgramTrace(profile(), seed=9)
        raw = ProgramTrace(profile(), seed=9, llsc_filter_blocks=0)
        f_gap = filtered.one_chunk(4000).icount.astype(np.int64).mean()
        r_gap = raw.one_chunk(4000).icount.astype(np.int64).mean()
        assert r_gap == pytest.approx(50.0, rel=0.15)  # 1000/apki
        assert f_gap >= r_gap  # filtering can only lengthen gaps

    def test_deterministic_with_filter(self):
        a = make_trace().one_chunk(3000)
        b = make_trace().one_chunk(3000)
        assert np.array_equal(a.addresses, b.addresses)
        assert np.array_equal(a.is_write, b.is_write)
