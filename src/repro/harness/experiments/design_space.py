"""Design-space experiments: Figures 1, 2 and 5.

These reproduce the paper's Section II motivation studies with the
trace-driven methodology: functional cache simulations over the merged
LLSC-miss streams. Each mix is one parallelizable cell; the merged
record arrays come from the trace cache, so a mix's stream is generated
once and shared by every block size / figure instead of being re-derived
per sweep point.

Figure 1 runs on the MRC engine (:mod:`repro.mrc`): the block-size
sweep is exactly a hit-rate-vs-block-size curve, and the tag-only ghost
pass produces miss rates bit-identical to the old per-block-size
:class:`~repro.sram.cache.SetAssociativeCache` walk (pinned by
tests/harness/test_design_space.py) at a fraction of the cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.stats import Histogram
from repro.harness.parallel import complete_groups, run_grid
from repro.harness.reporting import append_mean_row
from repro.harness.runner import ExperimentSetup, build_cache, drive_cache
from repro.mrc.engine import MRCSpec, mrc_pass
from repro.sram.cache import SetAssociativeCache
from repro.workloads.mixes import mixes_for_cores

__all__ = [
    "fig1_miss_rate_vs_block_size",
    "fig2_block_utilization",
    "fig5_mru_hits",
]

BLOCK_SIZES = (64, 128, 256, 512, 1024, 2048, 4096)


@dataclass(frozen=True)
class _Fig1Cell:
    mix: str
    setup: ExperimentSetup
    block_sizes: tuple[int, ...]
    associativity: int


def _fig1_row(cell: _Fig1Cell) -> dict:
    capacity = cell.setup.system.dram_cache.capacity
    records = cell.setup.trace_records(cell.mix)
    result = mrc_pass(
        records.addresses,
        MRCSpec(
            block_sizes=cell.block_sizes,
            base_capacity=capacity,
            base_associativity=cell.associativity,
            seed=cell.setup.seed,
        ),
    )
    row: dict = {"mix": cell.mix}
    for point in result.block_size:
        row[f"{point.param}B"] = point.miss_rate
    return row


def fig1_miss_rate_vs_block_size(
    *,
    setup: ExperimentSetup | None = None,
    mix_names: list[str] | None = None,
    block_sizes: tuple[int, ...] = BLOCK_SIZES,
    associativity: int = 8,
    jobs: int | None = None,
) -> list[dict]:
    """Figure 1: LLSC miss rate falls as DRAM cache block size grows.

    A functional set-associative simulation of the DRAM cache at each
    block size; the paper observes the miss rate *nearly halving* with
    each doubling for most workloads.
    """
    setup = setup or ExperimentSetup()
    names = mix_names or list(mixes_for_cores(setup.num_cores))
    cells = [
        _Fig1Cell(
            mix=name,
            setup=setup,
            block_sizes=tuple(block_sizes),
            associativity=associativity,
        )
        for name in names
    ]
    results = run_grid(_fig1_row, cells, jobs=jobs)
    rows = [row for _, (row,) in complete_groups(names, results, 1)]
    return append_mean_row(rows)


@dataclass(frozen=True)
class _Fig2Cell:
    mix: str
    setup: ExperimentSetup


def _fig2_row(cell: _Fig2Cell) -> dict:
    setup = cell.setup
    cache = build_cache("fixed512", setup.system, scale=setup.scale)
    drive_cache(
        cache,
        setup.trace_records(cell.mix),
        streams=setup.num_cores,
        backend=setup.backend or None,
    )
    hist = Histogram()
    hist.buckets.update(cache.utilization_hist.buckets)
    for entry in cache._sets.values():
        for block in entry.big_ways:
            if block is not None and block.utilization:
                hist.add(block.utilization)
    row: dict = {"mix": cell.mix}
    for level in range(1, 9):
        row[f"u{level}"] = hist.fraction(level)
    row["full_frac"] = hist.fraction(8)
    return row


def fig2_block_utilization(
    *,
    setup: ExperimentSetup | None = None,
    mix_names: list[str] | None = None,
    jobs: int | None = None,
) -> list[dict]:
    """Figure 2: distribution of 64B sub-block utilization in 512B blocks.

    Runs the fixed-512B organization and histograms the per-block
    utilization observed at eviction plus the final resident blocks —
    i.e. utilization over each block's full residency, as the paper's
    tracker measures it.
    """
    setup = setup or ExperimentSetup()
    names = mix_names or list(mixes_for_cores(setup.num_cores))
    cells = [_Fig2Cell(mix=name, setup=setup) for name in names]
    results = run_grid(_fig2_row, cells, jobs=jobs)
    return [row for _, (row,) in complete_groups(names, results, 1)]


@dataclass(frozen=True)
class _Fig5Cell:
    mix: str
    setup: ExperimentSetup
    associativity: int
    block_size: int


def _fig5_row(cell: _Fig5Cell) -> dict:
    capacity = cell.setup.system.dram_cache.capacity
    cache = SetAssociativeCache(
        capacity, cell.associativity, cell.block_size, policy="lru", track_mru=True
    )
    records = cell.setup.trace_records(cell.mix)
    access = cache.access
    for address, is_write in zip(
        records.addresses.tolist(), records.is_write.tolist()
    ):
        access(address, is_write=is_write)
    hist = cache.mru_hits
    row: dict = {"mix": cell.mix}
    for rank in range(cell.associativity):
        row[f"mru{rank}"] = hist.fraction(rank)
    row["top2"] = hist.cumulative_fraction(1)
    return row


def fig5_mru_hits(
    *,
    setup: ExperimentSetup | None = None,
    mix_names: list[str] | None = None,
    associativity: int = 8,
    block_size: int = 512,
    jobs: int | None = None,
) -> list[dict]:
    """Figure 5: fraction of cache hits by MRU stack position (8-way).

    The paper finds >94% of hits land on the top-2 MRU ways in 8-core
    workloads — the observation that justifies a 2-entry way locator.
    """
    setup = setup or ExperimentSetup(num_cores=8)
    names = mix_names or list(mixes_for_cores(setup.num_cores))
    cells = [
        _Fig5Cell(
            mix=name, setup=setup, associativity=associativity, block_size=block_size
        )
        for name in names
    ]
    results = run_grid(_fig5_row, cells, jobs=jobs)
    rows = [row for _, (row,) in complete_groups(names, results, 1)]
    return append_mean_row(rows)
