"""Figure 10: fraction of accesses served by small blocks, per mix.

Paper: wide adaptation range — Q17 directs only 1% of accesses to small
blocks while Q23 directs 48% — evidence that the bi-modal organization
tailors itself to workload spatial behaviour.
"""

from repro.harness.experiments import fig10_small_block_fraction
from repro.harness.runner import ExperimentSetup

SMALLFRAC_MIXES = ["Q2", "Q7", "Q17", "Q19", "Q23"]


def test_fig10_small_block_fraction(benchmark, report):
    # Adaptation (tracker training + global-state drift + set
    # conversions) needs run length: use a longer quota than the other
    # quad benchmarks.
    setup = ExperimentSetup(num_cores=4, accesses_per_core=50_000, seed=1)
    rows = benchmark.pedantic(
        lambda: fig10_small_block_fraction(setup=setup, mix_names=SMALLFRAC_MIXES),
        rounds=1,
        iterations=1,
    )
    report(rows, title="Figure 10: small-block access fraction")
    by_mix = {r["mix"]: r["small_fraction"] for r in rows}
    # Dense mixes barely use small blocks (paper: Q17 at 1%).
    assert by_mix["Q17"] < 0.05
    assert by_mix["Q2"] < 0.10
    # Sparse mixes lean heavily on small blocks (paper: Q23 at 48%).
    assert by_mix["Q23"] > 0.15
    assert by_mix["Q23"] == max(by_mix.values())
    # Wide adaptation range across the population.
    assert max(by_mix.values()) - min(by_mix.values()) > 0.15
