"""Full-system wiring: cores + SRAM hierarchy + DRAM cache + memory.

This is the GEM5-mode analogue of the reproduction: per-core access
streams pass through private L1s and the shared LLSC; only LLSC misses
(and dirty LLSC victims) reach the DRAM cache, with MSHR merging of
outstanding block misses; the DRAM cache misses to off-chip memory.
Per-core retirement uses the interval model, so the run produces the
same cycles/ANTT accounting as the paper's timing simulations.

The trace-driven experiments in :mod:`repro.harness.experiments` drive
the DRAM cache directly (the paper's trace-simulator mode); this module
exists for end-to-end runs where LLSC filtering and MSHR behaviour are
part of the question.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.common.config import SystemConfig
from repro.cores.interval import IntervalCore
from repro.cores.metrics import antt
from repro.dramcache.base import DRAMCacheBase
from repro.sram.hierarchy import CacheHierarchy
from repro.sram.mshr import MSHRFile
from repro.workloads.generator import ProgramTrace
from repro.workloads.mixes import WorkloadMix
from repro.workloads.trace import CORE_ADDRESS_STRIDE

__all__ = ["SystemStats", "System", "run_system_antt"]


@dataclass
class SystemStats:
    """End-of-run summary of a full-system execution."""

    per_core_cycles: list[float]
    per_core_instructions: list[int]
    l1_hit_rate: float
    llsc_hit_rate: float
    llsc_miss_count: int
    mshr_merges: int
    dram_cache_stats: dict = field(default_factory=dict)

    @property
    def total_cycles(self) -> float:
        return max(self.per_core_cycles) if self.per_core_cycles else 0.0

    def to_dict(self) -> dict:
        """Flat-key export (shared stats protocol; see harness.export).

        DRAM cache counters nest under ``dram_cache.`` so system- and
        cache-level vocabularies stay distinct in one flat namespace.
        """
        out: dict = {
            "num_cores": len(self.per_core_cycles),
            "total_cycles": self.total_cycles,
            "instructions": sum(self.per_core_instructions),
            "l1_hit_rate": self.l1_hit_rate,
            "llsc_hit_rate": self.llsc_hit_rate,
            "llsc_miss_count": self.llsc_miss_count,
            "mshr_merges": self.mshr_merges,
        }
        for key, value in self.dram_cache_stats.items():
            out[f"dram_cache.{key}"] = value
        return out


class System:
    """One CMP: cores, SRAM hierarchy, a DRAM cache and off-chip memory.

    The DRAM cache (with its off-chip controller behind it) is injected,
    so any organization from :mod:`repro.dramcache` / :mod:`repro.bimodal`
    plugs in unchanged.
    """

    def __init__(
        self,
        config: SystemConfig,
        dram_cache: DRAMCacheBase,
        *,
        seed: int = 1,
    ) -> None:
        self.config = config
        self.dram_cache = dram_cache
        self.hierarchy = CacheHierarchy(config.num_cores, config.llsc, seed=seed)
        self.mshrs = MSHRFile(config.llsc.mshrs)
        self.cores = [
            IntervalCore(i, config.core) for i in range(config.num_cores)
        ]
        self.seed = seed

    # ------------------------------------------------------------------
    def _serve_llsc_miss(self, core: IntervalCore, address: int, is_write: bool) -> None:
        """One LLSC miss: MSHR merge or a DRAM cache access."""
        now = core.now
        block = address >> 6
        merged_fill = self.mshrs.lookup(block, now)
        if merged_fill is not None:
            if not is_write:
                core.apply_read_stall(max(0, merged_fill - now))
            return
        result = self.dram_cache.access(address, now, is_write=is_write)
        self.mshrs.allocate(block, now, result.complete)
        if is_write:
            core.note_write()
        else:
            core.apply_read_stall(result.latency)

    def _drive(self, mix: WorkloadMix, core_ids: list[int], accesses_per_core: int):
        streams = []
        for slot, core_id in enumerate(core_ids):
            trace = ProgramTrace(
                mix.programs[core_id],
                seed=self.seed + core_id,
                base_address=core_id * CORE_ADDRESS_STRIDE,
            )
            streams.append(iter_flat(trace, accesses_per_core))
        # core_ids select the mix programs (and address bases); the
        # hardware cores are slot-indexed, so a single-core system can
        # replay any program of a larger mix standalone. The heap is
        # keyed on each core's *next access arrival time* so requests
        # reach the shared hierarchy in global time order even with
        # divergent core clocks.
        cores = self.cores[: len(core_ids)]
        heap: list[tuple[float, int, tuple]] = []
        for slot in range(len(core_ids)):
            record = next(streams[slot], None)
            if record is not None:
                arrival = cores[slot].cycles + record[2] * self.config.core.base_cpi
                heap.append((arrival, slot, record))
        heapq.heapify(heap)
        while heap:
            _, slot, record = heapq.heappop(heap)
            address, is_write, icount = record
            core = cores[slot]
            core.advance_compute(icount)
            outcome = self.hierarchy.access(
                core.core_id, address, is_write=is_write
            )
            core.cycles += outcome.latency  # SRAM lookup time
            if outcome.level == "miss":
                if outcome.writeback_address is not None:
                    # dirty LLSC victim flows into the DRAM cache
                    self.dram_cache.access(
                        outcome.writeback_address, core.now, is_write=True
                    )
                self._serve_llsc_miss(core, address, is_write)
            nxt = next(streams[slot], None)
            if nxt is not None:
                arrival = core.cycles + nxt[2] * self.config.core.base_cpi
                heapq.heappush(heap, (arrival, slot, nxt))

    # ------------------------------------------------------------------
    def run(self, mix: WorkloadMix, *, accesses_per_core: int = 20_000) -> SystemStats:
        """Run every program of ``mix`` to its per-core access quota."""
        if mix.num_cores != self.config.num_cores:
            raise ValueError(
                f"mix has {mix.num_cores} programs, system has "
                f"{self.config.num_cores} cores"
            )
        self._drive(mix, list(range(mix.num_cores)), accesses_per_core)
        l1_hits = sum(l1.accesses.hits for l1 in self.hierarchy.l1s)
        l1_total = sum(l1.accesses.total for l1 in self.hierarchy.l1s)
        return SystemStats(
            per_core_cycles=[c.cycles for c in self.cores],
            per_core_instructions=[c.instructions for c in self.cores],
            l1_hit_rate=l1_hits / l1_total if l1_total else 0.0,
            llsc_hit_rate=self.hierarchy.llsc.hit_rate,
            llsc_miss_count=self.hierarchy.llsc.accesses.misses,
            mshr_merges=self.mshrs.merged_misses,
            dram_cache_stats=self.dram_cache.stats_snapshot(),
        )


def iter_flat(trace: ProgramTrace, accesses: int):
    for chunk in trace.chunks(accesses):
        yield from chunk


def run_system_antt(
    config: SystemConfig,
    mix: WorkloadMix,
    cache_factory,
    *,
    accesses_per_core: int = 10_000,
    seed: int = 1,
) -> tuple[float, SystemStats]:
    """Full-system ANTT: multiprogrammed + per-program standalone runs.

    ``cache_factory`` builds a fresh DRAM cache (with its own off-chip
    controller) per run, exactly like the trace-driven ANTT protocol.
    """
    from repro.obs import get_metrics, get_tracer

    tracer = get_tracer()
    with tracer.span(
        "system.multiprog", cores=mix.num_cores, seed=seed
    ) as span:
        system = System(config, cache_factory(), seed=seed)
        mp = system.run(mix, accesses_per_core=accesses_per_core)
        if tracer.enabled:
            span["llsc_miss_count"] = mp.llsc_miss_count
            span["total_cycles"] = mp.total_cycles
    standalone = []
    for i in range(mix.num_cores):
        with tracer.span("system.standalone", program=i, seed=seed):
            solo = System(_single_core_config(config), cache_factory(), seed=seed)
            # Same per-program seed and address base as the shared run:
            # the solo system replays program i of the mix in isolation.
            solo._drive(mix, [i], accesses_per_core)
            standalone.append(solo.cores[0].cycles)
    value = antt(mp.per_core_cycles, standalone)
    if tracer.enabled:
        tracer.point("system.antt", antt=value, cores=mix.num_cores)
        registry = get_metrics()
        registry.observe("system.antt", value)
        registry.update(mp.to_dict(), prefix="system")
    return value, mp


def _single_core_config(config: SystemConfig) -> SystemConfig:
    from dataclasses import replace

    return replace(config, num_cores=1)
