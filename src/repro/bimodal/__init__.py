"""The Bi-Modal DRAM cache — the paper's primary contribution."""

from repro.bimodal.analytic import TagLatencyModel, breakeven_locator_hit_rate
from repro.bimodal.cache import BiModalCache, BiModalConfig
from repro.bimodal.dueling import SetDuelingController
from repro.bimodal.victim import VictimBuffer, VictimProbeWrapper
from repro.bimodal.global_state import GlobalStateController
from repro.bimodal.metadata import MetadataLayout
from repro.bimodal.sets import (
    SMALLS_PER_BIG,
    BigBlock,
    BiModalSet,
    EvictedBlock,
    SmallBlock,
    allowed_states,
)
from repro.bimodal.size_predictor import BlockSizePredictor, UtilizationTracker
from repro.bimodal.way_locator import WayLocator, WayLocatorEntry

__all__ = [
    "TagLatencyModel",
    "breakeven_locator_hit_rate",
    "BiModalCache",
    "BiModalConfig",
    "SetDuelingController",
    "VictimBuffer",
    "VictimProbeWrapper",
    "GlobalStateController",
    "MetadataLayout",
    "SMALLS_PER_BIG",
    "BigBlock",
    "BiModalSet",
    "EvictedBlock",
    "SmallBlock",
    "allowed_states",
    "BlockSizePredictor",
    "UtilizationTracker",
    "WayLocator",
    "WayLocatorEntry",
]
