"""Tests for the CACTI latency staircase and Table III formulas."""

import pytest

from repro.common.tables import (
    PAPER_TABLE3_LATENCY_CYCLES,
    PAPER_TABLE3_STORAGE_KB,
    TAG_STORE_LATENCY,
    sram_latency_cycles,
    way_locator_entry_bits,
    way_locator_storage_bytes,
)


class TestSRAMStaircase:
    def test_anchored_on_paper_points(self):
        # Way locator sizes from Table III: 1-2 cycles
        assert sram_latency_cycles(int(77.8 * 1024)) == 1
        assert sram_latency_cycles(int(294.9 * 1024)) == 2
        # Tag stores from Section III-C2: 6/7/9 cycles
        assert sram_latency_cycles(1 << 20) == 6
        assert sram_latency_cycles(2 << 20) == 7
        assert sram_latency_cycles(4 << 20) == 9

    def test_monotone(self):
        sizes = [1 << e for e in range(6, 24)]
        latencies = [sram_latency_cycles(s) for s in sizes]
        assert latencies == sorted(latencies)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            sram_latency_cycles(0)

    def test_huge_structures_capped(self):
        assert sram_latency_cycles(1 << 30) == 13


class TestWayLocatorStorage:
    def test_entry_bits_figure6(self):
        # 128MB cache / 4GB memory: 32-bit addresses, 16 set bits,
        # 9 offset bits, K=14: valid+size+(23-14)+3+5 = 19 bits
        bits = way_locator_entry_bits(32, 16, 9, 14, max_ways=18)
        assert bits == 1 + 1 + (16 + 7 - 14) + 3 + 5

    def test_storage_tracks_paper_within_tolerance(self):
        # Model vs published Table III: the paper's numbers follow the
        # same formula modulo rounding of the way-id field; stay within
        # 15% everywhere.
        configs = {(128, 4): (32, 16), (256, 8): (33, 17), (512, 16): (34, 18)}
        for k, table in PAPER_TABLE3_STORAGE_KB.items():
            for (cache_mb, mem_gb), paper_kb in table.items():
                addr_bits, set_bits = configs[(cache_mb, mem_gb)]
                model_kb = (
                    way_locator_storage_bytes(addr_bits, set_bits, 9, k) / 1024.0
                )
                assert model_kb == pytest.approx(paper_kb, rel=0.15), (
                    k,
                    cache_mb,
                )

    def test_latency_matches_paper(self):
        configs = {(128, 4): (32, 16), (256, 8): (33, 17), (512, 16): (34, 18)}
        for k, cycles in PAPER_TABLE3_LATENCY_CYCLES.items():
            for (cache_mb, mem_gb), (addr_bits, set_bits) in configs.items():
                size = way_locator_storage_bytes(addr_bits, set_bits, 9, k)
                assert sram_latency_cycles(int(size)) == cycles

    def test_storage_grows_with_k(self):
        sizes = [way_locator_storage_bytes(32, 16, 9, k) for k in (10, 12, 14, 16)]
        assert sizes == sorted(sizes)
        # 4x entries per +2 K bits, slightly less than 4x bytes (fewer
        # remaining bits per entry).
        assert 3.0 < sizes[1] / sizes[0] <= 4.0

    def test_rejects_too_wide_index(self):
        with pytest.raises(ValueError):
            way_locator_entry_bits(32, 16, 9, 40)


def test_tag_store_latency_table():
    assert TAG_STORE_LATENCY[1 << 20] == 6
    assert TAG_STORE_LATENCY[4 << 20] == 9
