"""Metadata layout tests (Figure 4 organization)."""

import pytest

from repro.bimodal.metadata import MetadataLayout


@pytest.fixture
def layout():
    return MetadataLayout(
        num_sets=4096, channels=2, banks_per_channel=8, page_size=2048
    )


class TestSeparateMode:
    def test_bank0_reserved_for_metadata(self, layout):
        for s in range(256):
            _, bank, _ = layout.data_location(s)
            assert bank != 0

    def test_metadata_lives_on_other_channel(self, layout):
        """Fig. 4: tags for channel c's data sit in channel (c+1) % C, so
        tag and data accesses can proceed concurrently."""
        for s in range(256):
            data_ch, _, _ = layout.data_location(s)
            meta_ch, meta_bank, _ = layout.metadata_location(s)
            assert meta_ch == (data_ch + 1) % 2
            assert meta_bank == 0

    def test_metadata_density(self, layout):
        """16 sets of metadata share one 2 KB page (the RBH advantage)."""
        assert layout.sets_per_metadata_page == 16
        rows = {layout.metadata_location(s)[2] for s in range(0, 64, 2)}
        # 32 same-channel sets -> 2 metadata rows
        assert len(rows) == 2

    def test_data_rows_distinct_per_set(self, layout):
        locations = {layout.data_location(s) for s in range(4096)}
        assert len(locations) == 4096  # one page per set

    def test_metadata_bursts(self, layout):
        assert layout.metadata_bursts == 2  # 18 tags -> 2 x 64B

    def test_4kb_sets_need_three_bursts(self):
        layout = MetadataLayout(
            num_sets=2048,
            channels=2,
            banks_per_channel=8,
            page_size=2048,
            meta_bytes_per_set=192,
        )
        assert layout.metadata_bursts == 3


class TestColocatedMode:
    def test_metadata_equals_data_location(self):
        layout = MetadataLayout(
            num_sets=4096, channels=2, banks_per_channel=8, colocated=True
        )
        for s in range(128):
            assert layout.metadata_location(s) == layout.data_location(s)

    def test_colocated_uses_all_banks(self):
        layout = MetadataLayout(
            num_sets=4096, channels=2, banks_per_channel=8, colocated=True
        )
        banks = {layout.data_location(s)[1] for s in range(256)}
        assert banks == set(range(8))

    def test_colocated_density_is_one_set_per_page(self):
        """The co-located organization offers no metadata packing: each
        set's tags live in its own data row (motivates Figure 9b)."""
        layout = MetadataLayout(
            num_sets=4096, channels=2, banks_per_channel=8, colocated=True
        )
        rows = {layout.metadata_location(s) for s in range(64)}
        assert len(rows) == 64


class TestValidation:
    def test_needs_two_banks(self):
        with pytest.raises(ValueError):
            MetadataLayout(num_sets=16, channels=1, banks_per_channel=1)

    def test_metadata_at_least_one_burst(self):
        with pytest.raises(ValueError):
            MetadataLayout(
                num_sets=16, channels=1, banks_per_channel=4, meta_bytes_per_set=32
            )

    def test_single_channel_separate_mode(self):
        """With one channel, metadata falls back to the same channel's
        reserved bank (still a dedicated bank)."""
        layout = MetadataLayout(num_sets=64, channels=1, banks_per_channel=4)
        ch, bank, _ = layout.metadata_location(5)
        assert ch == 0
        assert bank == 0
        assert layout.data_location(5)[1] != 0
