"""DRAMCacheBase contract tests: accounting and posted-operation order."""

import pytest

from repro.common.config import DRAMCacheGeometry, DRAMGeometry, DRAMTimingConfig
from repro.dram.controller import MemoryController
from repro.dramcache.base import DRAMCacheBase


class _StubCache(DRAMCacheBase):
    """Minimal concrete cache: everything misses, posts a fill."""

    name = "stub"

    def __init__(self):
        geometry = DRAMCacheGeometry(
            capacity=1 << 20,
            geometry=DRAMGeometry(channels=1, banks_per_channel=4, page_size=2048),
        )
        offchip = MemoryController(
            DRAMGeometry(channels=1, banks_per_channel=4, page_size=2048),
            DRAMTimingConfig.ddr3_1600h(),
        )
        super().__init__(geometry, offchip)
        self.executed: list[int] = []

    def _access_fast(self, address, now, is_write):
        self._hit = False
        return self._fetch_offchip(address, now, bursts=1)


class TestAccounting:
    def test_read_latency_tracked(self):
        cache = _StubCache()
        cache.access(0x1000, 0)
        assert cache.read_latency.count == 1
        assert cache.miss_latency.count == 1
        assert cache.hit_latency.count == 0

    def test_write_latency_not_tracked(self):
        cache = _StubCache()
        cache.access(0x1000, 0, is_write=True)
        assert cache.read_latency.count == 0
        assert cache.hit_stat.total == 1

    def test_wasted_fraction(self):
        cache = _StubCache()
        cache.access(0x1000, 0)  # 64B fetched
        cache._account_waste(1)  # but 64B wasted elsewhere
        assert cache.wasted_fraction() == pytest.approx(1.0)

    def test_wasted_fraction_no_fetch(self):
        assert _StubCache().wasted_fraction() == 0.0

    def test_traffic_totals(self):
        cache = _StubCache()
        cache.access(0x1000, 0)
        cache._writeback_offchip(0x2000, 100, bursts=2)
        cache.flush_posted()
        assert cache.offchip_traffic_bytes() == 64 + 128


class TestPostedOperations:
    def test_posted_runs_only_when_time_arrives(self):
        cache = _StubCache()
        cache._post(500, lambda: cache.executed.append(500))
        cache.access(0x1000, 100)  # drain up to t=100: nothing runs
        assert cache.executed == []
        cache.access(0x2000, 600)  # t=600 >= 500: runs
        assert cache.executed == [500]

    def test_posted_order_is_time_then_fifo(self):
        cache = _StubCache()
        cache._post(300, lambda: cache.executed.append(1))
        cache._post(200, lambda: cache.executed.append(2))
        cache._post(300, lambda: cache.executed.append(3))
        cache.access(0x1000, 1000)
        assert cache.executed == [2, 1, 3]

    def test_flush_posted_runs_everything(self):
        cache = _StubCache()
        cache._post(10_000, lambda: cache.executed.append(1))
        cache.flush_posted()
        assert cache.executed == [1]

    def test_writeback_is_deferred(self):
        """A writeback stamped in the future must not touch the device
        until simulation time reaches it (causality)."""
        cache = _StubCache()
        cache._writeback_offchip(0x2000, 10_000, bursts=1)
        assert cache.offchip.writes == 0
        assert cache.offchip_writeback_bytes == 64  # accounted eagerly
        cache.access(0x1000, 20_000)
        assert cache.offchip.writes == 1

    def test_snapshot_keys(self):
        cache = _StubCache()
        cache.access(0x1000, 0)
        snap = cache.stats_snapshot()
        for key in (
            "accesses",
            "hit_rate",
            "avg_read_latency",
            "offchip_fetched_bytes",
            "wasted_fraction",
            "stack_rbh",
        ):
            assert key in snap
