"""simlint engine: discover files, build the project model, run rules.

The engine is deliberately self-contained (stdlib ``ast`` only): it
walks the requested paths, parses every module once, builds the
cross-file :class:`ProjectModel`, runs each rule's file and project
hooks, filters per-line suppressions, and returns an ordered
:class:`LintResult`. Syntax errors surface as ``syntax`` findings
rather than crashing the run, so one broken file cannot hide the rest
of the report.

With a :class:`~repro.analysis.cache.LintCache` attached the engine is
incremental: an unchanged tree replays the previous findings without
parsing anything, and on a partial change only the edited files redo
dataflow-facts extraction (optionally in parallel worker processes via
``jobs``; extraction is pure per-file work, so it parallelizes and
caches cleanly, while rule evaluation — which sees the whole project —
always runs fresh).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path

from repro.analysis.cache import LintCache, hash_bytes
from repro.analysis.config import LintConfig
from repro.analysis.model import ProjectModel, SourceFile, Violation
from repro.analysis.rules import Rule, all_rules

__all__ = ["LintResult", "discover_files", "find_repo_root", "run_lint"]


@dataclass
class LintResult:
    """Everything one lint run produced."""

    violations: list[Violation] = field(default_factory=list)
    files_scanned: int = 0
    rules_run: tuple[str, ...] = ()
    suppressed: int = 0
    #: True when the whole result was replayed from the incremental cache.
    cache_hit: bool = False
    #: Files whose dataflow facts were served from the cache this run.
    facts_reused: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations


def find_repo_root(start: Path) -> Path:
    """Nearest ancestor carrying pyproject.toml / .git (else ``start``)."""
    start = start.resolve()
    if start.is_file():
        start = start.parent
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").is_file() or (candidate / ".git").exists():
            return candidate
    return start


def discover_files(paths: list[Path], config: LintConfig) -> list[Path]:
    """All .py files under ``paths``, minus excluded globs, sorted."""
    found: set[Path] = set()
    for path in paths:
        path = path.resolve()
        if path.is_file() and path.suffix == ".py":
            found.add(path)
            continue
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                found.add(candidate)
    def excluded(path: Path) -> bool:
        posix = path.as_posix()
        return any(fnmatch(posix, glob) for glob in config.exclude)

    return sorted(p for p in found if not excluded(p))


def _relative(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def _parse(path: Path, rel: str, text: str) -> SourceFile | Violation:
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:
        return Violation(
            "syntax", rel, exc.lineno or 1, (exc.offset or 1) - 1,
            f"syntax error: {exc.msg}",
        )
    return SourceFile(path, rel, text, tree)


def _facts_worker(job: tuple[str, str, str]) -> dict | None:
    """Read + parse + extract one module's facts (runs in a worker).

    Returns the JSON form (picklable) or None when the file cannot be
    processed — the parent then falls back to in-process extraction,
    which also covers the file-changed-mid-run race.
    """
    path_str, rel, pkgrel = job
    from repro.analysis.flow import extract_facts

    try:
        text = Path(path_str).read_text(encoding="utf-8")
        tree = ast.parse(text, filename=path_str)
    except (OSError, UnicodeDecodeError, SyntaxError):
        return None
    return extract_facts(tree, rel, pkgrel).to_dict()


def _extract_all(
    sources: list[SourceFile],
    digests: dict[str, str],
    cache: LintCache | None,
    jobs: int,
) -> tuple[list, int]:
    """Facts for every source, cache-first, misses in parallel."""
    from repro.analysis.flow import ModuleFacts, extract_facts

    facts: list = [None] * len(sources)
    reused = 0
    misses: list[int] = []
    for i, source in enumerate(sources):
        if cache is not None:
            hit = cache.load_facts(source.rel, digests[source.rel])
            if hit is not None:
                facts[i] = hit
                reused += 1
                continue
        misses.append(i)

    if jobs > 1 and len(misses) > 1:
        try:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=jobs) as pool:
                jobs_in = [
                    (str(sources[i].path), sources[i].rel, sources[i].pkgrel)
                    for i in misses
                ]
                for i, document in zip(misses, pool.map(_facts_worker, jobs_in)):
                    if document is not None:
                        try:
                            facts[i] = ModuleFacts.from_dict(document)
                        except (KeyError, TypeError, ValueError):
                            facts[i] = None
        except (ImportError, OSError, RuntimeError):
            pass  # pool unavailable: the serial sweep below covers everything

    for i in misses:
        if facts[i] is None:
            source = sources[i]
            facts[i] = extract_facts(source.tree, source.rel, source.pkgrel)
        if cache is not None:
            cache.store_facts(
                sources[i].rel, digests[sources[i].rel], facts[i]
            )
    return facts, reused


def run_lint(
    paths: list[Path],
    *,
    config: LintConfig | None = None,
    root: Path | None = None,
    rules: dict[str, Rule] | None = None,
    cache: LintCache | None = None,
    jobs: int = 1,
) -> LintResult:
    """Run the rule set over ``paths``; violations come back sorted.

    ``cache`` enables the two incremental layers (full-run replay and
    per-file facts reuse); ``jobs`` > 1 extracts dataflow facts for
    cache misses in that many worker processes.
    """
    config = config or LintConfig()
    root = (root or find_repo_root(paths[0] if paths else Path.cwd())).resolve()
    active = rules if rules is not None else all_rules(config.select)

    discovered = discover_files(paths, config)
    texts: dict[str, str] = {}
    digests: dict[str, str] = {}
    unreadable: list[Violation] = []
    ordered: list[tuple[Path, str]] = []
    for path in discovered:
        rel = _relative(path, root)
        try:
            text = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            unreadable.append(
                Violation("syntax", rel, 1, 0, f"unreadable file: {exc}")
            )
            continue
        texts[rel] = text
        digests[rel] = hash_bytes(text.encode("utf-8"))
        ordered.append((path, rel))

    run_key = None
    if cache is not None and not unreadable:
        run_key = cache.run_key(
            [(rel, digests[rel]) for _, rel in ordered], active, config
        )
        replayed = cache.load_run(run_key)
        if replayed is not None:
            return replayed

    sources: list[SourceFile] = []
    violations: list[Violation] = list(unreadable)
    for path, rel in ordered:
        loaded = _parse(path, rel, texts[rel])
        if isinstance(loaded, Violation):
            violations.append(loaded)
        else:
            sources.append(loaded)

    facts, facts_reused = _extract_all(sources, digests, cache, jobs)
    project = ProjectModel(sources, config, facts=facts)
    by_rel = {source.rel: source for source in sources}
    raw: list[Violation] = []
    for rule in active.values():
        for source in sources:
            raw.extend(rule.check_file(source, project))
        raw.extend(rule.check_project(project))

    suppressed = 0
    for violation in raw:
        source = by_rel.get(violation.path)
        if source is not None and source.is_suppressed(violation.rule, violation.line):
            suppressed += 1
            continue
        violations.append(violation)

    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule, v.message))
    result = LintResult(
        violations=violations,
        files_scanned=len(sources),
        rules_run=tuple(active),
        suppressed=suppressed,
        facts_reused=facts_reused,
    )
    if cache is not None and run_key is not None:
        cache.store_run(run_key, result)
    return result
