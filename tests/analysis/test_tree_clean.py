"""Meta-test: simlint holds on the committed tree itself.

This is the gate the CI lint job enforces; keeping it in the tier-1
suite means a violation (or a stale baseline) fails fast locally too.
"""

import json
from pathlib import Path

import repro
from repro.analysis.cli import main as lint_main
from repro.analysis.config import load_config
from repro.analysis.engine import find_repo_root, run_lint

PACKAGE = Path(repro.__file__).resolve().parent


def test_committed_tree_is_clean(capsys):
    assert lint_main([str(PACKAGE), "--no-baseline"]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_all_eleven_rules_ran():
    root = find_repo_root(PACKAGE)
    result = run_lint([PACKAGE], config=load_config(root), root=root)
    assert result.ok
    assert set(result.rules_run) == {
        "api-stability",
        "async-safety",
        "backend-parity",
        "determinism",
        "determinism-flow",
        "fork-safety",
        "hot-path-purity",
        "fast-reference-parity",
        "scheme-registry",
        "stats-protocol",
        "slots",
    }
    assert result.files_scanned > 50  # the whole package, not a corner


def test_committed_baseline_is_empty():
    baseline = find_repo_root(PACKAGE) / "simlint-baseline.json"
    document = json.loads(baseline.read_text())
    assert document == {"version": 1, "entries": []}
