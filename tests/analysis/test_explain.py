"""``--explain`` docs are executable: every rule's example pair is linted.

Each registered rule ships a ``rationale`` and an ``example_bad`` /
``example_good`` source pair shown by ``python -m repro lint --explain
<rule>``. Documentation drifts unless enforced, so this module lints
every pair under a maximally-strict config: the bad example must
trigger the rule it documents and the good example must not.
"""

from dataclasses import replace

import pytest

from repro.analysis.cli import main as lint_main
from repro.analysis.rules import all_rules
from tests.analysis.conftest import STRICT

# Widen every scope gate so examples fire regardless of filename.
EXPLAIN = replace(
    STRICT,
    async_scope=("*.py",),
    api_types_modules=("*.py",),
    api_construction_allow=("*.py",),
)

RULE_NAMES = sorted(all_rules())


@pytest.mark.parametrize("name", RULE_NAMES)
def test_rule_documents_itself(name):
    rule = all_rules([name])[name]
    assert rule.rationale, f"{name} has no rationale"
    assert rule.example_bad, f"{name} has no violating example"
    assert rule.example_good, f"{name} has no clean example"
    assert rule.version >= 1


@pytest.mark.parametrize("name", RULE_NAMES)
def test_bad_example_triggers_its_rule(lint, name):
    rule = all_rules([name])[name]
    result = lint(rule.example_bad, rules=[name], config=EXPLAIN)
    hits = [v for v in result.violations if v.rule == name]
    assert hits, f"example_bad for {name} produced no {name} finding"


@pytest.mark.parametrize("name", RULE_NAMES)
def test_good_example_stays_clean(lint, name):
    rule = all_rules([name])[name]
    result = lint(rule.example_good, rules=[name], config=EXPLAIN)
    hits = [v for v in result.violations if v.rule == name]
    assert not hits, f"example_good for {name} fired: {hits[0].message}"


class TestCli:
    def test_explain_prints_rationale_and_examples(self, capsys):
        assert lint_main(["--explain", "async-safety"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("async-safety (v")
        assert "violating example:" in out
        assert "clean example:" in out

    def test_explain_unknown_rule_is_usage_error(self, capsys):
        assert lint_main(["--explain", "no-such-rule"]) == 2
        assert "unknown rule" in capsys.readouterr().err
