#!/usr/bin/env python3
"""Way locator design-space exploration (Table III + Section III-D4).

Combines the storage/latency model (Figure 6 entry format + CACTI
staircase) with the analytic tag-access model and a measured hit-rate
sweep, answering the question the paper's Table III and Figure 9(c)
answer together: *which K should the locator use?*

Usage:
    python examples/locator_design_space.py [mix-name]
"""

import sys

from repro.bimodal.analytic import TagLatencyModel, breakeven_locator_hit_rate
from repro.common.config import DRAMTimingConfig
from repro.common.tables import sram_latency_cycles, way_locator_storage_bytes
from repro.harness import ExperimentSetup, print_table
from repro.harness.experiments import fig9c_way_locator_hit_rate


def main() -> None:
    mix_name = sys.argv[1] if len(sys.argv) > 1 else "Q12"
    setup = ExperimentSetup(num_cores=4, accesses_per_core=15_000, seed=1)

    print("Break-even locator hit rate vs tags-in-SRAM (Section III-D4):")
    for sram_cycles in (6, 7, 9):
        h = breakeven_locator_hit_rate(
            sram_tag_cycles=sram_cycles, locator_latency=1, dram_tag_cycles=32
        )
        print(f"  SRAM tag store @ {sram_cycles} cycles -> need h >= {h:.0%}")
    print()

    # Measured hit rates per K on the chosen mix.
    measured = fig9c_way_locator_hit_rate(
        setup=setup, mix_names=[mix_name], k_values=(10, 12, 14, 16)
    )[0]

    model = TagLatencyModel(DRAMTimingConfig.stacked())
    rows = []
    for paper_k in (10, 12, 14, 16):
        storage = way_locator_storage_bytes(
            address_bits=32, set_index_bits=16, offset_bits=9, locator_index_bits=paper_k
        )
        latency = sram_latency_cycles(int(storage))
        hit_rate = measured[f"K{paper_k}"]
        analytic = TagLatencyModel(
            DRAMTimingConfig.stacked(), locator_latency=latency
        ).tag_access_cycles(hit_rate, metadata_rbh=0.3)
        rows.append(
            {
                "K": paper_k,
                "storage_kb": storage / 1024,
                "lookup_cycles": latency,
                "measured_hit_rate": hit_rate,
                "avg_tag_cycles": analytic,
            }
        )
    print_table(
        rows,
        title=f"Way locator design space on mix {mix_name} "
        "(storage at paper scale, hit rate measured at 1/16 scale)",
    )
    # Sweet spot: smallest table within one cycle of the best latency
    # (a 3.5x storage jump isn't worth a fraction of a cycle).
    best_latency = min(r["avg_tag_cycles"] for r in rows)
    best = next(r for r in rows if r["avg_tag_cycles"] <= best_latency + 1.0)
    print(
        f"\nsweet spot: K={best['K']} "
        f"({best['storage_kb']:.1f} KB, {best['lookup_cycles']} cycle lookup) — "
        "the paper picks K=14"
    )


if __name__ == "__main__":
    main()
