"""Bank state machine: row-buffer cases, anticipatory ACT, refresh."""

import pytest

from repro.common.config import DRAMTimingConfig
from repro.dram.bank import Bank, RowOutcome


@pytest.fixture
def timings() -> DRAMTimingConfig:
    return DRAMTimingConfig.stacked()


@pytest.fixture
def bank(timings) -> Bank:
    return Bank(timings)


class TestRowBufferCases:
    def test_first_access_is_row_closed(self, bank, timings):
        access = bank.access(row=5, now=0)
        assert access.outcome is RowOutcome.CLOSED
        assert access.core_latency == timings.trcd + timings.cl

    def test_same_row_hits(self, bank, timings):
        bank.access(row=5, now=0)
        access = bank.access(row=5, now=1000)
        assert access.outcome is RowOutcome.HIT
        assert access.core_latency == timings.cl

    def test_different_row_conflicts(self, bank, timings):
        bank.access(row=5, now=0)
        access = bank.access(row=6, now=1000)
        assert access.outcome is RowOutcome.CONFLICT
        assert access.core_latency == timings.trp + timings.trcd + timings.cl

    def test_cas_commands_pipeline_at_tccd(self, bank, timings):
        """Open-row accesses pipeline: back-to-back row hits issue tCCD
        apart, well before the earlier access's data returns."""
        bank.access(row=5, now=0)  # opens the row (CAS at tRCD)
        first = bank.access(row=5, now=1000)
        second = bank.access(row=5, now=1001)
        assert second.issue_time == first.issue_time + timings.tccd
        assert second.issue_time < first.data_ready

    def test_rbh_accounting(self, bank):
        bank.access(row=1, now=0)
        bank.access(row=1, now=1000)
        bank.access(row=2, now=2000)
        assert bank.row_buffer.hits == 1
        assert bank.row_buffer.misses == 2

    def test_activation_precharge_counts(self, bank):
        bank.access(row=1, now=0)  # ACT
        bank.access(row=2, now=1000)  # PRE + ACT
        assert bank.activations == 2
        assert bank.precharges == 1


class TestAnticipatoryActivate:
    def test_activate_opens_row(self, bank, timings):
        ready = bank.activate(row=7, now=0)
        assert ready == timings.trcd
        assert bank.open_row == 7

    def test_activate_same_row_is_free(self, bank, timings):
        bank.activate(row=7, now=0)
        ready = bank.activate(row=7, now=timings.trcd + 5)
        assert ready == timings.trcd + 5

    def test_activate_conflicting_row_precharges(self, bank, timings):
        bank.activate(row=7, now=0)
        ready = bank.activate(row=8, now=1000)
        assert ready == 1000 + timings.trp + timings.trcd
        assert bank.precharges == 1

    def test_column_after_activate(self, bank, timings):
        bank.activate(row=7, now=0)
        done = bank.column_access(now=timings.trcd)
        assert done == timings.trcd + timings.cl

    def test_column_access_requires_open_row(self, bank):
        with pytest.raises(RuntimeError):
            bank.column_access(now=0)

    def test_access_after_activate_is_row_hit(self, bank):
        bank.activate(row=7, now=0)
        access = bank.access(row=7, now=100)
        assert access.outcome is RowOutcome.HIT


class TestRefresh:
    def test_refresh_closes_row_without_stalling_idle_periods(self, timings):
        bank = Bank(timings)
        bank.access(row=3, now=0)
        # Jump far past many refresh intervals: the access right after
        # must not pay for all the refreshes that happened while idle.
        later = timings.trefi * 100 + timings.trfc + 7
        access = bank.access(row=3, now=later)
        # Row was closed by refresh -> not a hit.
        assert access.outcome is not RowOutcome.HIT
        assert access.issue_time <= later + timings.trfc
        assert bank.refreshes >= 100

    def test_access_during_refresh_window_is_stalled(self, timings):
        bank = Bank(timings)
        # Land exactly at the start of the first refresh.
        access = bank.access(row=1, now=timings.trefi)
        assert access.issue_time == timings.trefi + timings.trfc

    def test_refresh_offset_staggers(self, timings):
        early = Bank(timings, refresh_offset=0)
        late = Bank(timings, refresh_offset=500)
        a = early.access(row=1, now=timings.trefi)
        b = late.access(row=1, now=timings.trefi)
        assert a.issue_time > b.issue_time

    def test_reset_stats(self, bank):
        bank.access(row=1, now=0)
        bank.reset_stats()
        assert bank.row_buffer.total == 0
        assert bank.activations == 0
