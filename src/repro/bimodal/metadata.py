"""Placement of bi-modal sets and their metadata in the DRAM stack.

Section III-B2 / Figure 4: each set's 2 KB of data maps onto one DRAM
page of a *data bank*; the metadata (set state + up to 18 tags with
attribute bits) for all sets whose data lives in channel ``c`` is packed
into a dedicated *metadata bank* in channel ``(c+1) % C`` — so a tag read
and the anticipatory data-row activation proceed concurrently on two
different channels.

Packing density is the source of the metadata row-buffer-hit advantage:
at ~128 B of metadata per 2 KB set, a 2 KB metadata page covers 16
consecutive sets, versus exactly one set per page when tags are
co-located with data (the ablation mode reproducing Figure 9b).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

__all__ = ["MetadataLayout"]


@dataclass(frozen=True)
class MetadataLayout:
    """Maps set indices to data and metadata (channel, bank, row)."""

    num_sets: int
    channels: int
    banks_per_channel: int
    page_size: int = 2048
    meta_bytes_per_set: int = 128  # 18 tags + state, rounded to 2 bursts
    colocated: bool = False

    def __post_init__(self) -> None:
        if self.channels < 1 or self.banks_per_channel < 2:
            raise ValueError("need >= 1 channel and >= 2 banks per channel")
        if self.meta_bytes_per_set < 64:
            raise ValueError("metadata per set is at least one burst")

    # ------------------------------------------------------------------
    @cached_property
    def data_banks_per_channel(self) -> int:
        """Bank 0 of every channel is reserved for metadata."""
        return self.banks_per_channel if self.colocated else self.banks_per_channel - 1

    @cached_property
    def sets_per_metadata_page(self) -> int:
        return self.page_size // self.meta_bytes_per_set

    @cached_property
    def metadata_bursts(self) -> int:
        """DRAM bursts to read one set's full tag array (paper: 2 or 3)."""
        return (self.meta_bytes_per_set + 63) // 64

    @cached_property
    def _data_locations(self) -> dict[int, tuple[int, int, int]]:
        return {}

    @cached_property
    def _metadata_locations(self) -> dict[int, tuple[int, int, int]]:
        return {}

    # ------------------------------------------------------------------
    def data_location(self, set_index: int) -> tuple[int, int, int]:
        """(channel, bank, row) of a set's 2 KB data page."""
        cached = self._data_locations.get(set_index)
        if cached is not None:
            return cached
        channel = set_index % self.channels
        ordinal = set_index // self.channels
        if self.colocated:
            bank = ordinal % self.banks_per_channel
            row = ordinal // self.banks_per_channel
        else:
            bank = 1 + ordinal % self.data_banks_per_channel
            row = ordinal // self.data_banks_per_channel
        location = (channel, bank, row)
        self._data_locations[set_index] = location
        return location

    def metadata_location(self, set_index: int) -> tuple[int, int, int]:
        """(channel, bank, row) of a set's metadata.

        Separate mode: dedicated bank 0 of the *next* channel, densely
        packed. Co-located mode: the set's own data row (tags share the
        page with data, as in Loh-Hill/AlloyCache layouts).
        """
        if self.colocated:
            return self.data_location(set_index)
        cached = self._metadata_locations.get(set_index)
        if cached is not None:
            return cached
        data_channel = set_index % self.channels
        meta_channel = (data_channel + 1) % self.channels
        ordinal = set_index // self.channels
        location = (meta_channel, 0, ordinal // self.sets_per_metadata_page)
        self._metadata_locations[set_index] = location
        return location
