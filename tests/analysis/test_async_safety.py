"""Rule ``async-safety``: blocking reachability from event-loop roots."""

from dataclasses import replace

import pytest

from tests.analysis.conftest import STRICT

CONFIG = replace(STRICT, async_scope=("*.py",))


def run(lint, source, **kwargs):
    return lint(source, rules=["async-safety"], config=CONFIG, **kwargs)


class TestBlockingReachability:
    def test_direct_blocking_call_in_async_def(self, lint):
        result = run(lint, """
            import time

            async def handler():
                time.sleep(0.1)
        """)
        assert len(result.violations) == 1
        assert "time.sleep" in result.violations[0].message

    def test_transitive_blocking_through_sync_helper(self, lint):
        result = run(lint, """
            import subprocess

            def shell_out(cmd):
                return subprocess.run(cmd)

            async def handler(cmd):
                return shell_out(cmd)
        """)
        assert len(result.violations) == 1
        assert "shell_out" in result.violations[0].message

    def test_blocking_through_typed_self_attribute(self, lint):
        result = run(lint, """
            class Store:
                def scan(self):
                    with open("journal") as fh:
                        return fh.read()

            class Server:
                def __init__(self):
                    self.store = Store()

                async def recover(self):
                    return self.store.scan()
        """)
        assert len(result.violations) == 1
        assert "Store.scan" in result.violations[0].message

    def test_to_thread_handoff_is_not_followed(self, lint):
        result = run(lint, """
            import asyncio
            import time

            def blocking():
                time.sleep(1)

            async def handler():
                await asyncio.to_thread(blocking)
        """)
        assert result.ok

    def test_await_asyncio_sleep_is_clean(self, lint):
        result = run(lint, """
            import asyncio

            async def handler():
                await asyncio.sleep(0.1)
        """)
        assert result.ok

    def test_sync_only_module_is_out_of_scope(self, lint):
        result = run(lint, """
            import time

            def worker():
                time.sleep(1)
        """)
        assert result.ok

    def test_scope_config_excludes_modules(self, lint):
        result = lint(
            """
            import time

            async def handler():
                time.sleep(0.1)
            """,
            rules=["async-safety"],
            config=replace(STRICT, async_scope=("server/*",)),
        )
        assert result.ok


class TestUnawaitedCoroutine:
    def test_discarded_project_coroutine_call(self, lint):
        result = run(lint, """
            async def flush():
                return 1

            async def handler():
                flush()
        """)
        assert len(result.violations) == 1
        assert "await" in result.violations[0].message

    def test_awaited_and_task_wrapped_calls_are_clean(self, lint):
        result = run(lint, """
            import asyncio

            async def flush():
                return 1

            async def handler():
                await flush()
                task = asyncio.create_task(flush())
                return task
        """)
        assert result.ok


class TestExecutorSharedState:
    def test_executor_worker_mutating_loop_state(self, lint):
        result = run(lint, """
            class Server:
                def __init__(self, pool):
                    self.pool = pool
                    self.inflight = 0

                def _work(self):
                    self.inflight -= 1

                async def handle(self):
                    self.inflight += 1
                    self.pool.submit(self._work)
        """)
        assert len(result.violations) == 1
        assert "inflight" in result.violations[0].message

    def test_disjoint_attributes_are_clean(self, lint):
        result = run(lint, """
            class Server:
                def __init__(self, pool):
                    self.pool = pool
                    self.inflight = 0
                    self.done = 0

                def _work(self):
                    self.done += 1

                async def handle(self):
                    self.inflight += 1
                    self.pool.submit(self._work)
        """)
        assert result.ok


class TestSuppression:
    def test_inline_off_comment_suppresses(self, lint):
        result = run(lint, """
            import time

            async def handler():
                time.sleep(0.1)  # simlint: off=async-safety -- startup only
        """)
        assert result.ok
        assert result.suppressed == 1
