"""Figure 8(b): DRAM cache hit rates — Alloy vs fixed-512B vs Bi-Modal.

Paper: fixed 512 B blocks gain 29% on average over AlloyCache; Bi-Modal
gains 38% via improved space utilization. The shape we require: both big-
block organizations sit far above the 64 B baseline, and Bi-Modal keeps
nearly all of the fixed-512B hit rate while spending far less bandwidth
(Figure 9a's counterpart).
"""

from conftest import QUAD_MIXES

from repro.harness.experiments import fig8b_hit_rate


def test_fig8b_hit_rate(benchmark, report, quad_setup):
    rows = benchmark.pedantic(
        lambda: fig8b_hit_rate(setup=quad_setup, mix_names=QUAD_MIXES),
        rounds=1,
        iterations=1,
    )
    report(rows, title="Figure 8b: DRAM cache hit rate by scheme")
    mean = rows[-1]
    assert mean["mix"] == "mean"
    assert mean["fixed512"] > mean["alloy"] + 0.08
    assert mean["bimodal"] > mean["alloy"] + 0.08
    # Bi-Modal retains at least ~95% of the fixed-512B hit rate.
    assert mean["bimodal"] > 0.94 * mean["fixed512"]
    assert mean["fixed512_gain_pct"] > 0
    assert mean["bimodal_gain_pct"] > 0
