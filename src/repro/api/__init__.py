"""``repro.api``: the typed public facade of the simulator.

Everything outside-world-facing goes through here: the CLI subcommands,
the ``repro serve`` daemon and library callers all build requests with
the facade constructors, execute them with the facade runners, and
exchange them as the frozen wire dataclasses. See ``docs/service.md``
for the socket protocol built on top.

    from repro import api

    request = api.sim_request("bimodal-cache", "MIX1", backend="numpy")
    result = api.run_sim(request)          # locally, or
    result = api.ServiceClient().run_sim(request)   # on a warm daemon
"""

from repro.api.catalog import (
    ExperimentSpec,
    experiment_catalog,
    experiment_ids,
    get_experiment,
)
from repro.api.client import AsyncServiceClient, ServiceClient
from repro.api.errors import (
    ERR_BAD_REQUEST,
    ERR_BAD_SCHEMA,
    ERR_DEADLINE,
    ERR_DRAINING,
    ERR_INTERNAL,
    ERR_OVERLOADED,
    EXIT_OK,
    EXIT_PARTIAL,
    EXIT_PERF_GATE,
    EXIT_USAGE,
    RETRYABLE_CODES,
    RequestError,
    ServiceError,
)
from repro.api.facade import (
    api_error,
    dse_request,
    grid_request,
    grid_setup,
    health_result,
    progress_event,
    run_dse,
    run_grid,
    run_sim,
    sim_request,
    stats_result,
    validate_dse,
    validate_grid,
    validate_sim,
)
from repro.api.retry import RetryPolicy
from repro.api.types import (
    API_SCHEMA,
    API_SCHEMA_MIN,
    ApiError,
    DseRequest,
    DseResult,
    GridRequest,
    GridResult,
    HealthResult,
    ProgressEvent,
    SimRequest,
    SimResult,
    StatsResult,
)
from repro.api.wire import (
    WireError,
    decode_line,
    dumps_strict,
    encode_line,
    from_wire,
    loads_strict,
    to_wire,
)

__all__ = [
    "API_SCHEMA",
    "API_SCHEMA_MIN",
    "ApiError",
    "AsyncServiceClient",
    "ERR_BAD_REQUEST",
    "ERR_BAD_SCHEMA",
    "ERR_DEADLINE",
    "ERR_DRAINING",
    "ERR_INTERNAL",
    "ERR_OVERLOADED",
    "EXIT_OK",
    "EXIT_PARTIAL",
    "EXIT_PERF_GATE",
    "EXIT_USAGE",
    "DseRequest",
    "DseResult",
    "ExperimentSpec",
    "GridRequest",
    "GridResult",
    "HealthResult",
    "ProgressEvent",
    "RETRYABLE_CODES",
    "RequestError",
    "RetryPolicy",
    "ServiceClient",
    "ServiceError",
    "SimRequest",
    "SimResult",
    "StatsResult",
    "WireError",
    "api_error",
    "decode_line",
    "dse_request",
    "dumps_strict",
    "encode_line",
    "experiment_catalog",
    "experiment_ids",
    "from_wire",
    "get_experiment",
    "grid_request",
    "grid_setup",
    "health_result",
    "loads_strict",
    "progress_event",
    "run_dse",
    "run_grid",
    "run_sim",
    "sim_request",
    "stats_result",
    "to_wire",
    "validate_dse",
    "validate_grid",
    "validate_sim",
]
