"""Experiment catalog: the one table of runnable figure/table grids.

Previously a private dict inside ``repro.__main__``; it lives in the
API layer now so the CLI, the facade validator and the server all
resolve experiment ids against the same table — ``repro list`` output,
``GridRequest`` validation and the unknown-experiment error can never
drift apart (the scheme-side equivalent is
``repro.harness.schemes.scheme_catalog``).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ExperimentSpec", "experiment_catalog", "experiment_ids", "get_experiment"]


@dataclass(frozen=True, slots=True)
class ExperimentSpec:
    """One experiment id: its function plus run defaults."""

    name: str
    attr: str  # function name on repro.harness.experiments
    needs_setup: bool
    default_cores: int
    description: str


def _spec(name, attr, needs_setup, cores, desc) -> ExperimentSpec:
    return ExperimentSpec(name, attr, needs_setup, cores, desc)


_EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.name: spec
    for spec in (
        _spec("fig1", "fig1_miss_rate_vs_block_size", True, 4, "miss rate vs block size"),
        _spec("fig2", "fig2_block_utilization", True, 4, "sub-block utilization distribution"),
        _spec("fig3", "fig3_latency_breakdown", False, 4, "hit-path latency breakdown"),
        _spec("fig5", "fig5_mru_hits", True, 8, "hits by MRU position"),
        _spec("fig7", "fig7_antt", True, 4, "ANTT improvement over AlloyCache"),
        _spec("fig8a", "fig8a_component_analysis", True, 8, "component ANTT analysis"),
        _spec("fig8b", "fig8b_hit_rate", True, 4, "hit rates by scheme"),
        _spec("fig8c", "fig8c_access_latency", True, 4, "average LLSC miss penalty"),
        _spec("fig9a", "fig9a_wasted_bandwidth", True, 8, "wasted off-chip bandwidth"),
        _spec("fig9b", "fig9b_metadata_rbh", True, 4, "metadata RBH separate vs co-located"),
        _spec("fig9c", "fig9c_way_locator_hit_rate", True, 4, "way locator hit rate vs K"),
        _spec("fig10", "fig10_small_block_fraction", True, 4, "small-block access fraction"),
        _spec("fig11", "fig11_energy", True, 8, "memory energy vs AlloyCache"),
        _spec("fig12", "fig12_sensitivity", True, 4, "cache/block/assoc sensitivity"),
        _spec("table1", "table1_feature_matrix", False, 4, "qualitative feature matrix"),
        _spec("table3", "table3_way_locator_storage", False, 4, "way locator storage/latency"),
        _spec("table6", "table6_prefetch", True, 4, "interaction with prefetching"),
        _spec("abl-threshold", "ablation_threshold", True, 4, "utilization threshold sweep"),
        _spec("abl-weight", "ablation_weight", True, 4, "adaptation weight sweep"),
        _spec("abl-sampling", "ablation_sampling", True, 4, "tracker sampling sweep"),
        _spec("abl-parallel", "ablation_parallel_tag", True, 4, "parallel vs serial tags"),
        _spec("ext-victim", "victim_buffer_study", True, 4, "victim-buffer benefit bound"),
        _spec("ext-dueling", "controller_comparison", True, 4, "demand vs set-dueling"),
        _spec("ext-spaceutil", "space_utilization_comparison", True, 4, "cache space utilization"),
    )
}


def experiment_catalog() -> dict[str, ExperimentSpec]:
    """Name -> spec, in display order (read-only copy)."""
    return dict(_EXPERIMENTS)


def experiment_ids() -> list[str]:
    return list(_EXPERIMENTS)


def get_experiment(name: str) -> ExperimentSpec:
    """Spec for ``name``; unknown ids raise a listing ``KeyError``."""
    try:
        return _EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; try `python -m repro list`"
        ) from None
