"""simlint reporters: human text and machine JSON.

Text lines follow the compiler convention
``path:line:col: rule: message`` so editors and CI annotations pick
them up unmodified; the JSON document carries the same findings plus
the run summary for tooling.
"""

from __future__ import annotations

import json
from collections.abc import Sequence

from repro.analysis.engine import LintResult
from repro.analysis.model import Violation

__all__ = ["render_json", "render_text"]


def render_text(
    result: LintResult,
    *,
    new: Sequence[Violation],
    tolerated: Sequence[Violation] = (),
    stale_baseline_entries: int = 0,
) -> str:
    lines = [violation.render() for violation in new]
    for violation in tolerated:
        lines.append(f"{violation.render()} [baselined]")
    summary = (
        f"simlint: {result.files_scanned} file(s), "
        f"{len(result.rules_run)} rule(s): "
        f"{len(new)} finding(s)"
    )
    if tolerated:
        summary += f", {len(tolerated)} baselined"
    if result.suppressed:
        summary += f", {result.suppressed} suppressed inline"
    if stale_baseline_entries:
        summary += (
            f"; {stale_baseline_entries} stale baseline entr"
            f"{'y' if stale_baseline_entries == 1 else 'ies'} "
            "(fixed findings — prune with --update-baseline)"
        )
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    result: LintResult,
    *,
    new: Sequence[Violation],
    tolerated: Sequence[Violation] = (),
    stale_baseline_entries: int = 0,
) -> str:
    def row(violation: Violation, baselined: bool) -> dict:
        return {
            "rule": violation.rule,
            "path": violation.path,
            "line": violation.line,
            "col": violation.col,
            "message": violation.message,
            "snippet": violation.snippet,
            "baselined": baselined,
        }

    document = {
        "violations": [row(v, False) for v in new]
        + [row(v, True) for v in tolerated],
        "summary": {
            "files_scanned": result.files_scanned,
            "rules_run": list(result.rules_run),
            "new": len(new),
            "baselined": len(tolerated),
            "suppressed_inline": result.suppressed,
            "stale_baseline_entries": stale_baseline_entries,
        },
    }
    return json.dumps(document, indent=2)
