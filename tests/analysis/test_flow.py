"""The dataflow layer itself: facts, call graph, taint fixpoint.

The rules are tested end to end elsewhere; these tests pin the engine
primitives they stand on — JSON round-tripping (the cache contract),
call resolution across modules/classes/typed attributes, deferred-edge
semantics, and interprocedural taint summaries.
"""

import ast
import textwrap

from repro.analysis.flow import (
    CallGraph,
    ModuleFacts,
    SinkSpec,
    TaintAnalysis,
    extract_facts,
    module_name_for,
)


def facts(source: str, rel: str = "pkg/mod.py") -> ModuleFacts:
    tree = ast.parse(textwrap.dedent(source))
    return extract_facts(tree, rel, rel)


def graph(**modules: str) -> CallGraph:
    return CallGraph([facts(src, rel) for rel, src in modules.items()])


class TestFacts:
    def test_module_name_strips_src_and_init(self):
        assert module_name_for("src/repro/dram/bank.py") == "repro.dram.bank"
        assert module_name_for("src/repro/api/__init__.py") == "repro.api"
        assert module_name_for("tools/gen.py") == "tools.gen"

    def test_round_trip_through_json_dict(self):
        original = facts(
            """
            import time
            from os import urandom

            class Store:
                def __init__(self):
                    self.log = open("x")

                async def write(self, row):
                    await flush(row)

            def helper(n):
                stamp = time.time()
                return stamp + n
            """
        )
        restored = ModuleFacts.from_dict(original.to_dict())
        assert restored == original

    def test_function_facts_record_calls_and_sources(self):
        mod = facts(
            """
            import time

            def helper():
                return time.time()
            """
        )
        helper = next(f for f in mod.functions if f.name == "helper")
        assert any(c.resolved == "time.time" for c in helper.calls)


class TestCallGraph:
    def test_cross_module_resolution_via_from_import(self):
        g = graph(**{
            "pkg/a.py": """
                from pkg.b import helper

                def caller():
                    return helper()
                """,
            "pkg/b.py": """
                def helper():
                    return 1
                """,
        })
        reached = g.reach("pkg.a:caller")
        assert "pkg.b:helper" in reached

    def test_self_method_and_typed_attribute_resolution(self):
        g = graph(**{
            "pkg/m.py": """
                class Store:
                    def scan(self):
                        return 1

                class Server:
                    def __init__(self):
                        self.store = Store()

                    def direct(self):
                        return self.helper()

                    def helper(self):
                        return self.store.scan()
                """,
        })
        reached = g.reach("pkg.m:Server.direct")
        assert "pkg.m:Server.helper" in reached
        assert "pkg.m:Store.scan" in reached

    def test_executor_handoff_is_deferred_not_a_stack_call(self):
        g = graph(**{
            "pkg/m.py": """
                import asyncio

                def blocking():
                    return 1

                async def root():
                    await asyncio.to_thread(blocking)
                """,
        })
        assert "pkg.m:blocking" not in g.reach("pkg.m:root")
        assert "pkg.m:blocking" in g.reach("pkg.m:root", deferred=True)

    def test_path_is_reportable(self):
        g = graph(**{
            "pkg/a.py": """
                from pkg.b import middle

                def root():
                    return middle()
                """,
            "pkg/b.py": """
                def middle():
                    return leaf()

                def leaf():
                    return 1
                """,
        })
        parent = g.reach("pkg.a:root")
        edges = g.path("pkg.a:root", "pkg.b:leaf", parent)
        assert edges
        trail = g.describe_path(edges)
        assert "middle" in trail and "pkg/b.py" in trail


SINKS = [
    SinkSpec(
        kind="export",
        resolved=frozenset({"pkg.export.flatten"}),
    )
]


def taint(sanitizers=(), **modules: str) -> list:
    analysis = TaintAnalysis(graph(**modules), SINKS, sanitizer_globs=tuple(sanitizers))
    return analysis.findings()


class TestTaint:
    def test_direct_source_to_sink(self):
        findings = taint(**{
            "pkg/m.py": """
                import time
                from pkg.export import flatten

                def emit():
                    stamp = time.time()
                    flatten(stamp)
                """,
        })
        assert len(findings) == 1
        assert findings[0].sink_kind == "export"
        assert "wallclock" in findings[0].kinds

    def test_taint_flows_through_helper_return(self):
        findings = taint(**{
            "pkg/m.py": """
                import time
                from pkg.export import flatten

                def now_label(prefix):
                    return prefix + str(time.time())

                def emit():
                    flatten(now_label("run-"))
                """,
        })
        assert [f.sink_kind for f in findings] == ["export"]

    def test_taint_flows_through_parameter_into_callee_sink(self):
        findings = taint(**{
            "pkg/a.py": """
                import time
                from pkg.b import write_out

                def emit():
                    write_out(time.time())
                """,
            "pkg/b.py": """
                from pkg.export import flatten

                def write_out(value):
                    flatten(value)
                """,
        })
        assert findings, "param -> callee sink flow must be reported"
        assert all("wallclock" in f.kinds for f in findings)

    def test_sanitizer_module_kills_taint(self):
        findings = taint(
            sanitizers=("pkg/clock.py",),
            **{
                "pkg/clock.py": """
                    import time

                    def stamp():
                        return time.time()
                    """,
                "pkg/m.py": """
                    from pkg.clock import stamp
                    from pkg.export import flatten

                    def emit():
                        flatten(stamp())
                    """,
            },
        )
        assert findings == []

    def test_sorted_neutralizes_set_order(self):
        tainted = taint(**{
            "pkg/m.py": """
                from pkg.export import flatten

                def emit(names):
                    bucket = set(names)
                    flatten(bucket)
                """,
        })
        clean = taint(**{
            "pkg/m.py": """
                from pkg.export import flatten

                def emit(names):
                    bucket = sorted(set(names))
                    flatten(bucket)
                """,
        })
        assert [f.kinds for f in tainted] == [("set-order",)]
        assert clean == []

    def test_untainted_value_is_silent(self):
        assert taint(**{
            "pkg/m.py": """
                from pkg.export import flatten

                def emit(config):
                    flatten(config.rows)
                """,
        }) == []
