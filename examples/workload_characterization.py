#!/usr/bin/env python3
"""Characterize workload mixes the way the paper's Section II does.

For a set of quad-core mixes, reproduces the two motivation studies:

* Figure 1 — LLSC miss rate vs block size (64 B .. 4 KB), and
* Figure 2 — the distribution of 64 B sub-block utilization inside
  512 B DRAM-cache blocks,

then prints which mixes would be classified dense / sparse / mixed by a
bi-modal organization.

Usage:
    python examples/workload_characterization.py [mix ...]
"""

import sys

from repro.harness import ExperimentSetup, print_table
from repro.harness.experiments import (
    fig1_miss_rate_vs_block_size,
    fig2_block_utilization,
)

DEFAULT_MIXES = ["Q2", "Q5", "Q7", "Q12", "Q17", "Q23"]


def classify(full_frac: float) -> str:
    if full_frac > 0.55:
        return "dense (prefers 512B blocks)"
    if full_frac < 0.25:
        return "sparse (prefers 64B blocks)"
    return "mixed (benefits from bi-modality)"


def main() -> None:
    mixes = sys.argv[1:] or DEFAULT_MIXES
    setup = ExperimentSetup(num_cores=4, accesses_per_core=15_000, seed=1)

    print("== Figure 1: miss rate vs block size ==")
    rows = fig1_miss_rate_vs_block_size(setup=setup, mix_names=mixes)
    print_table(rows)
    mean = rows[-1]
    print(
        f"\nmiss-rate ratio 64B/512B = "
        f"{mean['64B'] / max(mean['512B'], 1e-9):.1f}x "
        "(the paper observes ~halving per doubling)\n"
    )

    print("== Figure 2: sub-block utilization of 512B blocks ==")
    rows = fig2_block_utilization(setup=setup, mix_names=mixes)
    print_table(rows)

    print("\n== Spatial classification ==")
    for row in rows:
        print(f"  {row['mix']:4s} full={row['full_frac']:.2f}  {classify(row['full_frac'])}")


if __name__ == "__main__":
    main()
