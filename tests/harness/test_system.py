"""Full-system (cores + hierarchy + DRAM cache) integration tests."""

import pytest

from repro.harness.runner import ExperimentSetup, build_cache
from repro.harness.system import System, run_system_antt
from repro.workloads.mixes import get_mix


@pytest.fixture
def setup():
    return ExperimentSetup(num_cores=4, accesses_per_core=3000)


@pytest.fixture
def mix(setup):
    return get_mix("Q1").scaled(setup.footprint_scale)


def make_system(setup, scheme="bimodal"):
    config = setup.system
    return System(config, build_cache(scheme, config, scale=setup.scale))


class TestRun:
    def test_end_to_end(self, setup, mix):
        system = make_system(setup)
        stats = system.run(mix, accesses_per_core=3000)
        assert len(stats.per_core_cycles) == 4
        assert all(c > 0 for c in stats.per_core_cycles)
        assert 0.0 < stats.l1_hit_rate < 1.0
        assert stats.llsc_miss_count > 0
        assert stats.dram_cache_stats["accesses"] > 0
        assert stats.total_cycles == max(stats.per_core_cycles)

    def test_hierarchy_filters_dram_cache_traffic(self, setup, mix):
        """The DRAM cache sees only LLSC misses + dirty victims, far
        fewer than the raw access stream."""
        system = make_system(setup)
        stats = system.run(mix, accesses_per_core=3000)
        raw_accesses = 4 * 3000
        assert stats.dram_cache_stats["accesses"] < raw_accesses

    def test_mix_size_mismatch_rejected(self, setup):
        system = make_system(setup)
        with pytest.raises(ValueError):
            system.run(get_mix("E1").scaled(setup.footprint_scale))

    def test_deterministic(self, setup, mix):
        a = make_system(setup).run(mix, accesses_per_core=2000)
        b = make_system(setup).run(mix, accesses_per_core=2000)
        assert a.per_core_cycles == b.per_core_cycles


class TestMSHR:
    def test_merges_occur_under_spatial_bursts(self, setup):
        """Dense mixes re-touch in-flight blocks; MSHRs merge them."""
        mix = get_mix("Q5").scaled(setup.footprint_scale)
        system = make_system(setup)
        stats = system.run(mix, accesses_per_core=3000)
        assert stats.mshr_merges >= 0  # accounting is wired
        assert system.mshrs.primary_misses > 0


class TestANTT:
    def test_antt_at_least_one(self, setup, mix):
        config = setup.system
        value, stats = run_system_antt(
            config,
            mix,
            lambda: build_cache("alloy", config, scale=setup.scale),
            accesses_per_core=1500,
        )
        assert value >= 0.99
        assert stats.dram_cache_stats["accesses"] > 0

    def test_bimodal_not_worse_than_alloy(self, setup, mix):
        config = setup.system

        def antt_for(scheme):
            value, _ = run_system_antt(
                config,
                mix,
                lambda: build_cache(scheme, config, scale=setup.scale),
                accesses_per_core=2000,
            )
            return value

        assert antt_for("bimodal") <= antt_for("alloy") * 1.05
