"""Table III: way locator storage and latency vs K and cache size."""

import pytest

from repro.harness.experiments import table3_way_locator_storage


def test_table3_way_locator_storage(benchmark, report):
    rows = benchmark.pedantic(table3_way_locator_storage, rounds=5, iterations=1)
    report(rows, title="Table III: way locator storage/latency")
    assert len(rows) == 12  # 4 K values x 3 cache sizes
    for row in rows:
        # The Figure 6 entry-format model reproduces the published
        # storage within rounding of the way-id field width.
        assert row["model_kb"] == pytest.approx(row["paper_kb"], rel=0.15)
        assert row["model_cycles"] == row["paper_cycles"]
    # K=14 (the paper's choice) stays a 1-cycle structure at every size.
    k14 = [r for r in rows if r["K"] == 14]
    assert all(r["model_cycles"] == 1 for r in k14)
    # K=16 crosses into 2-cycle territory.
    assert all(r["model_cycles"] == 2 for r in rows if r["K"] == 16)
