"""``repro.analysis`` — simlint, the project's AST-level invariant checker.

The test suite can only spot-check the reproduction's core invariants
at runtime (golden byte-identity, deterministic resume, allocation-free
kernels); simlint enforces the *structural* side of the same contracts
statically, before any workload runs. See ``docs/static-analysis.md``
for the rule catalog, the suppression syntax and how to add a rule.

Public surface:

* :func:`repro.analysis.engine.run_lint` — programmatic entry point;
* :mod:`repro.analysis.rules` — the rule registry (``register_rule``);
* :mod:`repro.analysis.cli` — the ``python -m repro lint`` front end.
"""

from repro.analysis.config import LintConfig, load_config
from repro.analysis.engine import LintResult, run_lint
from repro.analysis.model import Violation

__all__ = [
    "LintConfig",
    "LintResult",
    "Violation",
    "load_config",
    "run_lint",
]
