"""Golden byte-identity: every scheme's stats pinned against committed JSON.

The timing kernel (dram device, cache base, scheme access paths) is
rewritten for speed from time to time; the contract is that such
rewrites are *bit-identical* — every number in ``stats_snapshot()``,
every CSV export and every end_time must come out exactly the same.
This test drives all registered schemes on the Q1 mix with a non-zero
warmup (so the warmup reset boundary semantics are covered too) and
compares the full stats dictionary — after a JSON round-trip, so the
comparison is exactly as strict as what lands in exported artifacts —
against ``tests/golden/drive_stats_q1.json``.

To regenerate after an *intentional* simulation-semantics change::

    REPRO_REGEN_GOLDEN=1 python -m pytest tests/harness/test_golden_stats.py

then commit the updated JSON alongside the change that explains it.
A pure performance PR must never need to regenerate this file.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.harness.runner import ExperimentSetup, build_cache, drive_cache
from repro.harness.schemes import available_schemes

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "golden" / "drive_stats_q1.json"

SETUP = ExperimentSetup(num_cores=4, accesses_per_core=1_500)
TOTAL = SETUP.num_cores * SETUP.accesses_per_core
WARMUP = TOTAL // 2  # warmup > 0: the reset boundary is part of the contract


def _drive_scheme(scheme: str) -> dict:
    cache = build_cache(scheme, SETUP.system, scale=SETUP.scale)
    result = drive_cache(
        cache,
        SETUP.trace_records("Q1"),
        window=16,
        streams=SETUP.num_cores,
        warmup=WARMUP,
    )
    snapshot = {
        "records": result.accesses,
        "end_time": result.end_time,
        "stats": result.stats,
    }
    # JSON round-trip: the comparison happens in the exact representation
    # exported artifacts use, so "equal here" means "byte-identical there".
    return json.loads(json.dumps(snapshot))


def _current_snapshots() -> dict[str, dict]:
    return {scheme: _drive_scheme(scheme) for scheme in available_schemes()}


def test_all_schemes_match_golden():
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(_current_snapshots(), indent=2, sort_keys=True) + "\n"
        )
        pytest.skip(f"regenerated {GOLDEN_PATH}")
    assert GOLDEN_PATH.exists(), (
        f"missing golden file {GOLDEN_PATH}; regenerate with "
        "REPRO_REGEN_GOLDEN=1 python -m pytest tests/harness/test_golden_stats.py"
    )
    golden = json.loads(GOLDEN_PATH.read_text())
    current = _current_snapshots()
    assert sorted(current) == sorted(golden), (
        "registered scheme set changed; regenerate the golden file"
    )
    for scheme in available_schemes():
        assert current[scheme] == golden[scheme], (
            f"scheme {scheme!r} drifted from the golden snapshot — a timing "
            "kernel change altered simulation results"
        )


def test_golden_covers_all_registered_schemes():
    """The committed file must track the registry, not a stale subset."""
    if not GOLDEN_PATH.exists():
        pytest.skip("golden file not generated yet")
    golden = json.loads(GOLDEN_PATH.read_text())
    assert sorted(golden) == sorted(available_schemes())
