"""Scheme registry: round-trips, errors, runner delegation."""

import pytest

from repro.dramcache.base import DRAMCacheBase
from repro.harness.runner import ExperimentSetup, build_cache, drive_cache
from repro.harness.schemes import (
    SchemeBuildContext,
    UnknownSchemeError,
    available_schemes,
    build_scheme,
    get_scheme,
    register_scheme,
    scheme_descriptions,
)
from repro.harness import schemes as schemes_mod

SETUP = ExperimentSetup(num_cores=4, accesses_per_core=600)

EXPECTED = {
    "alloy",
    "lohhill",
    "atcache",
    "footprint",
    "bimodal",
    "wayloc-only",
    "bimodal-only",
    "fixed512",
}


def _context() -> SchemeBuildContext:
    from repro.harness.runner import build_offchip

    system = SETUP.system
    return SchemeBuildContext(
        system=system, offchip=build_offchip(system), scale=SETUP.scale
    )


class TestRegistry:
    def test_all_paper_schemes_registered(self):
        assert EXPECTED <= set(available_schemes())

    def test_every_scheme_builds_and_drives(self):
        for name in available_schemes():
            cache = build_scheme(name, _context())
            assert isinstance(cache, DRAMCacheBase), name
            result = drive_cache(cache, SETUP.trace_records("Q1"), streams=4)
            assert result.accesses == 2400, name

    def test_descriptions_cover_all_schemes(self):
        descriptions = scheme_descriptions()
        assert set(descriptions) == set(available_schemes())
        assert all(descriptions[name] for name in EXPECTED)

    def test_unknown_scheme_lists_valid_names(self):
        with pytest.raises(UnknownSchemeError) as excinfo:
            get_scheme("magic")
        message = str(excinfo.value)
        assert "magic" in message
        for name in EXPECTED:
            assert name in message

    def test_unknown_scheme_is_a_value_error(self):
        with pytest.raises(ValueError):
            build_scheme("nope", _context())

    def test_duplicate_registration_requires_overwrite(self):
        spec = get_scheme("alloy")
        with pytest.raises(ValueError):
            register_scheme("alloy", spec.builder)
        register_scheme("alloy", spec.builder, overwrite=True,
                        description=spec.description)
        assert get_scheme("alloy").builder is spec.builder

    def test_registering_new_scheme_round_trips(self):
        name = "test-alias-alloy"
        alloy = get_scheme("alloy")
        register_scheme(name, alloy.builder, description="test alias")
        try:
            cache = build_cache(name, SETUP.system, scale=SETUP.scale)
            assert cache.name == "alloy"
        finally:
            schemes_mod._REGISTRY.pop(name)


class TestRunnerDelegation:
    def test_build_cache_resolves_through_registry(self):
        for name in sorted(EXPECTED):
            cache = build_cache(name, SETUP.system, scale=SETUP.scale)
            assert isinstance(cache, DRAMCacheBase), name

    def test_build_cache_unknown_raises_helpful_error(self):
        with pytest.raises(ValueError, match="available schemes"):
            build_cache("magic", SETUP.system)

    def test_bimodal_variants_differ_in_flags(self):
        full = build_cache("bimodal", SETUP.system, scale=SETUP.scale)
        wayloc = build_cache("wayloc-only", SETUP.system, scale=SETUP.scale)
        fixed = build_cache("fixed512", SETUP.system, scale=SETUP.scale)
        assert full.config.enable_bimodal and full.config.enable_way_locator
        assert not wayloc.config.enable_bimodal
        assert wayloc.config.enable_way_locator
        assert not fixed.config.enable_bimodal
        assert not fixed.config.enable_way_locator


class TestCatalogParity:
    """``list-schemes`` output and ``UnknownSchemeError`` text both
    derive from the registry via :func:`scheme_catalog`, so neither can
    drift when a scheme is added."""

    def test_catalog_covers_registry_in_order(self):
        from repro.harness.schemes import scheme_catalog

        lines = scheme_catalog()
        names = available_schemes()
        assert len(lines) == len(names)
        for line, name in zip(lines, names):
            assert line.startswith(name)
            description = scheme_descriptions()[name]
            if description:
                assert description in line

    def test_list_schemes_prints_exactly_the_catalog(self, capsys):
        from repro.__main__ import main
        from repro.harness.schemes import scheme_catalog

        assert main(["list-schemes"]) == 0
        out = capsys.readouterr().out
        for line in scheme_catalog():
            assert line in out

    def test_unknown_scheme_error_names_every_registered_scheme(self):
        message = str(UnknownSchemeError("zzz"))
        for name in available_schemes():
            assert name in message
