"""Generic set-associative SRAM cache.

Serves as the L1 data caches and the shared last-level SRAM cache
(*LLSC* in the paper's terminology) that sit in front of the DRAM cache,
and as the building block for SRAM side structures (ATCache's tag cache,
Footprint Cache's tag array).

The model is functional-plus-recency: it tracks residency, dirtiness and
LRU state, and reports evictions so the caller can issue writebacks. All
timing is attributed by the enclosing component (hit latencies come from
the config / CACTI tables).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.addressing import is_power_of_two, log2_int
from repro.common.stats import Histogram, RateStat
from repro.sram.replacement import ReplacementPolicy, make_policy

__all__ = ["AccessResult", "SetAssociativeCache"]


@dataclass(frozen=True, slots=True)
class AccessResult:
    """Outcome of one cache access.

    ``writeback_address`` is the block address of a dirty victim that must
    be written to the next level (None when no dirty eviction happened).
    ``victim_address`` reports any eviction, dirty or clean.
    """

    hit: bool
    writeback_address: int | None = None
    victim_address: int | None = None


class _Line:
    __slots__ = ("tag", "valid", "dirty", "last_use")

    def __init__(self) -> None:
        self.tag = 0
        self.valid = False
        self.dirty = False
        self.last_use = 0


class SetAssociativeCache:
    """Write-back, write-allocate set-associative cache."""

    __slots__ = (
        "name",
        "size",
        "associativity",
        "block_size",
        "num_sets",
        "_offset_bits",
        "_index_mask",
        "_sets",
        "_policy",
        "_tick",
        "accesses",
        "evictions",
        "writebacks",
        "mru_hits",
    )

    def __init__(
        self,
        size: int,
        associativity: int,
        block_size: int = 64,
        *,
        policy: str | ReplacementPolicy = "lru",
        seed: int = 0,
        name: str = "cache",
        track_mru: bool = False,
    ) -> None:
        if not is_power_of_two(size) or not is_power_of_two(block_size):
            raise ValueError("size and block_size must be powers of two")
        if associativity < 1:
            raise ValueError("associativity must be >= 1")
        num_sets = size // (block_size * associativity)
        if num_sets < 1 or not is_power_of_two(num_sets):
            raise ValueError("size/(block*assoc) must be a power-of-two set count")
        self.name = name
        self.size = size
        self.associativity = associativity
        self.block_size = block_size
        self.num_sets = num_sets
        self._offset_bits = log2_int(block_size)
        self._index_mask = num_sets - 1
        self._sets = [
            [_Line() for _ in range(associativity)] for _ in range(num_sets)
        ]
        if isinstance(policy, ReplacementPolicy):
            self._policy = policy
        else:
            self._policy = make_policy(policy, seed=seed)
        self._tick = 0
        self.accesses = RateStat()
        self.evictions = 0
        self.writebacks = 0
        # Figure 5 instrumentation: distribution of hits over MRU stack
        # positions (0 = most recently used way of the set).
        self.mru_hits: Histogram | None = Histogram() if track_mru else None

    # ------------------------------------------------------------------
    def _locate(self, address: int) -> tuple[int, int, int | None]:
        """Return (tag, set index, way or None)."""
        block = address >> self._offset_bits
        index = block & self._index_mask
        tag = block >> self._index_bits()
        ways = self._sets[index]
        for way, line in enumerate(ways):
            if line.valid and line.tag == tag:
                return tag, index, way
        return tag, index, None

    def _index_bits(self) -> int:
        return log2_int(self.num_sets)

    def block_address(self, tag: int, index: int) -> int:
        return ((tag << self._index_bits()) | index) << self._offset_bits

    # ------------------------------------------------------------------
    def contains(self, address: int) -> bool:
        """Residency probe without recency side effects."""
        _, _, way = self._locate(address)
        return way is not None

    def access(self, address: int, *, is_write: bool = False) -> AccessResult:
        """Access one block; allocates on miss; returns eviction info."""
        self._tick += 1
        tag, index, way = self._locate(address)
        ways = self._sets[index]
        if way is not None:
            line = ways[way]
            if self.mru_hits is not None:
                rank = sum(
                    1
                    for other in ways
                    if other.valid and other.last_use > line.last_use
                )
                self.mru_hits.add(rank)
            line.last_use = self._tick
            if is_write:
                line.dirty = True
            self.accesses.record(True)
            return AccessResult(hit=True)

        self.accesses.record(False)
        victim_way = self._choose_victim(index)
        line = ways[victim_way]
        writeback = None
        victim = None
        if line.valid:
            victim = self.block_address(line.tag, index)
            self.evictions += 1
            if line.dirty:
                writeback = victim
                self.writebacks += 1
        line.tag = tag
        line.valid = True
        line.dirty = is_write
        line.last_use = self._tick
        return AccessResult(hit=False, writeback_address=writeback, victim_address=victim)

    def _choose_victim(self, index: int) -> int:
        ways = self._sets[index]
        for way, line in enumerate(ways):
            if not line.valid:
                return way
        candidates = list(range(self.associativity))
        last_use = [ways[w].last_use for w in candidates]
        return self._policy.victim(candidates, last_use=last_use)

    def invalidate(self, address: int) -> bool:
        """Drop a block if present (no writeback); True if it was resident."""
        _, index, way = self._locate(address)
        if way is None:
            return False
        self._sets[index][way].valid = False
        return True

    def resident_blocks(self) -> int:
        return sum(
            1 for ways in self._sets for line in ways if line.valid
        )

    @property
    def hit_rate(self) -> float:
        return self.accesses.rate

    def reset_stats(self) -> None:
        self.accesses.reset()
        self.evictions = 0
        self.writebacks = 0
