"""Wire codec: ``repro.api`` dataclasses <-> newline-delimited JSON.

One dict shape per type::

    {"type": "SimRequest", "schema": 1, "scheme": "bimodal", ...}

``to_wire``/``from_wire`` convert between instances and those dicts;
``encode_line``/``decode_line`` add the JSON + newline framing the
socket protocol uses (``docs/service.md``). Decoding is strict:

* unknown ``type`` names, missing required fields and unexpected
  fields are :class:`WireError`\\ s (a typo'd request must fail loudly,
  not half-apply);
* a ``schema`` other than :data:`~repro.api.types.API_SCHEMA` is
  rejected — version skew between client and server surfaces as a
  clean error instead of silently misread fields.

Byte-identity through the wire: JSON maps tuples to arrays, so decode
revives arrays as *tuples* — recursively, inside dict-valued fields too
— matching the grid/checkpoint convention that sequence-valued stats
are tuples, never lists (see ``repro.harness.checkpoint``). Ints and
floats round-trip exactly (``repr`` round trip), so a result decoded
from the wire compares equal to the instance the server encoded.
"""

from __future__ import annotations

import json
from dataclasses import fields, is_dataclass

from repro.api.types import (
    API_SCHEMA,
    ApiError,
    GridRequest,
    GridResult,
    ProgressEvent,
    SimRequest,
    SimResult,
    StatsResult,
)

__all__ = [
    "WIRE_TYPES",
    "WireError",
    "decode_line",
    "encode_line",
    "from_wire",
    "to_wire",
]


class WireError(ValueError):
    """Malformed or version-incompatible wire payload."""


#: Every encodable/decodable dataclass, by wire ``type`` name.
WIRE_TYPES: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        SimRequest,
        GridRequest,
        ProgressEvent,
        SimResult,
        GridResult,
        StatsResult,
        ApiError,
    )
}

# Fields revived tuple-wise on decode (annotation says tuple).
_TUPLE_FIELDS: dict[str, set[str]] = {
    name: {
        f.name
        for f in fields(cls)
        if str(f.type).startswith("tuple")
    }
    for name, cls in WIRE_TYPES.items()
}
# dict-valued fields get the recursive list->tuple revive as well,
# because stats/rows payloads may carry tuple-valued entries.
_DICT_FIELDS: dict[str, set[str]] = {
    name: {f.name for f in fields(cls) if str(f.type) == "dict"}
    for name, cls in WIRE_TYPES.items()
}


def _revive(value):
    """Undo JSON's lossy sequence mapping: arrays come back as tuples."""
    if isinstance(value, list):
        return tuple(_revive(v) for v in value)
    if isinstance(value, dict):
        return {k: _revive(v) for k, v in value.items()}
    return value


def _plain(value):
    """Dataclass-free, JSON-encodable view of one field value."""
    if isinstance(value, tuple):
        return [_plain(v) for v in value]
    if isinstance(value, dict):
        return {k: _plain(v) for k, v in value.items()}
    return value


def to_wire(obj) -> dict:
    """One JSON-ready dict (``type`` tag + every field) for ``obj``."""
    name = type(obj).__name__
    if name not in WIRE_TYPES or not is_dataclass(obj):
        raise WireError(f"not a wire type: {type(obj)!r}")
    out: dict = {"type": name}
    for f in fields(obj):
        out[f.name] = _plain(getattr(obj, f.name))
    return out


def from_wire(payload: dict):
    """Validate and instantiate the typed object ``payload`` describes."""
    if not isinstance(payload, dict):
        raise WireError(f"wire payload must be an object, got {type(payload).__name__}")
    name = payload.get("type")
    cls = WIRE_TYPES.get(name)
    if cls is None:
        known = ", ".join(sorted(WIRE_TYPES))
        raise WireError(f"unknown wire type {name!r} (known: {known})")
    schema = payload.get("schema", None)
    if schema != API_SCHEMA:
        raise WireError(
            f"unsupported {name} schema {schema!r} "
            f"(this build speaks schema {API_SCHEMA})"
        )
    spec = {f.name: f for f in fields(cls)}
    kwargs = {}
    for key, value in payload.items():
        if key == "type":
            continue
        if key not in spec:
            raise WireError(f"unexpected field {key!r} for {name}")
        if key in _TUPLE_FIELDS[name] or key in _DICT_FIELDS[name]:
            value = _revive(value)
        kwargs[key] = value
    try:
        return cls(**kwargs)
    except TypeError as exc:  # missing required field
        raise WireError(f"bad {name} payload: {exc}") from None


def encode_line(obj) -> bytes:
    """One protocol line: compact JSON + ``\\n`` (UTF-8)."""
    return (json.dumps(to_wire(obj), separators=(",", ":")) + "\n").encode()


def decode_line(line: str | bytes):
    """Parse one protocol line back into its typed object."""
    if isinstance(line, bytes):
        line = line.decode()
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise WireError(f"not JSON: {exc}") from None
    return from_wire(payload)
