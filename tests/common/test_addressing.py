"""Unit + property tests for address field manipulation."""

import pytest
from hypothesis import given, strategies as st

from repro.common.addressing import (
    SUB_BLOCK_SIZE,
    AddressMap,
    align_down,
    is_power_of_two,
    log2_int,
    sub_block_index,
)


class TestPowerOfTwoHelpers:
    def test_is_power_of_two_accepts_powers(self):
        for exp in range(0, 40):
            assert is_power_of_two(1 << exp)

    def test_is_power_of_two_rejects_non_powers(self):
        for value in (0, -1, -2, 3, 5, 6, 7, 9, 100, 513):
            assert not is_power_of_two(value)

    def test_log2_int_exact(self):
        assert log2_int(1) == 0
        assert log2_int(512) == 9
        assert log2_int(1 << 30) == 30

    def test_log2_int_rejects_non_powers(self):
        with pytest.raises(ValueError):
            log2_int(3)
        with pytest.raises(ValueError):
            log2_int(0)

    def test_align_down(self):
        assert align_down(0x12345, 512) == 0x12200
        assert align_down(511, 512) == 0
        assert align_down(512, 512) == 512

    def test_sub_block_index(self):
        assert sub_block_index(0, 512) == 0
        assert sub_block_index(64, 512) == 1
        assert sub_block_index(448, 512) == 7
        assert sub_block_index(512 + 64, 512) == 1


@pytest.fixture
def paper_map() -> AddressMap:
    """128 MB cache, 2 KB sets, 512 B big blocks — Table IV 4-core."""
    return AddressMap(cache_size=128 << 20, set_size=2048, block_size=512)


class TestAddressMap:
    def test_paper_geometry(self, paper_map):
        assert paper_map.num_sets == 64 * 1024
        assert paper_map.set_index_bits == 16
        assert paper_map.offset_bits == 9
        assert paper_map.tag_bits == 40 - 16 - 9
        assert paper_map.small_extra_bits == 3

    def test_field_extraction(self, paper_map):
        address = (0x5A << 25) | (0x1234 << 9) | 0x1C5
        assert paper_map.tag(address) == 0x5A
        assert paper_map.set_index(address) == 0x1234
        assert paper_map.sub_block(address) == 0x1C5 >> 6

    def test_small_tag_distinguishes_sub_blocks(self, paper_map):
        base = 0x123400
        tags = {paper_map.small_tag(base + 64 * i) for i in range(8)}
        assert len(tags) == 8

    def test_block_address_alignment(self, paper_map):
        assert paper_map.block_address(0x12345) % 512 == 0

    def test_sub_blocks_per_block(self, paper_map):
        assert paper_map.sub_blocks_per_block() == 8

    def test_validation_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            AddressMap(cache_size=100, set_size=2048, block_size=512)
        with pytest.raises(ValueError):
            AddressMap(cache_size=1 << 20, set_size=2048, block_size=32)
        with pytest.raises(ValueError):
            AddressMap(cache_size=1 << 20, set_size=512, block_size=2048)
        with pytest.raises(ValueError):
            AddressMap(cache_size=1024, set_size=2048, block_size=512)


@given(
    tag=st.integers(min_value=0, max_value=(1 << 15) - 1),
    set_index=st.integers(min_value=0, max_value=(1 << 16) - 1),
    sub=st.integers(min_value=0, max_value=7),
)
def test_rebuild_roundtrip(tag, set_index, sub):
    """rebuild() is the exact inverse of the (tag, set, sub) split."""
    am = AddressMap(cache_size=128 << 20, set_size=2048, block_size=512)
    address = am.rebuild(tag, set_index, sub)
    assert am.tag(address) == tag
    assert am.set_index(address) == set_index
    assert am.sub_block(address) == sub
    assert address % SUB_BLOCK_SIZE == 0


@given(address=st.integers(min_value=0, max_value=(1 << 40) - 1))
def test_split_covers_address(address):
    """Any address decomposes into consistent fields."""
    am = AddressMap(cache_size=64 << 20, set_size=2048, block_size=512)
    rebuilt = am.rebuild(am.tag(address), am.set_index(address), am.sub_block(address))
    assert rebuilt == align_down(address, SUB_BLOCK_SIZE)


@given(
    cache_exp=st.integers(min_value=21, max_value=30),
    set_exp=st.sampled_from([11, 12]),
    block_exp=st.sampled_from([8, 9, 10]),
)
def test_geometry_identities(cache_exp, set_exp, block_exp):
    """Set/tag/offset bit widths always partition the address."""
    if block_exp > set_exp:
        return
    am = AddressMap(
        cache_size=1 << cache_exp, set_size=1 << set_exp, block_size=1 << block_exp
    )
    assert am.offset_bits + am.set_index_bits + am.tag_bits == am.address_bits
    assert am.num_sets * am.set_size == am.cache_size
