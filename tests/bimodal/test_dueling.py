"""Set-dueling controller tests."""

import pytest

from repro.bimodal.dueling import SetDuelingController
from repro.bimodal.sets import allowed_states
from repro.bimodal.cache import BiModalCache, BiModalConfig
from repro.common.config import DRAMCacheGeometry, DRAMGeometry, DRAMTimingConfig
from repro.dram.controller import MemoryController

STATES = allowed_states(2048, 512)


def make(interval=100, spacing=4):
    return SetDuelingController(STATES, interval=interval, leader_spacing=spacing)


class TestLeaderAssignment:
    def test_leaders_cover_all_states(self):
        ctrl = make(spacing=4)
        ranks = {ctrl.leader_rank(s) for s in range(48)}
        assert ranks >= {0, 1, 2}

    def test_leader_pattern(self):
        ctrl = make(spacing=4)
        assert ctrl.leader_rank(0) == 0
        assert ctrl.leader_rank(4) == 1
        assert ctrl.leader_rank(8) == 2
        assert ctrl.leader_rank(1) is None
        assert ctrl.leader_rank(12) == 0  # next period

    def test_follower_majority(self):
        ctrl = make(spacing=16)
        leaders = sum(1 for s in range(4096) if ctrl.leader_rank(s) is not None)
        assert leaders == 4096 // 16


class TestElection:
    def _feed(self, ctrl, miss_rates):
        """Feed one interval of leader observations + the access clock."""
        for rank, rate in enumerate(miss_rates):
            leader_set = rank * ctrl.leader_spacing
            for i in range(100):
                ctrl.observe_leader(leader_set, miss=(i < rate * 100))
        for _ in range(ctrl.interval):
            ctrl.record_access()

    def test_elects_lowest_miss_rate(self):
        ctrl = make()
        self._feed(ctrl, [0.5, 0.2, 0.4])
        assert ctrl.rank == 1

    def test_stays_without_evidence(self):
        ctrl = make()
        for _ in range(ctrl.interval):
            ctrl.record_access()
        assert ctrl.rank == 0
        assert ctrl.updates == 1
        assert ctrl.transitions == 0

    def test_insufficient_samples_ignored(self):
        ctrl = make()
        # only 3 observations on the winner: below the evidence floor
        ctrl.observe_leader(1 * ctrl.leader_spacing, miss=False)
        ctrl.observe_leader(1 * ctrl.leader_spacing, miss=False)
        ctrl.observe_leader(1 * ctrl.leader_spacing, miss=False)
        for _ in range(ctrl.interval):
            ctrl.record_access()
        assert ctrl.rank == 0

    def test_counters_reset_per_interval(self):
        ctrl = make()
        self._feed(ctrl, [0.1, 0.9, 0.9])
        assert ctrl.rank == 0
        # a new interval with opposite evidence flips the election
        self._feed(ctrl, [0.9, 0.9, 0.1])
        assert ctrl.rank == 2

    def test_force_state(self):
        ctrl = make()
        ctrl.force_state(2)
        assert ctrl.state == (2, 16)
        with pytest.raises(ValueError):
            ctrl.force_state(9)

    def test_validation(self):
        with pytest.raises(ValueError):
            SetDuelingController((), interval=10)
        with pytest.raises(ValueError):
            SetDuelingController(STATES, interval=0)


class TestCacheIntegration:
    def _make_cache(self, controller):
        geometry = DRAMCacheGeometry(
            capacity=1 << 19,
            geometry=DRAMGeometry(channels=2, banks_per_channel=8, page_size=2048),
        )
        offchip = MemoryController(
            DRAMGeometry(channels=1, banks_per_channel=16, page_size=2048),
            DRAMTimingConfig.ddr3_1600h(),
        )
        return BiModalCache(
            geometry,
            offchip,
            BiModalConfig(
                locator_index_bits=7,
                predictor_index_bits=8,
                tracker_sample_every=1,
                adaptation_interval=800,
                controller=controller,
                address_bits=36,
            ),
        )

    def test_dueling_controller_selected(self):
        cache = self._make_cache("dueling")
        assert isinstance(cache.global_ctrl, SetDuelingController)

    def test_unknown_controller_rejected(self):
        with pytest.raises(ValueError):
            self._make_cache("oracle")

    def test_dueling_cache_runs_and_adapts(self):
        cache = self._make_cache("dueling")
        t = 0
        # sparse single-sub-block stream: small-heavy states win
        for i in range(6000):
            r = cache.access((i * 512) % (1 << 22), t)
            t = r.complete + 5
        assert cache.global_ctrl.updates > 0
        # leader sets hold their pinned states regardless of election
        leader_counts = {0: 0, 1: 0, 2: 0}
        for set_index, entry in cache._sets.items():
            rank = cache.global_ctrl.leader_rank(set_index)
            if rank is not None and entry.state_rank() == rank:
                leader_counts[rank] += 1
        assert all(count > 0 for count in leader_counts.values())

    def test_demand_controller_unaffected(self):
        cache = self._make_cache("demand")
        t = 0
        for i in range(500):
            r = cache.access((i * 512) % (1 << 20), t)
            t = r.complete + 5
        assert cache.hit_stat.total == 500
