"""Cross-validation: fast Bank vs command-level ReferenceBank.

The access-granularity model must produce the same data-ready times as
the explicit command schedule on arbitrary request sequences — this is
the evidence that its latencies aren't an artifact of the shortcut.
"""

from hypothesis import given, settings, strategies as st

from repro.common.config import DRAMTimingConfig
from repro.dram.bank import Bank
from repro.dram.reference import ReferenceBank


@settings(max_examples=120, deadline=None)
@given(
    requests=st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 300)),  # (row, gap)
        min_size=1,
        max_size=80,
    ),
    timing_kind=st.sampled_from(["stacked", "ddr3"]),
)
def test_fast_bank_matches_reference(requests, timing_kind):
    timings = (
        DRAMTimingConfig.stacked()
        if timing_kind == "stacked"
        else DRAMTimingConfig.ddr3_1600h()
    )
    fast = Bank(timings)
    reference = ReferenceBank(timings)
    now = 0
    for row, gap in requests:
        now += gap
        a = fast.access(row, now)
        b = reference.access(row, now)
        assert a.data_ready == b.data_ready, (row, now)


def test_reference_reports_command_times():
    timings = DRAMTimingConfig.stacked()
    bank = ReferenceBank(timings)
    first = bank.access(3, now=0)
    assert first.precharge_at is None
    assert first.activate_at == 0
    assert first.cas_at == timings.trcd
    conflict = bank.access(4, now=1000)
    assert conflict.precharge_at == 1000
    assert conflict.activate_at == 1000 + timings.trp
    assert conflict.data_ready == 1000 + timings.trp + timings.trcd + timings.cl


def test_reference_pipelines_row_hits():
    timings = DRAMTimingConfig.stacked()
    bank = ReferenceBank(timings)
    bank.access(3, now=0)
    a = bank.access(3, now=500)
    b = bank.access(3, now=500)
    assert b.cas_at == a.cas_at + timings.tccd
