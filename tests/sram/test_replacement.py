"""Replacement policy tests."""

import pytest
from hypothesis import given, strategies as st

from repro.sram.replacement import LRU, Random, RandomNotRecent, make_policy


class TestLRU:
    def test_picks_oldest(self):
        policy = LRU()
        assert policy.victim([0, 1, 2], last_use=[5, 1, 9]) == 1

    def test_respects_protection(self):
        policy = LRU()
        victim = policy.victim([0, 1, 2], last_use=[5, 1, 9], protected={1})
        assert victim == 0  # next oldest unprotected

    def test_all_protected_falls_back_to_oldest(self):
        policy = LRU()
        victim = policy.victim([0, 1], last_use=[5, 1], protected={0, 1})
        assert victim == 1

    def test_requires_timestamps(self):
        with pytest.raises(ValueError):
            LRU().victim([0, 1])

    def test_requires_candidates(self):
        with pytest.raises(ValueError):
            LRU().victim([], last_use=[])


class TestRandom:
    def test_deterministic_with_seed(self):
        a = Random(seed=7)
        b = Random(seed=7)
        picks_a = [a.victim(list(range(8))) for _ in range(20)]
        picks_b = [b.victim(list(range(8))) for _ in range(20)]
        assert picks_a == picks_b

    def test_avoids_protected(self):
        policy = Random(seed=1)
        for _ in range(50):
            assert policy.victim([0, 1, 2, 3], protected={0, 1}) in (2, 3)

    def test_all_protected_still_returns(self):
        policy = Random(seed=1)
        assert policy.victim([0, 1], protected={0, 1}) in (0, 1)

    @given(st.integers(min_value=1, max_value=16))
    def test_victim_is_candidate(self, n):
        policy = Random(seed=3)
        candidates = list(range(n))
        assert policy.victim(candidates) in candidates


class TestRandomNotRecent:
    def test_is_random_with_mru_protection(self):
        """The paper's policy: random over ways outside the top-2 MRU."""
        policy = RandomNotRecent(seed=2)
        mru = {3, 7}
        for _ in range(100):
            assert policy.victim(list(range(8)), protected=mru) not in mru

    def test_covers_non_recent_ways(self):
        policy = RandomNotRecent(seed=5)
        seen = {policy.victim(list(range(8)), protected={0, 1}) for _ in range(300)}
        assert seen == set(range(2, 8))


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [("lru", LRU), ("random", Random), ("random_not_recent", RandomNotRecent)],
    )
    def test_make_policy(self, name, cls):
        assert isinstance(make_policy(name), cls)

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            make_policy("plru")
