"""Closed-loop trace driving and scheme construction helpers.

The design-space experiments (hit rates, way locator behaviour, RBH,
bandwidth — everything except ANTT) follow the paper's trace-driven
methodology: feed the DRAM cache a merged LLSC-miss stream under a
bounded outstanding-request window (the LLSC's MSHRs provide exactly
this backpressure in hardware), so bank and bus contention stay
realistic without simulating the cores.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.bimodal.cache import BiModalCache, BiModalConfig
from repro.common.config import SystemConfig, system_config
from repro.dram.controller import MemoryController
from repro.dramcache.alloy import AlloyCache
from repro.dramcache.atcache import ATCache
from repro.dramcache.base import DRAMCacheBase
from repro.dramcache.footprint import FootprintCache
from repro.dramcache.lohhill import LohHillCache
from repro.workloads.mixes import WorkloadMix, get_mix
from repro.workloads.trace import MultiProgramTrace

__all__ = [
    "SCALE",
    "ExperimentSetup",
    "build_offchip",
    "build_cache",
    "drive_cache",
    "run_scheme_on_mix",
    "scaled_locator_bits",
]

# Capacity scale factor: all experiments shrink cache capacity and
# workload footprints by the same factor (128 MB -> 8 MB for 4-core) so
# footprint/capacity ratios — which determine every relative result —
# match the paper's setup at Python-simulation speeds.
SCALE = 16


def scaled_locator_bits(paper_k: int = 14, scale: int = SCALE) -> int:
    """Preserve the paper's locator-entries : cache-sets ratio.

    The paper's K=14 gives 32K entry-pairs against a 64K-set 128 MB
    cache; dividing capacity by ``scale`` divides the set count equally,
    so K shrinks by log2(scale).
    """
    return paper_k - (scale.bit_length() - 1)


@dataclass(frozen=True)
class ExperimentSetup:
    """A scaled Table IV configuration for one core count.

    ``intensity_scale`` reduces per-core offered load for larger
    systems so the per-channel utilization matches the operating point
    the paper's workloads produced (8/16-core benches use 0.5).
    """

    num_cores: int = 4
    scale: int = SCALE
    accesses_per_core: int = 60_000
    seed: int = 1
    intensity_scale: float = 1.0

    @property
    def system(self) -> SystemConfig:
        base = system_config(self.num_cores)
        return base.scaled_cache(base.dram_cache.capacity // self.scale)

    @property
    def footprint_scale(self) -> float:
        return float(self.scale)

    def mixes(self) -> dict[str, WorkloadMix]:
        from repro.workloads.mixes import mixes_for_cores

        return mixes_for_cores(self.num_cores)

    def trace(self, mix: WorkloadMix | str) -> MultiProgramTrace:
        if isinstance(mix, str):
            mix = get_mix(mix)
        return MultiProgramTrace(
            mix,
            accesses_per_core=self.accesses_per_core,
            seed=self.seed,
            footprint_scale=self.footprint_scale,
            intensity_scale=self.intensity_scale,
        )


def build_offchip(system: SystemConfig) -> MemoryController:
    return MemoryController(system.offchip_geometry, system.offchip_timing)


def build_cache(
    scheme: str,
    system: SystemConfig,
    *,
    offchip: MemoryController | None = None,
    bimodal_config: BiModalConfig | None = None,
    scale: int = SCALE,
    adaptation_interval: int = 10_000,
) -> DRAMCacheBase:
    """Construct a DRAM cache organization by name.

    Schemes: ``alloy`` | ``lohhill`` | ``atcache`` | ``footprint`` |
    ``bimodal`` | ``wayloc-only`` | ``bimodal-only`` | ``fixed512``.
    """
    if offchip is None:
        offchip = build_offchip(system)
    geo = system.dram_cache
    if scheme == "alloy":
        return AlloyCache(geo, offchip)
    if scheme == "lohhill":
        return LohHillCache(geo, offchip)
    if scheme == "atcache":
        return ATCache(geo, offchip)
    if scheme == "footprint":
        return FootprintCache(geo, offchip)

    k = scaled_locator_bits(scale=scale)
    # Scale the SRAM learning structures so *training density per table
    # entry* matches the paper's full-size setup. The paper trains the
    # 64K-entry predictor with ~4% set sampling over hundreds of millions
    # of accesses (~50 updates/entry); scaled runs are thousands of times
    # shorter, so the table shrinks (P=12) and sampling densifies (every
    # set) to reach the same saturation of the 2-bit counters.
    # Full-scale (scale=1) runs keep the paper's exact parameters.
    p = 12 if scale > 1 else 16
    sample_every = 1 if scale > 1 else 25
    base = bimodal_config or BiModalConfig(
        locator_index_bits=k,
        predictor_index_bits=p,
        tracker_sample_every=sample_every,
        adaptation_interval=adaptation_interval,
    )
    if scheme == "bimodal":
        cfg = base
    elif scheme == "wayloc-only":
        cfg = _replace(base, enable_bimodal=False)
    elif scheme == "bimodal-only":
        cfg = _replace(base, enable_way_locator=False)
    elif scheme == "fixed512":
        cfg = _replace(base, enable_bimodal=False, enable_way_locator=False)
    else:
        raise ValueError(f"unknown scheme {scheme!r}")
    return BiModalCache(geo, offchip, cfg)


def _replace(cfg: BiModalConfig, **kwargs) -> BiModalConfig:
    from dataclasses import replace

    return replace(cfg, **kwargs)


@dataclass
class DriveResult:
    """Summary of one closed-loop drive."""

    cache: DRAMCacheBase
    accesses: int
    end_time: int
    stats: dict = field(default_factory=dict)


def drive_cache(
    cache: DRAMCacheBase,
    records,
    *,
    window: int = 16,
    min_gap: int = 1,
    cycles_per_instruction: float = 0.6,
    streams: int = 4,
    mlp: float = 2.2,
    warmup: int = 0,
) -> DriveResult:
    """Feed (address, is_write, icount) records with bounded outstanding.

    ``warmup`` > 0 drops all statistics gathered during the first that
    many records (cache contents and predictor training are kept).

    Arrival pacing is closed-loop, mirroring what real cores do:

    * compute time — the per-core instruction gaps carried by the trace,
      scaled by CPI and divided across the merged streams;
    * stall feedback — each read's latency throttles subsequent issue by
      ``latency / (mlp * streams)``, the aggregate of the per-core
      blocking the interval core model applies; and
    * ``window`` caps in-flight requests (MSHR backpressure), stalling
      issue until the *earliest-completing* outstanding request retires
      (no head-of-line blocking on a slow miss).

    Without the stall feedback an intensive mix would offer load far
    beyond what its cores could generate once they start missing, and
    every scheme would drown in queueing that the paper's closed-loop
    GEM5 cores never produce.
    """
    inflight: list[int] = []
    now = 0.0
    count = 0
    pace = cycles_per_instruction / max(1, streams)
    stall_scale = 1.0 / (mlp * max(1, streams))
    end = 0
    issued = 0
    for address, is_write, icount in records:
        issued += 1
        if warmup and issued == warmup:
            # End of warm-up: discard statistics, keep contents/training
            # (the paper fast-forwards 10B instructions before timing).
            cache.reset_stats()
        now += max(min_gap, icount * pace)
        if len(inflight) >= window:
            earliest = heapq.heappop(inflight)
            if earliest > now:
                now = float(earliest)
        result = cache.access(int(address), int(now), is_write=bool(is_write))
        if not is_write:
            now += result.latency * stall_scale
        heapq.heappush(inflight, result.complete)
        if result.complete > end:
            end = result.complete
        count += 1
    return DriveResult(
        cache=cache, accesses=count, end_time=end, stats=cache.stats_snapshot()
    )


def run_scheme_on_mix(
    scheme: str,
    mix_name: str,
    *,
    setup: ExperimentSetup | None = None,
    bimodal_config: BiModalConfig | None = None,
    window: int = 16,
    warmup_fraction: float = 0.5,
) -> DriveResult:
    """Build scheme + mix trace, drive to completion, return the result."""
    setup = setup or ExperimentSetup()
    system = setup.system
    total = setup.accesses_per_core * setup.num_cores
    cache = build_cache(
        scheme,
        system,
        bimodal_config=bimodal_config,
        scale=setup.scale,
        adaptation_interval=max(1_000, total // 150),
    )
    trace = setup.trace(mix_name)
    records = (
        (rec.address, rec.is_write, rec.icount) for rec in trace
    )
    return drive_cache(
        cache,
        records,
        window=window,
        streams=setup.num_cores,
        warmup=int(total * warmup_fraction),
    )
