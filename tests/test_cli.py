"""CLI front-end tests (python -m repro)."""


from repro.__main__ import _EXPERIMENTS, main

import repro.harness.experiments as experiments


def test_list_runs(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig1" in out and "table3" in out


def test_every_listed_experiment_exists():
    for name, (attr, _, cores, _) in _EXPERIMENTS.items():
        assert hasattr(experiments, attr), name
        assert cores in (4, 8, 16)


def test_unknown_experiment(capsys):
    assert main(["figure99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_static_experiment_prints_table(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "bimodal" in out


def test_dynamic_experiment_with_mixes(capsys):
    assert main(["fig2", "--mixes", "Q2", "--accesses", "1500"]) == 0
    out = capsys.readouterr().out
    assert "Q2" in out and "u8" in out


class TestSubcommands:
    def test_run_subcommand(self, capsys):
        assert main(["run", "table1"]) == 0
        captured = capsys.readouterr()
        assert "bimodal" in captured.out
        assert "deprecated" not in captured.err

    def test_legacy_invocation_notes_deprecation(self, capsys):
        assert main(["table1"]) == 0
        captured = capsys.readouterr()
        assert "bimodal" in captured.out
        assert "deprecated" in captured.err
        assert "repro run table1" in captured.err

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "figure99"]) == 2
        err = capsys.readouterr().err
        assert "error: unknown experiment" in err

    def test_list_schemes(self, capsys):
        assert main(["list-schemes"]) == 0
        out = capsys.readouterr().out
        for scheme in ("alloy", "lohhill", "atcache", "footprint", "bimodal",
                       "wayloc-only", "bimodal-only", "fixed512"):
            assert scheme in out

    def test_bench_subcommand(self, capsys):
        assert main([
            "bench", "--accesses-per-core", "600", "--repeats", "1",
            "--modes", "fast,traced",
        ]) == 0
        out = capsys.readouterr().out
        assert "fast" in out and "traced" in out

    def test_trace_out_writes_trace_and_manifests(self, tmp_path, monkeypatch):
        import json

        from repro.obs import get_tracer, install

        monkeypatch.delenv("REPRO_TRACE", raising=False)
        previous = get_tracer()
        trace = tmp_path / "trace.jsonl"
        export = tmp_path / "rows.json"
        try:
            assert main([
                "run", "fig2", "--mixes", "Q2", "--accesses", "1000",
                "--trace-out", str(trace), "--export", str(export),
            ]) == 0
        finally:
            install(previous)
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        assert any(e["name"] == "run" for e in events)
        assert any(e["name"] == "drive" for e in events)
        for artifact in (trace, export):
            manifest_path = artifact.with_name(artifact.name + ".manifest.json")
            manifest = json.loads(manifest_path.read_text())
            assert manifest["experiment"] == "fig2"
            assert manifest["seed"] == 1
            assert manifest["config_hash"]

    def test_dse_subcommand(self, capsys):
        assert main([
            "dse", "--mixes", "Q1", "--accesses", "600", "--jobs", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "design-space exploration" in out
        assert "winner:" in out
        assert "full-sim equivalents" in out

    def test_dse_bad_sample_rate(self, capsys):
        assert main(["dse", "--sample-rate", "0"]) == 2
        assert "sample_rate" in capsys.readouterr().err

    def test_explicit_backend_flag_does_not_warn(self, monkeypatch, capsys):
        # Satellite contract: threading the backend through the request
        # (--backend) must not trip the legacy REPRO_BACKEND shim even
        # when the deprecated variable is also set.
        import warnings

        monkeypatch.setenv("REPRO_BACKEND", "vectorized")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert main([
                "run", "fig2", "--mixes", "Q2", "--accesses", "800",
                "--backend", "scalar",
            ]) == 0
        capsys.readouterr()
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]

    def test_jobs_flag_does_not_leak_env(self, monkeypatch, capsys):
        # The api facade scopes REPRO_JOBS/REPRO_BACKEND to the request
        # (workers inherit them) and restores the environment after.
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        import os

        assert main(["run", "table1", "--jobs", "2"]) == 0
        assert "REPRO_JOBS" not in os.environ
        capsys.readouterr()


class TestConfigValidation:
    """Bad configuration gets one clean error line and exit code 2."""

    def _assert_usage_error(self, capsys, rc, needle):
        captured = capsys.readouterr()
        assert rc == 2
        assert "Traceback" not in captured.err
        [line] = [l for l in captured.err.splitlines() if l.startswith("error:")]
        assert needle in line

    def test_bad_core_count(self, capsys):
        rc = main(["run", "fig10", "--cores", "5"])
        self._assert_usage_error(capsys, rc, "cores must be 4, 8 or 16")

    def test_unknown_mix_for_cores(self, capsys):
        rc = main(["run", "fig10", "--mixes", "Q1", "NOPE"])
        self._assert_usage_error(capsys, rc, "unknown mix(es) NOPE")

    def test_mix_from_wrong_core_count(self, capsys):
        # E-mixes belong to 8 cores; fig10 defaults to 4.
        rc = main(["run", "fig10", "--mixes", "E1"])
        self._assert_usage_error(capsys, rc, "unknown mix(es) E1 for 4 cores")

    def test_negative_accesses(self, capsys):
        rc = main(["run", "fig10", "--accesses", "-5"])
        self._assert_usage_error(capsys, rc, "accesses_per_core must be positive")

    def test_bad_scale(self, capsys):
        rc = main(["run", "fig10", "--scale", "0"])
        self._assert_usage_error(capsys, rc, "scale must be >= 1")

    def test_bench_unknown_scheme(self, capsys):
        rc = main(["bench", "--scheme", "turbocache"])
        self._assert_usage_error(capsys, rc, "unknown scheme 'turbocache'")

    def test_bench_bad_cores(self, capsys):
        rc = main(["bench", "--cores", "3"])
        self._assert_usage_error(capsys, rc, "cores must be 4, 8 or 16")

    def test_bench_unknown_mix(self, capsys):
        rc = main(["bench", "--mix", "Z9"])
        self._assert_usage_error(capsys, rc, "unknown mix 'Z9'")
