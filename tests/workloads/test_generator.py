"""Trace generator tests: determinism, mask conformance, statistics."""

import numpy as np
import pytest

from repro.workloads.generator import ProgramTrace
from repro.workloads.profile import ProgramProfile


def small_profile(**overrides) -> ProgramProfile:
    base = dict(
        name="test",
        footprint_mb=0.5,
        utilization_dist={1: 0.4, 4: 0.2, 8: 0.4},
        reuse_alpha=0.9,
        intensity_apki=20.0,
        write_frac=0.25,
        burst_len=3.0,
    )
    base.update(overrides)
    return ProgramProfile(**base)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = ProgramTrace(small_profile(), seed=9).one_chunk(5000)
        b = ProgramTrace(small_profile(), seed=9).one_chunk(5000)
        assert np.array_equal(a.addresses, b.addresses)
        assert np.array_equal(a.is_write, b.is_write)
        assert np.array_equal(a.icount, b.icount)

    def test_different_seed_different_trace(self):
        a = ProgramTrace(small_profile(), seed=1).one_chunk(5000)
        b = ProgramTrace(small_profile(), seed=2).one_chunk(5000)
        assert not np.array_equal(a.addresses, b.addresses)

    def test_salt_differentiates_same_program(self):
        a = ProgramTrace(small_profile(seed_salt=0), seed=1).one_chunk(5000)
        b = ProgramTrace(small_profile(seed_salt=1), seed=1).one_chunk(5000)
        assert not np.array_equal(a.addresses, b.addresses)


class TestStreamStructure:
    def test_requested_length(self):
        chunk = ProgramTrace(small_profile(), seed=1).one_chunk(12345)
        assert len(chunk) == 12345

    def test_chunked_iteration_covers_total(self):
        total = sum(
            len(c)
            for c in ProgramTrace(small_profile(), seed=1).chunks(
                10000, chunk_size=1024
            )
        )
        assert total == 10000

    def test_addresses_are_sub_block_aligned(self):
        chunk = ProgramTrace(small_profile(), seed=1).one_chunk(5000)
        assert (chunk.addresses % 64 == 0).all()

    def test_addresses_respect_base(self):
        base = 7 << 36
        trace = ProgramTrace(small_profile(), seed=1, base_address=base)
        chunk = trace.one_chunk(5000)
        assert (chunk.addresses >= base).all()

    def test_addresses_within_footprint(self):
        trace = ProgramTrace(small_profile(), seed=1)
        chunk = trace.one_chunk(20000)
        limit = trace.num_regions * 512
        assert (chunk.addresses < limit).all()

    def test_icount_positive(self):
        chunk = ProgramTrace(small_profile(), seed=1).one_chunk(5000)
        assert (chunk.icount >= 1).all()

    def test_icount_tracks_intensity(self):
        hot = ProgramTrace(small_profile(intensity_apki=50.0), seed=1).one_chunk(20000)
        cold = ProgramTrace(small_profile(intensity_apki=5.0), seed=1).one_chunk(20000)
        assert hot.icount.mean() < cold.icount.mean()
        # Post-LLSC gaps: raw mean is 1000/apki; filtering can only
        # lengthen them (absorbed records donate their gaps).
        assert hot.icount.mean() >= 20.0 * 0.8
        raw = ProgramTrace(
            small_profile(intensity_apki=50.0), seed=1, llsc_filter_blocks=0
        ).one_chunk(20000)
        assert raw.icount.mean() == pytest.approx(20.0, rel=0.2)

    def test_write_fraction(self):
        chunk = ProgramTrace(small_profile(write_frac=0.4), seed=1).one_chunk(30000)
        assert chunk.is_write.mean() == pytest.approx(0.4, abs=0.03)

    def test_rejects_zero_accesses(self):
        with pytest.raises(ValueError):
            list(ProgramTrace(small_profile(), seed=1).chunks(0))


class TestMaskConformance:
    def test_accesses_stay_inside_region_masks(self):
        """No address ever touches a sub-block outside its region's mask.

        The mask is a contiguous run of ``util`` sub-blocks starting at
        the region's offset (mod 8).
        """
        trace = ProgramTrace(small_profile(), seed=3)
        chunk = trace.one_chunk(30000)
        regions = (chunk.addresses // 512).astype(np.int64)
        subs = ((chunk.addresses % 512) // 64).astype(np.int64)
        util = trace._region_util[regions].astype(np.int64)
        offset = trace._region_offset[regions].astype(np.int64)
        position = (subs - offset) % 8
        assert (position < util).all()

    def test_utilization_histogram_matches_profile(self):
        profile = small_profile(utilization_dist={2: 0.5, 8: 0.5})
        trace = ProgramTrace(profile, seed=1)
        hist = trace.region_utilization_histogram()
        assert set(hist) == {2, 8}
        assert hist[2] == pytest.approx(0.5, abs=0.05)

    def test_cluster_correlated_utilization(self):
        """All 8 regions of a cluster share one utilization level."""
        trace = ProgramTrace(small_profile(), seed=1)
        util = trace._region_util.reshape(-1, 8)
        assert (util == util[:, :1]).all()

    def test_footprint_bytes_bounded(self):
        trace = ProgramTrace(small_profile(), seed=1)
        assert trace.footprint_bytes() <= trace.num_regions * 512


class TestLocality:
    def test_revisit_increases_short_term_reuse(self):
        """On the *raw* (unfiltered) stream, the dwell mechanism
        concentrates short-term region reuse."""
        sticky = small_profile(revisit_prob=0.7)
        scattered = small_profile(revisit_prob=0.0)

        def reuse_fraction(profile):
            chunk = ProgramTrace(
                profile, seed=2, llsc_filter_blocks=0
            ).one_chunk(20000)
            regions = (chunk.addresses // 512).astype(np.int64)
            recent: list[int] = []
            hits = 0
            for r in regions.tolist():
                if r in recent:
                    hits += 1
                    recent.remove(r)
                recent.insert(0, r)
                del recent[16:]
            return hits / len(regions)

        assert reuse_fraction(sticky) > reuse_fraction(scattered)

    def test_llsc_filter_absorbs_short_term_block_reuse(self):
        """The emitted (post-LLSC) stream contains almost no same-64B
        re-references within the filter's reach — that reuse is an LLSC
        hit upstream."""
        import numpy as np

        chunk = ProgramTrace(small_profile(revisit_prob=0.7), seed=2).one_chunk(20000)
        blocks = (chunk.addresses // 64).astype(np.int64).tolist()
        recent: list[int] = []
        near_repeats = 0
        for b in blocks:
            if b in recent:
                near_repeats += 1
            recent.insert(0, b)
            del recent[256:]
        # reads re-emitted within 256 accesses are rare (writebacks may
        # echo a recent block address)
        assert near_repeats / len(blocks) < 0.15

    def test_filter_strips_repeats_relative_to_raw(self):
        raw = ProgramTrace(small_profile(), seed=5, llsc_filter_blocks=0).one_chunk(4000)
        filt = ProgramTrace(small_profile(), seed=5).one_chunk(4000)
        assert len(raw) == len(filt) == 4000
        # the raw stream repeats blocks freely; the filtered one is
        # dominated by distinct (miss) addresses
        raw_unique = len(np.unique(raw.addresses)) / len(raw)
        filt_unique = len(np.unique(filt.addresses)) / len(filt)
        assert filt_unique > raw_unique

    def test_footprint_scales_distinct_blocks(self):
        big = ProgramTrace(small_profile(footprint_mb=4.0), seed=1).one_chunk(30000)
        small = ProgramTrace(small_profile(footprint_mb=0.25), seed=1).one_chunk(30000)
        assert len(np.unique(big.addresses)) > len(np.unique(small.addresses))
