"""Per-cell fault isolation, retries and timeouts in run_grid."""

import os
import signal
import time

import pytest

from repro.harness import faults
from repro.harness.faults import InjectedFault
from repro.harness.parallel import complete_groups, run_grid
from repro.obs import get_metrics

KILL_SENTINEL = 99
HANG_SENTINEL = 98


def _square(x):
    return x * x


def _kill_self(x):
    """Worker that dies by SIGKILL on the sentinel cell (after letting
    sibling cells finish, so pool-break attribution is deterministic)."""
    if x == KILL_SENTINEL:
        time.sleep(0.3)
        os.kill(os.getpid(), signal.SIGKILL)
    return x * x


def _hang(x):
    if x == HANG_SENTINEL:
        time.sleep(60)
    return x * x


@pytest.fixture(autouse=True)
def clean_fault_env(monkeypatch):
    for name in (
        faults.RETRIES_ENV,
        faults.TIMEOUT_ENV,
        faults.INJECT_ENV,
        "REPRO_JOBS",
    ):
        monkeypatch.delenv(name, raising=False)
    # Fast deterministic backoff so retry tests don't sleep for real.
    monkeypatch.setenv(faults.BACKOFF_ENV, "0.001")


class TestSerialIsolation:
    def test_injected_failure_isolates_one_cell(self):
        with faults.inject({1: "raise"}):
            with faults.collect_failures() as collector:
                results = run_grid(_square, range(4), jobs=1)
        assert results == [0, None, 4, 9]
        assert len(collector) == 1
        failure = collector.failures[0]
        assert failure.index == 1
        assert failure.exc_type == "InjectedFault"
        assert failure.attempts == 1

    def test_without_collector_exception_propagates(self):
        with faults.inject({1: "raise"}):
            with pytest.raises(InjectedFault):
                run_grid(_square, range(4), jobs=1)

    def test_failure_metrics_and_complete_groups(self):
        before = get_metrics().counter_value("grid.cell_failures")
        with faults.inject({2: "raise"}):
            with faults.collect_failures():
                results = run_grid(_square, range(6), jobs=1)
        assert get_metrics().counter_value("grid.cell_failures") == before + 1
        # Row assembly drops exactly the group containing the failure.
        groups = complete_groups(["a", "b", "c"], results, 2)
        assert [name for name, _ in groups] == ["a", "c"]


class TestRetries:
    def test_flaky_cell_recovers(self, monkeypatch):
        monkeypatch.setenv(faults.RETRIES_ENV, "2")
        retries_before = get_metrics().counter_value("grid.cell_retries")
        with faults.inject({0: "flaky:2"}):
            with faults.collect_failures() as collector:
                results = run_grid(_square, range(3), jobs=1)
        assert results == [0, 1, 4]  # deterministic despite the retry path
        assert not collector
        assert get_metrics().counter_value("grid.cell_retries") == (
            retries_before + 2
        )

    def test_retries_exhausted_records_attempt_count(self, monkeypatch):
        monkeypatch.setenv(faults.RETRIES_ENV, "1")
        with faults.inject({0: "flaky:5"}):
            with faults.collect_failures() as collector:
                results = run_grid(_square, range(2), jobs=1)
        assert results == [None, 1]
        assert collector.failures[0].attempts == 2  # 1 try + 1 retry

    def test_retry_results_match_clean_run(self, monkeypatch):
        clean = run_grid(_square, range(5), jobs=1)
        monkeypatch.setenv(faults.RETRIES_ENV, "3")
        with faults.inject({1: "flaky:1", 3: "flaky:2"}):
            with faults.collect_failures() as collector:
                flaky = run_grid(_square, range(5), jobs=1)
        assert flaky == clean
        assert not collector


class TestSerialTimeout:
    def test_hung_cell_times_out(self, monkeypatch):
        monkeypatch.setenv(faults.TIMEOUT_ENV, "0.2")
        with faults.collect_failures() as collector:
            results = run_grid(_hang, [1, HANG_SENTINEL, 3], jobs=1)
        assert results == [1, None, 9]
        assert collector.failures[0].exc_type == "CellTimeoutError"


class TestPoolIsolation:
    def test_worker_exception_isolates_one_cell(self):
        with faults.inject({2: "raise"}):
            with faults.collect_failures() as collector:
                results = run_grid(_square, range(4), jobs=2)
        assert results == [0, 1, None, 9]
        assert collector.failures[0].index == 2

    def test_flaky_cell_recovers_in_pool(self, monkeypatch):
        monkeypatch.setenv(faults.RETRIES_ENV, "2")
        with faults.inject({1: "flaky:1"}):
            with faults.collect_failures() as collector:
                results = run_grid(_square, range(4), jobs=2)
        assert results == [0, 1, 4, 9]
        assert not collector

    def test_pool_matches_serial_under_collection(self):
        with faults.inject({1: "raise"}):
            with faults.collect_failures():
                serial = run_grid(_square, range(6), jobs=1)
            with faults.collect_failures():
                pooled = run_grid(_square, range(6), jobs=3)
        assert pooled == serial

    def test_worker_sigkill_fails_only_that_cell(self):
        rebuilds_before = get_metrics().counter_value("grid.pool_rebuilds")
        with faults.collect_failures() as collector:
            results = run_grid(_kill_self, [1, 2, 3, KILL_SENTINEL], jobs=2)
        assert results[:3] == [1, 4, 9]
        assert results[3] is None
        assert collector.failures[0].exc_type == "WorkerCrashError"
        assert collector.failures[0].index == 3
        assert get_metrics().counter_value("grid.pool_rebuilds") > rebuilds_before

    def test_hung_worker_times_out_and_pool_recovers(self, monkeypatch):
        monkeypatch.setenv(faults.TIMEOUT_ENV, "0.5")
        with faults.collect_failures() as collector:
            results = run_grid(_hang, [1, 2, HANG_SENTINEL], jobs=2)
        assert results == [1, 4, None]
        assert collector.failures[0].exc_type == "CellTimeoutError"
        assert collector.failures[0].index == 2
