"""``repro.server``: the ``repro serve`` daemon behind :mod:`repro.api`.

:class:`~repro.server.daemon.ReproServer` is the asyncio service;
:class:`~repro.server.state.ServerConfig` its knobs;
:class:`~repro.server.lifecycle.Lifecycle` the graceful-drain state
machine; :mod:`repro.server.chaos` the fault-injection harness the
resilience tests drive. Protocol spec and operational notes live in
``docs/service.md``; drain/deadline/chaos semantics in
``docs/robustness.md``.
"""

from repro.server.chaos import ChaosProxy, ProxyPlan
from repro.server.daemon import ReproServer, serve_forever
from repro.server.lifecycle import DRAINING, SERVING, STARTING, Lifecycle
from repro.server.state import GridStore, ServerConfig, ServerStats, grid_key

__all__ = [
    "ChaosProxy",
    "DRAINING",
    "GridStore",
    "Lifecycle",
    "ProxyPlan",
    "ReproServer",
    "SERVING",
    "STARTING",
    "ServerConfig",
    "ServerStats",
    "grid_key",
    "serve_forever",
]
