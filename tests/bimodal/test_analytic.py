"""Analytic tag-latency model vs the paper's Section III-D4 numbers."""

import pytest
from hypothesis import given, strategies as st

from repro.bimodal.analytic import TagLatencyModel, breakeven_locator_hit_rate
from repro.common.config import DRAMTimingConfig


@pytest.fixture
def model():
    return TagLatencyModel(DRAMTimingConfig.stacked())


class TestPaperNumbers:
    def test_breakeven_is_about_78_percent(self):
        """Paper: with a 7-cycle SRAM tag store, a 1-cycle locator and a
        ~32-cycle DRAM tag access, the locator needs h >= ~78%."""
        h = breakeven_locator_hit_rate(
            sram_tag_cycles=7, locator_latency=1, dram_tag_cycles=32
        )
        assert h == pytest.approx(0.806, abs=0.03)  # (32-7)/(32-1)

    def test_high_hit_rate_halves_sram_latency(self, model):
        """Paper: h > 90% with a high metadata RBH yields ~3.6 cycles —
        about half the 7-cycle tags-in-SRAM cost."""
        latency = model.tag_access_cycles(locator_hit_rate=0.95, metadata_rbh=0.8)
        assert latency < 7.0 / 2 + 1.5  # near the paper's 3.6

    def test_dedicated_bank_cuts_tag_miss_over_30_percent(self, model):
        """Paper: the dedicated metadata bank reduces t_tag_miss by >30%
        relative to co-located tags via its higher RBH (their Fig. 9b
        RBH gap of ~0.5 in absolute terms delivers the >30%)."""
        separate = model.tag_miss_cycles(metadata_rbh=0.75)
        colocated = model.colocated_tag_miss_cycles(colocated_rbh=0.25)
        assert (colocated - separate) / colocated > 0.30


class TestModelProperties:
    def test_perfect_locator_costs_sram_only(self, model):
        assert model.tag_access_cycles(1.0, 0.5) == model.locator_latency

    def test_no_locator_costs_full_dram(self, model):
        assert model.tag_access_cycles(0.0, 0.5) == model.tag_miss_cycles(0.5)

    def test_column_read(self, model):
        t = DRAMTimingConfig.stacked()
        assert model.column_read_cycles() == t.cl + 2 * t.burst_cycles

    @given(
        h=st.floats(0.0, 1.0),
        r=st.floats(0.0, 1.0),
    )
    def test_monotonicity(self, h, r):
        """Latency falls with locator hit rate and with metadata RBH."""
        model = TagLatencyModel(DRAMTimingConfig.stacked())
        base = model.tag_access_cycles(h, r)
        if h <= 0.95:
            assert model.tag_access_cycles(min(1.0, h + 0.05), r) <= base + 1e-9
        if r <= 0.95:
            assert model.tag_access_cycles(h, min(1.0, r + 0.05)) <= base + 1e-9

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.tag_access_cycles(1.5, 0.5)
        with pytest.raises(ValueError):
            model.tag_miss_cycles(-0.1)
        with pytest.raises(ValueError):
            breakeven_locator_hit_rate(
                sram_tag_cycles=7, locator_latency=40, dram_tag_cycles=32
            )

    def test_breakeven_bounds(self):
        # SRAM costlier than DRAM: any hit rate works
        assert breakeven_locator_hit_rate(
            sram_tag_cycles=40, locator_latency=1, dram_tag_cycles=32
        ) == 0.0
        # SRAM as cheap as the locator: need a perfect locator
        assert breakeven_locator_hit_rate(
            sram_tag_cycles=1, locator_latency=1, dram_tag_cycles=32
        ) == 1.0
