"""Shared substrate: addressing, configuration, statistics, fixed tables."""

from repro.common.addressing import (
    SUB_BLOCK_BITS,
    SUB_BLOCK_SIZE,
    AddressMap,
    align_down,
    is_power_of_two,
    log2_int,
    sub_block_index,
)
from repro.common.config import (
    CORE_COUNTS,
    CoreConfig,
    DRAMCacheGeometry,
    DRAMGeometry,
    DRAMTimingConfig,
    LLSCConfig,
    SystemConfig,
    system_config,
)
from repro.common.stats import Counter, Histogram, RateStat, RunningMean, StatGroup
from repro.common.tables import (
    CPU_FREQ_HZ,
    PAPER_TABLE3_LATENCY_CYCLES,
    PAPER_TABLE3_STORAGE_KB,
    TAG_STORE_LATENCY,
    sram_latency_cycles,
    way_locator_entry_bits,
    way_locator_storage_bytes,
)

__all__ = [
    "SUB_BLOCK_BITS",
    "SUB_BLOCK_SIZE",
    "AddressMap",
    "align_down",
    "is_power_of_two",
    "log2_int",
    "sub_block_index",
    "CORE_COUNTS",
    "CoreConfig",
    "DRAMCacheGeometry",
    "DRAMGeometry",
    "DRAMTimingConfig",
    "LLSCConfig",
    "SystemConfig",
    "system_config",
    "Counter",
    "Histogram",
    "RateStat",
    "RunningMean",
    "StatGroup",
    "CPU_FREQ_HZ",
    "PAPER_TABLE3_LATENCY_CYCLES",
    "PAPER_TABLE3_STORAGE_KB",
    "TAG_STORE_LATENCY",
    "sram_latency_cycles",
    "way_locator_entry_bits",
    "way_locator_storage_bytes",
]
