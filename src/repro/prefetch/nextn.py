"""Next-N-lines prefetcher between the LLSC and the DRAM cache.

Section V-I: on every demand read the prefetcher issues the next ``N``
spatially adjacent 64-byte blocks (N = 1 conservative, N = 3 aggressive)
unless recently issued. Two DRAM cache policies are modeled:

* ``PREF_NORMAL`` — prefetches behave exactly like demand accesses
  (they allocate in the DRAM cache);
* ``PREF_BYPASS`` — prefetches that miss in the DRAM cache fetch from
  memory without allocating (the data goes up to the LLSC only), which
  avoids polluting the DRAM cache with speculative fills.

Prefetches are posted: they consume bank/bus/off-chip bandwidth but do
not stall the issuing core.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.dramcache.base import DRAMCacheAccess, DRAMCacheBase

__all__ = ["PREF_NORMAL", "PREF_BYPASS", "NextNPrefetcher"]

PREF_NORMAL = "normal"
PREF_BYPASS = "bypass"


class NextNPrefetcher:
    """Wraps a DRAM cache; demand reads trigger next-N-line prefetches."""

    def __init__(
        self,
        cache: DRAMCacheBase,
        *,
        degree: int = 1,
        mode: str = PREF_NORMAL,
        filter_entries: int = 4096,
    ) -> None:
        if degree < 0:
            raise ValueError("degree must be >= 0")
        if mode not in (PREF_NORMAL, PREF_BYPASS):
            raise ValueError(f"unknown prefetch mode {mode!r}")
        self.cache = cache
        self.degree = degree
        self.mode = mode
        self._filter: OrderedDict[int, None] = OrderedDict()
        self._filter_entries = filter_entries
        self.prefetches_issued = 0
        self.prefetches_filtered = 0
        self.bypassed_prefetches = 0

    # ------------------------------------------------------------------
    def _recently_issued(self, block: int) -> bool:
        if block in self._filter:
            self._filter.move_to_end(block)
            return True
        self._filter[block] = None
        if len(self._filter) > self._filter_entries:
            self._filter.popitem(last=False)
        return False

    def _issue_prefetch(self, address: int, now: int) -> None:
        block = address >> 6
        if self._recently_issued(block):
            self.prefetches_filtered += 1
            return
        self.prefetches_issued += 1
        if self.mode == PREF_BYPASS and not self.cache_resident(address):
            # Fetch for the LLSC without allocating in the DRAM cache.
            self.bypassed_prefetches += 1
            self.cache._fetch_offchip(address, now, bursts=1)
            return
        self.cache.access(address, now, is_write=False)

    def cache_resident(self, address: int) -> bool:
        """Residency probe; schemes without one treat bypass as normal."""
        probe = getattr(self.cache, "resident", None)
        if probe is None:
            return True
        return probe(address)

    def reset_stats(self) -> None:
        """Delegate warm-up resets to the wrapped cache."""
        self.cache.reset_stats()

    def stats_snapshot(self) -> dict:
        snap = self.cache.stats_snapshot()
        snap["prefetches_issued"] = self.prefetches_issued
        snap["bypassed_prefetches"] = self.bypassed_prefetches
        return snap

    # ------------------------------------------------------------------
    def access_fast(self, address: int, now: int, is_write: bool = False) -> int:
        """Flat drive-loop entry point (mirrors DRAMCacheBase.access_fast)."""
        complete = self.cache.access_fast(address, now, is_write)
        if not is_write:
            self._filter[address >> 6] = None
            for i in range(1, self.degree + 1):
                self._issue_prefetch(address + 64 * i, complete)
        return complete

    def access(self, address: int, now: int, *, is_write: bool = False) -> DRAMCacheAccess:
        """Demand access, then fire next-N prefetches (posted)."""
        result = self.cache.access(address, now, is_write=is_write)
        if not is_write:
            self._filter[address >> 6] = None
            for i in range(1, self.degree + 1):
                self._issue_prefetch(address + 64 * i, result.complete)
        return result
