"""Shared fixtures for the per-figure benchmark harness.

Each benchmark regenerates one of the paper's tables/figures and prints
the rows (bypassing pytest's capture) so that
``pytest benchmarks/ --benchmark-only`` leaves a readable record of the
reproduced series alongside the timing numbers.
"""

import os

import pytest

from repro.harness.reporting import format_table
from repro.harness.runner import ExperimentSetup

# Benchmark grids fan out over the parallel experiment engine by default
# (one worker per CPU); set REPRO_JOBS=1 to force serial runs. Results
# are identical either way — cells are independent simulations.
os.environ.setdefault("REPRO_JOBS", str(os.cpu_count() or 1))


@pytest.fixture
def report(capsys):
    """Print experiment rows uncaptured, as the paper's rows/series."""

    def _report(rows, *, title=None, columns=None):
        with capsys.disabled():
            print()
            print(format_table(rows, title=title, columns=columns))
            print()

    return _report


@pytest.fixture
def quad_setup() -> ExperimentSetup:
    """Scaled 4-core Table IV configuration for benchmark runs."""
    return ExperimentSetup(num_cores=4, accesses_per_core=20_000, seed=1)


@pytest.fixture
def eight_setup() -> ExperimentSetup:
    """Scaled 8-core configuration (E-mix experiments).

    Uses scale 32 (256 MB -> 8 MB) so the footprint:capacity ratio — and
    therefore eviction/waste behaviour — matches the quad-core runs at
    the benchmark's access volumes.
    """
    return ExperimentSetup(
        num_cores=8,
        scale=32,
        accesses_per_core=12_000,
        seed=1,
    )


@pytest.fixture
def antt_setup() -> ExperimentSetup:
    """Smaller per-core quota: ANTT needs n+1 runs per scheme."""
    return ExperimentSetup(num_cores=4, accesses_per_core=8_000, seed=1)


# Representative mix subsets keep each benchmark's wall time modest while
# covering the dense / sparse / mixed spectrum. Full sweeps are available
# by passing mix_names=None to the experiment functions.
QUAD_MIXES = ["Q2", "Q5", "Q7", "Q12", "Q17", "Q20", "Q23"]
EIGHT_MIXES = ["E1", "E5", "E8", "E12", "E15"]
