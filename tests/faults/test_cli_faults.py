"""End-to-end CLI fault tolerance: kill mid-grid, resume, exit codes.

The subprocess tests are the acceptance scenario of the fault-tolerant
engine: a grid killed at cell N leaves a checkpoint holding cells
0..N-1, ``--resume`` finishes only the missing cells, and the final CSV
is byte-identical to an uninterrupted run.
"""

import json
import os
import signal
import subprocess
import sys

import pytest

import repro
from repro.__main__ import EXIT_CELL_FAILURES, main
from repro.harness import faults

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
RUN_ARGS = ["run", "fig10", "--mixes", "Q1", "Q2", "--accesses", "1500"]


def _run_cli(args, tmp_path, extra_env=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_TRACE_CACHE_DIR"] = str(tmp_path / "traces")
    env.pop(faults.INJECT_ENV, None)
    if extra_env:
        env.update(extra_env)
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )


@pytest.fixture(scope="module")
def baseline_csv(tmp_path_factory):
    """The uninterrupted run every fault scenario must reproduce."""
    tmp_path = tmp_path_factory.mktemp("baseline")
    out = tmp_path / "base.csv"
    proc = _run_cli([*RUN_ARGS, "--export", str(out)], tmp_path)
    assert proc.returncode == 0, proc.stderr
    return out.read_bytes()


class TestKillAndResume:
    @pytest.mark.parametrize("action", ["sigkill", "fatal"])
    def test_killed_grid_checkpoints_and_resumes(
        self, tmp_path, baseline_csv, action
    ):
        out = tmp_path / "out.csv"
        ckpt = tmp_path / "out.csv.ckpt.jsonl"
        proc = _run_cli(
            [*RUN_ARGS, "--export", str(out)],
            tmp_path,
            extra_env=faults.injection_env({1: action}),
        )
        if action == "sigkill":
            assert proc.returncode == -signal.SIGKILL
        else:
            assert proc.returncode not in (0, 2, 3)  # uncontrolled crash
        assert not out.exists()  # died before export
        # The checkpoint durably holds the cell completed before the kill.
        lines = [
            json.loads(line) for line in ckpt.read_text().splitlines() if line
        ]
        assert sum(1 for rec in lines if rec.get("kind") == "cell") == 1

        resumed = _run_cli(
            [*RUN_ARGS, "--export", str(out), "--resume", str(ckpt)], tmp_path
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "resumed 1 cell(s)" in resumed.stderr
        assert out.read_bytes() == baseline_csv

    def test_resume_of_complete_checkpoint_recomputes_nothing(
        self, tmp_path, baseline_csv
    ):
        out = tmp_path / "out.csv"
        ckpt = tmp_path / "out.csv.ckpt.jsonl"
        first = _run_cli([*RUN_ARGS, "--export", str(out)], tmp_path)
        assert first.returncode == 0, first.stderr
        out.unlink()
        again = _run_cli(
            [*RUN_ARGS, "--export", str(out), "--resume", str(ckpt)], tmp_path
        )
        assert again.returncode == 0, again.stderr
        assert "resumed 2 cell(s)" in again.stderr
        assert out.read_bytes() == baseline_csv


class TestGracefulDegradation:
    def test_permanent_failure_exports_partial_and_exits_3(self, tmp_path):
        out = tmp_path / "out.csv"
        proc = _run_cli(
            [*RUN_ARGS, "--export", str(out)],
            tmp_path,
            extra_env=faults.injection_env({1: "raise"}),
        )
        assert proc.returncode == EXIT_CELL_FAILURES
        assert "FAILED" not in proc.stdout  # table shows completed rows only
        assert "1 failed cell(s)" in proc.stderr
        assert "InjectedFault" in proc.stderr
        # Partial export: Q1's row made it, Q2's didn't.
        text = out.read_text()
        assert "Q1" in text and "Q2" not in text
        # The manifest records the failure, structured.
        manifest = json.loads(
            (tmp_path / "out.csv.manifest.json").read_text()
        )
        assert manifest["status"] == "partial"
        assert len(manifest["failures"]) == 1
        assert manifest["failures"][0]["exc_type"] == "InjectedFault"
        assert manifest["failures"][0]["mix"] == "Q2"

    def test_exit_code_3_in_process(self, capsys):
        with faults.inject({1: "raise"}):
            rc = main(RUN_ARGS)
        captured = capsys.readouterr()
        assert rc == EXIT_CELL_FAILURES
        assert "Q1" in captured.out
        assert "failed cell(s)" in captured.err
