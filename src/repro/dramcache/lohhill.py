"""Loh-Hill DRAM cache (MICRO'11) — tags-in-DRAM, 29-way sets.

One 2 KB DRAM row is one set: 3 blocks of tag metadata followed by 29
64-byte data ways. *Compound access scheduling* keeps the row open across
the tag read and the subsequent data read, so a hit costs
ACT + CAS(tags) + compare + CAS(data) on the same row — multiple DRAM
accesses, which is exactly the high-hit-latency behaviour the paper's
Figure 3 and Table I attribute to this scheme.
"""

from __future__ import annotations

from repro.common.config import DRAMCacheGeometry
from repro.dram.controller import MemoryController
from repro.dramcache.base import DRAMCacheBase
from repro.sram.replacement import LRU

__all__ = ["LohHillCache"]

_WAYS = 29
_TAG_BURSTS = 2  # 29 tags x ~4 B = 116 B -> two 64 B bursts
_TAG_COMPARE_CYCLES = 1


class _Set:
    __slots__ = ("blocks", "dirty", "last_use")

    def __init__(self) -> None:
        self.blocks: list[int | None] = [None] * _WAYS
        self.dirty = [False] * _WAYS
        self.last_use = [0] * _WAYS


class LohHillCache(DRAMCacheBase):
    """29-way set-per-row tags-in-DRAM cache with compound scheduling."""

    name = "lohhill"

    def __init__(self, geometry: DRAMCacheGeometry, offchip: MemoryController) -> None:
        super().__init__(geometry, offchip)
        self.num_sets = geometry.capacity // geometry.geometry.page_size
        self._sets: dict[int, _Set] = {}
        self._lru = LRU()
        self._channels = geometry.geometry.channels
        self._banks = geometry.geometry.banks_per_channel
        self._tick = 0

    def _set_of(self, address: int) -> tuple[int, int]:
        block = address >> 6
        return block % self.num_sets, block

    def _location(self, set_index: int) -> tuple[int, int, int]:
        channel = set_index % self._channels
        bank = (set_index // self._channels) % self._banks
        row = set_index // (self._channels * self._banks)
        return channel, bank, row

    def _get_set(self, set_index: int) -> _Set:
        entry = self._sets.get(set_index)
        if entry is None:
            entry = _Set()
            self._sets[set_index] = entry
        return entry

    def _victim_way(self, entry: _Set) -> int:
        for way, block in enumerate(entry.blocks):
            if block is None:
                return way
        candidates = list(range(_WAYS))
        return self._lru.victim(candidates, last_use=entry.last_use)

    def resident(self, address: int) -> bool:
        """State-only residency probe (prefetch bypass support)."""
        set_index, block = self._set_of(address)
        entry = self._sets.get(set_index)
        return entry is not None and block in entry.blocks

    def _access_fast(self, address: int, now: int, is_write: bool) -> int:
        self._tick += 1
        block = address >> 6
        set_index = block % self.num_sets
        entry = self._get_set(set_index)
        channel, bank, row = self._location(set_index)

        # Compound access: tag read opens the row and keeps it open.
        tag_end = self.dram.access_direct_fast(channel, bank, row, now, _TAG_BURSTS)
        tags_known = tag_end + _TAG_COMPARE_CYCLES

        way = None
        for w, resident in enumerate(entry.blocks):
            if resident == block:
                way = w
                break

        if way is not None:
            self._hit = True
            entry.last_use[way] = self._tick
            if is_write:
                entry.dirty[way] = True
                return tags_known
            return self.dram.column_direct_fast(channel, bank, tags_known, 1)

        # Miss: off-chip fetch after the tag check disproved residency.
        self._hit = False
        fetch_end = self._fetch_offchip(address, tags_known, bursts=1)
        victim_way = self._victim_way(entry)
        victim = entry.blocks[victim_way]
        if victim is not None and entry.dirty[victim_way]:
            self._writeback_offchip(victim << 6, fetch_end, bursts=1)
        entry.blocks[victim_way] = block
        entry.dirty[victim_way] = is_write
        entry.last_use[victim_way] = self._tick
        # Fill write into the row; posted at fill time.
        self._post_call(
            fetch_end, self.dram.access_direct_fast, channel, bank, row, fetch_end, 1
        )
        return fetch_end
