"""Design-space experiments: Figures 1, 2 and 5.

These reproduce the paper's Section II motivation studies with the
trace-driven methodology: functional cache simulations over the merged
LLSC-miss streams.
"""

from __future__ import annotations

from repro.common.stats import Histogram
from repro.harness.runner import ExperimentSetup, build_cache, drive_cache
from repro.sram.cache import SetAssociativeCache
from repro.workloads.mixes import mixes_for_cores

__all__ = [
    "fig1_miss_rate_vs_block_size",
    "fig2_block_utilization",
    "fig5_mru_hits",
]

BLOCK_SIZES = (64, 128, 256, 512, 1024, 2048, 4096)


def fig1_miss_rate_vs_block_size(
    *,
    setup: ExperimentSetup | None = None,
    mix_names: list[str] | None = None,
    block_sizes: tuple[int, ...] = BLOCK_SIZES,
    associativity: int = 8,
) -> list[dict]:
    """Figure 1: LLSC miss rate falls as DRAM cache block size grows.

    A functional set-associative simulation of the DRAM cache at each
    block size; the paper observes the miss rate *nearly halving* with
    each doubling for most workloads.
    """
    setup = setup or ExperimentSetup()
    capacity = setup.system.dram_cache.capacity
    names = mix_names or list(mixes_for_cores(setup.num_cores))
    rows = []
    for name in names:
        row: dict = {"mix": name}
        for block_size in block_sizes:
            cache = SetAssociativeCache(
                capacity, associativity, block_size, policy="lru"
            )
            for record in setup.trace(name):
                cache.access(record.address, is_write=record.is_write)
            row[f"{block_size}B"] = cache.accesses.miss_rate
        rows.append(row)
    if rows:
        avg = {"mix": "mean"}
        for block_size in block_sizes:
            key = f"{block_size}B"
            avg[key] = sum(r[key] for r in rows) / len(rows)
        rows.append(avg)
    return rows


def fig2_block_utilization(
    *,
    setup: ExperimentSetup | None = None,
    mix_names: list[str] | None = None,
) -> list[dict]:
    """Figure 2: distribution of 64B sub-block utilization in 512B blocks.

    Runs the fixed-512B organization and histograms the per-block
    utilization observed at eviction plus the final resident blocks —
    i.e. utilization over each block's full residency, as the paper's
    tracker measures it.
    """
    setup = setup or ExperimentSetup()
    names = mix_names or list(mixes_for_cores(setup.num_cores))
    rows = []
    for name in names:
        cache = build_cache("fixed512", setup.system, scale=setup.scale)
        trace = setup.trace(name)
        drive_cache(
            cache,
            ((r.address, r.is_write, r.icount) for r in trace),
            streams=setup.num_cores,
        )
        hist = Histogram()
        hist.buckets.update(cache.utilization_hist.buckets)
        for entry in cache._sets.values():
            for block in entry.big_ways:
                if block is not None and block.utilization:
                    hist.add(block.utilization)
        row: dict = {"mix": name}
        for level in range(1, 9):
            row[f"u{level}"] = hist.fraction(level)
        row["full_frac"] = hist.fraction(8)
        rows.append(row)
    return rows


def fig5_mru_hits(
    *,
    setup: ExperimentSetup | None = None,
    mix_names: list[str] | None = None,
    associativity: int = 8,
    block_size: int = 512,
) -> list[dict]:
    """Figure 5: fraction of cache hits by MRU stack position (8-way).

    The paper finds >94% of hits land on the top-2 MRU ways in 8-core
    workloads — the observation that justifies a 2-entry way locator.
    """
    setup = setup or ExperimentSetup(num_cores=8)
    names = mix_names or list(mixes_for_cores(setup.num_cores))
    capacity = setup.system.dram_cache.capacity
    rows = []
    for name in names:
        cache = SetAssociativeCache(
            capacity, associativity, block_size, policy="lru", track_mru=True
        )
        for record in setup.trace(name):
            cache.access(record.address, is_write=record.is_write)
        hist = cache.mru_hits
        row: dict = {"mix": name}
        for rank in range(associativity):
            row[f"mru{rank}"] = hist.fraction(rank)
        row["top2"] = hist.cumulative_fraction(1)
        rows.append(row)
    if rows:
        avg: dict = {"mix": "mean"}
        keys = [k for k in rows[0] if k != "mix"]
        for key in keys:
            avg[key] = sum(r[key] for r in rows) / len(rows)
        rows.append(avg)
    return rows
