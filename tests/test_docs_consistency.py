"""Documentation/implementation consistency checks.

These tests keep DESIGN.md's experiment index, the CLI registry, the
benchmark files and the experiment functions in lock-step, so the
documentation can be trusted as a map of the code.
"""

from pathlib import Path


import repro.harness.experiments as experiments
from repro.__main__ import _EXPERIMENTS

REPO = Path(__file__).resolve().parent.parent


def test_every_cli_experiment_exists():
    for name, (attr, _, _, _) in _EXPERIMENTS.items():
        assert hasattr(experiments, attr), f"{name} -> {attr} missing"


def test_design_md_bench_targets_exist():
    text = (REPO / "DESIGN.md").read_text()
    for line in text.splitlines():
        if "benchmarks/bench_" in line:
            for token in line.split("`"):
                if token.startswith("benchmarks/bench_") and token.endswith(".py"):
                    assert (REPO / token).exists(), token


def test_design_md_experiment_functions_exist():
    text = (REPO / "DESIGN.md").read_text()
    for line in text.splitlines():
        if "experiments." in line and "|" in line:
            for token in line.replace("`", " ").split():
                if token.startswith("harness.experiments."):
                    fn = token.split(".")[-1]
                    assert hasattr(experiments, fn), fn


def test_experiments_md_mentions_every_bench():
    """EXPERIMENTS.md names each figure/table benchmark file."""
    text = (REPO / "EXPERIMENTS.md").read_text()
    bench_files = sorted(p.name for p in (REPO / "benchmarks").glob("bench_*.py"))
    assert bench_files, "no benchmark files found"
    missing = [name for name in bench_files if name not in text]
    assert not missing, missing


def test_readme_examples_exist():
    text = (REPO / "README.md").read_text()
    for line in text.splitlines():
        if "examples/" in line and ".py" in line:
            for token in line.split():
                if token.startswith("examples/") and token.endswith(".py"):
                    assert (REPO / token).exists(), token


def test_all_examples_importable_as_scripts():
    """Every example compiles (syntax check without executing main)."""
    import py_compile

    for script in (REPO / "examples").glob("*.py"):
        py_compile.compile(str(script), doraise=True)


def test_module_map_files_exist():
    """Every path-like entry in DESIGN.md's module map exists."""
    text = (REPO / "DESIGN.md").read_text()
    in_map = False
    for line in text.splitlines():
        if line.startswith("```"):
            in_map = not in_map
            continue
        if in_map and ".py" in line:
            token = line.strip().split()[0]
            if not token.endswith(".py"):
                continue
            # resolve relative to src/repro/<subpackage>/ context lines
            matches = list(REPO.glob(f"src/repro/**/{token}"))
            assert matches, f"module map names missing file: {token}"
