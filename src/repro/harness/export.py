"""Export experiment rows to JSON/CSV for external analysis or plotting.

Experiments return lists of flat dictionaries; these helpers persist
them with a small metadata header (experiment id, setup parameters,
package version) so result files are self-describing.

Result objects across the harness (``DriveResult``, ``SystemStats``,
``EnergyBreakdown``, ``RunManifest``) share one export protocol: a
``to_dict()`` returning flat (or dot-nested) JSON-friendly keys.
:func:`flatten_stats` is the one consumer-side entry point — it accepts
any such object *or* a plain mapping and yields a flat dict the
exporters, the tracer and the metrics registry all agree on.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from collections.abc import Mapping, Sequence

__all__ = ["export_json", "export_csv", "flatten_stats", "load_json"]


def _normalize(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def flatten_stats(stats, *, prefix: str = "") -> dict[str, object]:
    """Flatten a stats object or mapping to dotted JSON-friendly keys.

    ``stats`` may implement the export protocol (``to_dict()``) or be a
    mapping; nested mappings flatten recursively. Non-scalar leaves are
    stringified.
    """
    if hasattr(stats, "to_dict"):
        stats = stats.to_dict()
    if not isinstance(stats, Mapping):
        raise TypeError(
            f"cannot flatten {type(stats).__name__}: expected a mapping or "
            "an object with to_dict()"
        )
    out: dict[str, object] = {}
    for key, value in stats.items():
        full = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, Mapping):
            out.update(flatten_stats(value, prefix=full))
        else:
            out[full] = _normalize(value)
    return out


def export_json(
    rows: Sequence[Mapping[str, object]],
    path: str | Path,
    *,
    experiment: str = "",
    metadata: Mapping[str, object] | None = None,
) -> Path:
    """Write rows plus a metadata header as one JSON document."""
    from repro import __version__

    path = Path(path)
    document = {
        "experiment": experiment,
        "repro_version": __version__,
        "metadata": {k: _normalize(v) for k, v in (metadata or {}).items()},
        "rows": [
            {k: _normalize(v) for k, v in row.items()} for row in rows
        ],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2))
    return path


def export_csv(
    rows: Sequence[Mapping[str, object]],
    path: str | Path,
    *,
    columns: Sequence[str] | None = None,
) -> Path:
    """Write rows as CSV (header from the first row unless given)."""
    if not rows:
        raise ValueError("no rows to export")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    cols = list(columns) if columns else list(rows[0].keys())
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=cols, extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow({k: _normalize(row.get(k)) for k in cols})
    return path


def load_json(path: str | Path) -> dict:
    """Read back a document written by :func:`export_json`."""
    return json.loads(Path(path).read_text())
