#!/usr/bin/env python3
"""Quickstart: build a Bi-Modal DRAM cache and compare it to AlloyCache.

Runs one quad-core workload mix (Q7 — a sparse, memory-intensive mix)
through both organizations at the scaled Table IV configuration and
prints hit rate, average LLSC miss penalty and off-chip traffic.

Usage:
    python examples/quickstart.py [mix-name]
"""

import sys

from repro.harness import ExperimentSetup, print_table, run_scheme_on_mix


def main() -> None:
    mix_name = sys.argv[1] if len(sys.argv) > 1 else "Q7"
    setup = ExperimentSetup(num_cores=4, accesses_per_core=30_000, seed=1)
    print(
        f"Running mix {mix_name} on the scaled 4-core configuration "
        f"({setup.system.dram_cache.capacity >> 20} MB DRAM cache, "
        f"1/{setup.scale} of Table IV capacity)...\n"
    )

    rows = []
    for scheme in ("alloy", "fixed512", "bimodal"):
        result = run_scheme_on_mix(scheme, mix_name, setup=setup)
        stats = result.stats
        row = {
            "scheme": scheme,
            "hit_rate": stats["hit_rate"],
            "avg_latency_cycles": stats["avg_read_latency"],
            "offchip_mb": (
                stats["offchip_fetched_bytes"] + stats["offchip_writeback_bytes"]
            )
            / (1 << 20),
        }
        if "way_locator_hit_rate" in stats:
            row["way_locator"] = stats["way_locator_hit_rate"]
            row["small_frac"] = stats["small_access_fraction"]
            row["state"] = str(stats["global_state"])
        rows.append(row)

    print_table(rows, title=f"Mix {mix_name}: AlloyCache vs fixed-512B vs Bi-Modal")
    alloy, fixed, bimodal = rows
    print()
    print(
        f"Bi-Modal vs AlloyCache: "
        f"{100 * (alloy['avg_latency_cycles'] - bimodal['avg_latency_cycles']) / alloy['avg_latency_cycles']:+.1f}% latency, "
        f"{100 * (bimodal['hit_rate'] - alloy['hit_rate']):+.1f}pp hit rate"
    )
    print(
        f"Bi-Modal vs fixed-512B: "
        f"{100 * (fixed['offchip_mb'] - bimodal['offchip_mb']) / max(fixed['offchip_mb'], 1e-9):+.1f}% "
        f"off-chip traffic saved by bi-modality"
    )


if __name__ == "__main__":
    main()
