"""Configuration dataclasses mirroring Table IV of the paper.

All latencies are expressed in CPU cycles at 3.2 GHz. The stacked DRAM
cache runs its interface at 1.6 GHz (1 DRAM cycle = 2 CPU cycles) with a
128-bit bus; off-chip memory is DDR3-1600H (command clock 800 MHz, 1 DRAM
cycle = 4 CPU cycles) with a 64-bit channel. Both use CL-nRCD-nRP = 9-9-9
in DRAM cycles, per Table IV.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.common.addressing import is_power_of_two, log2_int

__all__ = [
    "DRAMTimingConfig",
    "DRAMGeometry",
    "LLSCConfig",
    "CoreConfig",
    "DRAMCacheGeometry",
    "SystemConfig",
    "system_config",
    "CORE_COUNTS",
]

CORE_COUNTS = (4, 8, 16)


@dataclass(frozen=True)
class DRAMTimingConfig:
    """DRAM device timing in CPU cycles.

    ``burst_cycles`` is the data-bus occupancy for one 64-byte transfer.
    """

    cl: int
    trcd: int
    trp: int
    burst_cycles: int
    trefi: int
    trfc: int
    tras: int

    @classmethod
    def stacked(cls) -> "DRAMTimingConfig":
        """Stacked (die-stacked) DRAM: 1.6 GHz, 128-bit bus.

        9-9-9 at 1.6 GHz = 18-18-18 CPU cycles; a 64 B burst moves over a
        128-bit DDR bus in 2 DRAM cycles = 4 CPU cycles.
        """
        return cls(
            cl=18,
            trcd=18,
            trp=18,
            burst_cycles=4,
            trefi=24960,  # 7.8 us @ 3.2 GHz
            trfc=560,  # 280 nCK @ 1.6 GHz
            tras=56,
        )

    @classmethod
    def ddr3_1600h(cls) -> "DRAMTimingConfig":
        """Off-chip DDR3-1600H: 800 MHz command clock, 64-bit channel.

        9-9-9 at 800 MHz = 36-36-36 CPU cycles; BL = 4 DRAM cycles = 16
        CPU cycles per 64 B burst (Table IV).
        """
        return cls(
            cl=36,
            trcd=36,
            trp=36,
            burst_cycles=16,
            trefi=24960,
            trfc=1120,  # 280 nCK @ 800 MHz
            tras=112,
        )

    @property
    def tccd(self) -> int:
        """Column-to-column command spacing (CAS pipelining).

        Consecutive CAS commands to an open row issue every tCCD, which
        for these devices equals one burst's transfer time — so a bank
        streams row hits at full bus rate while each access still sees
        the full CL latency.
        """
        return self.burst_cycles

    @property
    def row_hit_latency(self) -> int:
        """CAS-to-data for an already-open row (excludes transfer)."""
        return self.cl

    @property
    def row_closed_latency(self) -> int:
        """ACT + CAS for a precharged bank (excludes transfer)."""
        return self.trcd + self.cl

    @property
    def row_conflict_latency(self) -> int:
        """PRE + ACT + CAS when another row is open (excludes transfer)."""
        return self.trp + self.trcd + self.cl


@dataclass(frozen=True)
class DRAMGeometry:
    """Physical organization of a DRAM device (stack or off-chip ranks)."""

    channels: int
    banks_per_channel: int
    page_size: int  # row-buffer size in bytes

    def __post_init__(self) -> None:
        if self.channels < 1 or self.banks_per_channel < 1:
            raise ValueError("channels and banks_per_channel must be >= 1")
        if not is_power_of_two(self.page_size):
            raise ValueError("page_size must be a power of two")

    @property
    def total_banks(self) -> int:
        return self.channels * self.banks_per_channel


@dataclass(frozen=True)
class LLSCConfig:
    """Last-level SRAM cache (the paper's L2) per Table IV."""

    size: int
    associativity: int
    block_size: int = 64
    hit_latency: int = 7
    mshrs: int = 128

    def __post_init__(self) -> None:
        if not is_power_of_two(self.size) or not is_power_of_two(self.block_size):
            raise ValueError("size and block_size must be powers of two")
        num_sets = self.size // (self.block_size * self.associativity)
        if num_sets < 1 or not is_power_of_two(num_sets):
            raise ValueError("size/assoc/block_size must give power-of-two sets")

    @property
    def num_sets(self) -> int:
        return self.size // (self.block_size * self.associativity)

    @property
    def set_index_bits(self) -> int:
        return log2_int(self.num_sets)


@dataclass(frozen=True)
class CoreConfig:
    """Interval-model core parameters (substitute for GEM5 OOO Alpha)."""

    freq_hz: float = 3.2e9
    base_cpi: float = 0.6
    memory_level_parallelism: float = 2.2

    def __post_init__(self) -> None:
        if self.base_cpi <= 0 or self.memory_level_parallelism < 1.0:
            raise ValueError("base_cpi must be > 0 and MLP >= 1.0")


@dataclass(frozen=True)
class DRAMCacheGeometry:
    """Capacity-level parameters shared by all DRAM cache organizations."""

    capacity: int
    geometry: DRAMGeometry
    timing: DRAMTimingConfig = field(default_factory=DRAMTimingConfig.stacked)

    def __post_init__(self) -> None:
        if not is_power_of_two(self.capacity):
            raise ValueError("capacity must be a power of two")


@dataclass(frozen=True)
class SystemConfig:
    """A full CMP configuration row from Table IV."""

    num_cores: int
    llsc: LLSCConfig
    core: CoreConfig
    dram_cache: DRAMCacheGeometry
    offchip_channels: int
    offchip_banks_per_channel: int
    offchip_capacity: int
    offchip_timing: DRAMTimingConfig = field(
        default_factory=DRAMTimingConfig.ddr3_1600h
    )
    address_bits: int = 40

    @property
    def offchip_geometry(self) -> DRAMGeometry:
        return DRAMGeometry(
            channels=self.offchip_channels,
            banks_per_channel=self.offchip_banks_per_channel,
            page_size=2048,
        )

    def scaled_cache(self, capacity: int) -> "SystemConfig":
        """Variant with a different DRAM cache capacity (Fig. 12 sweeps)."""
        return replace(self, dram_cache=replace(self.dram_cache, capacity=capacity))


_TABLE_IV = {
    # cores: (llsc_size, llsc_assoc, llsc_lat, mshrs, cache_MB,
    #         stacked_channels, offchip_channels, mem_GB)
    4: (4 << 20, 8, 7, 128, 128, 2, 1, 4),
    8: (8 << 20, 16, 9, 256, 256, 4, 2, 8),
    16: (16 << 20, 32, 12, 512, 512, 8, 4, 16),
}


def system_config(num_cores: int, *, dram_cache_mb: int | None = None) -> SystemConfig:
    """Build the Table IV configuration for 4, 8 or 16 cores.

    ``dram_cache_mb`` overrides the DRAM cache capacity for sensitivity
    studies (Figure 12 uses 64 MB and 512 MB on the 4-core system).
    """
    if num_cores not in _TABLE_IV:
        raise ValueError(f"num_cores must be one of {sorted(_TABLE_IV)}")
    (llsc_size, assoc, lat, mshrs, cache_mb, st_ch, off_ch, mem_gb) = _TABLE_IV[
        num_cores
    ]
    if dram_cache_mb is not None:
        cache_mb = dram_cache_mb
    return SystemConfig(
        num_cores=num_cores,
        llsc=LLSCConfig(size=llsc_size, associativity=assoc, hit_latency=lat, mshrs=mshrs),
        core=CoreConfig(),
        dram_cache=DRAMCacheGeometry(
            capacity=cache_mb << 20,
            geometry=DRAMGeometry(
                channels=st_ch, banks_per_channel=8, page_size=2048
            ),
        ),
        offchip_channels=off_ch,
        offchip_banks_per_channel=16,
        offchip_capacity=mem_gb << 30,
    )
