"""Drain lifecycle, the health verb, request deadlines and old-schema
clients against the live daemon."""

import asyncio
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro import api
from repro.api import facade
from repro.api.errors import RETRYABLE_CODES
from repro.api.protocol import parse_response_line, request_line
from repro.server import GridStore, ReproServer, ServerConfig, grid_key
from repro.server.lifecycle import (
    DRAINING,
    SERVING,
    STARTING,
    Lifecycle,
    await_quiesced,
)


def run_async(coro):
    return asyncio.run(coro)


async def start_server(**overrides):
    config = ServerConfig(**{"port": 0, "max_inflight": 2, **overrides})
    server = ReproServer(config)
    host, port = await server.start()
    return server, host, port


def sim_request(scheme="alloy", mix="Q1", accesses=900, **kw):
    return facade.sim_request(scheme, mix, accesses_per_core=accesses, **kw)


class TestLifecycleStateMachine:
    def test_states_are_monotonic(self):
        async def scenario():
            life = Lifecycle()
            assert life.state == STARTING
            life.mark_serving()
            assert life.state == SERVING
            life.request_drain("sigterm")
            assert life.state == DRAINING
            assert life.reason == "sigterm"
            # Idempotent: the first reason wins, there is no un-drain.
            life.request_drain("again")
            assert life.reason == "sigterm"
            life.mark_serving()
            assert life.state == DRAINING
            await asyncio.wait_for(life.wait_drain_requested(), timeout=1)

        run_async(scenario())

    def test_await_quiesced_polls_until_idle_or_budget(self):
        async def scenario():
            calls = []

            def idle_after_three():
                calls.append(1)
                return len(calls) >= 3

            assert await await_quiesced(idle_after_three, 5.0, poll_s=0.01)
            assert not await await_quiesced(lambda: False, 0.05, poll_s=0.01)
            # Zero budget still checks once.
            assert await await_quiesced(lambda: True, 0.0)

        run_async(scenario())


class TestHealthVerb:
    def test_health_reports_serving_state_and_queue_depths(self):
        async def scenario():
            server, host, port = await start_server()
            try:
                client = await api.AsyncServiceClient.connect(host, port)
                try:
                    return await client.health()
                finally:
                    await client.close()
            finally:
                await server.aclose()

        health = run_async(scenario())
        assert health.state == SERVING
        assert health.queued == 0
        assert health.inflight == 0
        assert health.connections == 1


class TestDrain:
    def test_draining_rejects_new_work_but_keeps_observability(self):
        async def scenario():
            server, host, port = await start_server()
            try:
                client = await api.AsyncServiceClient.connect(host, port)
                try:
                    server.lifecycle.request_drain("test-drain")
                    with pytest.raises(api.ServiceError) as sim_exc:
                        await client.run_sim(sim_request())
                    with pytest.raises(api.ServiceError) as grid_exc:
                        await client.run_grid(
                            facade.grid_request("fig10", mixes=("Q1",))
                        )
                    # ping/stats/health still answer while draining.
                    stats = await client.stats()
                    health = await client.health()
                finally:
                    await client.close()
                quiesced = await server.drain()
            finally:
                await server.aclose()
            return sim_exc.value, grid_exc.value, stats, health, quiesced

        sim_error, grid_error, stats, health, quiesced = run_async(scenario())
        assert sim_error.code == "draining"
        assert grid_error.code == "draining"
        # The rejection must be retryable: a client with a RetryPolicy
        # resubmits against the restarted server and resumes via journal.
        assert sim_error.code in RETRYABLE_CODES
        assert stats.server["lifecycle"] == DRAINING
        assert health.state == DRAINING
        assert health.detail == "test-drain"
        assert quiesced, "idle server failed to quiesce"

    def test_drain_waits_for_inflight_sim(self):
        async def scenario():
            server, host, port = await start_server(max_inflight=1)
            try:
                client = await api.AsyncServiceClient.connect(host, port)
                try:
                    inflight = asyncio.create_task(
                        client.run_sim(sim_request(accesses=5_000))
                    )
                    await asyncio.sleep(0.05)  # let it reach the pool
                    server.lifecycle.request_drain("test")
                    quiesced = await server.drain()
                    result = await inflight
                finally:
                    await client.close()
            finally:
                await server.aclose()
            return quiesced, result

        quiesced, result = run_async(scenario())
        assert quiesced, "drain timed out with a finishable sim in flight"
        assert result.records > 0, "drain dropped the in-flight sim"


class TestDeadlines:
    def test_negative_deadline_is_rejected_at_construction(self):
        with pytest.raises(facade.RequestError, match="deadline_s"):
            facade.sim_request("alloy", "Q1", deadline_s=-1.0)

    def test_zero_deadline_means_no_deadline(self):
        async def scenario():
            server, host, port = await start_server()
            try:
                client = await api.AsyncServiceClient.connect(host, port)
                try:
                    return await client.run_sim(sim_request(deadline_s=0.0))
                finally:
                    await client.close()
            finally:
                await server.aclose()

        assert run_async(scenario()).records > 0

    def test_sim_deadline_exceeded_is_a_typed_error(self):
        async def scenario():
            server, host, port = await start_server()
            try:
                client = await api.AsyncServiceClient.connect(host, port)
                try:
                    with pytest.raises(api.ServiceError) as excinfo:
                        await client.run_sim(
                            sim_request(accesses=50_000, deadline_s=0.02)
                        )
                finally:
                    await client.close()
            finally:
                await server.aclose()
            return excinfo.value

        error = run_async(scenario())
        assert error.code == "deadline_exceeded"
        assert "0.02" in str(error)

    def test_deadline_covers_queue_time(self):
        async def scenario():
            server, host, port = await start_server()
            server._scheduler_task.cancel()  # park the job in the queue
            try:
                client = await api.AsyncServiceClient.connect(host, port)
                try:
                    pending = asyncio.create_task(
                        client.run_sim(sim_request(deadline_s=0.05))
                    )
                    await asyncio.sleep(0.2)  # budget burns while queued
                    server._scheduler_task = asyncio.create_task(
                        server._scheduler()
                    )
                    async with server._work:
                        server._work.notify_all()
                    with pytest.raises(api.ServiceError) as excinfo:
                        await asyncio.wait_for(pending, timeout=5)
                finally:
                    await client.close()
            finally:
                await server.aclose()
            return excinfo.value

        error = run_async(scenario())
        assert error.code == "deadline_exceeded"
        assert "while queued" in str(error)

    def test_grid_deadline_journals_work_and_resubmit_resumes(self, tmp_path):
        """A grid cut off by its deadline stays journaled; resubmitting
        without the deadline reuses the same key (deadline_s is execution
        metadata, not content) and completes correctly."""
        state_dir = str(tmp_path / "state")
        tight = facade.grid_request(
            "fig10", mixes=("Q1", "Q2"), accesses_per_core=12_000,
            deadline_s=0.05,
        )
        relaxed = facade.grid_request(
            "fig10", mixes=("Q1", "Q2"), accesses_per_core=12_000
        )
        assert grid_key(tight) == grid_key(relaxed)

        async def scenario():
            server, host, port = await start_server(state_dir=state_dir)
            try:
                client = await api.AsyncServiceClient.connect(host, port)
                try:
                    with pytest.raises(api.ServiceError) as excinfo:
                        await client.run_grid(tight)
                    retried = await client.run_grid(relaxed)
                finally:
                    await client.close()
            finally:
                await server.aclose()
            return excinfo.value, retried

        error, retried = run_async(scenario())
        assert error.code == "deadline_exceeded"
        assert retried.status == "ok"
        local = facade.run_grid(relaxed)
        assert retried.rows == local.rows
        # The journal is satisfied: nothing left to recover.
        assert GridStore(state_dir).incomplete() == []


class TestOldSchemaClients:
    def test_v1_request_without_deadline_completes(self):
        """A client built against schema 1 (no deadline_s field) still
        gets its sim result from a schema-2 server."""
        request = sim_request(accesses=700)
        wire = api.to_wire(request)
        wire.pop("deadline_s")
        wire["schema"] = 1

        async def scenario():
            server, host, port = await start_server()
            try:
                reader, writer = await asyncio.open_connection(host, port)
                try:
                    writer.write(
                        (json.dumps({"id": "v1", "verb": "sim", "request": wire})
                         + "\n").encode()
                    )
                    await writer.drain()
                    while True:
                        rid, kind, payload = parse_response_line(
                            await reader.readline()
                        )
                        assert rid == "v1"
                        if kind != "event":
                            return kind, payload
                finally:
                    writer.close()
                    await writer.wait_closed()
            finally:
                await server.aclose()

        kind, payload = run_async(scenario())
        assert kind == "result"
        assert payload.stats == facade.run_sim(request).stats


class TestGracefulDrainProcess:
    def test_sigterm_mid_grid_exits_zero_and_resumes(self, tmp_path):
        """SIGTERM while a grid is executing: the process exits 0 within
        the drain budget, the journal survives, and a restarted server
        resumes from the checkpoint to byte-identical rows."""
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(api.__file__), "..", "..")
        env["PYTHONPATH"] = (
            os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        )
        state_dir = str(tmp_path / "state")
        request = facade.grid_request(
            "fig10", mixes=("Q1", "Q2"), accesses_per_core=12_000
        )
        key = grid_key(request)
        ckpt = os.path.join(state_dir, f"{key}.ckpt.jsonl")

        def boot():
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro", "serve", "--port", "0",
                 "--state-dir", state_dir, "--drain-timeout", "1"],
                env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
                text=True,
            )
            banner = proc.stdout.readline()
            port = int(banner.rsplit(":", 1)[1].split()[0].rstrip(")"))
            return proc, port

        proc, port = boot()
        try:
            with api.ServiceClient("127.0.0.1", port, timeout=60) as client:
                client.ping()
                client._sock.sendall(request_line("drain-run", "grid", request))
                deadline = time.time() + 60
                while time.time() < deadline:
                    if os.path.exists(ckpt) and os.path.getsize(ckpt) > 0:
                        break
                    time.sleep(0.02)
                else:
                    pytest.fail("checkpoint never appeared")
                proc.send_signal(signal.SIGTERM)
                # Drain budget is 1s; generous wall allowance for CI.
                rc = proc.wait(timeout=30)
            assert rc == 0, f"drain exited {rc}, expected 0"
        finally:
            if proc.poll() is None:
                proc.kill()

        store = GridStore(state_dir)
        incomplete = [k for k, _ in store.incomplete()]
        # Either the grid finished inside the budget (result persisted)
        # or it was cut off and must still be journaled — never lost.
        if incomplete:
            assert incomplete == [key]

        proc, port = boot()
        try:
            with api.ServiceClient("127.0.0.1", port, timeout=300) as client:
                result = client.run_grid(request)
            assert result.status == "ok"
            assert result.resumed_cells > 0, "nothing came from the checkpoint"
        finally:
            proc.terminate()
            try:
                proc.wait(timeout=15)
            except subprocess.TimeoutExpired:
                proc.kill()

        local = facade.run_grid(request)
        assert result.rows == local.rows, "drained grid diverged"
