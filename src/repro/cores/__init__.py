"""Core timing model, multiprogrammed runner and system metrics."""

from repro.cores.interval import IntervalCore
from repro.cores.metrics import antt, improvement_percent, weighted_speedup
from repro.cores.multiprog import MultiProgramRunner, RunResult, run_antt

__all__ = [
    "IntervalCore",
    "antt",
    "improvement_percent",
    "weighted_speedup",
    "MultiProgramRunner",
    "RunResult",
    "run_antt",
]
