"""Parallel experiment engine: fan (scheme, mix, setup) cells over processes.

Every figure in the harness is a grid of independent simulation cells —
one cache instance driven by one trace under one configuration. This
module gives them a single fan-out point: describe each cell as a small
picklable dataclass, hand the list to :func:`run_grid` with a worker
function, and get results back **in submission order**, bit-identical to
a serial run (each cell builds its own cache and trace from the cell's
parameters, so parallelism cannot perturb any RNG or timing state).

Worker processes return plain floats/dicts, never simulator objects:
caches hold posted-operation lambdas that do not pickle, and shipping a
few numbers keeps IPC negligible next to simulation time.

Job-count resolution: an explicit ``jobs`` argument wins, then the
``REPRO_JOBS`` environment variable, else serial. ``0`` or ``"auto"``
means one worker per CPU. ``jobs=1`` (the default everywhere) runs the
cells inline with no pool, and any failure to *create* the pool (e.g. a
sandbox forbidding fork) falls back to the serial path with a one-line
warning naming the exception.

Fault tolerance (see :mod:`repro.harness.faults` and
``docs/robustness.md``): when any of the fault features are active —
retries/timeouts via ``REPRO_CELL_RETRIES``/``REPRO_CELL_TIMEOUT_S``, a
failure collector (installed by ``repro run``), an attached checkpoint,
or a fault-injection plan — cells route through a hardened engine with
per-cell isolation: a worker exception, a broken pool (worker killed by
signal/OOM) or a wall-clock timeout fails only that cell, retries with
deterministic backoff, and is finally recorded as a structured
:class:`~repro.harness.faults.CellFailure` while every other cell
completes. Failed cells yield ``None`` in the result list; completed
cells are appended to the attached checkpoint so a killed campaign
resumes where it stopped. With no fault feature active the seed fast
path runs unchanged (worker exceptions propagate, zero overhead).
"""

from __future__ import annotations

import os
import shutil
import sys
import tempfile
import time
from collections.abc import Callable, Iterable
from contextlib import contextmanager
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import TypeVar

from repro.bimodal.cache import BiModalConfig
from repro.cores.multiprog import MultiProgramRunner
from repro.harness import checkpoint, faults
from repro.harness.faults import (
    CellFailure,
    CellTimeoutError,
    FaultPolicy,
    WorkerCrashError,
)
from repro.harness.runner import ExperimentSetup, build_cache, run_scheme_on_mix
from repro.obs import get_metrics, get_tracer, profile_call, profile_dir
from repro.workloads.mixes import mixes_for_cores

__all__ = [
    "resolve_jobs",
    "run_grid",
    "progress_scope",
    "complete_groups",
    "GridCell",
    "AnttCell",
    "drive_cell",
    "antt_cell",
]

# Per-cell completion hook installed by progress_scope(); the hardened
# engine calls it as hook(done, total, attrs) after every finished cell
# (including checkpoint hits). One scope at a time — the facade only
# streams progress for one grid per process at once (grids serialize in
# the server), so a simple module global is enough.
_progress_hook = None


@contextmanager
def progress_scope(hook):
    """Route per-cell completion events to ``hook`` while active.

    ``hook(done, total, attrs)`` is invoked from the grid engine after
    each cell completes (``attrs`` carries scheme/mix labels when the
    cell exposes them). Hook exceptions are swallowed — progress
    reporting must never fail a simulation.
    """
    global _progress_hook
    previous = _progress_hook
    _progress_hook = hook
    try:
        yield
    finally:
        _progress_hook = previous

_Cell = TypeVar("_Cell")
_Result = TypeVar("_Result")

# Directory (env-propagated to workers) where workers drop "started"
# markers, so a broken pool can be attributed to the cells that were
# actually in flight rather than to whichever future the parent was
# awaiting.
_MARK_DIR_ENV = "REPRO_GRID_MARK_DIR"


def resolve_jobs(jobs: int | str | None = None) -> int:
    """Effective worker count: explicit argument > ``REPRO_JOBS`` > 1."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if not env:
            return 1
        jobs = env
    if isinstance(jobs, str):
        if jobs.lower() == "auto":
            jobs = 0
        else:
            try:
                jobs = int(jobs)
            except ValueError:
                return 1
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


def run_grid(
    func: Callable[[_Cell], _Result],
    cells: Iterable[_Cell],
    *,
    jobs: int | str | None = None,
) -> list:
    """Apply ``func`` to every cell, optionally across processes.

    Results come back in the order the cells were given regardless of
    completion order. With ``jobs`` resolving to 1 (the default when
    ``REPRO_JOBS`` is unset) or fewer than two cells, no pool is created
    at all. Pool-level failures (fork refused, workers killed) degrade
    to the serial path with a warning; exceptions raised *by the worker
    function* propagate unchanged in both modes — unless a failure
    collector is active (see the module docstring), in which case the
    failing cell is isolated, retried per policy, recorded, and returned
    as ``None``.

    Observability: with tracing on (``REPRO_TRACE`` / ``--trace-out``)
    the grid streams one progress line per finished cell to stderr and
    emits ``grid``/``grid.cell`` events carrying per-cell wall time;
    with ``REPRO_PROFILE=<dir>`` each cell additionally runs under
    ``cProfile`` and dumps ``cell_<i>.prof``. Both paths wrap the
    worker *around* the cell function, so cell results are identical to
    the uninstrumented run.
    """
    cell_list = list(cells)
    workers = resolve_jobs(jobs)
    tracer = get_tracer()
    prof = profile_dir()
    policy = FaultPolicy.from_env()
    collector = faults.active_collector()
    ckpt = checkpoint.active()
    plan = faults.active_plan()
    plain = (
        not tracer.enabled
        and prof is None
        and policy.is_default
        and collector is None
        and ckpt is None
        and plan is None
        and faults.deadline_remaining() is None
    )
    if plain:
        if workers <= 1 or len(cell_list) <= 1:
            return [func(cell) for cell in cell_list]
        try:
            with ProcessPoolExecutor(
                max_workers=min(workers, len(cell_list))
            ) as pool:
                return list(pool.map(func, cell_list))
        except (OSError, PermissionError, BrokenProcessPool) as exc:
            _warn_pool_fallback(exc, tracer)
            return [func(cell) for cell in cell_list]
    return _run_grid_engine(
        func,
        cell_list,
        workers,
        tracer=tracer,
        prof=prof,
        policy=policy,
        collector=collector,
        ckpt=ckpt,
    )


def complete_groups(names: Iterable, results: list, size: int) -> list[tuple]:
    """``(name, chunk)`` pairs for groups whose ``size`` cells all completed.

    The row-assembly companion of the fault-tolerant grid: with a
    failure collector active, permanently failed cells come back as
    ``None`` (workers never legitimately return ``None``), and any row
    depending on one is dropped here — the grid's failure list carries
    the diagnosis — so a partial campaign still exports every intact
    row.
    """
    out = []
    for i, name in enumerate(names):
        chunk = results[i * size : (i + 1) * size]
        if len(chunk) == size and not any(r is None for r in chunk):
            out.append((name, chunk))
    return out


def _warn_pool_fallback(exc: BaseException, tracer) -> None:
    """A degraded (serial) run must be diagnosable, not silent."""
    print(
        f"[repro] worker pool unavailable ({type(exc).__name__}: {exc}); "
        "running cells serially",
        file=sys.stderr,
    )
    tracer.point(
        "grid.pool_fallback", exc=type(exc).__name__, message=str(exc)
    )
    get_metrics().add("grid.pool_fallbacks")


# ----------------------------------------------------------------------
# hardened engine (instrumentation, retries, timeouts, checkpointing)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _CellCall:
    """Picklable wrapper timing (and optionally profiling) one attempt.

    Also the injection point for the deterministic fault harness and the
    writer of per-cell "started" markers used to attribute pool breaks.
    """

    func: Callable
    profile_to: str | None

    def __call__(self, job):
        index, attempt, cell = job
        mark_dir = os.environ.get(_MARK_DIR_ENV)
        if mark_dir:
            try:
                with open(os.path.join(mark_dir, f"{index}.started"), "w") as fh:
                    fh.write(str(attempt))
            except OSError:
                pass
        start = time.perf_counter()
        plan = faults.active_plan()
        if plan is not None:
            plan.fire(index, attempt)
        if self.profile_to is not None:
            result = profile_call(
                self.func, cell, label=f"cell_{index:04d}",
                out_dir=self.profile_to,
            )
        else:
            result = self.func(cell)
        return result, time.perf_counter() - start


def _cell_attrs(cell) -> dict:
    """Scheme/mix labels for progress lines, when the cell carries them."""
    attrs = {}
    for key in ("scheme", "mix"):
        value = getattr(cell, key, None)
        if isinstance(value, str):
            attrs[key] = value
    return attrs


class _GridEngine:
    """State machine for one fault-tolerant grid execution."""

    def __init__(self, func, cell_list, *, tracer, prof, policy, collector, ckpt):
        self.func = func
        self.cells = cell_list
        self.total = len(cell_list)
        self.tracer = tracer
        self.policy = policy
        self.collector = collector
        self.ckpt = ckpt
        self.registry = get_metrics()
        self.call = _CellCall(func, str(prof) if prof is not None else None)
        self.results: list = [None] * self.total
        self.done = [False] * self.total
        # Attempts *charged* against the retry budget (1-based once started).
        self.attempts = [0] * self.total
        self.keys = (
            [checkpoint.cell_key(func, cell) for cell in cell_list]
            if ckpt is not None
            else None
        )

    # ------------------------------------------------------------------
    def pending_cells(self) -> list[int]:
        """Indices still to run after serving checkpoint hits."""
        pending = []
        for i in range(self.total):
            if self.ckpt is not None:
                hit = self.ckpt.lookup(self.keys[i])
                if hit is not checkpoint.MISSING:
                    self.results[i] = hit
                    self.done[i] = True
                    self._note_success(i, 0.0, cached=True)
                    continue
            pending.append(i)
        return pending

    def succeed(self, index: int, value, wall: float) -> None:
        self.results[index] = value
        self.done[index] = True
        if self.ckpt is not None:
            self.ckpt.append(
                index=index, key=self.keys[index], result=value, wall_s=wall
            )
        self._note_success(index, wall)

    def should_retry(self, index: int, exc: BaseException) -> bool:
        """Charge one failed attempt; True if the cell gets another."""
        if self.attempts[index] <= self.policy.retries:
            self.registry.add("grid.cell_retries")
            self.tracer.point(
                "grid.cell_retry",
                index=index,
                attempt=self.attempts[index],
                exc=type(exc).__name__,
            )
            time.sleep(self.policy.backoff(index, self.attempts[index]))
            return True
        return False

    def fail(self, index: int, exc: BaseException, wall: float) -> None:
        """Retries exhausted: record (or propagate) the failure."""
        if self.collector is None:
            raise exc
        failure = CellFailure.from_exception(
            index,
            exc,
            attempts=self.attempts[index],
            wall_s=wall,
            **_cell_attrs(self.cells[index]),
        )
        self.collector.record(failure)
        self.registry.add("grid.cell_failures")
        self.tracer.point(
            "grid.cell_failed",
            index=index,
            total=self.total,
            exc=failure.exc_type,
            attempts=failure.attempts,
            **_cell_attrs(self.cells[index]),
        )
        if self.tracer.enabled:
            print(
                f"[repro] cell {index + 1}/{self.total} FAILED "
                f"{failure.exc_type} after {failure.attempts} attempt(s)",
                file=sys.stderr,
            )

    def _note_success(self, index: int, wall: float, *, cached: bool = False) -> None:
        attrs = _cell_attrs(self.cells[index])
        if cached:
            attrs["cached"] = True
        self.tracer.point(
            "grid.cell",
            index=index,
            total=self.total,
            wall_s=round(wall, 6),
            **attrs,
        )
        self.registry.add("grid.cells")
        self.registry.observe("grid.cell_wall_s", wall)
        if _progress_hook is not None:
            try:
                _progress_hook(sum(self.done), self.total, attrs)
            except Exception:
                pass
        if self.tracer.enabled:
            label = " ".join(f"{k}={v}" for k, v in attrs.items())
            print(
                f"[repro] cell {index + 1}/{self.total} {wall:7.2f}s {label}".rstrip(),
                file=sys.stderr,
            )


def _run_grid_engine(
    func, cell_list, workers, *, tracer, prof, policy, collector, ckpt
) -> list:
    engine = _GridEngine(
        func,
        cell_list,
        tracer=tracer,
        prof=prof,
        policy=policy,
        collector=collector,
        ckpt=ckpt,
    )
    with tracer.span(
        "grid", cells=engine.total, workers=min(workers, max(engine.total, 1))
    ):
        pending = engine.pending_cells()
        if not pending:
            return engine.results
        if workers <= 1 or len(pending) <= 1:
            _serial_cells(engine, pending)
        else:
            _pool_cells(engine, pending, min(workers, len(pending)))
    return engine.results


def _effective_timeout(policy_timeout: float | None) -> float | None:
    """Per-cell wait budget: the policy timeout capped by any deadline.

    With a :func:`~repro.harness.faults.deadline_scope` active, no
    single cell may wait past the request's remaining budget — the
    deadline degrades gracefully into a (shrinking) per-cell timeout.
    """
    remaining = faults.deadline_remaining()
    if remaining is None:
        return policy_timeout
    remaining = max(0.001, remaining)
    if policy_timeout is None:
        return remaining
    return min(policy_timeout, remaining)


def _serial_cells(engine: _GridEngine, pending: list[int]) -> None:
    """In-process execution with per-cell SIGALRM timeout and retries.

    An active deadline scope is checked before every attempt (and after
    a timeout) so an exhausted budget aborts the grid with
    :class:`~repro.harness.faults.DeadlineExceededError` instead of
    grinding through the remaining cells.
    """
    for i in pending:
        while True:
            faults.check_deadline()
            engine.attempts[i] += 1
            start = time.perf_counter()
            try:
                with faults.cell_timeout(
                    _effective_timeout(engine.policy.timeout_s)
                ):
                    value, wall = engine.call(
                        (i, engine.attempts[i], engine.cells[i])
                    )
            except Exception as exc:
                wall = time.perf_counter() - start
                # A timeout caused by the deadline, not the per-cell
                # policy, aborts the request rather than failing the cell.
                faults.check_deadline()
                if engine.should_retry(i, exc):
                    continue
                engine.fail(i, exc, wall)
                break
            engine.succeed(i, value, wall)
            break


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down hard — hung or orphaned workers included."""
    try:
        processes = list(pool._processes.values())  # noqa: SLF001
    except Exception:
        processes = []
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    for proc in processes:
        try:
            proc.terminate()
        except Exception:
            pass
    for proc in processes:
        try:
            proc.join(timeout=1.0)
        except Exception:
            pass


def _pool_cells(engine: _GridEngine, pending: list[int], max_workers: int) -> None:
    """Pool execution surviving worker exceptions, crashes and hangs.

    The parent consumes futures in submission order (preserving result
    and event ordering). A broken pool is attributed via the "started"
    markers workers drop, then rebuilt; unfinished cells are resubmitted
    without charging the innocents' retry budgets. A per-cell timeout
    bounds the wait for that cell's result.
    """
    mark_dir = tempfile.mkdtemp(prefix="repro-grid-")
    previous_mark = os.environ.get(_MARK_DIR_ENV)
    os.environ[_MARK_DIR_ENV] = mark_dir
    unfinished = set(pending)
    failed: set[int] = set()
    pool: ProcessPoolExecutor | None = None
    futures: dict = {}

    def submit(i: int) -> None:
        engine.attempts[i] += 1
        futures[i] = pool.submit(engine.call, (i, engine.attempts[i], engine.cells[i]))

    def resubmit_unfinished() -> None:
        # Same attempt numbers: an aborted-by-pool-break attempt was
        # already either charged (suspects) or innocent (no charge).
        for i in sorted(unfinished):
            _clear_marker(mark_dir, i)
            futures[i] = pool.submit(
                engine.call, (i, engine.attempts[i], engine.cells[i])
            )

    def rebuild_pool() -> None:
        nonlocal pool
        _kill_pool(pool)
        engine.registry.add("grid.pool_rebuilds")
        engine.tracer.point("grid.pool_rebuild", unfinished=len(unfinished))
        pool = ProcessPoolExecutor(max_workers=max_workers)
        resubmit_unfinished()

    try:
        try:
            pool = ProcessPoolExecutor(max_workers=max_workers)
        except (OSError, PermissionError) as exc:
            _warn_pool_fallback(exc, engine.tracer)
            _serial_cells(engine, pending)
            return
        for i in pending:
            submit(i)
        for i in pending:
            while i in unfinished:
                wait_start = time.perf_counter()
                wait_s = _effective_timeout(engine.policy.timeout_s)
                try:
                    value, wall = futures[i].result(timeout=wait_s)
                except FuturesTimeoutError:
                    # Deadline spent (not a slow cell): abort the grid —
                    # the finally block below kills the pool and workers.
                    faults.check_deadline()
                    exc = CellTimeoutError(
                        f"no result within {wait_s:g}s wall-clock budget"
                    )
                    retry = engine.should_retry(i, exc)
                    if retry:
                        engine.attempts[i] += 1  # next attempt, via resubmit
                    else:
                        unfinished.discard(i)
                        failed.add(i)
                    # The hung worker still occupies a slot: replace the
                    # whole pool, then rerun everything unfinished.
                    rebuild_pool()
                    if not retry:
                        engine.fail(
                            i, exc, time.perf_counter() - wait_start
                        )
                except BrokenProcessPool:
                    _consume_survivors(engine, futures, unfinished)
                    suspects = _suspects(mark_dir, unfinished) or {i}
                    crashed = []
                    for j in sorted(suspects):
                        exc_j = WorkerCrashError(
                            "worker process died while running this cell "
                            "(pool broken; signal or OOM kill)"
                        )
                        if engine.should_retry(j, exc_j):
                            engine.attempts[j] += 1  # retried via resubmit
                        else:
                            unfinished.discard(j)
                            failed.add(j)
                            crashed.append((j, exc_j))
                    rebuild_pool()
                    for j, exc_j in crashed:
                        engine.fail(j, exc_j, 0.0)
                except Exception as exc:
                    wall = time.perf_counter() - wait_start
                    if engine.should_retry(i, exc):
                        submit(i)
                        continue
                    unfinished.discard(i)
                    failed.add(i)
                    engine.fail(i, exc, wall)
                else:
                    unfinished.discard(i)
                    engine.succeed(i, value, wall)
        pool.shutdown(wait=True)
        pool = None
    finally:
        if pool is not None:
            _kill_pool(pool)
        if previous_mark is None:
            os.environ.pop(_MARK_DIR_ENV, None)
        else:
            os.environ[_MARK_DIR_ENV] = previous_mark
        shutil.rmtree(mark_dir, ignore_errors=True)


def _consume_survivors(engine: _GridEngine, futures: dict, unfinished: set) -> None:
    """Harvest results that completed before the pool broke."""
    for j in sorted(unfinished):
        future = futures.get(j)
        if future is not None and future.done():
            try:
                value, wall = future.result(timeout=0)
            except Exception:
                continue
            unfinished.discard(j)
            engine.succeed(j, value, wall)


def _suspects(mark_dir: str, unfinished: set) -> set[int]:
    """Unfinished cells whose attempt had started when the pool broke."""
    out = set()
    for j in unfinished:
        if os.path.exists(os.path.join(mark_dir, f"{j}.started")):
            out.add(j)
    return out


def _clear_marker(mark_dir: str, index: int) -> None:
    try:
        os.unlink(os.path.join(mark_dir, f"{index}.started"))
    except OSError:
        pass


# ----------------------------------------------------------------------
# standard cells
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GridCell:
    """One trace-driven run: scheme x mix under a setup (drive protocol)."""

    scheme: str
    mix: str
    setup: ExperimentSetup
    bimodal_config: BiModalConfig | None = None
    window: int = 16
    warmup_fraction: float = 0.5


def drive_cell(cell: GridCell) -> dict:
    """Worker: run one cell, return its stats snapshot (picklable)."""
    result = run_scheme_on_mix(
        cell.scheme,
        cell.mix,
        setup=cell.setup,
        bimodal_config=cell.bimodal_config,
        window=cell.window,
        warmup_fraction=cell.warmup_fraction,
    )
    return dict(result.stats)


@dataclass(frozen=True)
class AnttCell:
    """One ANTT measurement: multiprogrammed plus per-program standalone.

    Defaults mirror :class:`~repro.cores.multiprog.MultiProgramRunner`
    (``warmup_fraction=0.3``, ``intensity_scale=1.0``); the Figure 7/8
    protocol passes 0.5 and the setup's intensity explicitly.
    """

    scheme: str
    mix: str
    setup: ExperimentSetup
    accesses_per_core: int | None = None
    cache_mb: int | None = None
    bimodal_config: BiModalConfig | None = None
    warmup_fraction: float = 0.3
    intensity_scale: float = 1.0


def antt_cell(cell: AnttCell) -> float:
    """Worker: ANTT of one scheme on one mix (the paper's metric)."""
    setup = cell.setup
    mixes = mixes_for_cores(setup.num_cores)
    if cell.mix not in mixes:
        raise ValueError(
            f"unknown mix {cell.mix!r} for {setup.num_cores} cores"
        )
    mix = mixes[cell.mix]
    system = setup.system
    if cell.cache_mb is not None:
        system = system.scaled_cache(cell.cache_mb << 20)
    per_core = cell.accesses_per_core or setup.accesses_per_core
    total = per_core * setup.num_cores

    def factory():
        return build_cache(
            cell.scheme,
            system,
            scale=setup.scale,
            bimodal_config=cell.bimodal_config,
            adaptation_interval=max(1_000, total // 150),
        )

    runner = MultiProgramRunner(
        mix,
        factory,
        accesses_per_core=per_core,
        seed=setup.seed,
        footprint_scale=setup.footprint_scale,
        intensity_scale=cell.intensity_scale,
        warmup_fraction=cell.warmup_fraction,
    )
    antt, _ = runner.run_antt()
    return antt
