#!/bin/sh
# Measure drive-loop throughput (legacy vs fast protocol, plus the fast
# protocol with the observability tracer enabled) and append a
# timestamped entry to BENCH_perf.json at the repo root. The entry's
# fast_over_legacy and traced_over_fast ratios track batching speedup
# and tracer overhead across PRs.
#
# Usage: scripts/bench_perf.sh [extra perfbench args...]
#   e.g. scripts/bench_perf.sh --repeats 5 --mix Q7
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m repro.harness.perfbench --output BENCH_perf.json "$@"
