"""SRAM substrate: set-associative caches, replacement, MSHRs, hierarchy."""

from repro.sram.cache import AccessResult, SetAssociativeCache
from repro.sram.hierarchy import CacheHierarchy, FilterOutcome
from repro.sram.mshr import MSHRFile
from repro.sram.replacement import (
    LRU,
    Random,
    RandomNotRecent,
    ReplacementPolicy,
    make_policy,
)

__all__ = [
    "AccessResult",
    "SetAssociativeCache",
    "CacheHierarchy",
    "FilterOutcome",
    "MSHRFile",
    "LRU",
    "Random",
    "RandomNotRecent",
    "ReplacementPolicy",
    "make_policy",
]
