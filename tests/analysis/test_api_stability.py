"""The ``api-stability`` rule: frozen/slotted/schema-versioned wire
types, constructed only inside the facade package."""

GOOD_TYPES = """
    from dataclasses import dataclass

    API_SCHEMA = 1

    @dataclass(frozen=True, slots=True)
    class PingRequest:
        schema: int = API_SCHEMA
"""


def _messages(result):
    return [v.message for v in result.violations]


class TestTypeDefinitions:
    def test_clean_types_module_passes(self, lint):
        result = lint(GOOD_TYPES, rules=["api-stability"], filename="api/types.py")
        assert not result.violations

    def test_mutable_dataclass_flagged(self, lint):
        result = lint(
            """
            from dataclasses import dataclass

            API_SCHEMA = 1

            @dataclass
            class LooseRequest:
                schema: int = API_SCHEMA
            """,
            rules=["api-stability"],
            filename="api/types.py",
        )
        assert any("frozen=True, slots=True" in m for m in _messages(result))

    def test_missing_schema_field_flagged(self, lint):
        result = lint(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True, slots=True)
            class VersionlessRequest:
                value: int = 0
            """,
            rules=["api-stability"],
            filename="api/types.py",
        )
        assert any("schema: int = API_SCHEMA" in m for m in _messages(result))

    def test_plain_class_flagged(self, lint):
        result = lint(
            """
            class NotARecord:
                pass
            """,
            rules=["api-stability"],
            filename="api/types.py",
        )
        assert any("must be a frozen dataclass" in m for m in _messages(result))


class TestConstructionBoundary:
    def test_direct_construction_outside_facade_flagged(self, lint):
        result = lint(
            """
            from repro.api.types import PingRequest

            def make():
                return PingRequest()
            """,
            rules=["api-stability"],
            filename="server/daemon.py",
            extra={"api/types.py": GOOD_TYPES},
        )
        assert any("through the repro.api facade" in m for m in _messages(result))

    def test_attribute_style_construction_flagged(self, lint):
        result = lint(
            """
            from repro.api import types

            def make():
                return types.PingRequest()
            """,
            rules=["api-stability"],
            filename="server/daemon.py",
            extra={"api/types.py": GOOD_TYPES},
        )
        assert any("through the repro.api facade" in m for m in _messages(result))

    def test_construction_inside_facade_allowed(self, lint):
        result = lint(
            """
            from repro.api.types import PingRequest

            def ping_request():
                return PingRequest()
            """,
            rules=["api-stability"],
            filename="api/facade.py",
            extra={"api/types.py": GOOD_TYPES},
        )
        assert not result.violations

    def test_unrelated_calls_untouched(self, lint):
        result = lint(
            """
            def compute(build_cache):
                return build_cache()
            """,
            rules=["api-stability"],
            filename="server/daemon.py",
            extra={"api/types.py": GOOD_TYPES},
        )
        assert not result.violations


def test_real_tree_is_clean_under_the_rule():
    """The shipped repro package satisfies its own api-stability rule."""
    from pathlib import Path

    from repro.analysis.config import load_config
    from repro.analysis.engine import run_lint
    from repro.analysis.rules import all_rules

    import repro

    package = Path(repro.__file__).parent
    root = package.parent.parent
    result = run_lint(
        [package],
        config=load_config(root),
        root=root,
        rules=all_rules(["api-stability"]),
    )
    assert not result.violations, [v.render() for v in result.violations]
