"""Run manifests: the "what exactly produced this file" record.

Every experiment output (``--export`` table, ``--trace-out`` trace)
gets a sibling ``<file>.manifest.json`` capturing everything needed to
reproduce or diff the run: a stable hash of the configuration, the
seed, scheme/mix selection, the git revision of the working tree, the
``REPRO_*`` environment knobs that alter behaviour, and the
interpreter/platform. Two runs whose manifests agree on
``config_hash`` + ``seed`` + git rev must produce identical simulation
statistics; when they don't, the manifest diff is the first thing to
read.

A run that finished despite per-cell failures carries
``status: "partial"`` and a ``failures`` list (one structured entry per
failed grid cell, see :mod:`repro.harness.faults`); a clean run says
``status: "complete"`` with an empty list.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import time
from dataclasses import asdict, dataclass, field, is_dataclass
from pathlib import Path

__all__ = ["RunManifest", "config_hash", "git_revision", "write_manifest"]

_ENV_PREFIX = "REPRO_"


def _canonical(value):
    if is_dataclass(value) and not isinstance(value, type):
        return _canonical(asdict(value))
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def config_hash(config) -> str:
    """Stable short hash of any dataclass/dict configuration."""
    payload = json.dumps(_canonical(config), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def git_revision(repo_dir: str | Path | None = None) -> str | None:
    """Current git commit (with ``+dirty`` suffix), or None outside git."""
    cwd = str(repo_dir) if repo_dir is not None else None
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5, cwd=cwd,
        )
        if rev.returncode != 0:
            return None
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True, text=True, timeout=5, cwd=cwd,
        )
        dirty = "+dirty" if status.returncode == 0 and status.stdout.strip() else ""
        return rev.stdout.strip() + dirty
    except (OSError, subprocess.SubprocessError):
        return None


def _env_knobs() -> dict[str, str]:
    return {
        k: v for k, v in sorted(os.environ.items()) if k.startswith(_ENV_PREFIX)
    }


@dataclass
class RunManifest:
    """Reproducibility record for one experiment invocation."""

    experiment: str
    config_hash: str
    seed: int | None = None
    scheme: str | None = None
    backend: str = "scalar"
    config: dict = field(default_factory=dict)
    argv: list[str] = field(default_factory=list)
    git_rev: str | None = None
    env: dict[str, str] = field(default_factory=dict)
    repro_version: str = ""
    python: str = ""
    machine: str = ""
    created: str = ""
    status: str = "complete"
    failures: list = field(default_factory=list)

    @classmethod
    def collect(
        cls,
        experiment: str,
        *,
        config=None,
        seed: int | None = None,
        scheme: str | None = None,
        backend: str | None = None,
        argv: list[str] | None = None,
        failures: list | None = None,
    ) -> "RunManifest":
        """Build a manifest from the current process state.

        ``backend`` defaults to the drive engine recorded on ``config``
        (the request's ``ExperimentSetup.backend``), falling back to the
        legacy ``REPRO_BACKEND`` environment knob, so the engine that
        produced an artifact is always on record even when the caller
        doesn't pass it explicitly.
        """
        from repro import __version__

        config_dict = _canonical(config) if config is not None else {}
        if not isinstance(config_dict, dict):
            config_dict = {"config": config_dict}
        if backend is None:
            backend = (
                getattr(config, "backend", "")
                or os.environ.get("REPRO_BACKEND")
                or "scalar"
            )
        return cls(
            experiment=experiment,
            config_hash=config_hash(config_dict),
            seed=seed,
            scheme=scheme,
            backend=backend,
            config=config_dict,
            argv=list(argv or []),
            git_rev=git_revision(),
            env=_env_knobs(),
            repro_version=__version__,
            python=platform.python_version(),
            machine=platform.machine(),
            created=time.strftime("%Y-%m-%dT%H:%M:%S"),
            status="partial" if failures else "complete",
            failures=list(failures or []),
        )

    def to_dict(self) -> dict:
        return asdict(self)

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    def write_next_to(self, output: str | Path) -> Path:
        """Write as ``<output>.manifest.json`` beside an artifact."""
        output = Path(output)
        return self.write(output.with_name(output.name + ".manifest.json"))


def write_manifest(output: str | Path, experiment: str, **collect_kwargs) -> Path:
    """One-call helper: collect and write beside ``output``."""
    return RunManifest.collect(experiment, **collect_kwargs).write_next_to(output)
