"""``repro serve``: the simulation-as-a-service daemon.

One asyncio process keeps the expensive state warm across requests —
the in-process trace cache (``repro.workloads.trace_cache``), the
worker thread pool and the metrics registry — so a client pays trace
materialization once, not per invocation. Clients speak the
newline-delimited JSON envelope protocol of :mod:`repro.api.protocol`
over a TCP socket; many clients, many concurrent requests per client.

Structure (all simulation semantics live in :mod:`repro.api.facade` —
this module is scheduling and sockets only):

* every connection gets a **writer task** draining a per-connection
  queue, so interleaved jobs can never corrupt each other's lines;
* ``sim``/``grid`` requests are validated immediately, then admitted
  into a **per-client queue** (bounded by ``max_queued_per_client``;
  past that the client gets the typed ``overloaded`` error);
* a scheduler task **round-robins across clients** whenever one of the
  ``max_inflight`` execution slots frees, so a client queueing fifty
  grids cannot starve the client queueing one;
* grid requests are **content-addressed** (:func:`~repro.server.state.
  grid_key`): identical in-flight grids are joined rather than re-run,
  every grid journals its request and attaches a keyed checkpoint with
  ``resume=True``, and on startup journaled-but-unfinished grids are
  re-queued — a killed daemon resumes mid-grid work instead of
  recomputing it (``docs/service.md`` walks through the recovery flow).

Grids execute one at a time (the harness failure collector and
checkpoint attachment are process-global); sims from different
requests run concurrently on the pool.
"""

from __future__ import annotations

import asyncio
import sys
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from itertools import count

from repro.api import facade
from repro.api.errors import (
    ERR_BAD_REQUEST,
    ERR_BAD_SCHEMA,
    ERR_INTERNAL,
    ERR_OVERLOADED,
    RequestError,
)
from repro.api.protocol import parse_request_line, response_line
from repro.api.wire import WireError
from repro.server.state import GridStore, ServerConfig, ServerStats, grid_key

__all__ = ["ReproServer", "serve_forever"]


class _Connection:
    """One client socket plus its interleaving-proof writer queue."""

    def __init__(self, conn_id: str, writer: asyncio.StreamWriter) -> None:
        self.id = conn_id
        self.writer = writer
        self.queue: asyncio.Queue = asyncio.Queue()
        self.closed = False
        self.writer_task: asyncio.Task | None = None

    def send(self, request_id: str, kind: str, payload) -> None:
        """Queue one response line (event-loop thread only)."""
        if not self.closed:
            self.queue.put_nowait(response_line(request_id, kind, payload))

    async def run_writer(self) -> None:
        try:
            while True:
                item = await self.queue.get()
                if item is None:
                    break
                self.writer.write(item)
                await self.writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass

    async def close(self) -> None:
        self.closed = True
        self.queue.put_nowait(None)
        if self.writer_task is not None:
            await self.writer_task
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


@dataclass(slots=True)
class _Job:
    """One admitted request waiting for (or holding) an execution slot."""

    conn: _Connection | None  # None for startup-recovery jobs
    request_id: str
    verb: str
    request: object

    def send(self, kind: str, payload) -> None:
        if self.conn is not None:
            self.conn.send(self.request_id, kind, payload)


class ReproServer:
    """The daemon: admission control, fair-share scheduling, recovery."""

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        self.stats = ServerStats()
        self.store = GridStore(config.state_dir)
        self._queues: dict[str, deque] = {}
        self._rr: deque[str] = deque()
        self._work = asyncio.Condition()
        self._slots = asyncio.Semaphore(max(1, config.max_inflight))
        self._grid_lock = asyncio.Lock()
        self._grid_futures: dict[str, asyncio.Future] = {}
        self._pool = ThreadPoolExecutor(
            max_workers=max(2, config.max_inflight),
            thread_name_prefix="repro-serve",
        )
        self._conn_ids = count(1)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.Server | None = None
        self._scheduler_task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind, start the scheduler, queue crash recovery; return address."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._scheduler_task = asyncio.create_task(self._scheduler())
        await self._queue_recovery()
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def serve_forever(self) -> None:
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._scheduler_task is not None:
            self._scheduler_task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._pool.shutdown(wait=False, cancel_futures=True)

    async def _queue_recovery(self) -> None:
        """Re-admit journaled grids a previous process never finished."""
        for key, request in self.store.incomplete():
            self.stats.recovered_grids += 1
            self._admit(
                _Job(conn=None, request_id=f"recover-{key[:8]}", verb="grid",
                     request=request),
                client="__recovery__",
                unbounded=True,
            )
        if self.stats.recovered_grids:
            print(
                f"[repro-serve] resuming {self.stats.recovered_grids} "
                "unfinished grid(s) from checkpoints",
                file=sys.stderr,
                flush=True,
            )
        async with self._work:
            self._work.notify_all()

    # ------------------------------------------------------------------
    # connections
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        conn = _Connection(f"conn{next(self._conn_ids)}", writer)
        conn.writer_task = asyncio.create_task(conn.run_writer())
        self.stats.connections += 1
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                await self._handle_line(conn, line)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            await conn.close()

    async def _handle_line(self, conn: _Connection, line: bytes) -> None:
        self.stats.requests += 1
        try:
            request_id, verb, request = parse_request_line(line)
        except WireError as exc:
            rid = _best_effort_id(line)
            conn.send(rid, "error", facade.api_error(ERR_BAD_SCHEMA, str(exc)))
            return
        if verb in ("ping", "stats"):
            conn.send(request_id, "result", self._stats_result())
            return
        try:
            if verb == "sim":
                facade.validate_sim(request)
            else:
                facade.validate_grid(request)
        except RequestError as exc:
            conn.send(request_id, "error", facade.api_error(exc.code, str(exc)))
            return
        job = _Job(conn=conn, request_id=request_id, verb=verb, request=request)
        if not self._admit(job, client=conn.id):
            self.stats.overload_rejections += 1
            conn.send(
                request_id,
                "error",
                facade.api_error(
                    ERR_OVERLOADED,
                    f"client queue full "
                    f"(max_queued_per_client={self.config.max_queued_per_client})",
                ),
            )
            return
        job.send(
            "event",
            facade.progress_event("queued", request_id=request_id),
        )
        async with self._work:
            self._work.notify_all()

    def _stats_result(self):
        return facade.stats_result(server=self.stats.snapshot())

    # ------------------------------------------------------------------
    # admission + fair-share scheduling
    # ------------------------------------------------------------------
    def _admit(self, job: _Job, *, client: str, unbounded: bool = False) -> bool:
        queue = self._queues.get(client)
        if queue is None:
            queue = self._queues[client] = deque()
            self._rr.append(client)
        if not unbounded and len(queue) >= self.config.max_queued_per_client:
            return False
        queue.append(job)
        self.stats.queued += 1
        return True

    async def _next_job(self) -> _Job:
        """Round-robin over clients that currently have queued work."""
        async with self._work:
            while True:
                for _ in range(len(self._rr)):
                    client = self._rr[0]
                    self._rr.rotate(-1)
                    queue = self._queues[client]
                    if queue:
                        self.stats.queued -= 1
                        return queue.popleft()
                await self._work.wait()

    async def _scheduler(self) -> None:
        while True:
            await self._slots.acquire()
            try:
                job = await self._next_job()
            except asyncio.CancelledError:
                self._slots.release()
                raise
            self.stats.inflight += 1
            asyncio.create_task(self._execute(job))

    async def _execute(self, job: _Job) -> None:
        try:
            if job.verb == "sim":
                await self._run_sim_job(job)
            else:
                await self._run_grid_job(job)
        except RequestError as exc:
            job.send("error", facade.api_error(exc.code, str(exc)))
        except Exception as exc:  # noqa: BLE001 — must never kill the daemon
            self.stats.failures += 1
            job.send(
                "error",
                facade.api_error(ERR_INTERNAL, f"{type(exc).__name__}: {exc}"),
            )
        finally:
            self.stats.inflight -= 1
            self._slots.release()

    # ------------------------------------------------------------------
    # job execution
    # ------------------------------------------------------------------
    async def _run_sim_job(self, job: _Job) -> None:
        job.send("event", facade.progress_event("started", request_id=job.request_id))
        result = await self._loop.run_in_executor(
            self._pool, facade.run_sim, job.request
        )
        self.stats.sims_done += 1
        job.send("result", result)

    async def _run_grid_job(self, job: _Job) -> None:
        key = grid_key(job.request)
        existing = self._grid_futures.get(key)
        if existing is not None:
            # Identical grid already executing: join it instead of
            # re-running — both requesters get the same result object.
            self.stats.grids_joined += 1
            job.send(
                "event",
                facade.progress_event(
                    "attached", request_id=job.request_id, detail=f"grid {key}"
                ),
            )
            result = await existing
            job.send("result", result)
            return

        future = self._loop.create_future()
        future.add_done_callback(lambda f: f.exception())  # joiner-less errors
        self._grid_futures[key] = future
        try:
            self.store.journal(key, job.request)
            job.send(
                "event", facade.progress_event("started", request_id=job.request_id)
            )
            emit = self._cell_emitter(job)
            checkpoint_path = (
                self.store.checkpoint_path(key) if self.store.enabled else None
            )
            # Grids serialize: collector/checkpoint/progress attachments
            # are process-global in the harness.
            async with self._grid_lock:
                result = await self._loop.run_in_executor(
                    self._pool,
                    partial(
                        facade.run_grid,
                        job.request,
                        progress=emit,
                        checkpoint_path=checkpoint_path,
                        resume=True,
                    ),
                )
            if result.resumed_cells:
                job.send(
                    "event",
                    facade.progress_event(
                        "recovered",
                        request_id=job.request_id,
                        completed=result.resumed_cells,
                        detail="cells served from checkpoint",
                    ),
                )
            self.store.complete(key, result)
            self.stats.grids_done += 1
            future.set_result(result)
            job.send("result", result)
        except BaseException as exc:
            future.set_exception(exc)
            raise
        finally:
            self._grid_futures.pop(key, None)

    def _cell_emitter(self, job: _Job):
        """Thread-safe per-cell progress forwarder for one grid job."""

        def emit(event) -> None:  # called from a pool thread
            tagged = facade.progress_event(
                event.stage,
                request_id=job.request_id,
                completed=event.completed,
                total=event.total,
                detail=event.detail,
            )
            self._loop.call_soon_threadsafe(job.send, "event", tagged)

        return emit


def _best_effort_id(line: bytes) -> str:
    """The envelope id of an unparseable line, when salvageable."""
    import json

    try:
        envelope = json.loads(line.decode())
        rid = envelope.get("id", "")
        return rid if isinstance(rid, str) else ""
    except (ValueError, AttributeError, UnicodeDecodeError):
        return ""


async def _serve(config: ServerConfig) -> None:
    server = ReproServer(config)
    host, port = await server.start()
    print(
        f"repro-serve listening on {host}:{port} "
        f"(max-inflight={config.max_inflight}, "
        f"max-queued-per-client={config.max_queued_per_client}, "
        f"state-dir={config.state_dir or '<none>'})",
        flush=True,
    )
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.aclose()


def serve_forever(config: ServerConfig) -> None:
    """Blocking entry point used by ``python -m repro serve``."""
    try:
        asyncio.run(_serve(config))
    except KeyboardInterrupt:
        print("repro-serve: interrupted, shutting down", file=sys.stderr)
