"""Common contract for all DRAM cache organizations.

Every organization (AlloyCache, Loh-Hill, ATCache, Footprint Cache and the
Bi-Modal cache) plugs between the LLSC and off-chip memory and exposes one
operation: :meth:`DRAMCacheBase.access`. The returned completion time *is*
the LLSC miss penalty the paper's Figure 8(c) compares; hit/miss, off-chip
traffic and wasted-fetch accounting use one shared stats vocabulary so the
harness can tabulate all schemes uniformly.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from dataclasses import dataclass
from collections.abc import Callable

from repro.common.config import DRAMCacheGeometry
from repro.common.stats import RateStat, RunningMean
from repro.dram.controller import MemoryController
from repro.dram.device import DRAMDevice

__all__ = ["DRAMCacheAccess", "DRAMCacheBase"]


@dataclass(slots=True)
class DRAMCacheAccess:
    """Outcome of one LLSC-miss access to the DRAM cache."""

    hit: bool
    start: int
    complete: int

    @property
    def latency(self) -> int:
        return self.complete - self.start


class DRAMCacheBase(ABC):
    """Shared state and accounting for DRAM cache organizations.

    Subclasses implement :meth:`_access` and use the provided
    ``self.dram`` (stacked device) and ``self.offchip`` (memory
    controller) plus the accounting helpers.
    """

    name = "base"

    def __init__(
        self,
        geometry: DRAMCacheGeometry,
        offchip: MemoryController,
    ) -> None:
        self.geometry = geometry
        self.offchip = offchip
        self.dram = DRAMDevice(
            geometry.geometry, geometry.timing, name=f"{self.name}-stack"
        )
        self.hit_stat = RateStat()
        self.read_latency = RunningMean()
        self.hit_latency = RunningMean()
        self.miss_latency = RunningMean()
        # Off-chip traffic accounting (bytes).
        self.offchip_fetched_bytes = 0
        self.offchip_writeback_bytes = 0
        self.offchip_wasted_bytes = 0  # fetched but never referenced
        self.bypassed_accesses = 0
        # Deferred (posted) operations: fills, writebacks and metadata
        # updates complete in the future relative to the access that
        # produced them. They are queued and executed once simulation
        # time reaches their stamp, so a fill scheduled for t+300 can
        # never retroactively block a request that arrives at t+10.
        self._pending: list[tuple[int, int, Callable[[], None]]] = []
        self._pending_seq = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def access(
        self, address: int, now: int, *, is_write: bool = False
    ) -> DRAMCacheAccess:
        """Serve one LLSC miss (read) or LLSC writeback (write).

        Read latency statistics feed the average-LLSC-miss-penalty
        comparison; writes are posted (they occupy resources but their
        completion does not stall the core).
        """
        if self._pending:
            self._drain_posted(now)
        result = self._access(address, now, is_write)
        hit = result.hit
        hit_stat = self.hit_stat
        if hit:
            hit_stat.hits += 1
        else:
            hit_stat.misses += 1
        if not is_write:
            latency = result.complete - result.start
            mean = self.read_latency
            mean.count += 1
            mean.total += latency
            if latency < mean.minimum:
                mean.minimum = latency
            if latency > mean.maximum:
                mean.maximum = latency
            if hit:
                self.hit_latency.add(latency)
            else:
                self.miss_latency.add(latency)
        return result

    @abstractmethod
    def _access(self, address: int, now: int, is_write: bool) -> DRAMCacheAccess:
        """Organization-specific access path."""

    # ------------------------------------------------------------------
    # shared helpers for subclasses
    # ------------------------------------------------------------------
    def _post(self, when: int, action: Callable[[], None]) -> None:
        """Queue a posted operation to execute at simulation time ``when``."""
        heapq.heappush(self._pending, (when, self._pending_seq, action))
        self._pending_seq += 1

    def _drain_posted(self, now: int) -> None:
        """Run every posted operation whose time has arrived."""
        while self._pending and self._pending[0][0] <= now:
            _, _, action = heapq.heappop(self._pending)
            action()

    def flush_posted(self) -> None:
        """Run all remaining posted operations (end of a drive)."""
        while self._pending:
            _, _, action = heapq.heappop(self._pending)
            action()

    def _fetch_offchip(self, address: int, now: int, *, bursts: int) -> int:
        """Fetch ``bursts`` * 64 B from main memory.

        Critical-word-first with interleavable tail: the demand request
        moves only the critical 64 B beat (its completion unblocks the
        core); the remaining bursts of a multi-block fetch are posted as
        individual transfers spread behind it, so other requesters'
        demands can slot between them the way an FR-FCFS scheduler
        interleaves a long cacheline fill with competing traffic. Total
        bytes moved and bus occupancy are unchanged.
        """
        access = self.offchip.read(address, now, bursts=1)
        self.offchip_fetched_bytes += bursts * 64
        if bursts > 1:
            spread = self.offchip.device.timings.burst_cycles
            for i in range(1, bursts):
                when = access.data_end + i * spread
                tail_address = address + 64 * i
                self._post(
                    when,
                    lambda a=tail_address, t=when: self.offchip.device.read(
                        a, t, bursts=1
                    ),
                )
        return access.data_end

    def _writeback_offchip(self, address: int, now: int, *, bursts: int) -> None:
        """Posted dirty writeback to main memory (deferred to ``now``)."""
        self.offchip_writeback_bytes += bursts * 64
        self._post(now, lambda: self.offchip.write(address, now, bursts=bursts))

    def _account_waste(self, unused_sub_blocks: int) -> None:
        """Record fetched-but-never-referenced sub-blocks at eviction."""
        self.offchip_wasted_bytes += unused_sub_blocks * 64

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        return self.hit_stat.rate

    @property
    def miss_rate(self) -> float:
        return self.hit_stat.miss_rate

    @property
    def avg_read_latency(self) -> float:
        """Average LLSC miss penalty in CPU cycles (paper Fig. 8c)."""
        return self.read_latency.mean

    def offchip_traffic_bytes(self) -> int:
        return self.offchip_fetched_bytes + self.offchip_writeback_bytes

    def wasted_fraction(self) -> float:
        """Fraction of fetched bytes never referenced before eviction."""
        if not self.offchip_fetched_bytes:
            return 0.0
        return self.offchip_wasted_bytes / self.offchip_fetched_bytes

    def reset_stats(self) -> None:
        """Clear measurement state, keeping all cache contents/training.

        Used at the end of a warmup phase, mirroring the paper's
        fast-forward + warm-up protocol: statistics cover only the
        measured region of the run.
        """
        self.hit_stat.reset()
        self.read_latency.reset()
        self.hit_latency.reset()
        self.miss_latency.reset()
        self.offchip_fetched_bytes = 0
        self.offchip_writeback_bytes = 0
        self.offchip_wasted_bytes = 0
        self.bypassed_accesses = 0
        self.dram.reset_stats()
        self.offchip.reset_stats()

    def stats_snapshot(self) -> dict[str, float]:
        return {
            "accesses": self.hit_stat.total,
            "hit_rate": self.hit_rate,
            "avg_read_latency": self.avg_read_latency,
            "avg_hit_latency": self.hit_latency.mean,
            "avg_miss_latency": self.miss_latency.mean,
            "offchip_fetched_bytes": self.offchip_fetched_bytes,
            "offchip_writeback_bytes": self.offchip_writeback_bytes,
            "offchip_wasted_bytes": self.offchip_wasted_bytes,
            "wasted_fraction": self.wasted_fraction(),
            "stack_rbh": self.dram.row_buffer_hit_rate(),
        }

    def report_metrics(self, registry, *, prefix: str = "cache") -> None:
        """Copy finished counters into an observability registry.

        Pull-based tap: called at drive/span boundaries, never from the
        access hot path, so observability cannot perturb simulation
        results. Subclass snapshot extras flow through automatically.
        """
        registry.update(self.stats_snapshot(), prefix=prefix)
        registry.gauge(f"{prefix}.scheme", self.name)
        registry.add(f"{prefix}.hits_total", self.hit_stat.hits)
        registry.add(f"{prefix}.misses_total", self.hit_stat.misses)
        self.offchip.report_metrics(registry, prefix=f"{prefix}.offchip")
