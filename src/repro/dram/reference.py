"""Command-level reference model for validating the bank timing.

``ReferenceBank`` simulates one DRAM bank at command granularity
(PRE/ACT/CAS with explicit inter-command constraints). It is
deliberately slow and simple — it exists so tests can check that the
fast access-granularity :class:`~repro.dram.bank.Bank` and the flat
:class:`~repro.dram.device.DRAMDevice` timing kernel (including its
inlined fast-path copies) produce the same latencies on arbitrary
request sequences (``tests/dram/test_reference_validation.py`` and
``tests/dram/test_kernel_validation.py``), which is the kind of
evidence a timing model needs before anyone trusts the numbers built
on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import DRAMTimingConfig

__all__ = ["ReferenceAccess", "ReferenceBank"]


@dataclass(frozen=True, slots=True)
class ReferenceAccess:
    """One resolved access with its command times."""

    precharge_at: int | None
    activate_at: int | None
    cas_at: int
    data_ready: int


class ReferenceBank:
    """Single bank, explicit command schedule, in-order service.

    Constraints modeled (matching the fast model's contract):

    * CAS→CAS to the open row: ``tCCD``;
    * ACT→CAS: ``tRCD``; PRE→ACT: ``tRP``;
    * a new command sequence cannot start before the previous command's
      issue slot frees (``ready_at``);
    * refresh every ``tREFI`` lasting ``tRFC``, closing the row; idle
      refreshes are not charged to later requests.
    """

    __slots__ = ("_t", "_open_row", "_next_slot", "_next_refresh")

    def __init__(self, timings: DRAMTimingConfig) -> None:
        self._t = timings
        self._open_row: int | None = None
        self._next_slot = 0
        self._next_refresh = timings.trefi

    def _refresh_adjust(self, t: int) -> int:
        if t < self._next_refresh:
            return t
        elapsed = t - self._next_refresh
        completed = elapsed // self._t.trefi
        self._next_refresh += completed * self._t.trefi
        if t < self._next_refresh + self._t.trfc:
            t = self._next_refresh + self._t.trfc
        self._next_refresh += self._t.trefi
        self._open_row = None
        return t

    def access(self, row: int, now: int) -> ReferenceAccess:
        start = self._refresh_adjust(max(now, self._next_slot))
        precharge_at = None
        activate_at = None
        t = start
        if self._open_row is None:
            activate_at = t
            t += self._t.trcd
        elif self._open_row != row:
            precharge_at = t
            t += self._t.trp
            activate_at = t
            t += self._t.trcd
        cas_at = t
        self._open_row = row
        self._next_slot = cas_at + self._t.tccd
        return ReferenceAccess(
            precharge_at=precharge_at,
            activate_at=activate_at,
            cas_at=cas_at,
            data_ready=cas_at + self._t.cl,
        )
