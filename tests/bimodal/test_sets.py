"""Bi-modal set tests: (X, Y) states, Table II actions, invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bimodal.sets import (
    SMALLS_PER_BIG,
    BigBlock,
    BiModalSet,
    SmallBlock,
    allowed_states,
)


def chooser_first(candidates, protected):
    """Deterministic victim chooser for tests: lowest unprotected way."""
    pool = [w for w in candidates if w not in protected] or list(candidates)
    return pool[0]


class TestAllowedStates:
    def test_2kb_states(self):
        assert allowed_states(2048, 512) == ((4, 0), (3, 8), (2, 16))

    def test_4kb_states(self):
        assert allowed_states(4096, 512) == (
            (8, 0),
            (7, 8),
            (6, 16),
            (5, 24),
            (4, 32),
        )

    def test_2kb_256b_states(self):
        states = allowed_states(2048, 256)
        assert states[0] == (8, 0)
        assert states[-1] == (4, 16)  # 4 converted ways x 4 smalls each

    def test_too_small_set_rejected(self):
        with pytest.raises(ValueError):
            allowed_states(512, 512)


class TestBlocks:
    def test_big_block_touch(self):
        b = BigBlock(tag=7)
        b.touch(3, is_write=False)
        b.touch(3, is_write=True)
        b.touch(5, is_write=False)
        assert b.utilization == 2
        assert b.dirty_sub_blocks == 1

    def test_small_block_fields(self):
        s = SmallBlock(tag=7, sub_offset=5)
        assert not s.dirty


@pytest.fixture
def bset():
    return BiModalSet(allowed_states(2048, 512))


class TestLookupAndMRU:
    def test_initial_state_all_big(self, bset):
        assert bset.state == (4, 0)
        assert bset.associativity == 4

    def test_allocate_and_find_big(self, bset):
        way, evicted = bset.allocate_big(0xAB, chooser_first)
        assert evicted == []
        assert bset.find_big(0xAB) == way
        assert bset.lookup(0xAB, 3) == (True, way)

    def test_big_block_covers_all_sub_offsets(self, bset):
        bset.allocate_big(0xAB, chooser_first)
        for sub in range(8):
            assert bset.lookup(0xAB, sub) is not None

    def test_small_block_requires_offset_match(self, bset):
        bset.grow_small()
        way, _ = bset.allocate_small(0xCD, 3, chooser_first)
        assert bset.lookup(0xCD, 3) == (False, way)
        assert bset.lookup(0xCD, 4) is None

    def test_mru_tracks_top2(self, bset):
        bset.touch_mru(True, 0)
        bset.touch_mru(True, 1)
        bset.touch_mru(True, 2)
        assert bset.mru_ways() == {(True, 1), (True, 2)}

    def test_mru_promotion(self, bset):
        bset.touch_mru(True, 0)
        bset.touch_mru(True, 1)
        bset.touch_mru(True, 0)
        assert (True, 0) in bset.mru_ways()


class TestStateTransitions:
    def test_grow_small_converts_highest_way(self, bset):
        for tag in range(4):
            bset.allocate_big(tag, chooser_first)
        evicted = bset.grow_small()
        assert bset.state == (3, 8)
        assert len(bset.big_ways) == 3
        assert len(bset.small_ways) == 8
        assert len(evicted) == 1
        assert evicted[0].way == 3  # highest-numbered big way

    def test_grow_small_empty_way_no_eviction(self, bset):
        assert bset.grow_small() == []

    def test_grow_big_evicts_highest_smalls(self, bset):
        bset.grow_small()
        bset.grow_small()
        assert bset.state == (2, 16)
        for i in range(16):
            bset.allocate_small(i, 0, chooser_first)
        evicted = bset.grow_big()
        assert bset.state == (3, 8)
        assert len(evicted) == SMALLS_PER_BIG
        assert {e.way for e in evicted} == set(range(8, 16))

    def test_cannot_grow_past_bounds(self, bset):
        bset.grow_small()
        bset.grow_small()
        with pytest.raises(RuntimeError):
            bset.grow_small()
        bset.grow_big()
        bset.grow_big()
        with pytest.raises(RuntimeError):
            bset.grow_big()

    def test_grow_small_eviction_reports_waste(self, bset):
        way, _ = bset.allocate_big(9, chooser_first)
        bset.big_ways[3] = bset.big_ways[way]
        bset.big_ways[way] = None
        bset.big_ways[3].touch(0, is_write=True)
        evicted = bset.grow_small()
        assert evicted[0].utilization == 1
        assert evicted[0].unused_sub_blocks == 7
        assert evicted[0].dirty_bursts == 1


class TestReplacement:
    def test_big_replacement_prefers_empty(self, bset):
        bset.allocate_big(1, chooser_first)
        way, evicted = bset.allocate_big(2, chooser_first)
        assert evicted == []
        assert way != bset.find_big(1)

    def test_full_set_evicts(self, bset):
        for tag in range(4):
            bset.allocate_big(tag, chooser_first)
        way, evicted = bset.allocate_big(99, chooser_first)
        assert len(evicted) == 1
        assert bset.find_big(99) == way
        assert bset.find_big(evicted[0].tag) is None

    def test_replacement_protects_mru(self, bset):
        for tag in range(4):
            bset.allocate_big(tag, chooser_first)
        bset.touch_mru(True, 0)
        bset.touch_mru(True, 1)
        _, evicted = bset.allocate_big(99, chooser_first)
        assert evicted[0].way not in (0, 1)

    def test_small_eviction_reports_offset(self, bset):
        bset.grow_small()
        bset.grow_small()
        for i in range(16):
            bset.allocate_small(100 + i, i % 8, chooser_first)
        _, evicted = bset.allocate_small(999, 0, chooser_first)
        assert len(evicted) == 1
        assert evicted[0].big is False
        assert 0 <= evicted[0].sub_offset < 8

    def test_eviction_drops_mru_entry(self, bset):
        for tag in range(4):
            bset.allocate_big(tag, chooser_first)
        bset.touch_mru(True, 2)
        bset._evict_big_way(2)
        assert (True, 2) not in bset.mru_ways()


class TestCapacityAccounting:
    def test_resident_bytes(self, bset):
        bset.allocate_big(1, chooser_first)
        bset.grow_small()
        bset.allocate_small(2, 0, chooser_first)
        assert bset.resident_bytes() == 512 + 64

    def test_used_bytes(self, bset):
        way, _ = bset.allocate_big(1, chooser_first)
        bset.big_ways[way].touch(0, is_write=False)
        bset.big_ways[way].touch(1, is_write=False)
        assert bset.used_bytes() == 128

    def test_state_capacity_constant(self, bset):
        """Every legal state commits exactly the set size in data."""
        for _ in range(3):
            x, y = bset.state
            assert x * 512 + y * 64 == 2048
            if bset.state_rank() < 2:
                bset.grow_small()


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("big"), st.integers(0, 30)),
            st.tuples(st.just("small"), st.integers(0, 30)),
            st.tuples(st.just("grow_small"), st.just(0)),
            st.tuples(st.just("grow_big"), st.just(0)),
        ),
        max_size=60,
    )
)
def test_invariants_under_random_operations(ops):
    """Way-list lengths always match the state; no duplicate tags."""
    bset = BiModalSet(allowed_states(2048, 512))
    for op, arg in ops:
        if op == "big":
            bset.allocate_big(arg, chooser_first)
        elif op == "small":
            if bset.y > 0:
                bset.allocate_small(arg, arg % 8, chooser_first)
        elif op == "grow_small" and bset.state_rank() < 2:
            bset.grow_small()
        elif op == "grow_big" and bset.state_rank() > 0:
            bset.grow_big()
        x, y = bset.state
        assert len(bset.big_ways) == x
        assert len(bset.small_ways) == y
        assert x * 512 + y * 64 == 2048
        big_tags = [b.tag for b in bset.big_ways if b is not None]
        assert len(big_tags) == len(set(big_tags))
        small_keys = [
            (b.tag, b.sub_offset) for b in bset.small_ways if b is not None
        ]
        assert len(small_keys) == len(set(small_keys))
        for is_big, way in bset.mru_ways():
            ways = bset.big_ways if is_big else bset.small_ways
            assert way < len(ways)
