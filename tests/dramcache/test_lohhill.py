"""Loh-Hill cache tests."""


from repro.common.config import DRAMCacheGeometry, DRAMGeometry, DRAMTimingConfig
from repro.dram.controller import MemoryController
from repro.dramcache.lohhill import LohHillCache


def make_cache() -> LohHillCache:
    geometry = DRAMCacheGeometry(
        capacity=1 << 20,
        geometry=DRAMGeometry(channels=2, banks_per_channel=8, page_size=2048),
    )
    offchip = MemoryController(
        DRAMGeometry(channels=1, banks_per_channel=16, page_size=2048),
        DRAMTimingConfig.ddr3_1600h(),
    )
    return LohHillCache(geometry, offchip)


class TestOrganization:
    def test_one_set_per_row(self):
        cache = make_cache()
        assert cache.num_sets == (1 << 20) // 2048

    def test_29_way_associativity(self):
        """29 blocks mapping to one set must all be resident."""
        cache = make_cache()
        t = 0
        addresses = [0x1000 + i * cache.num_sets * 64 for i in range(29)]
        for addr in addresses:
            r = cache.access(addr, t)
            t = r.complete + 10
        for addr in addresses:
            r = cache.access(addr, t)
            assert r.hit
            t = r.complete + 10

    def test_30th_block_evicts_lru(self):
        cache = make_cache()
        t = 0
        addresses = [0x1000 + i * cache.num_sets * 64 for i in range(30)]
        for addr in addresses:
            r = cache.access(addr, t)
            t = r.complete + 10
        assert not cache.resident(addresses[0])
        assert cache.resident(addresses[1])


class TestTiming:
    def test_hit_needs_tags_then_data(self):
        """Compound access: tag read + compare + data column on the open
        row — strictly slower than a single-access scheme's hit."""
        cache = make_cache()
        cache.access(0x4000, 0)
        r = cache.access(0x4000, 100_000)
        t = cache.geometry.timing
        minimum = t.trcd + t.cl + 2 * t.burst_cycles + 1 + t.cl + t.burst_cycles
        assert r.latency >= minimum - t.trcd  # row may be closed or open

    def test_miss_serializes_tag_check_before_fetch(self):
        cache = make_cache()
        r = cache.access(0x4000, 0)
        t = cache.geometry.timing
        # must include stacked tag read before any off-chip latency
        assert r.latency > t.trcd + t.cl + 2 * t.burst_cycles

    def test_write_hit_completes_at_tag_check(self):
        cache = make_cache()
        cache.access(0x4000, 0)
        read = cache.access(0x4000, 100_000)
        write = cache.access(0x4000, 200_000, is_write=True)
        assert write.latency < read.latency


class TestWriteback:
    def test_dirty_eviction(self):
        cache = make_cache()
        t = 0
        cache.access(0x1000, t, is_write=True)
        for i in range(1, 30):
            r = cache.access(0x1000 + i * cache.num_sets * 64, t)
            t = r.complete + 10
        cache.flush_posted()
        assert cache.offchip_writeback_bytes == 64

    def test_no_wasted_bandwidth(self):
        cache = make_cache()
        t = 0
        for i in range(100):
            r = cache.access(i * 64, t)
            t = r.complete + 10
        assert cache.offchip_wasted_bytes == 0
