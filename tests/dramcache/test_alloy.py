"""AlloyCache tests."""

import pytest

from repro.common.config import DRAMCacheGeometry, DRAMGeometry, DRAMTimingConfig
from repro.dram.controller import MemoryController
from repro.dramcache.alloy import AlloyCache, MAPPredictor


def make_cache(**kw) -> AlloyCache:
    geometry = DRAMCacheGeometry(
        capacity=1 << 20,
        geometry=DRAMGeometry(channels=2, banks_per_channel=8, page_size=2048),
    )
    offchip = MemoryController(
        DRAMGeometry(channels=1, banks_per_channel=16, page_size=2048),
        DRAMTimingConfig.ddr3_1600h(),
    )
    return AlloyCache(geometry, offchip, **kw)


class TestMAPPredictor:
    def test_cold_predicts_miss(self):
        assert MAPPredictor().predict_miss(0x1234)

    def test_hits_train_toward_hit(self):
        p = MAPPredictor()
        for _ in range(4):
            p.update(0x1234, was_miss=False)
        assert not p.predict_miss(0x1234)

    def test_accuracy(self):
        p = MAPPredictor()
        p.update(0x1234, was_miss=True)  # predicted miss -> correct
        assert p.accuracy == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MAPPredictor(0)


class TestAlloyCache:
    def test_direct_mapped_miss_then_hit(self):
        cache = make_cache()
        assert not cache.access(0x4000, 0).hit
        assert cache.access(0x4000, 1000).hit

    def test_64b_blocks_no_spatial_prefetch(self):
        cache = make_cache()
        cache.access(0x4000, 0)
        assert not cache.access(0x4040, 1000).hit

    def test_direct_mapped_conflict(self):
        cache = make_cache()
        conflict = 0x4000 + cache.num_slots * 64
        cache.access(0x4000, 0)
        cache.access(conflict, 1000)
        assert not cache.access(0x4000, 2000).hit

    def test_no_wasted_offchip_bandwidth(self):
        """Alloy fetches exactly the 64 B it uses (Table I)."""
        cache = make_cache()
        t = 0
        for i in range(50):
            r = cache.access(0x4000 + i * 64, t)
            t = r.complete + 10
        assert cache.offchip_wasted_bytes == 0

    def test_predicted_miss_overlaps_fetch(self):
        slow = make_cache(use_map_predictor=False)
        fast = make_cache()  # cold MAP predicts miss -> parallel fetch
        lat_serial = slow.access(0x4000, 0).latency
        lat_parallel = fast.access(0x4000, 0).latency
        assert lat_parallel < lat_serial

    def test_false_miss_prediction_costs_bandwidth(self):
        cache = make_cache()
        cache.access(0x4000, 0)
        before = cache.offchip_fetched_bytes
        # cold counters still predict miss for this region on the next
        # access -> a useless parallel fetch is launched on the hit
        cache.access(0x4000, 1000)
        assert cache.offchip_fetched_bytes >= before

    def test_write_allocate(self):
        cache = make_cache()
        cache.access(0x4000, 0, is_write=True)
        assert cache.resident(0x4000)
        assert cache.access(0x4000, 1000).hit

    def test_dirty_eviction_writes_back(self):
        cache = make_cache()
        conflict = 0x4000 + cache.num_slots * 64
        cache.access(0x4000, 0, is_write=True)
        r = cache.access(conflict, 1000)
        cache.flush_posted()
        assert cache.offchip_writeback_bytes == 64

    def test_tads_per_row_capacity(self):
        cache = make_cache()
        rows = (1 << 20) // 2048
        assert cache.num_slots == rows * 28

    def test_hit_latency_single_access(self):
        """A hit is one DRAM access with a slightly larger burst."""
        cache = make_cache(use_map_predictor=False)
        cache.access(0x4000, 0)
        r = cache.access(0x4000, 100_000)
        t = cache.geometry.timing
        uncontended = t.trcd + t.cl + 5 + 1
        assert r.latency <= uncontended + t.trp  # at worst a row conflict
