"""Legacy setup shim for offline editable installs (`pip install -e .`)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Bi-Modal DRAM Cache: Improving Hit Rate, "
        "Hit Latency and Bandwidth' (MICRO 2014)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
