#!/usr/bin/env python3
"""End-to-end run through the complete memory hierarchy.

Unlike the trace-driven experiments (which drive the DRAM cache with
post-LLSC streams, as the paper's trace simulator does), this example
wires the whole system the way the paper's GEM5 timing runs do: per-core
streams -> private L1s -> shared LLSC (with MSHR merging) -> DRAM cache
-> off-chip DRAM, and reports the filtering each level performs.

Usage:
    python examples/full_hierarchy.py [mix-name] [scheme]
"""

import sys

from repro.harness import ExperimentSetup, build_cache, print_table
from repro.harness.system import System
from repro.workloads.mixes import get_mix


def main() -> None:
    mix_name = sys.argv[1] if len(sys.argv) > 1 else "Q1"
    scheme = sys.argv[2] if len(sys.argv) > 2 else "bimodal"
    setup = ExperimentSetup(num_cores=4, accesses_per_core=10_000, seed=1)
    config = setup.system
    mix = get_mix(mix_name).scaled(setup.footprint_scale)

    system = System(config, build_cache(scheme, config, scale=setup.scale))
    stats = system.run(mix, accesses_per_core=setup.accesses_per_core)

    raw = setup.accesses_per_core * setup.num_cores
    dram_accesses = stats.dram_cache_stats["accesses"]
    print_table(
        [
            {
                "level": "cores (raw accesses)",
                "events": raw,
                "note": f"{setup.num_cores} cores x {setup.accesses_per_core}",
            },
            {
                "level": "L1 (32KB private)",
                "events": raw,
                "note": f"hit rate {stats.l1_hit_rate:.2f}",
            },
            {
                "level": "LLSC (shared L2)",
                "events": raw,
                "note": f"hit rate {stats.llsc_hit_rate:.2f}, "
                f"{stats.llsc_miss_count} misses, "
                f"{stats.mshr_merges} MSHR merges",
            },
            {
                "level": f"DRAM cache ({scheme})",
                "events": dram_accesses,
                "note": f"hit rate {stats.dram_cache_stats['hit_rate']:.2f}, "
                f"avg {stats.dram_cache_stats['avg_read_latency']:.0f} cyc",
            },
            {
                "level": "off-chip DRAM",
                "events": stats.dram_cache_stats["offchip_fetched_bytes"] // 64,
                "note": "64B bursts fetched",
            },
        ],
        title=f"Hierarchy filtering, mix {mix_name} ({scheme})",
    )
    print("\nper-core cycles:", [f"{c / 1e6:.2f}M" for c in stats.per_core_cycles])


if __name__ == "__main__":
    main()
