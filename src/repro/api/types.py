"""Wire types of the ``repro.api`` facade: the service's stable surface.

Every request/response exchanged between clients, the CLI and the
``repro serve`` daemon is one of the frozen, slotted dataclasses below.
They are deliberately dumb records:

* **frozen + slots** — a request cannot be mutated after validation, so
  a value the facade accepted is the value the engine runs;
* **schema-versioned** — every instance carries ``schema``
  (:data:`API_SCHEMA`); decoders reject other versions instead of
  guessing (see :mod:`repro.api.wire`);
* **constructed only via the facade** — :mod:`repro.api.facade` is the
  single place validation and defaulting happen, enforced by the
  ``api-stability`` simlint rule (``docs/static-analysis.md``).

Field values are restricted to JSON scalars, tuples and flat dicts so
instances round-trip bit-identically through the newline-delimited JSON
protocol (``docs/service.md``). Sequence-valued stats follow the
repo-wide convention of tuples, never lists (see
``repro.harness.checkpoint``); the wire codec revives them on decode.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "API_SCHEMA",
    "API_SCHEMA_MIN",
    "ApiError",
    "DseRequest",
    "DseResult",
    "GridRequest",
    "GridResult",
    "HealthResult",
    "ProgressEvent",
    "SimRequest",
    "SimResult",
    "StatsResult",
]

#: Version of the request/response schema. Bump on any change to the
#: dataclasses below; decoders reject versions outside
#: [:data:`API_SCHEMA_MIN`, :data:`API_SCHEMA`].
#:
#: v2 (additive over v1): ``deadline_s`` on SimRequest/GridRequest,
#: the ``HealthResult`` type and the ``health`` protocol verb.
#:
#: v3 (additive over v2): the ``DseRequest``/``DseResult`` types and
#: the ``dse`` protocol verb (MRC-guided design-space exploration).
API_SCHEMA = 3

#: Oldest wire schema this build still decodes. Every field added
#: since it has a default, so a v1 payload decodes into the current
#: dataclass with the new fields defaulted (skew-tolerant decode —
#: old clients keep working against a new server and vice versa).
API_SCHEMA_MIN = 1


@dataclass(frozen=True, slots=True)
class SimRequest:
    """One trace-driven simulation: scheme x mix under a configuration.

    Mirrors :class:`~repro.harness.runner.ExperimentSetup` plus the
    drive parameters of ``run_scheme_on_mix``; the facade validates
    every field against the same catalogs the CLI uses.
    ``deadline_s`` (0 = none) is a wall-clock budget enforced by the
    server/facade; past it the request fails with the typed
    ``deadline_exceeded`` error instead of running open-endedly.
    """

    scheme: str
    mix: str
    cores: int = 4
    accesses_per_core: int = 20_000
    seed: int = 1
    scale: int = 16
    backend: str = "scalar"
    window: int = 16
    warmup_fraction: float = 0.5
    deadline_s: float = 0.0
    schema: int = API_SCHEMA


@dataclass(frozen=True, slots=True)
class GridRequest:
    """One experiment grid (a figure/table id), optionally restricted.

    ``mixes=()`` means the experiment's full mix set; ``cores=0`` means
    the experiment's default core count; ``jobs=0`` means one worker
    per CPU (same convention as ``REPRO_JOBS=auto``). ``deadline_s``
    (0 = none) is a wall-clock budget checked at grid-cell boundaries;
    a grid that blows it fails with ``deadline_exceeded`` — cells
    already checkpointed stay durable, so a resubmit resumes.
    """

    experiment: str
    mixes: tuple[str, ...] = ()
    cores: int = 0
    accesses_per_core: int = 20_000
    seed: int = 1
    scale: int = 16
    backend: str = "scalar"
    jobs: int = 1
    deadline_s: float = 0.0
    schema: int = API_SCHEMA


@dataclass(frozen=True, slots=True)
class DseRequest:
    """One design-space exploration (``repro dse``; docs/dse.md).

    The driver estimates every point of the default design space with
    one MRC ghost pass per mix, then spends timing simulations only on
    the estimated Pareto frontier. ``sample_rate`` (0 < r <= 1) is the
    deterministic trace-sampling rate of the ghost pass;
    ``max_frontier`` caps how many points graduate to timing
    simulation. ``mixes=()`` means the core count's full mix set.
    Other fields mirror :class:`GridRequest`.
    """

    mixes: tuple[str, ...] = ()
    cores: int = 4
    accesses_per_core: int = 20_000
    seed: int = 1
    scale: int = 16
    backend: str = "scalar"
    jobs: int = 1
    sample_rate: float = 1.0
    max_frontier: int = 8
    deadline_s: float = 0.0
    schema: int = API_SCHEMA


@dataclass(frozen=True, slots=True)
class DseResult:
    """Completed exploration: ranked rows, the winner, cost accounting.

    ``rows`` has one flat dict per design point (estimate, frontier
    membership, simulated fraction, measured hit rate when simulated);
    ``winner`` is the fully-simulated row with the best measured hit
    rate (empty when every simulation cell failed). ``stats`` carries
    the cost accounting, including ``speedup`` (exhaustive full-sim
    count over full-sim equivalents spent) and ``full_sims_avoided``.
    """

    status: str
    rows: tuple
    winner: dict
    stats: dict
    failures: tuple = ()
    resumed_cells: int = 0
    wall_s: float = 0.0
    schema: int = API_SCHEMA


@dataclass(frozen=True, slots=True)
class ProgressEvent:
    """One progress notification streamed while a request runs.

    ``stage`` is one of ``queued`` / ``started`` / ``cell`` /
    ``attached`` / ``recovered``; ``completed``/``total`` count grid
    cells when known (0/0 otherwise).
    """

    stage: str
    request_id: str = ""
    completed: int = 0
    total: int = 0
    detail: str = ""
    schema: int = API_SCHEMA


@dataclass(frozen=True, slots=True)
class SimResult:
    """Final stats of one simulation (the drive's stats snapshot).

    ``stats`` holds the flat stats-protocol keys
    (``docs/observability.md``); ``wall_s`` is server/facade wall time
    and is excluded from byte-identity comparisons.
    """

    scheme: str
    mix: str
    cores: int
    seed: int
    backend: str
    records: int
    end_time: int
    stats: dict
    wall_s: float = 0.0
    schema: int = API_SCHEMA


@dataclass(frozen=True, slots=True)
class GridResult:
    """Completed experiment grid: its rows plus the failure record.

    ``status`` is ``ok`` or ``partial`` (some cells permanently failed;
    the CLI maps ``partial`` to exit code 3). ``resumed_cells`` counts
    cells served from a checkpoint instead of recomputed.
    """

    experiment: str
    status: str
    rows: tuple
    failures: tuple = ()
    resumed_cells: int = 0
    wall_s: float = 0.0
    schema: int = API_SCHEMA


@dataclass(frozen=True, slots=True)
class StatsResult:
    """Live telemetry: the metrics registry plus service counters.

    ``metrics`` is ``MetricsRegistry.snapshot()`` of the serving
    process, ``trace_cache`` the materialization-cache hit/miss
    counters, ``server`` the daemon's own bookkeeping (queue depths,
    jobs done, recoveries) — empty when queried outside ``repro serve``.
    """

    metrics: dict
    trace_cache: dict
    server: dict
    schema: int = API_SCHEMA


@dataclass(frozen=True, slots=True)
class HealthResult:
    """Liveness/readiness snapshot (the ``health`` protocol verb).

    ``state`` is the daemon's lifecycle phase — ``starting`` (bound,
    still re-queueing crash-recovery work), ``serving`` (accepting
    requests) or ``draining`` (shutdown requested: no new work
    admitted, in-flight work finishing or checkpointing). ``queued``/
    ``inflight`` are live queue depths, ``connections`` the number of
    client connections accepted so far.
    """

    state: str
    queued: int = 0
    inflight: int = 0
    connections: int = 0
    detail: str = ""
    schema: int = API_SCHEMA


@dataclass(frozen=True, slots=True)
class ApiError:
    """Typed error envelope; ``code`` is machine-readable.

    Codes: ``bad-request`` (validation), ``bad-schema`` (version or
    malformed wire payload), ``overloaded`` (admission control),
    ``deadline_exceeded`` (the request's ``deadline_s`` elapsed),
    ``draining`` (server is shutting down; resubmit after restart),
    ``internal`` (unexpected server-side failure).
    """

    code: str
    message: str
    schema: int = API_SCHEMA
