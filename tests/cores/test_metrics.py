"""ANTT / weighted speedup metric tests."""

import pytest
from hypothesis import given, strategies as st

from repro.cores.metrics import antt, improvement_percent, weighted_speedup


class TestANTT:
    def test_no_slowdown_gives_one(self):
        assert antt([100, 200], [100, 200]) == pytest.approx(1.0)

    def test_uniform_slowdown(self):
        assert antt([200, 400], [100, 200]) == pytest.approx(2.0)

    def test_mean_of_ratios(self):
        # ratios 2.0 and 1.0 -> 1.5 (not total-cycles ratio)
        assert antt([200, 200], [100, 200]) == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            antt([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            antt([], [])
        with pytest.raises(ValueError):
            antt([1.0], [0.0])

    @given(
        st.lists(st.floats(1.0, 1e6), min_size=1, max_size=8),
        st.floats(1.0, 4.0),
    )
    def test_scaling_property(self, standalone, factor):
        """Scaling all multiprogrammed cycles scales ANTT linearly."""
        mp = [s * factor for s in standalone]
        assert antt(mp, standalone) == pytest.approx(factor)


class TestWeightedSpeedup:
    def test_equal_runs(self):
        assert weighted_speedup([100, 100], [100, 100]) == pytest.approx(2.0)

    def test_slowdown_reduces(self):
        assert weighted_speedup([200, 200], [100, 100]) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            weighted_speedup([], [])


class TestImprovement:
    def test_reduction_is_positive(self):
        assert improvement_percent(2.0, 1.8) == pytest.approx(10.0)

    def test_regression_is_negative(self):
        assert improvement_percent(1.0, 1.1) == pytest.approx(-10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            improvement_percent(0.0, 1.0)
