"""Persist and replay generated workload traces.

Generated traces are deterministic, but regenerating a long mix costs
real time (the LLSC filter runs per record). For repeated studies over
one workload, record the merged stream once and replay it:

    from repro.workloads.tracefile import save_trace, load_trace, replay

    save_trace(setup.trace("Q7"), "q7.npz")
    records = replay(load_trace("q7.npz"))
    drive_cache(cache, records, streams=4)

The format is a compressed ``.npz`` with parallel arrays plus a JSON
metadata blob (mix name, seeds, scales, record count) so files are
self-describing and verifiable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Iterator

import numpy as np

from repro.workloads.trace import MultiProgramTrace

__all__ = ["SavedTrace", "save_trace", "load_trace", "replay"]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class SavedTrace:
    """An in-memory recorded trace."""

    cores: np.ndarray  # uint8
    addresses: np.ndarray  # uint64
    is_write: np.ndarray  # bool
    icount: np.ndarray  # uint32
    metadata: dict

    def __len__(self) -> int:
        return len(self.addresses)


def save_trace(
    trace: MultiProgramTrace,
    path: str | Path,
    *,
    limit: int | None = None,
) -> Path:
    """Materialize a merged multiprogram trace to ``path`` (.npz)."""
    cores: list[int] = []
    addresses: list[int] = []
    writes: list[bool] = []
    icounts: list[int] = []
    for record in trace:
        cores.append(record.core)
        addresses.append(record.address)
        writes.append(record.is_write)
        icounts.append(record.icount)
        if limit is not None and len(addresses) >= limit:
            break
    metadata = {
        "format_version": _FORMAT_VERSION,
        "mix": trace.mix.name,
        "num_cores": trace.mix.num_cores,
        "accesses_per_core": trace.accesses_per_core,
        "records": len(addresses),
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        cores=np.asarray(cores, dtype=np.uint8),
        addresses=np.asarray(addresses, dtype=np.uint64),
        is_write=np.asarray(writes, dtype=bool),
        icount=np.asarray(icounts, dtype=np.uint32),
        metadata=np.frombuffer(
            json.dumps(metadata).encode("utf-8"), dtype=np.uint8
        ),
    )
    return path


def load_trace(path: str | Path) -> SavedTrace:
    """Load a trace recorded with :func:`save_trace`."""
    with np.load(Path(path)) as data:
        metadata = json.loads(bytes(data["metadata"].tobytes()).decode("utf-8"))
        if metadata.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format {metadata.get('format_version')!r}"
            )
        saved = SavedTrace(
            cores=data["cores"].copy(),
            addresses=data["addresses"].copy(),
            is_write=data["is_write"].copy(),
            icount=data["icount"].copy(),
            metadata=metadata,
        )
    if len(saved.addresses) != saved.metadata["records"]:
        raise ValueError("trace file is corrupt: record count mismatch")
    return saved


def replay(saved: SavedTrace) -> Iterator[tuple[int, bool, int]]:
    """Yield (address, is_write, icount) records for drive_cache()."""
    return zip(
        saved.addresses.tolist(),
        saved.is_write.tolist(),
        saved.icount.tolist(),
    )
