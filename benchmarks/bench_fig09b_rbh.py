"""Figure 9(b): metadata row-buffer hit rate — separate vs co-located.

Paper: dedicating a bank to densely packed metadata improves the
metadata RBH by 37% on average over co-locating tags with data, which is
what makes DRAM tag reads cheap on way locator misses.
"""

from repro.harness.experiments import fig9b_metadata_rbh

RBH_MIXES = ["Q2", "Q5", "Q17", "Q20"]


def test_fig9b_metadata_rbh(benchmark, report, quad_setup):
    rows = benchmark.pedantic(
        lambda: fig9b_metadata_rbh(setup=quad_setup, mix_names=RBH_MIXES),
        rounds=1,
        iterations=1,
    )
    report(rows, title="Figure 9b: metadata RBH, separate vs co-located")
    mean = rows[-1]
    assert mean["mix"] == "mean"
    # The dedicated metadata bank beats co-location on the tag reads the
    # deployed design issues (locator misses) for the dense/moderate
    # mixes where those reads are scattered across sets. Absolute RBH is
    # pessimistic in the in-order service model, and very miss-heavy
    # sparse streams can invert locally — the mean relative advantage is
    # the reproduced claim (paper: +37%). See EXPERIMENTS.md D5.
    assert mean["gain_pct"] > 10.0
    positives = sum(1 for r in rows[:-1] if r["gain_pct"] > 0)
    assert positives >= len(rows[:-1]) - 1
