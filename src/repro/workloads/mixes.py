"""Named multiprogrammed workload mixes (analogue of the paper's Table V).

The paper evaluates 23 quad-core mixes (Q1..Q23), 16 eight-core mixes
(E1..E16) and ten 16-core mixes (S1..S10) built from SPEC 2000/2006
programs, combined to span high, moderate and low memory intensity; mixes
with LLSC miss rate >= 10% are marked '*'.

We reproduce the same *structure* with the synthetic program library:
each mix names one profile per core. The Q mixes are hand-assigned so
that the population spans the paper's observed behaviours:

* Q2, Q4, Q5 — >90% fully-utilized blocks (Figure 2's dense end);
* Q7, Q8, Q19, Q23 — <30% fully-utilized blocks (sparse end);
* Q17 — almost no small-block accesses after adaptation (Figure 10: 1%);
* Q23 — small-block-heavy (Figure 10: 48%).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.profile import PROGRAM_LIBRARY, ProgramProfile, program

__all__ = [
    "WorkloadMix",
    "QUAD_CORE_MIXES",
    "EIGHT_CORE_MIXES",
    "SIXTEEN_CORE_MIXES",
    "get_mix",
    "mixes_for_cores",
]


@dataclass(frozen=True)
class WorkloadMix:
    """One multiprogrammed workload: one program profile per core."""

    name: str
    programs: tuple[ProgramProfile, ...]

    def __post_init__(self) -> None:
        if not self.programs:
            raise ValueError("a mix needs at least one program")

    @property
    def num_cores(self) -> int:
        return len(self.programs)

    @property
    def is_memory_intensive(self) -> bool:
        """'*' marking: at least half the programs are memory-intensive."""
        intensive = sum(1 for p in self.programs if p.is_memory_intensive)
        return intensive * 2 >= len(self.programs)

    def scaled(self, factor: float) -> "WorkloadMix":
        """Scale every program's footprint (capacity-scaled experiments)."""
        return WorkloadMix(
            name=self.name,
            programs=tuple(p.scaled(factor) for p in self.programs),
        )

    def with_intensity_scale(self, factor: float) -> "WorkloadMix":
        """Scale every program's memory intensity.

        Larger systems are run at a reduced per-core offered load so the
        per-channel utilization stays at the operating point the paper's
        (lower-MPKI) workloads produced — see docs/workloads.md.
        """
        if factor == 1.0:
            return self
        return WorkloadMix(
            name=self.name,
            programs=tuple(p.with_intensity(factor) for p in self.programs),
        )

    def mean_expected_utilization(self) -> float:
        return sum(p.expected_utilization() for p in self.programs) / len(
            self.programs
        )


def _mix(name: str, *prog_names: str) -> WorkloadMix:
    """Build a mix, salting repeated programs so their streams differ."""
    seen: dict[str, int] = {}
    programs = []
    for pname in prog_names:
        salt = seen.get(pname, 0)
        seen[pname] = salt + 1
        programs.append(program(pname).with_salt(salt))
    return WorkloadMix(name=name, programs=tuple(programs))


# ----------------------------------------------------------------------
# Quad-core mixes Q1..Q23
# ----------------------------------------------------------------------
QUAD_CORE_MIXES: dict[str, WorkloadMix] = {
    m.name: m
    for m in [
        _mix("Q1", "moderate", "bimodal_mix", "dense_reuse", "quiet"),
        _mix("Q2", "stream_hi", "dense_reuse", "dense_write", "scan_cold"),
        _mix("Q3", "dense_reuse", "moderate", "compact_reuse", "bimodal_mix"),
        _mix("Q4", "stream_hi", "scan_cold", "dense_write", "dense_reuse"),
        _mix("Q5", "stream_hi", "stream_hi", "dense_reuse", "dense_write"),
        _mix("Q6", "moderate", "moderate", "compact_reuse", "dense_reuse"),
        _mix("Q7", "sparse_ptr", "sparse_rand", "sparse_hot", "irregular_sci"),
        _mix("Q8", "sparse_ptr", "sparse_ptr", "sparse_rand", "bimodal_mix"),
        _mix("Q9", "bimodal_mix", "sparse_rand", "dense_reuse", "moderate"),
        _mix("Q10", "scan_cold", "moderate", "quiet", "compact_reuse"),
        _mix("Q11", "dense_write", "irregular_sci", "moderate", "quiet"),
        _mix("Q12", "stream_hi", "sparse_ptr", "moderate", "compact_reuse"),
        _mix("Q13", "dense_reuse", "dense_reuse", "bimodal_mix", "sparse_hot"),
        _mix("Q14", "scan_cold", "scan_cold", "quiet", "moderate"),
        _mix("Q15", "irregular_sci", "bimodal_mix", "dense_write", "sparse_rand"),
        _mix("Q16", "compact_reuse", "quiet", "moderate", "dense_reuse"),
        _mix("Q17", "dense_reuse", "compact_reuse", "dense_write", "stream_hi"),
        _mix("Q18", "moderate", "sparse_hot", "dense_reuse", "scan_cold"),
        _mix("Q19", "sparse_rand", "sparse_hot", "irregular_sci", "sparse_ptr"),
        _mix("Q20", "bimodal_mix", "bimodal_mix", "moderate", "irregular_sci"),
        _mix("Q21", "stream_hi", "dense_write", "sparse_rand", "quiet"),
        _mix("Q22", "dense_reuse", "scan_cold", "irregular_sci", "compact_reuse"),
        _mix("Q23", "sparse_ptr", "sparse_hot", "sparse_rand", "sparse_ptr"),
    ]
}

# ----------------------------------------------------------------------
# Eight-core mixes E1..E16: pairs of quad-core mixes (paper composes its
# larger workloads from the same program population).
# ----------------------------------------------------------------------
_E_PAIRS = [
    ("Q1", "Q2"), ("Q3", "Q7"), ("Q4", "Q9"), ("Q5", "Q6"),
    ("Q7", "Q8"), ("Q2", "Q19"), ("Q10", "Q13"), ("Q7", "Q23"),
    ("Q11", "Q17"), ("Q12", "Q18"), ("Q14", "Q15"), ("Q19", "Q23"),
    ("Q16", "Q20"), ("Q21", "Q22"), ("Q8", "Q23"), ("Q5", "Q23"),
]


def _compose(name: str, part_names: tuple[str, ...]) -> WorkloadMix:
    prog_names: list[str] = []
    for part in part_names:
        prog_names.extend(p.name for p in QUAD_CORE_MIXES[part].programs)
    return _mix(name, *prog_names)


EIGHT_CORE_MIXES: dict[str, WorkloadMix] = {
    f"E{i + 1}": _compose(f"E{i + 1}", pair) for i, pair in enumerate(_E_PAIRS)
}

_S_QUADS = [
    ("Q1", "Q2", "Q3", "Q4"), ("Q5", "Q6", "Q7", "Q8"),
    ("Q9", "Q10", "Q11", "Q12"), ("Q13", "Q14", "Q15", "Q16"),
    ("Q17", "Q18", "Q19", "Q20"), ("Q21", "Q22", "Q23", "Q1"),
    ("Q2", "Q7", "Q19", "Q23"), ("Q4", "Q5", "Q17", "Q2"),
    ("Q7", "Q8", "Q23", "Q19"), ("Q3", "Q9", "Q15", "Q20"),
]

SIXTEEN_CORE_MIXES: dict[str, WorkloadMix] = {
    f"S{i + 1}": _compose(f"S{i + 1}", quad) for i, quad in enumerate(_S_QUADS)
}


def get_mix(name: str) -> WorkloadMix:
    """Look up any mix by name (Q*, E*, S*)."""
    for table in (QUAD_CORE_MIXES, EIGHT_CORE_MIXES, SIXTEEN_CORE_MIXES):
        if name in table:
            return table[name]
    raise ValueError(f"unknown mix {name!r}")


def mixes_for_cores(num_cores: int) -> dict[str, WorkloadMix]:
    """All mixes for a core count (4 -> Q*, 8 -> E*, 16 -> S*)."""
    tables = {4: QUAD_CORE_MIXES, 8: EIGHT_CORE_MIXES, 16: SIXTEEN_CORE_MIXES}
    if num_cores not in tables:
        raise ValueError("num_cores must be 4, 8 or 16")
    return dict(tables[num_cores])


assert set(PROGRAM_LIBRARY), "program library must not be empty"
