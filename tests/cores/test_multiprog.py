"""Multiprogrammed runner tests."""

import pytest

from repro.common.config import DRAMCacheGeometry, DRAMGeometry, DRAMTimingConfig
from repro.cores.multiprog import MultiProgramRunner
from repro.dram.controller import MemoryController
from repro.dramcache.alloy import AlloyCache
from repro.workloads.mixes import get_mix


def alloy_factory():
    geometry = DRAMCacheGeometry(
        capacity=1 << 20,
        geometry=DRAMGeometry(channels=2, banks_per_channel=8, page_size=2048),
    )
    offchip = MemoryController(
        DRAMGeometry(channels=1, banks_per_channel=16, page_size=2048),
        DRAMTimingConfig.ddr3_1600h(),
    )
    return AlloyCache(geometry, offchip)


@pytest.fixture
def runner():
    return MultiProgramRunner(
        get_mix("Q1"),
        alloy_factory,
        accesses_per_core=1500,
        seed=5,
        footprint_scale=128,
    )


class TestRuns:
    def test_multiprogrammed_run_covers_all_cores(self, runner):
        result = runner.run_multiprogrammed()
        assert len(result.per_core_cycles) == 4
        assert all(c > 0 for c in result.per_core_cycles)
        assert result.total_instructions > 0

    def test_standalone_run_single_core(self, runner):
        result = runner.run_standalone(2)
        assert len(result.per_core_cycles) == 1

    def test_standalone_faster_than_shared(self, runner):
        """Contention must slow programs down relative to standalone."""
        mp = runner.run_multiprogrammed()
        for i in range(4):
            sp = runner.run_standalone(i).per_core_cycles[0]
            assert mp.per_core_cycles[i] >= sp * 0.98  # allow tiny noise

    def test_antt_at_least_one(self, runner):
        antt_value, _ = runner.run_antt()
        assert antt_value >= 0.99

    def test_deterministic(self):
        def run():
            r = MultiProgramRunner(
                get_mix("Q1"),
                alloy_factory,
                accesses_per_core=800,
                seed=9,
                footprint_scale=128,
            )
            return r.run_multiprogrammed().per_core_cycles

        assert run() == run()

    def test_fresh_cache_per_run(self, runner):
        a = runner.run_multiprogrammed()
        b = runner.run_multiprogrammed()
        assert a.per_core_cycles == b.per_core_cycles
        assert a.cache is not b.cache
