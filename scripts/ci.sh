#!/usr/bin/env bash
# Tier-1 CI: full test suite + an end-to-end fault-tolerance smoke run.
#
# The smoke run exercises the robustness contract (docs/robustness.md)
# against the real CLI: a grid with one injected permanently-failing
# cell must still export the completed rows, record the failure in the
# manifest, exit with code 3 — and a subsequent --resume from its
# checkpoint (without the fault) must finish only the missing cell and
# produce a CSV byte-identical to an uninterrupted run.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="${PWD}/src${PYTHONPATH:+:${PYTHONPATH}}"

echo "== static analysis (simlint, cold cache) =="
# The tree itself must be clean: ignore the baseline so tolerated debt
# cannot mask a regression sneaking in under an existing fingerprint.
# Run once cold (scratch cache dir) and once warm: the warm replay must
# agree and be >= 5x faster — same gate the ci.yml lint job enforces.
LINT_CACHE="$(mktemp -d)/simlint-cache"
LINT_LOG="$(mktemp -d)"
python -m repro lint --no-baseline --cache-dir "${LINT_CACHE}" \
    2> "${LINT_LOG}/cold.log"
cat "${LINT_LOG}/cold.log"

echo "== static analysis (simlint, warm cache) =="
python -m repro lint --no-baseline --cache-dir "${LINT_CACHE}" \
    2> "${LINT_LOG}/warm.log"
cat "${LINT_LOG}/warm.log"
python - "${LINT_LOG}/cold.log" "${LINT_LOG}/warm.log" <<'EOF'
import re, sys
def wall(path):
    return float(re.search(r"wall_s=([0-9.]+)", open(path).read()).group(1))
cold, warm = wall(sys.argv[1]), wall(sys.argv[2])
assert cold >= 5 * max(warm, 1e-9), (
    f"warm {warm:.3f}s not 5x faster than cold {cold:.3f}s")
print(f"[perfbench] simlint.speedup cold_s={cold:.3f} warm_s={warm:.3f} "
      f"ratio={cold / max(warm, 1e-9):.1f}x")
EOF

echo "== static analysis (simlint, SARIF gate) =="
# --format sarif output must validate against the SARIF 2.1.0 subset
# checked by scripts/sarif_check.py (the same file CI uploads).
python -m repro lint --no-baseline --cache-dir "${LINT_CACHE}" \
    --format sarif > "${LINT_LOG}/simlint.sarif" 2>/dev/null
python scripts/sarif_check.py "${LINT_LOG}/simlint.sarif"
rm -rf "$(dirname "${LINT_CACHE}")" "${LINT_LOG}"

# ruff is not part of the offline container image; run it when the
# environment provides it (the CI lint job installs it explicitly).
if command -v ruff >/dev/null 2>&1; then
    echo "== static analysis (ruff) =="
    ruff check src tests
else
    echo "== static analysis (ruff) == skipped: ruff not on PATH"
fi

echo "== tier-1 test suite =="
python -m pytest -x -q

echo "== fault-tolerance smoke =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "${SMOKE_DIR}"' EXIT
export REPRO_TRACE_CACHE_DIR="${SMOKE_DIR}/traces"
RUN=(python -m repro run fig10 --mixes Q1 Q2 --accesses 1500)

# Uninterrupted baseline.
"${RUN[@]}" --export "${SMOKE_DIR}/base.csv" >/dev/null

# Same grid with cell 1 failing permanently: exit 3, partial export.
set +e
REPRO_FAULT_INJECT='{"1": {"action": "raise"}}' \
    "${RUN[@]}" --export "${SMOKE_DIR}/part.csv" >/dev/null 2>"${SMOKE_DIR}/part.err"
status=$?
set -e
[ "${status}" -eq 3 ] || { echo "expected exit 3, got ${status}"; exit 1; }
grep -q "Q1" "${SMOKE_DIR}/part.csv" || { echo "partial export lost Q1 row"; exit 1; }
! grep -q "Q2" "${SMOKE_DIR}/part.csv" || { echo "failed cell leaked a row"; exit 1; }
grep -q '"status": "partial"' "${SMOKE_DIR}/part.csv.manifest.json" \
    || { echo "manifest missing partial status"; exit 1; }
grep -q '"InjectedFault"' "${SMOKE_DIR}/part.csv.manifest.json" \
    || { echo "manifest missing failure record"; exit 1; }

# Resume from the partial run's checkpoint: byte-identical to baseline.
"${RUN[@]}" --export "${SMOKE_DIR}/part.csv" \
    --resume "${SMOKE_DIR}/part.csv.ckpt.jsonl" >/dev/null
cmp "${SMOKE_DIR}/base.csv" "${SMOKE_DIR}/part.csv" \
    || { echo "resumed CSV differs from uninterrupted run"; exit 1; }

echo "== service smoke (repro serve) =="
# Boots the daemon on an ephemeral port, drives one grid through the
# typed client and asserts the export is byte-identical to the CLI
# path, plus warm-state behavior (trace-cache hits, checkpoint resume).
# See docs/service.md.
python scripts/serve_smoke.py

echo "== dse smoke (MRC engine + design-space driver) =="
# Three gates (docs/dse.md): the ghost cache must match the reference
# LRU walk integer-for-integer at sampling rate 1.0, its hit-rate
# estimate must land within 2% absolute of a full timing simulation on
# two mixes, and `repro dse` must spend >= 5x fewer full-simulation
# equivalents than the exhaustive grid.
python scripts/dse_smoke.py

echo "== chaos suite =="
# The chaos-marked tests (disk + wire fault injection, see
# docs/robustness.md) run inside tier-1 above; this pass re-runs them
# under pytest-timeout so a hung drain or reconnect fails fast instead
# of wedging the job. Skipped where the plugin is not installed (the
# offline container) — coverage is unchanged, only the hang cap is.
if python -c "import pytest_timeout" >/dev/null 2>&1; then
    python -m pytest -m chaos -q --timeout=120
else
    echo "pytest-timeout not on PATH; chaos tests already ran in tier-1"
fi

echo "== perf gate =="
# Fast-path throughput vs the last committed BENCH_perf.json entry for
# the same mode/scheme/mix/backend; exits 4 when the measured rate
# drops below 0.7x the committed one. Both drive engines are gated —
# the scalar reference kernel and the vectorized SoA backend — so a
# regression in either is caught. The gate prints the ratio either way
# so every CI log carries the current numbers; gated runs take
# best-of-3 regardless of --repeats.
python -m repro.harness.perfbench --modes fast --repeats 3 \
    --gate BENCH_perf.json
python -m repro.harness.perfbench --schemes bimodal,alloy --mixes Q1 \
    --backends scalar,vectorized --repeats 3 --gate BENCH_perf.json
# The MRC ghost pass is gated too: the dse driver's estimation phase
# must stay fast enough to be worth the pruning it buys.
python -m repro.harness.perfbench --modes mrc --repeats 3 \
    --gate BENCH_perf.json

echo "ci.sh: all checks passed"
