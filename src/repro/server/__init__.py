"""``repro.server``: the ``repro serve`` daemon behind :mod:`repro.api`.

:class:`~repro.server.daemon.ReproServer` is the asyncio service;
:class:`~repro.server.state.ServerConfig` its knobs. Protocol spec and
operational notes live in ``docs/service.md``.
"""

from repro.server.daemon import ReproServer, serve_forever
from repro.server.state import GridStore, ServerConfig, ServerStats, grid_key

__all__ = [
    "GridStore",
    "ReproServer",
    "ServerConfig",
    "ServerStats",
    "grid_key",
    "serve_forever",
]
