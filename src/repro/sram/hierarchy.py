"""SRAM cache hierarchy in front of the DRAM cache.

Per Table IV: private 32 KB L1s per core and a shared last-level SRAM
cache (LLSC — the paper's L2). The hierarchy's job in the reproduction is
to filter raw per-core access streams down to the LLSC-miss stream the
DRAM cache observes, while accounting hit latencies for the core model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import LLSCConfig
from repro.sram.cache import SetAssociativeCache

__all__ = ["FilterOutcome", "CacheHierarchy"]


@dataclass(frozen=True)
class FilterOutcome:
    """Where an access was satisfied inside the SRAM hierarchy."""

    level: str  # 'l1' | 'llsc' | 'miss'
    latency: int  # SRAM cycles spent before the DRAM cache sees it (if it does)
    writeback_address: int | None = None  # dirty LLSC victim headed down


class CacheHierarchy:
    """Private L1 data caches + one shared LLSC."""

    L1_SIZE = 32 * 1024
    L1_ASSOC = 2
    L1_LATENCY = 2

    def __init__(self, num_cores: int, llsc: LLSCConfig, *, seed: int = 0) -> None:
        if num_cores < 1:
            raise ValueError("num_cores must be >= 1")
        self.llsc_config = llsc
        self.l1s = [
            SetAssociativeCache(
                self.L1_SIZE,
                self.L1_ASSOC,
                llsc.block_size,
                policy="lru",
                name=f"l1d{core}",
            )
            for core in range(num_cores)
        ]
        self.llsc = SetAssociativeCache(
            llsc.size,
            llsc.associativity,
            llsc.block_size,
            policy="lru",
            seed=seed,
            name="llsc",
        )

    def access(self, core: int, address: int, *, is_write: bool = False) -> FilterOutcome:
        """Route one access; returns where it hit and the SRAM latency paid.

        Dirty victims evicted from the LLSC surface as
        ``writeback_address`` so the system can push them into the DRAM
        cache (the paper's DRAM cache sits behind a cache-coherent LLSC
        and absorbs its writebacks).
        """
        l1 = self.l1s[core]
        r1 = l1.access(address, is_write=is_write)
        if r1.hit:
            return FilterOutcome(level="l1", latency=self.L1_LATENCY)
        # L1 dirty victims are absorbed by the (inclusive-enough) LLSC: a
        # write access marks the line dirty there.
        if r1.writeback_address is not None:
            self.llsc.access(r1.writeback_address, is_write=True)
        r2 = self.llsc.access(address, is_write=is_write)
        latency = self.L1_LATENCY + self.llsc_config.hit_latency
        if r2.hit:
            return FilterOutcome(level="llsc", latency=latency)
        return FilterOutcome(
            level="miss", latency=latency, writeback_address=r2.writeback_address
        )

    def llsc_miss_rate(self) -> float:
        return self.llsc.accesses.miss_rate

    def reset_stats(self) -> None:
        for l1 in self.l1s:
            l1.reset_stats()
        self.llsc.reset_stats()
