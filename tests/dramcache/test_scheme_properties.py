"""Cross-scheme property tests: every organization honours the contract.

Hypothesis drives random post-LLSC-like access sequences through each
DRAM cache organization and checks the invariants the harness relies
on: determinism, causal completions, consistent accounting, and the
hit-after-fill guarantee.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.harness.runner import ExperimentSetup, build_cache

SCHEMES = [
    "alloy",
    "lohhill",
    "atcache",
    "footprint",
    "fixed512",
    "bimodal",
]


def fresh_cache(scheme):
    setup = ExperimentSetup(num_cores=4)
    return build_cache(scheme, setup.system, scale=setup.scale, adaptation_interval=500)


access_sequences = st.lists(
    st.tuples(
        st.integers(0, 1023),  # region
        st.integers(0, 7),  # sub-block
        st.booleans(),  # write
        st.integers(1, 40),  # gap
    ),
    min_size=5,
    max_size=120,
)


@pytest.mark.parametrize("scheme", SCHEMES)
@settings(max_examples=12, deadline=None)
@given(seq=access_sequences)
def test_contract_invariants(scheme, seq):
    cache = fresh_cache(scheme)
    now = 0
    reads = writes = 0
    for region, sub, is_write, gap in seq:
        now += gap
        address = region * 512 + sub * 64
        result = cache.access(address, now, is_write=is_write)
        # causal completion
        assert result.complete >= now
        assert result.latency >= 0
        if is_write:
            writes += 1
        else:
            reads += 1
        # hit-after-fill: an immediate re-read of the same address hits
        now = result.complete + 5
        again = cache.access(address, now, is_write=False)
        assert again.hit, (scheme, hex(address))
        reads += 1
        now = again.complete + 5
    assert cache.hit_stat.total == reads + writes
    assert cache.read_latency.count == reads
    # off-chip accounting never goes negative / inconsistent
    assert cache.offchip_fetched_bytes >= 0
    assert cache.offchip_wasted_bytes <= cache.offchip_fetched_bytes + 512 * 64


@pytest.mark.parametrize("scheme", SCHEMES)
def test_determinism_per_scheme(scheme):
    def run():
        cache = fresh_cache(scheme)
        now = 0
        latencies = []
        for i in range(400):
            now += 17
            r = cache.access(((i * 977) % 4096) * 64, now, is_write=(i % 5 == 0))
            latencies.append(r.latency)
        return latencies

    assert run() == run()
