"""Rule ``determinism`` — the sim core may not read ambient state.

Checkpoint/resume replay (PR 3) and the golden byte-identity suite
(PR 4) both rely on simulation results being a pure function of the
configuration and the seed. This rule statically bans, outside the
allowlisted observability/harness modules:

* wall-clock reads: ``time.time``/``time_ns``/``strftime`` with an
  implicit "now", ``datetime.now``/``utcnow``/``today``;
* ambient entropy: module-level ``random.*`` functions, zero-argument
  ``random.Random()`` / ``numpy.random.default_rng()``, the legacy
  ``numpy.random`` global-state API, and the builtin ``hash()`` —
  randomized per process for str/bytes (``PYTHONHASHSEED``), so any
  sampling or bucketing decision derived from it (e.g. the MRC ghost
  pass of :mod:`repro.mrc.engine`) would not replay;
* environment-dependent iteration order: looping directly over
  ``os.environ``, an unsorted ``os.listdir``/``os.scandir``/
  ``glob.glob``, or a set expression.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.model import ProjectModel, SourceFile, Violation
from repro.analysis.rules import Rule, register_rule

_WALLCLOCK_TIME_ATTRS = {"time", "time_ns", "localtime", "gmtime", "ctime"}
_WALLCLOCK_DATETIME_ATTRS = {"now", "utcnow", "today"}
# numpy.random members that are seeded-generator constructors, not the
# legacy global-state API.
_NUMPY_RANDOM_OK = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
}
_RANDOM_MODULE_OK = {"Random"}
_UNORDERED_LISTING = {("os", "listdir"), ("os", "scandir"),
                      ("glob", "glob"), ("glob", "iglob")}


def _attr_chain(node: ast.expr) -> list[str] | None:
    """``a.b.c`` -> ["a", "b", "c"]; None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


@register_rule
class DeterminismRule(Rule):
    name = "determinism"
    version = 1
    description = (
        "sim core must not read wall clock, ambient entropy or "
        "environment-ordered iterables"
    )
    rationale = (
        "Checkpoint/resume replay and the golden byte-identity suite "
        "rely on simulation results being a pure function of config + "
        "seed. A wall-clock read, the global unseeded RNG, a "
        "PYTHONHASHSEED-randomized hash(), or set/filesystem iteration "
        "order smuggles ambient state into results that then fail to "
        "replay bit-identically. This rule bans the syntactic forms; "
        "its companion determinism-flow traces where such values "
        "travel."
    )
    example_bad = """\
import time

def sample_latency(events):
    return time.time() - events[-1]
"""
    example_good = """\
def sample_latency(events, now):
    return now - events[-1]
"""

    def check_file(
        self, source: SourceFile, project: ProjectModel
    ) -> Iterator[Violation]:
        if any(source.matches(glob) for glob in project.config.determinism_allow):
            return
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(source, node)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iteration(source, node)

    # -- calls ---------------------------------------------------------
    def _check_call(
        self, source: SourceFile, node: ast.Call
    ) -> Iterator[Violation]:
        imports = source.imports
        func = node.func
        if isinstance(func, ast.Name):
            origin = imports.member_origin(func.id)
            if origin is None:
                if func.id == "hash":
                    yield source.violation(
                        self.name, node,
                        "builtin hash() is randomized per process for "
                        "str/bytes (PYTHONHASHSEED); derive sampling and "
                        "bucketing from a seeded hash instead (see "
                        "repro.mrc.engine.sample_addresses)",
                    )
                return
            module, original = origin
            if module == "random" and original not in _RANDOM_MODULE_OK:
                yield source.violation(
                    self.name, node,
                    f"from-imported random.{original} uses the global "
                    "unseeded RNG; use a seeded random.Random instance",
                )
            elif module == "time" and original in _WALLCLOCK_TIME_ATTRS:
                yield source.violation(
                    self.name, node,
                    f"time.{original} reads the wall clock; sim-core results "
                    "must be a pure function of config + seed",
                )
            elif module == "datetime" and original in ("datetime", "date"):
                pass  # constructor with explicit fields is fine
            return
        chain = _attr_chain(func)
        if not chain:
            return
        head, attrs = chain[0], chain[1:]
        if not attrs:
            return
        # time.* wall clock (incl. strftime's implicit localtime()).
        if imports.resolves_to_module(head, "time"):
            attr = attrs[0]
            if attr in _WALLCLOCK_TIME_ATTRS or (
                attr == "strftime" and len(node.args) < 2
            ):
                yield source.violation(
                    self.name, node,
                    f"time.{attr} reads the wall clock; sim-core results "
                    "must be a pure function of config + seed",
                )
            return
        # datetime.now / datetime.datetime.now / date.today ...
        tail = attrs[-1]
        if tail in _WALLCLOCK_DATETIME_ATTRS:
            root_is_datetime = imports.resolves_to_module(head, "datetime")
            origin = imports.member_origin(head)
            member_is_datetime = origin is not None and origin[0] == "datetime"
            if root_is_datetime or member_is_datetime:
                yield source.violation(
                    self.name, node,
                    f"datetime {tail}() reads the wall clock; pass explicit "
                    "timestamps through the config instead",
                )
                return
        # random.<fn> on the module's hidden global RNG.
        if imports.resolves_to_module(head, "random"):
            attr = attrs[0]
            if attr not in _RANDOM_MODULE_OK:
                yield source.violation(
                    self.name, node,
                    f"random.{attr} uses the global unseeded RNG; use a "
                    "seeded random.Random instance",
                )
            elif attr == "Random" and not node.args and not node.keywords:
                yield source.violation(
                    self.name, node,
                    "random.Random() without a seed draws from the OS; "
                    "pass an explicit seed",
                )
            return
        # numpy.random.* global state / unseeded default_rng().
        if (
            imports.resolves_to_module(head, "numpy")
            and len(attrs) >= 2
            and attrs[0] == "random"
        ):
            attr = attrs[1]
            if attr not in _NUMPY_RANDOM_OK:
                yield source.violation(
                    self.name, node,
                    f"numpy.random.{attr} mutates/reads numpy's global RNG "
                    "state; use numpy.random.default_rng(seed)",
                )
            elif attr == "default_rng" and not node.args and not node.keywords:
                yield source.violation(
                    self.name, node,
                    "numpy.random.default_rng() without a seed draws from "
                    "the OS; pass an explicit seed or SeedSequence",
                )

    # -- iteration order -----------------------------------------------
    def _check_iteration(
        self, source: SourceFile, node: ast.For | ast.AsyncFor
    ) -> Iterator[Violation]:
        imports = source.imports
        iter_expr = node.iter
        chain = _attr_chain(iter_expr)
        # for k in os.environ / os.environ.keys()/values()/items()
        if isinstance(iter_expr, ast.Call):
            call_chain = _attr_chain(iter_expr.func)
            if call_chain and call_chain[-1] in ("keys", "values", "items"):
                chain = call_chain[:-1]
            if call_chain and len(call_chain) == 2:
                for module, attr in _UNORDERED_LISTING:
                    if call_chain[1] == attr and imports.resolves_to_module(
                        call_chain[0], module
                    ):
                        yield source.violation(
                            self.name, node,
                            f"iterating unsorted {module}.{attr}() is "
                            "filesystem-order dependent; wrap it in sorted()",
                        )
                        return
        if (
            chain
            and len(chain) >= 2
            and imports.resolves_to_module(chain[0], "os")
            and chain[1] == "environ"
        ):
            yield source.violation(
                self.name, node,
                "iterating os.environ is environment-dependent; sort or "
                "select explicit keys",
            )
            return
        if isinstance(iter_expr, ast.Set) or (
            isinstance(iter_expr, ast.Call)
            and isinstance(iter_expr.func, ast.Name)
            and iter_expr.func.id in ("set", "frozenset")
        ):
            yield source.violation(
                self.name, node,
                "iterating a set has hash-seed-dependent order for str keys; "
                "iterate a sorted() or list form instead",
            )
