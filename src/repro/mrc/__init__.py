"""Miss-ratio-curve estimation and design-space exploration.

``repro.mrc`` answers "what would the hit rate be?" questions without
timing simulation: tag-only ghost caches (:mod:`repro.mrc.ghost`) are
driven over a materialized trace in one pass (:mod:`repro.mrc.engine`),
and the Pareto-pruned search driver (:mod:`repro.mrc.dse`) spends real
timing simulations only on the estimated frontier. See ``docs/dse.md``.
"""

from repro.mrc.engine import CurvePoint, MRCResult, MRCSpec, mrc_pass, sample_addresses
from repro.mrc.ghost import AdaptiveGhost, GhostBiModal, GhostCache
from repro.mrc.dse import (
    DesignPoint,
    default_space,
    mrc_curves_for_mix,
    pareto_frontier,
    run_design_space,
)

__all__ = [
    "AdaptiveGhost",
    "CurvePoint",
    "DesignPoint",
    "GhostBiModal",
    "GhostCache",
    "MRCResult",
    "MRCSpec",
    "default_space",
    "mrc_curves_for_mix",
    "mrc_pass",
    "pareto_frontier",
    "run_design_space",
    "sample_addresses",
]
