"""Rule ``stats-protocol`` — ``to_dict`` keys stay flat and literal.

Every result object (``DriveResult``, ``SystemStats``,
``EnergyBreakdown``, manifests, cache snapshots) exports through one
protocol: ``to_dict()``/``stats_snapshot()`` dictionaries that
``export.flatten_stats`` folds into a single dotted namespace consumed
by the CSV/JSON exporters, the tracer and the metrics registry. A
computed key or an intra-method collision silently drops or shadows a
column in every artifact downstream. Inside any ``to_dict`` or
``stats_snapshot`` method this rule requires:

* dict-display keys and string-subscript assignments are string
  literals (dynamic keys are allowed only as f-strings with a literal
  dotted namespace prefix, e.g. ``f"dram_cache.{key}"``, or via
  ``**``/``.update(...)`` merges of other protocol objects);
* no duplicate literal key within the method;
* literal keys are non-empty and contain no whitespace, so the
  flattened dotted namespace stays addressable.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.model import ProjectModel, SourceFile, Violation
from repro.analysis.rules import Rule, register_rule

_METHODS = ("to_dict", "stats_snapshot")


def _is_namespaced_fstring(node: ast.expr) -> bool:
    """f-string whose first chunk is a literal prefix ending in '.'."""
    if not isinstance(node, ast.JoinedStr) or not node.values:
        return False
    first = node.values[0]
    return (
        isinstance(first, ast.Constant)
        and isinstance(first.value, str)
        and first.value.endswith(".")
        and first.value != "."
    )


@register_rule
class StatsProtocolRule(Rule):
    name = "stats-protocol"
    version = 1
    description = (
        "to_dict/stats_snapshot must emit literal, collision-free, "
        "flatten_stats-safe keys"
    )
    rationale = (
        "Every result object exports through to_dict()/stats_snapshot() "
        "dictionaries that flatten_stats folds into one dotted "
        "namespace consumed by the CSV/JSON exporters, the tracer and "
        "the metrics registry. A computed key or an intra-method "
        "collision silently drops or shadows a column in every "
        "downstream artifact."
    )
    example_bad = """\
class BankStats:
    def to_dict(self):
        return {"bank.reads": self.reads, "bank.reads": self.writes}
"""
    example_good = """\
class BankStats:
    def to_dict(self):
        return {"bank.reads": self.reads, "bank.writes": self.writes}
"""

    def check_file(
        self, source: SourceFile, project: ProjectModel
    ) -> Iterator[Violation]:
        for node in ast.walk(source.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in _METHODS
            ):
                yield from self._check_method(source, node)

    def _check_method(
        self, source: SourceFile, func: ast.FunctionDef
    ) -> Iterator[Violation]:
        seen: dict[str, int] = {}
        for node in ast.walk(func):
            if isinstance(node, ast.Dict):
                for key in node.keys:
                    if key is None:  # **merge inside a display
                        continue
                    yield from self._check_key(source, func, key, seen)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        yield from self._check_key(
                            source, func, target.slice, seen
                        )

    def _check_key(
        self,
        source: SourceFile,
        func: ast.FunctionDef,
        key: ast.expr,
        seen: dict[str, int],
    ) -> Iterator[Violation]:
        where = f"{func.name}()"
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            value = key.value
            if not value or any(ch.isspace() for ch in value):
                yield source.violation(
                    self.name, key,
                    f"{where} key {value!r} is not flatten_stats-safe "
                    "(empty or contains whitespace)",
                )
                return
            if value in seen:
                yield source.violation(
                    self.name, key,
                    f"{where} emits duplicate key {value!r} (first at line "
                    f"{seen[value]}); the later value silently shadows the "
                    "earlier one in every export",
                )
            else:
                seen[value] = key.lineno
            return
        if isinstance(key, ast.Constant):
            return  # non-string constant (int index etc.): not a stat key
        if _is_namespaced_fstring(key):
            return  # literal dotted namespace merge, e.g. f"dram_cache.{k}"
        rendered = ast.unparse(key)
        yield source.violation(
            self.name, key,
            f"{where} uses computed key {rendered!r}; protocol keys must "
            "be string literals (or f-strings with a literal dotted "
            "namespace prefix) so consumers can rely on them",
        )
