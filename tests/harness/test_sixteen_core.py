"""16-core configuration smoke tests (S-mixes)."""

import pytest

from repro.harness.runner import ExperimentSetup, run_scheme_on_mix


@pytest.fixture
def setup16():
    return ExperimentSetup(num_cores=16, scale=64, accesses_per_core=1200, seed=1)


def test_sixteen_core_mixes_run(setup16):
    result = run_scheme_on_mix("bimodal", "S1", setup=setup16)
    stats = result.stats
    assert stats["accesses"] > 0
    assert 0.0 <= stats["hit_rate"] <= 1.0
    assert stats["avg_read_latency"] > 0


def test_sixteen_core_geometry(setup16):
    system = setup16.system
    assert system.num_cores == 16
    assert system.dram_cache.geometry.channels == 8
    assert system.offchip_channels == 4
    assert system.dram_cache.capacity == (512 << 20) // 64


@pytest.mark.parametrize("scheme", ["alloy", "bimodal"])
def test_sixteen_core_schemes_comparable(setup16, scheme):
    result = run_scheme_on_mix(scheme, "S7", setup=setup16)
    assert result.accesses == 16 * 1200
