"""Way locator tests, including the never-mispredicts property."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bimodal.way_locator import WayLocator


@pytest.fixture
def locator():
    return WayLocator(8, address_bits=32, set_index_bits=12, offset_bits=9)


class TestLookupInsert:
    def test_miss_then_hit(self, locator):
        assert locator.lookup(5, 0x77, 3) is None
        locator.insert(5, 0x77, 3, is_big=True, way=2)
        assert locator.lookup(5, 0x77, 0) == (True, 2)

    def test_big_entry_matches_any_offset(self, locator):
        locator.insert(5, 0x77, 0, is_big=True, way=2)
        for sub in range(8):
            assert locator.lookup(5, 0x77, sub) == (True, 2)

    def test_small_entry_requires_offset(self, locator):
        locator.insert(5, 0x77, 3, is_big=False, way=9)
        assert locator.lookup(5, 0x77, 3) == (False, 9)
        assert locator.lookup(5, 0x77, 4) is None

    def test_distinct_small_offsets_coexist(self, locator):
        locator.insert(5, 0x77, 3, is_big=False, way=9)
        locator.insert(5, 0x77, 4, is_big=False, way=10)
        assert locator.lookup(5, 0x77, 3) == (False, 9)
        assert locator.lookup(5, 0x77, 4) == (False, 10)

    def test_update_existing_entry_way(self, locator):
        locator.insert(5, 0x77, 0, is_big=True, way=1)
        locator.insert(5, 0x77, 0, is_big=True, way=3)
        assert locator.lookup(5, 0x77, 0) == (True, 3)
        assert locator.occupancy() == 1

    def test_two_way_lru_replacement(self, locator):
        # Three keys colliding on one index: same set, different tags
        # that share the low index bits.
        step = 1 << locator.index_bits
        keys = [(1, t) for t in (0, step >> locator.set_index_bits or 1, 2 * (step >> locator.set_index_bits or 1))]
        # simpler: vary set index by full table size so index collides
        locator2 = WayLocator(4, address_bits=32, set_index_bits=12, offset_bits=9)
        s0, s1, s2 = 3, 3 + 16, 3 + 32  # same low-4 index bits
        locator2.insert(s0, 0, 0, is_big=True, way=0)
        locator2.insert(s1, 0, 0, is_big=True, way=1)
        locator2.lookup(s0, 0, 0)  # refresh s0
        locator2.insert(s2, 0, 0, is_big=True, way=2)  # evicts s1 (LRU)
        assert locator2.lookup(s0, 0, 0) is not None
        assert locator2.lookup(s1, 0, 0) is None
        assert locator2.lookup(s2, 0, 0) is not None


class TestInvalidate:
    def test_invalidate_on_eviction(self, locator):
        locator.insert(5, 0x77, 0, is_big=True, way=2)
        assert locator.invalidate(5, 0x77, 0, is_big=True)
        assert locator.lookup(5, 0x77, 0) is None

    def test_invalidate_small_needs_offset(self, locator):
        locator.insert(5, 0x77, 3, is_big=False, way=9)
        assert not locator.invalidate(5, 0x77, 4, is_big=False)
        assert locator.invalidate(5, 0x77, 3, is_big=False)

    def test_invalidate_absent_is_noop(self, locator):
        assert not locator.invalidate(5, 0x77, 0, is_big=True)


class TestStatsAndStorage:
    def test_hit_rate(self, locator):
        locator.lookup(1, 1, 0)
        locator.insert(1, 1, 0, is_big=True, way=0)
        locator.lookup(1, 1, 0)
        assert locator.hit_rate == pytest.approx(0.5)

    def test_storage_and_latency(self):
        loc = WayLocator(14, address_bits=32, set_index_bits=16, offset_bits=9)
        assert loc.storage_bytes == pytest.approx(77.8 * 1024, rel=0.15)
        assert loc.latency_cycles == 1
        assert loc.num_entries == 2 << 14

    def test_validation(self):
        with pytest.raises(ValueError):
            WayLocator(0)


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "invalidate", "lookup"]),
            st.integers(0, 63),  # set index
            st.integers(0, 15),  # tag
            st.integers(0, 7),  # sub offset
            st.booleans(),  # is_big
            st.integers(0, 17),  # way
        ),
        max_size=200,
    )
)
def test_never_wrong_property(ops):
    """The locator never returns stale information.

    Model: a dict of live blocks. Any locator hit must agree with the
    model (the insert/invalidate discipline guarantees it); misses are
    always allowed (it is a cache of way information).
    """
    locator = WayLocator(5, address_bits=28, set_index_bits=8, offset_bits=9)
    live: dict[tuple, tuple] = {}
    for op, set_index, tag, sub, is_big, way in ops:
        key = (set_index, tag, is_big, 0 if is_big else sub)
        if op == "insert":
            # inserting implies the block exists in the cache
            live[key] = (is_big, way)
            locator.insert(set_index, tag, sub, is_big=is_big, way=way)
        elif op == "invalidate":
            live.pop(key, None)
            locator.invalidate(set_index, tag, sub, is_big=is_big)
        else:
            result = locator.lookup(set_index, tag, sub)
            if result is not None:
                found_big, found_way = result
                model_key = (set_index, tag, found_big, 0 if found_big else sub)
                assert model_key in live
                assert live[model_key] == (found_big, found_way)
