"""Figure 3: per-access latency composition of each scheme's hit paths.

Reproduces the paper's schematic analytically from the Table IV timing
parameters: AlloyCache's single big-burst access, Footprint Cache's
serial SRAM-tag-then-data, ATCache's two tag-cache cases, Bi-Modal's
three cases (locator hit / locator miss with tag row hit / tag row miss)
and Loh-Hill's compound access.
"""

from repro.harness.experiments import fig3_latency_breakdown


def test_fig3_latency_breakdown(benchmark, report):
    rows = benchmark.pedantic(fig3_latency_breakdown, rounds=5, iterations=1)
    report(rows, title="Figure 3: hit-path latency breakdown (CPU cycles)")
    total = {(r["scheme"], r["case"]): r["total"] for r in rows}

    # Bi-Modal's locator-hit path matches AlloyCache's single access
    # within a cycle or two, despite tags living in DRAM.
    assert abs(total[("BiModal", "way locator hit")] - total[("AlloyCache", "row closed")]) <= 2

    # Tags-in-SRAM (Footprint) is slightly slower than Alloy (III-A).
    assert total[("Footprint Cache", "tags-in-SRAM hit")] >= total[
        ("AlloyCache", "row closed")
    ]

    # Loh-Hill's compound access is the slow tags-then-data case.
    assert total[("Loh-Hill", "compound access")] > total[
        ("BiModal", "way locator hit")
    ]

    # Parallel tag+data keeps even the locator-miss/row-hit case well
    # under the serialized ATCache tag-cache-miss case.
    assert total[("BiModal", "loc. miss, tag row hit")] < total[
        ("ATCache", "tag-cache miss")
    ]
