"""BiModalCache integration tests."""

from hypothesis import given, settings, strategies as st

from repro.bimodal.cache import BiModalCache, BiModalConfig
from repro.common.config import DRAMCacheGeometry, DRAMGeometry, DRAMTimingConfig
from repro.dram.controller import MemoryController


def make_cache(**config_overrides) -> BiModalCache:
    geometry = DRAMCacheGeometry(
        capacity=1 << 20,  # 1 MB: 512 sets of 2 KB
        geometry=DRAMGeometry(channels=2, banks_per_channel=8, page_size=2048),
    )
    offchip = MemoryController(
        DRAMGeometry(channels=1, banks_per_channel=16, page_size=2048),
        DRAMTimingConfig.ddr3_1600h(),
    )
    defaults = dict(
        locator_index_bits=8,
        predictor_index_bits=8,
        tracker_sample_every=2,
        adaptation_interval=500,
        address_bits=36,
    )
    defaults.update(config_overrides)
    return BiModalCache(geometry, offchip, BiModalConfig(**defaults))


class TestBasicCaching:
    def test_miss_then_hit(self):
        cache = make_cache()
        first = cache.access(0x10000, 0)
        assert not first.hit
        second = cache.access(0x10000, first.complete + 10)
        assert second.hit
        assert second.latency < first.latency

    def test_big_fill_covers_whole_512b(self):
        cache = make_cache()
        r = cache.access(0x10000, 0)
        t = r.complete + 10
        for sub in range(8):
            r = cache.access(0x10000 + 64 * sub, t)
            assert r.hit
            t = r.complete + 5

    def test_hit_rate_accounting(self):
        cache = make_cache()
        cache.access(0x10000, 0)
        cache.access(0x10000, 1000)
        assert cache.hit_stat.hits == 1
        assert cache.hit_stat.misses == 1

    def test_offchip_fetch_on_miss(self):
        cache = make_cache()
        cache.access(0x10000, 0)
        assert cache.offchip_fetched_bytes == 512  # cold = predicted big

    def test_resident_probe(self):
        cache = make_cache()
        assert not cache.resident(0x10000)
        cache.access(0x10000, 0)
        assert cache.resident(0x10000)
        assert cache.resident(0x10000 + 448)


class TestWayLocatorIntegration:
    def test_locator_hit_after_fill(self):
        cache = make_cache()
        cache.access(0x10000, 0)
        cache.access(0x10000, 1000)
        assert cache.locator.lookups.hits >= 1

    def test_locator_hit_skips_metadata_read(self):
        cache = make_cache()
        cache.access(0x10000, 0)
        before = cache.metadata_rbh.total
        cache.access(0x10000, 1000)  # locator hit
        assert cache.metadata_rbh.total == before

    def test_locator_entry_invalidated_on_eviction(self):
        """Fill conflicting blocks until eviction; locator must never
        report an evicted block (the never-wrong invariant)."""
        cache = make_cache()
        am = cache.addr_map
        t = 0
        addresses = [am.rebuild(tag, 5, 0) for tag in range(10)]
        for addr in addresses:
            r = cache.access(addr, t)
            t = r.complete + 10
        for addr in addresses:
            located = cache.locator.lookup(am.set_index(addr), am.tag(addr), 0)
            resident = cache.resident(addr)
            if located is not None:
                assert resident

    def test_disabled_locator(self):
        cache = make_cache(enable_way_locator=False)
        cache.access(0x10000, 0)
        cache.access(0x10000, 1000)
        assert cache.locator is None
        assert cache.way_locator_hit_rate == 0.0
        # every access reads metadata
        assert cache.metadata_rbh.total == 2


class TestBiModalBehaviour:
    def test_fixed_mode_never_fills_small(self):
        cache = make_cache(enable_bimodal=False)
        t = 0
        for i in range(300):
            r = cache.access(0x10000 + i * 4096, t)
            t = r.complete + 10
        assert cache.small_fills.value == 0
        assert cache.global_ctrl.state == (4, 0)

    def test_sparse_traffic_trains_toward_small(self):
        """Single-sub-block streaming: evictions classify small, the
        global state leaves (4,0), and small fills appear."""
        cache = make_cache()
        t = 0
        for i in range(4000):
            r = cache.access((i * 512) % (1 << 23), t)  # one sub-block each
            t = r.complete + 10
        assert cache.small_fills.value > 0
        assert cache.global_ctrl.state != (4, 0)

    def test_dense_traffic_stays_big(self):
        cache = make_cache()
        t = 0
        for i in range(1000):
            base = (i * 512) % (1 << 21)
            for sub in range(8):
                r = cache.access(base + 64 * sub, t)
                t = r.complete + 5
        assert cache.global_ctrl.state == (4, 0)
        assert cache.small_fills.value == 0

    def test_small_fill_fetches_64b(self):
        cache = make_cache()
        # Train predictor toward small for everything.
        for key in range(1 << 10):
            cache.predictor.train(key << 10, was_big=False)
            cache.predictor.train(key << 10, was_big=False)
        cache.global_ctrl.force_state(2)
        fetched_before = cache.offchip_fetched_bytes
        cache.access(0x40000, 0)
        fetched = cache.offchip_fetched_bytes - fetched_before
        assert fetched in (64, 512)  # small unless override path fired
        if cache.small_fills.value:
            assert fetched == 64


class TestWritebacks:
    def test_dirty_sub_block_granularity(self):
        """Evicting a big block writes back only dirty 64 B sub-blocks."""
        cache = make_cache()
        am = cache.addr_map
        t = 0
        victim = am.rebuild(0, 9, 0)
        r = cache.access(victim, t, is_write=True)  # dirty sub-block 0
        t = r.complete + 10
        r = cache.access(victim + 64, t)  # clean sub-block 1
        t = r.complete + 10
        # Evict by filling the same set with other big blocks.
        for tag in range(1, 8):
            r = cache.access(am.rebuild(tag, 9, 0), t)
            t = r.complete + 10
        cache.flush_posted()
        assert cache.offchip_writeback_bytes == 64

    def test_clean_eviction_no_writeback(self):
        cache = make_cache()
        am = cache.addr_map
        t = 0
        for tag in range(8):
            r = cache.access(am.rebuild(tag, 9, 0), t)
            t = r.complete + 10
        assert cache.offchip_writeback_bytes == 0


class TestWasteAccounting:
    def test_unused_sub_blocks_counted(self):
        cache = make_cache()
        am = cache.addr_map
        t = 0
        for tag in range(8):  # single-sub-block use, big fills
            r = cache.access(am.rebuild(tag, 9, 0), t)
            t = r.complete + 10
        # at least 4 evictions with 7 unused sub-blocks each
        assert cache.offchip_wasted_bytes >= 4 * 7 * 64

    def test_fully_used_blocks_waste_nothing(self):
        cache = make_cache()
        am = cache.addr_map
        t = 0
        for tag in range(8):
            for sub in range(8):
                r = cache.access(am.rebuild(tag, 9, sub), t)
                t = r.complete + 5
        assert cache.offchip_wasted_bytes == 0


class TestStatsAndConfig:
    def test_snapshot_keys(self):
        cache = make_cache()
        cache.access(0x1000, 0)
        snap = cache.stats_snapshot()
        for key in (
            "hit_rate",
            "way_locator_hit_rate",
            "metadata_rbh",
            "small_access_fraction",
            "space_utilization",
            "avg_tag_latency",
            "global_state",
        ):
            assert key in snap

    def test_reset_stats_keeps_contents(self):
        cache = make_cache()
        cache.access(0x10000, 0)
        cache.reset_stats()
        assert cache.hit_stat.total == 0
        assert cache.resident(0x10000)

    def test_parallel_vs_serial_tag_latency(self):
        """Locator-miss hits are faster with parallel tag+data issue."""

        def locator_miss_hit_latency(parallel):
            cache = make_cache(
                enable_way_locator=False, parallel_tag_data=parallel
            )
            cache.access(0x10000, 0)
            r = cache.access(0x10000, 100_000)
            return r.latency

        assert locator_miss_hit_latency(True) < locator_miss_hit_latency(False)

    def test_colocated_metadata_mode(self):
        cache = make_cache(colocated_metadata=True, enable_way_locator=False)
        cache.access(0x10000, 0)
        cache.access(0x10000, 100_000)
        assert cache.metadata_rbh.total == 2


@settings(max_examples=15, deadline=None)
@given(
    accesses=st.lists(
        st.tuples(
            st.integers(0, 255),  # region id
            st.integers(0, 7),  # sub-block
            st.booleans(),  # write
        ),
        min_size=10,
        max_size=150,
    )
)
def test_residency_model_consistency(accesses):
    """After any access sequence: a second access to the same address is
    always a hit, and the locator never contradicts set contents."""
    cache = make_cache(adaptation_interval=50)
    am = cache.addr_map
    t = 0
    for region, sub, is_write in accesses:
        addr = region * 512 + sub * 64
        r = cache.access(addr, t, is_write=is_write)
        t = r.complete + 3
        again = cache.access(addr, t)
        assert again.hit
        t = again.complete + 3
    # locator consistency sweep
    for region in range(256):
        for sub in range(8):
            addr = region * 512 + sub * 64
            located = cache.locator.lookup(
                am.set_index(addr), am.tag(addr), am.sub_block(addr)
            )
            if located is not None:
                assert cache.resident(addr)
