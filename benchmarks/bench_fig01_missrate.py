"""Figure 1: LLSC miss rate vs DRAM cache block size (64 B .. 4 KB).

Paper's observation: for most workloads the miss rate nearly halves with
each doubling of the block size — the motivation for large blocks.
"""

from conftest import QUAD_MIXES

from repro.harness.experiments import fig1_miss_rate_vs_block_size


def test_fig1_miss_rate_vs_block_size(benchmark, report, quad_setup):
    rows = benchmark.pedantic(
        lambda: fig1_miss_rate_vs_block_size(setup=quad_setup, mix_names=QUAD_MIXES),
        rounds=1,
        iterations=1,
    )
    report(rows, title="Figure 1: miss rate vs block size")
    mean = rows[-1]
    assert mean["mix"] == "mean"
    # Shape: strictly improving up to 512B, and 512B at most ~55% of 64B.
    assert mean["512B"] < mean["256B"] < mean["128B"] < mean["64B"]
    assert mean["512B"] < 0.55 * mean["64B"]
    # Large blocks keep helping on average (spatial locality beyond 512B).
    assert mean["4096B"] <= mean["1024B"] * 1.05
