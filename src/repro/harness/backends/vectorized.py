"""Numpy structure-of-arrays drive backend (byte-identical to scalar).

Design
------
The closed-loop drive is inherently sequential *in time*: every record's
issue time depends on the previous record's completion (stall feedback,
window backpressure), and every DRAM access mutates per-bank state the
next access reads. No batch of timing resolutions can run as a pure
array operation without changing results — so this backend splits each
record chunk into two phases:

1. **SoA precompute (numpy)** — everything that is a pure function of
   the address stream and pacing parameters is computed for the whole
   chunk as array operations on the cached ``.npz`` columns: inter-access
   gaps (``max(icount * pace, min_gap)``), set/tag/sub-block splits,
   way-locator bucket indices and keys, per-set (channel, bank-index,
   row) device coordinates from the flat decode tables, predictor table
   indices. The arrays are converted to plain-Python lists once per
   chunk, so the sequential phase never touches numpy scalars (whose
   arithmetic would not be byte-compatible with Python ints).
2. **Fused sequential kernel (per scheme)** — one Python loop that
   merges the drive loop, the scheme's access path and the inlined
   device kernel into a single frame over the precomputed columns, with
   all mutable state hoisted into locals and all statistics deferred to
   per-chunk flushes through the shared helpers below.

Chunk boundaries are where deferred state synchronizes back into the
object model: stats flush (`` _flush_stats`` and friends), the locator
tick and the global-adaptation interval clock write back. Sequential
dependencies that arrays cannot express — posted writebacks coming due,
adaptive (X, Y) transitions, way-locator insert/evict — stay in the
scalar object model: the kernels call the *same* cold-path methods
(``BiModalCache._access_cold``, posted-op drain) the scalar kernel uses,
synchronizing any mirrored locals around the call. That is what makes
byte-identity structural rather than coincidental: every branch either
replicates the scalar code exactly (pinned by the golden-stats and
cross-validation suites) or *is* the scalar code.

Deferred statistics are flushed with Python ``sum``/``min``/``max`` —
integer latencies keep ``RunningMean.total`` exact below 2**53, so a
single bulk add equals the scalar's running adds bit-for-bit. The
per-access scratch attributes ``dram.last_outcome``/``last_data_start``
are dead between accesses (only ``_read_metadata`` consumes them, right
after its own device call) and are deliberately not written on the fused
hit paths.

Vectorizing a new scheme: add a ``prep`` building the per-chunk columns,
a kernel that replicates the scheme's ``access_fast`` body with deferred
stats, register both with :func:`register_kernel` keyed by the cache
class name, flush through the shared helpers, and add the scheme to
``VECTORIZED_SCHEMES`` plus its registry ``backends`` flag (the
``backend-parity`` simlint rule and the cross-validation suite enforce
the pairing).
"""

from __future__ import annotations

import heapq
import os

import numpy as np

from repro.bimodal.sets import BiModalSet
from repro.workloads.generator import TraceChunk
from repro.workloads.trace import MultiProgramTrace

__all__ = [
    "DEFAULT_CHUNK_RECORDS",
    "VECTORIZED_SCHEMES",
    "drive",
    "kernel_for",
    "register_kernel",
    "supports",
]

CHUNK_ENV = "REPRO_BACKEND_CHUNK"
DEFAULT_CHUNK_RECORDS = 4096

# Registry-name view of kernel coverage, cross-checked against the
# ``backends`` flags in repro.harness.schemes by the backend-parity
# simlint rule and tests/harness/test_backends.py. Dispatch itself is
# by cache class (kernel_for), so config variants of a vectorized
# scheme are covered automatically.
VECTORIZED_SCHEMES = frozenset(
    {"alloy", "bimodal", "wayloc-only", "bimodal-only", "fixed512"}
)

# class name -> (prep, kernel); filled by register_kernel below.
_KERNELS: dict[str, tuple] = {}


def register_kernel(class_name: str, prep):
    """Register a fused chunk kernel for a cache class (decorator)."""

    def decorator(func):
        _KERNELS[class_name] = (prep, func)
        return func

    return decorator


def kernel_for(cache):
    """The (prep, kernel) pair serving ``cache``, or None."""
    for klass in type(cache).__mro__:
        found = _KERNELS.get(klass.__name__)
        if found is not None:
            return found
    return None


def supports(cache, records) -> bool:
    """Whether this backend can drive ``records`` through ``cache``."""
    if kernel_for(cache) is None:
        return False
    return isinstance(records, (TraceChunk, MultiProgramTrace))


def _chunk_records(kwargs: dict) -> int:
    explicit = kwargs.get("chunk_records")
    if explicit:
        return int(explicit)
    try:
        value = int(os.environ.get(CHUNK_ENV, DEFAULT_CHUNK_RECORDS))
    except ValueError:
        value = DEFAULT_CHUNK_RECORDS
    return max(1, value)


def drive(cache, records, kwargs: dict):
    """Drive supported records; chunk/warmup semantics mirror the scalar
    ``_drive_fast`` exactly (stats reset immediately before the
    ``warmup``-th record, deferred stats flushed first)."""
    from repro.harness import runner

    if isinstance(records, TraceChunk):
        chunks = (records,)
    else:
        chunks = records.merged_chunks()
    prep, kernel = kernel_for(cache)
    window = kwargs["window"]
    min_gap = kwargs["min_gap"]
    pace = kwargs["cycles_per_instruction"] / max(1, kwargs["streams"])
    stall_scale = 1.0 / (kwargs["mlp"] * max(1, kwargs["streams"]))
    warmup = kwargs["warmup"]
    span = _chunk_records(kwargs)
    state = runner._DriveState()
    for chunk in chunks:
        total = len(chunk.addresses)
        lo = 0
        if warmup and state.issued < warmup <= state.issued + total:
            split = warmup - state.issued - 1
            _run_span(
                cache, prep, kernel, chunk, 0, split, state,
                window=window, min_gap=min_gap, pace=pace,
                stall_scale=stall_scale, span=span,
            )
            cache.reset_stats()
            lo = split
        _run_span(
            cache, prep, kernel, chunk, lo, total, state,
            window=window, min_gap=min_gap, pace=pace,
            stall_scale=stall_scale, span=span,
        )
    result = runner.DriveResult(
        cache=cache,
        accesses=state.count,
        end_time=state.end,
        stats=cache.stats_snapshot(),
    )
    result.backend = "vectorized"
    result.backend_fallbacks = 0
    return result


def _run_span(
    cache, prep, kernel, chunk, lo, hi, state, *,
    window, min_gap, pace, stall_scale, span,
):
    """Shared chunk dispatch: precompute, run, account — per sub-chunk."""
    for start in range(lo, hi, span):
        stop = start + span
        if stop > hi:
            stop = hi
        columns = prep(cache, chunk, start, stop, pace, min_gap)
        kernel(cache, columns, state, window=window, stall_scale=stall_scale)
        state.count += stop - start
        state.issued += stop - start


# ----------------------------------------------------------------------
# deferred-stats flush helpers (the only place kernels may accumulate
# statistics; enforced by the backend-parity simlint rule)
# ----------------------------------------------------------------------
def _flush_mean(mean, values: list) -> None:
    """Bulk-add integer latencies; equals the scalar's running adds."""
    mean.count += len(values)
    mean.total += sum(values)
    low = min(values)
    if low < mean.minimum:
        mean.minimum = low
    high = max(values)
    if high > mean.maximum:
        mean.maximum = high


def _flush_rate(stat, hits: int, misses: int) -> None:
    stat.hits += hits
    stat.misses += misses


def _flush_stats(cache, *, hits, misses, lat_hits, lat_miss, dram_reads=0):
    """Flush the base accounting epilogue for one sub-chunk."""
    stat = cache.hit_stat
    stat.hits += hits
    stat.misses += misses
    if dram_reads:
        dram = cache.dram
        dram.reads += dram_reads
        dram.bytes_transferred += dram_reads * 64
    if lat_hits:
        _flush_mean(cache.read_latency, lat_hits)
        _flush_mean(cache.hit_latency, lat_hits)
    if lat_miss:
        _flush_mean(cache.read_latency, lat_miss)
        _flush_mean(cache.miss_latency, lat_miss)


def _flush_offchip(cache, fetched: int, writeback: int) -> None:
    cache.offchip_fetched_bytes += fetched
    cache.offchip_writeback_bytes += writeback


def _flush_predictor(predictor, correct: int, wrong: int) -> None:
    predictor.correct += correct
    predictor.wrong += wrong


def _gaps(chunk, lo, hi, pace, min_gap):
    """Pacing gaps: ``max(icount * pace, min_gap)`` as float64.

    uint32 * float64 rounds identically to Python's int * float, and
    ``maximum`` picks the same value the scalar's ``gap if gap >
    min_gap else min_gap`` does (equal values coincide), so the
    ``now`` accumulation stays bit-exact.
    """
    icount = chunk.icount[lo:hi].astype(np.float64)
    return np.maximum(icount * pace, np.float64(min_gap))


# ----------------------------------------------------------------------
# BiModalCache (bimodal, wayloc-only, bimodal-only, fixed512)
# ----------------------------------------------------------------------
class _BimodalAux:
    """Per-cache constants for the SoA precompute (built once)."""

    __slots__ = (
        "offset_bits", "set_mask", "tag_shift", "sub_mask",
        "chan", "idx", "row",
        "loc_bits", "loc_index_bits", "loc_mask",
    )

    def __init__(self, cache) -> None:
        self.offset_bits = cache._offset_bits
        self.set_mask = np.int64(cache._set_mask)
        self.tag_shift = cache._tag_shift
        self.sub_mask = np.int64(cache._sub_mask)
        kidx = cache._data_kidx
        self.chan = np.array([c for c, _, _ in kidx], dtype=np.int64)
        self.idx = np.array([i for _, i, _ in kidx], dtype=np.int64)
        self.row = np.array([r for _, _, r in kidx], dtype=np.int64)
        locator = cache.locator
        if locator is None:
            self.loc_bits = None
            self.loc_index_bits = 0
            self.loc_mask = np.int64(0)
        else:
            self.loc_bits = locator.set_index_bits
            self.loc_index_bits = locator.index_bits
            self.loc_mask = np.int64(locator._mask)


_BIMODAL_AUX: dict[int, tuple] = {}


def _aux_for(cache, builder, store: dict):
    """Per-cache aux constants, keyed by id (weak-side: entry dropped
    when a different object reuses the id)."""
    key = id(cache)
    entry = store.get(key)
    if entry is None or entry[0] is not cache:
        entry = (cache, builder(cache))
        store[key] = entry
        if len(store) > 64:  # a drive touches a handful of caches
            store.clear()
            store[key] = entry
    return entry[1]


def _prep_bimodal(cache, chunk, lo, hi, pace, min_gap):
    aux = _aux_for(cache, _BimodalAux, _BIMODAL_AUX)
    addresses = chunk.addresses[lo:hi].astype(np.int64)
    set_index = (addresses >> aux.offset_bits) & aux.set_mask
    tags = addresses >> aux.tag_shift
    if aux.loc_bits is None:
        buckets = keys = None
    else:
        combined = (tags << aux.loc_bits) | set_index
        buckets = (combined & aux.loc_mask).tolist()
        keys = (combined >> aux.loc_index_bits).tolist()
    return (
        addresses.tolist(),
        chunk.is_write[lo:hi].tolist(),
        _gaps(chunk, lo, hi, pace, min_gap).tolist(),
        set_index.tolist(),
        tags.tolist(),
        ((addresses & aux.sub_mask) >> 6).tolist(),
        np.take(aux.chan, set_index).tolist(),
        np.take(aux.idx, set_index).tolist(),
        np.take(aux.row, set_index).tolist(),
        buckets,
        keys,
    )


@register_kernel("BiModalCache", _prep_bimodal)
def _run_bimodal(cache, columns, state, *, window, stall_scale):
    """Fused drive + BiModalCache.access_fast over one sub-chunk.

    The locator-hit branch replicates the scalar inline exactly (minus
    the dead ``last_outcome``/``last_data_start`` stores and with stats
    deferred); locator misses synchronize the mirrored locator tick and
    call the shared scalar cold path.
    """
    (addr_l, iw_l, gap_l, si_l, tag_l, sub_l,
     ch_l, idx_l, row_l, bkt_l, key_l) = columns
    inflight = state.inflight
    now = state.now
    end = state.end
    depth = len(inflight)
    heap_push = heapq.heappush
    heap_replace = heapq.heapreplace

    pending = cache._pending
    drain = cache._drain_posted
    gc_ = cache.global_ctrl
    gticks = gc_._accesses_in_interval
    ginterval = gc_.interval
    boundary = cache._gc_boundary
    sets = cache._sets
    sets_get = sets.get
    states_ = cache.states
    spb = cache.smalls_per_big
    loc_lat = cache._locator_latency
    locator = cache.locator
    observe = cache._observe_leader
    cold = cache._access_cold
    touch_meta = cache._touch_metadata
    ready = cache._d_ready
    open_rows = cache._d_open
    next_refresh = cache._d_next_refresh
    rb_hits = cache._d_rb_hits
    rb_misses = cache._d_rb_misses
    acts = cache._d_acts
    pres = cache._d_pres
    bus_free = cache._d_bus_free
    bus_busy = cache._d_bus_busy
    refresh_stall = cache._d_refresh_stall
    trcd = cache._d_trcd
    trp_trcd = cache._d_trp_trcd
    tccd = cache._d_tccd
    cl = cache._d_cl
    burst = cache._d_burst

    n_hits = 0
    n_misses = 0
    lat_hits: list[int] = []
    lat_miss: list[int] = []
    lh_append = lat_hits.append
    lm_append = lat_miss.append
    d_reads = 0
    loc_hits = 0
    loc_misses = 0
    small_h = 0
    small_m = 0

    if locator is not None:
        ltable = locator._table
        ltick = locator._tick
        for (address, is_write, gap, set_index, tag, sub,
             channel, idx, row, bucket, loc_key) in zip(
                 addr_l, iw_l, gap_l, si_l, tag_l, sub_l,
                 ch_l, idx_l, row_l, bkt_l, key_l):
            now += gap
            if depth >= window:
                earliest = inflight[0]
                if earliest > now:
                    now = float(earliest)
                replace = True
            else:
                replace = False
            inow = int(now)
            if pending and pending[0][0] <= inow:
                drain(inow)
            gticks += 1
            if gticks >= ginterval:
                gc_._accesses_in_interval = 0
                boundary()
                gticks = gc_._accesses_in_interval
            entry = sets_get(set_index)
            if entry is None:
                entry = BiModalSet(states_, smalls_per_big=spb)
                sets[set_index] = entry
            t_after_locator = inow + loc_lat
            ltick += 1
            complete = -1
            for loc_entry in ltable[bucket]:
                if loc_entry.key != loc_key:
                    continue
                is_big = loc_entry.is_big
                if not is_big and loc_entry.sub_offset != sub:
                    continue
                loc_entry.last_use = ltick
                loc_hits += 1
                way = loc_entry.way
                if observe is not None:
                    observe(set_index, miss=False)
                if is_big:
                    block = entry.big_ways[way]
                    if block is None:
                        raise RuntimeError(
                            "way locator pointed at an empty big way"
                        )
                    bit = 1 << sub
                    block.used_mask |= bit
                    if is_write:
                        block.dirty_mask |= bit
                else:
                    small = entry.small_ways[way]
                    if small is None:
                        raise RuntimeError(
                            "way locator pointed at an empty small way"
                        )
                    if is_write:
                        small.dirty = True
                mru = entry._mru
                mru_key = (is_big, way)
                if mru_key in mru:
                    mru.remove(mru_key)
                mru.insert(0, mru_key)
                del mru[2:]
                if is_big:
                    small_m += 1
                else:
                    small_h += 1
                d_reads += 1
                t = ready[idx]
                if t_after_locator > t:
                    t = t_after_locator
                if t >= next_refresh[idx]:
                    t = refresh_stall(idx, t)
                current = open_rows[idx]
                if current == row:
                    rb_hits[idx] += 1
                    cas_issue = t
                elif current < 0:
                    acts[idx] += 1
                    rb_misses[idx] += 1
                    cas_issue = t + trcd
                else:
                    pres[idx] += 1
                    acts[idx] += 1
                    rb_misses[idx] += 1
                    cas_issue = t + trp_trcd
                open_rows[idx] = row
                ready[idx] = cas_issue + tccd
                cas_done = cas_issue + cl
                start = bus_free[channel]
                if cas_done > start:
                    start = cas_done
                data_end = start + burst
                bus_free[channel] = data_end
                bus_busy[channel] += data_end - start
                if is_write:
                    touch_meta(set_index, data_end)
                n_hits += 1
                if not is_write:
                    lh_append(data_end - inow)
                complete = data_end
                break
            if complete < 0:
                loc_misses += 1
                locator._tick = ltick
                complete = cold(
                    address, set_index, tag, sub, entry,
                    t_after_locator, is_write,
                )
                ltick = locator._tick
                if cache._hit:
                    n_hits += 1
                    if not is_write:
                        lh_append(complete - inow)
                else:
                    n_misses += 1
                    if not is_write:
                        lm_append(complete - inow)
            if replace:
                heap_replace(inflight, complete)
            else:
                heap_push(inflight, complete)
                depth += 1
            if not is_write:
                now += (complete - inow) * stall_scale
            if complete > end:
                end = complete
        locator._tick = ltick
    else:
        for address, is_write, gap, set_index, tag, sub in zip(
                addr_l, iw_l, gap_l, si_l, tag_l, sub_l):
            now += gap
            if depth >= window:
                earliest = inflight[0]
                if earliest > now:
                    now = float(earliest)
                replace = True
            else:
                replace = False
            inow = int(now)
            if pending and pending[0][0] <= inow:
                drain(inow)
            gticks += 1
            if gticks >= ginterval:
                gc_._accesses_in_interval = 0
                boundary()
                gticks = gc_._accesses_in_interval
            entry = sets_get(set_index)
            if entry is None:
                entry = BiModalSet(states_, smalls_per_big=spb)
                sets[set_index] = entry
            complete = cold(
                address, set_index, tag, sub, entry,
                inow + loc_lat, is_write,
            )
            if cache._hit:
                n_hits += 1
                if not is_write:
                    lh_append(complete - inow)
            else:
                n_misses += 1
                if not is_write:
                    lm_append(complete - inow)
            if replace:
                heap_replace(inflight, complete)
            else:
                heap_push(inflight, complete)
                depth += 1
            if not is_write:
                now += (complete - inow) * stall_scale
            if complete > end:
                end = complete

    gc_._accesses_in_interval = gticks
    state.now = now
    state.end = end
    _flush_stats(
        cache, hits=n_hits, misses=n_misses,
        lat_hits=lat_hits, lat_miss=lat_miss, dram_reads=d_reads,
    )
    if locator is not None:
        _flush_rate(locator.lookups, loc_hits, loc_misses)
    _flush_rate(cache.small_access, small_h, small_m)


# ----------------------------------------------------------------------
# AlloyCache
# ----------------------------------------------------------------------
class _AlloyAux:
    __slots__ = ("num_slots", "channels", "banks", "pmask", "has_predictor")

    def __init__(self, cache) -> None:
        fields = cache.dram.decode_fields()
        self.num_slots = np.int64(cache.num_slots)
        self.channels = np.int64(fields["channels"])
        self.banks = np.int64(fields["banks_per_channel"])
        predictor = cache.predictor
        self.has_predictor = predictor is not None
        self.pmask = np.int64(predictor._mask if predictor is not None else 0)


_ALLOY_AUX: dict[int, tuple] = {}


def _prep_alloy(cache, chunk, lo, hi, pace, min_gap):
    aux = _aux_for(cache, _AlloyAux, _ALLOY_AUX)
    addresses = chunk.addresses[lo:hi].astype(np.int64)
    blocks = addresses >> 6
    slots = blocks % aux.num_slots
    tad_rows = slots // 28  # _TADS_PER_ROW
    channels = tad_rows % aux.channels
    banks = (tad_rows // aux.channels) % aux.banks
    if aux.has_predictor:
        # 40-bit addresses keep (addr >> 12) * 2654435761 far below
        # 2**63, so int64 reproduces the Python-int hash exactly.
        pidx = (((addresses >> 12) * 2_654_435_761) >> 15) & aux.pmask
        pidx_l = pidx.tolist()
    else:
        pidx_l = None
    return (
        addresses.tolist(),
        chunk.is_write[lo:hi].tolist(),
        _gaps(chunk, lo, hi, pace, min_gap).tolist(),
        blocks.tolist(),
        slots.tolist(),
        pidx_l,
        channels.tolist(),
        banks.tolist(),
        (channels * aux.banks + banks).tolist(),
        (tad_rows // (aux.channels * aux.banks)).tolist(),
    )


@register_kernel("AlloyCache", _prep_alloy)
def _run_alloy(cache, columns, state, *, window, stall_scale):
    """Fused drive + AlloyCache access path over one sub-chunk.

    The TAD probe inlines the device kernel (1 burst, 5 transfer
    cycles + 1 tag-compare); fills/writebacks post heap entries with a
    mirrored sequence counter written back at flush time.
    """
    (addr_l, iw_l, gap_l, blk_l, slot_l, pidx_l,
     ch_l, bank_l, idx_l, row_l) = columns
    inflight = state.inflight
    now = state.now
    end = state.end
    depth = len(inflight)
    heap_push = heapq.heappush
    heap_replace = heapq.heapreplace

    pending = cache._pending
    drain = cache._drain_posted
    tags = cache._tags
    tags_get = tags.get
    dirty = cache._dirty
    dirty_add = dirty.add
    dirty_discard = dirty.discard
    predictor = cache.predictor
    counters = predictor._counters if predictor is not None else None
    offchip_read = cache.offchip.read_fast
    offchip_write = cache.offchip.write_fast
    dram = cache.dram
    fill_write = dram.access_direct_fast
    ready = dram._ready_at
    open_rows = dram._open_row
    next_refresh = dram._next_refresh
    rb_hits = dram._rb_hits
    rb_misses = dram._rb_misses
    acts = dram._activations
    pres = dram._precharges
    bus_free = dram._bus_free
    bus_busy = dram._bus_busy
    refresh_stall = dram._refresh_stall
    timings = dram.timing_constants()
    trcd = timings["trcd"]
    trp_trcd = timings["trp_trcd"]
    tccd = timings["tccd"]
    cl = timings["cl"]
    seq = cache._pending_seq

    n_hits = 0
    n_misses = 0
    lat_hits: list[int] = []
    lat_miss: list[int] = []
    lh_append = lat_hits.append
    lm_append = lat_miss.append
    d_reads = 0
    fetched = 0
    wb_bytes = 0
    p_correct = 0
    p_wrong = 0

    if pidx_l is None:
        pidx_l = blk_l  # unused placeholder to keep one zip shape

    for (address, is_write, gap, block, slot, pidx,
         channel, bank, idx, row) in zip(
             addr_l, iw_l, gap_l, blk_l, slot_l, pidx_l,
             ch_l, bank_l, idx_l, row_l):
        now += gap
        if depth >= window:
            earliest = inflight[0]
            if earliest > now:
                now = float(earliest)
            replace = True
        else:
            replace = False
        inow = int(now)
        if pending and pending[0][0] <= inow:
            drain(inow)
        resident = tags_get(slot) == block
        predicted_miss = False
        if counters is not None and not is_write:
            counter = counters[pidx]
            predicted_miss = counter >= 2
            if predicted_miss == (not resident):
                p_correct += 1
            else:
                p_wrong += 1
            if not resident:
                if counter < 3:
                    counters[pidx] = counter + 1
            elif counter > 0:
                counters[pidx] = counter - 1
        # TAD probe: inlined access_direct_fast(..., 1, 5) + tag compare
        d_reads += 1
        t = ready[idx]
        if inow > t:
            t = inow
        if t >= next_refresh[idx]:
            t = refresh_stall(idx, t)
        current = open_rows[idx]
        if current == row:
            rb_hits[idx] += 1
            cas_issue = t
        elif current < 0:
            acts[idx] += 1
            rb_misses[idx] += 1
            cas_issue = t + trcd
        else:
            pres[idx] += 1
            acts[idx] += 1
            rb_misses[idx] += 1
            cas_issue = t + trp_trcd
        open_rows[idx] = row
        ready[idx] = cas_issue + tccd
        cas_done = cas_issue + cl
        start = bus_free[channel]
        if cas_done > start:
            start = cas_done
        probe_data_end = start + 5  # _TAD_TRANSFER_CYCLES
        bus_free[channel] = probe_data_end
        bus_busy[channel] += probe_data_end - start
        probe_end = probe_data_end + 1  # _TAG_COMPARE_CYCLES

        if is_write:
            if resident:
                dirty_add(slot)
            else:
                fetch_end = offchip_read(address, inow, 1)
                fetched += 64
                victim = tags_get(slot)
                if victim is not None and slot in dirty:
                    wb_bytes += 64
                    heap_push(
                        pending,
                        (fetch_end, seq, offchip_write,
                         (victim << 6, fetch_end, 1)),
                    )
                    seq += 1
                dirty_discard(slot)
                tags[slot] = block
                dirty_add(slot)
                heap_push(
                    pending,
                    (fetch_end, seq, fill_write,
                     (channel, bank, row, fetch_end, 1, 5)),
                )
                seq += 1
            complete = probe_end
        elif resident:
            if predicted_miss:
                offchip_read(address, inow, 1)
                fetched += 64
            complete = probe_end
        else:
            fetch_start = inow if predicted_miss else probe_end
            fetch_end = offchip_read(address, fetch_start, 1)
            fetched += 64
            victim = tags_get(slot)
            if victim is not None and slot in dirty:
                wb_bytes += 64
                heap_push(
                    pending,
                    (fetch_end, seq, offchip_write,
                     (victim << 6, fetch_end, 1)),
                )
                seq += 1
            dirty_discard(slot)
            tags[slot] = block
            heap_push(
                pending,
                (fetch_end, seq, fill_write,
                 (channel, bank, row, fetch_end, 1, 5)),
            )
            seq += 1
            complete = fetch_end
        if resident:
            n_hits += 1
            if not is_write:
                lh_append(complete - inow)
        else:
            n_misses += 1
            if not is_write:
                lm_append(complete - inow)
        if replace:
            heap_replace(inflight, complete)
        else:
            heap_push(inflight, complete)
            depth += 1
        if not is_write:
            now += (complete - inow) * stall_scale
        if complete > end:
            end = complete

    cache._pending_seq = seq
    state.now = now
    state.end = end
    _flush_stats(
        cache, hits=n_hits, misses=n_misses,
        lat_hits=lat_hits, lat_miss=lat_miss, dram_reads=d_reads,
    )
    _flush_offchip(cache, fetched, wb_bytes)
    if predictor is not None:
        _flush_predictor(predictor, p_correct, p_wrong)
