"""Extension studies beyond the paper's evaluation section.

* **Victim-buffer study** — quantifies the Related-Work claim that a
  victim cache would help little at the DRAM cache level ("very little
  temporal reuse" of evicted blocks).
* **Controller comparison** — the paper's demand-ratio global adaptation
  vs the set-dueling election it cites; measures agreement of the
  adapted state and the resulting hit rate / bandwidth.
* **Space utilization** — referenced-bytes / committed-bytes of the
  fixed-512B organization vs the Bi-Modal one (the cache-space
  utilization axis of the paper's design-space study).

Each mix is one parallelizable cell dispatched through
:func:`repro.harness.parallel.run_grid`; under fault collection a failed
cell drops only its own row.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bimodal.cache import BiModalConfig
from repro.bimodal.victim import VictimProbeWrapper
from repro.harness.parallel import complete_groups, run_grid
from repro.harness.runner import (
    ExperimentSetup,
    build_cache,
    drive_cache,
    run_scheme_on_mix,
    scaled_locator_bits,
)

__all__ = [
    "victim_buffer_study",
    "controller_comparison",
    "space_utilization_comparison",
]


def _records(setup: ExperimentSetup, mix_name: str):
    trace = setup.trace(mix_name)
    return ((r.address, r.is_write, r.icount) for r in trace)


@dataclass(frozen=True)
class _VictimCell:
    mix: str
    setup: ExperimentSetup
    entries: int


def _victim_row(cell: _VictimCell) -> dict:
    cache = build_cache("bimodal", cell.setup.system, scale=cell.setup.scale)
    wrapper = VictimProbeWrapper(cache, entries=cell.entries)
    drive_cache(
        wrapper, _records(cell.setup, cell.mix), streams=cell.setup.num_cores
    )
    return {
        "mix": cell.mix,
        "misses": cache.hit_stat.misses,
        "victim_hits": wrapper.buffer.probe_hits,
        "victim_hit_fraction": wrapper.victim_hit_fraction,
    }


def victim_buffer_study(
    *,
    setup: ExperimentSetup | None = None,
    mix_names: list[str] | None = None,
    entries: int = 512,
    jobs: int | None = None,
) -> list[dict]:
    """Fraction of DRAM cache misses a victim buffer would serve.

    The paper found "very little benefit"; the expected shape is a small
    victim-hit fraction across mixes (each such hit would save one
    off-chip fetch at best).
    """
    setup = setup or ExperimentSetup()
    names = mix_names or ["Q2", "Q7", "Q17", "Q23"]
    cells = [_VictimCell(mix=name, setup=setup, entries=entries) for name in names]
    results = run_grid(_victim_row, cells, jobs=jobs)
    rows = [row for _, (row,) in complete_groups(names, results, 1)]
    if rows:
        total_m = sum(r["misses"] for r in rows)
        total_h = sum(r["victim_hits"] for r in rows)
        rows.append(
            {
                "mix": "total",
                "misses": total_m,
                "victim_hits": total_h,
                "victim_hit_fraction": total_h / total_m if total_m else 0.0,
            }
        )
    return rows


@dataclass(frozen=True)
class _ControllerCell:
    mix: str
    setup: ExperimentSetup


def _controller_row(cell: _ControllerCell) -> dict:
    k = scaled_locator_bits(scale=cell.setup.scale)
    row: dict = {"mix": cell.mix}
    for controller in ("demand", "dueling"):
        cfg = BiModalConfig(
            locator_index_bits=k,
            predictor_index_bits=12,
            tracker_sample_every=1,
            adaptation_interval=2_000,
            controller=controller,
        )
        stats = run_scheme_on_mix(
            "bimodal", cell.mix, setup=cell.setup, bimodal_config=cfg
        ).stats
        row[f"{controller}_hit"] = stats["hit_rate"]
        row[f"{controller}_state"] = str(stats["global_state"])
        row[f"{controller}_offchip_mb"] = stats["offchip_fetched_bytes"] / (
            1 << 20
        )
    return row


def controller_comparison(
    *,
    setup: ExperimentSetup | None = None,
    mix_names: list[str] | None = None,
    jobs: int | None = None,
) -> list[dict]:
    """Demand-ratio (paper) vs set-dueling (cited) global adaptation."""
    setup = setup or ExperimentSetup()
    names = mix_names or ["Q2", "Q7", "Q23"]
    cells = [_ControllerCell(mix=name, setup=setup) for name in names]
    results = run_grid(_controller_row, cells, jobs=jobs)
    return [row for _, (row,) in complete_groups(names, results, 1)]


@dataclass(frozen=True)
class _SpaceCell:
    mix: str
    setup: ExperimentSetup


def _space_row(cell: _SpaceCell) -> dict:
    row: dict = {"mix": cell.mix}
    for scheme in ("fixed512", "bimodal"):
        result = run_scheme_on_mix(scheme, cell.mix, setup=cell.setup)
        row[f"{scheme}_space_util"] = result.cache.space_utilization()
    row["gain"] = row["bimodal_space_util"] - row["fixed512_space_util"]
    return row


def space_utilization_comparison(
    *,
    setup: ExperimentSetup | None = None,
    mix_names: list[str] | None = None,
    jobs: int | None = None,
) -> list[dict]:
    """Referenced/committed bytes: fixed-512B vs Bi-Modal.

    Bi-modality exists to close exactly this gap (Section II-B's
    block-internal fragmentation argument).
    """
    setup = setup or ExperimentSetup()
    names = mix_names or ["Q2", "Q7", "Q23"]
    cells = [_SpaceCell(mix=name, setup=setup) for name in names]
    results = run_grid(_space_row, cells, jobs=jobs)
    return [row for _, (row,) in complete_groups(names, results, 1)]
