"""Cache hierarchy filtering tests."""

import pytest

from repro.common.config import LLSCConfig
from repro.sram.hierarchy import CacheHierarchy


@pytest.fixture
def hierarchy():
    return CacheHierarchy(2, LLSCConfig(size=1 << 20, associativity=8, hit_latency=7))


class TestFiltering:
    def test_first_access_misses_everywhere(self, hierarchy):
        out = hierarchy.access(0, 0x1000)
        assert out.level == "miss"
        assert out.latency == 2 + 7

    def test_second_access_hits_l1(self, hierarchy):
        hierarchy.access(0, 0x1000)
        out = hierarchy.access(0, 0x1000)
        assert out.level == "l1"
        assert out.latency == 2

    def test_other_core_hits_shared_llsc(self, hierarchy):
        hierarchy.access(0, 0x1000)
        out = hierarchy.access(1, 0x1000)
        assert out.level == "llsc"
        assert out.latency == 9

    def test_private_l1s(self, hierarchy):
        hierarchy.access(0, 0x1000)
        assert not hierarchy.l1s[1].contains(0x1000)
        assert hierarchy.l1s[0].contains(0x1000)

    def test_llsc_miss_rate(self, hierarchy):
        hierarchy.access(0, 0x1000)
        hierarchy.access(1, 0x1000)
        assert hierarchy.llsc_miss_rate() == pytest.approx(0.5)


class TestWritebackPath:
    def test_dirty_llsc_victim_surfaces(self):
        # LLSC with a single set of 1 way: any second block evicts.
        cfg = LLSCConfig(size=64, associativity=1, hit_latency=7)
        h = CacheHierarchy(1, cfg)
        h.access(0, 0x0000, is_write=True)
        out = h.access(0, 0x40000)
        assert out.level == "miss"
        assert out.writeback_address == 0x0000

    def test_clean_victim_no_writeback(self):
        cfg = LLSCConfig(size=64, associativity=1, hit_latency=7)
        h = CacheHierarchy(1, cfg)
        h.access(0, 0x0000)
        out = h.access(0, 0x40000)
        assert out.writeback_address is None


def test_reset_stats():
    h = CacheHierarchy(1, LLSCConfig(size=1 << 20, associativity=8))
    h.access(0, 0x1000)
    h.reset_stats()
    assert h.llsc.accesses.total == 0


def test_requires_cores():
    with pytest.raises(ValueError):
        CacheHierarchy(0, LLSCConfig(size=1 << 20, associativity=8))
