"""Tables I and III: the feature matrix and way-locator storage table."""

from __future__ import annotations

from repro.common.tables import (
    PAPER_TABLE3_LATENCY_CYCLES,
    PAPER_TABLE3_STORAGE_KB,
    sram_latency_cycles,
    way_locator_storage_bytes,
)

__all__ = ["table1_feature_matrix", "table3_way_locator_storage"]


def table1_feature_matrix() -> list[dict]:
    """Table I: qualitative comparison of DRAM cache organizations."""
    return [
        {
            "attribute": "block_size",
            "lohhill": "64B",
            "alloy": "64B",
            "atcache": "64B",
            "footprint": "2048B",
            "bimodal": "512B+64B",
        },
        {
            "attribute": "associativity",
            "lohhill": "29-way",
            "alloy": "direct",
            "atcache": "29-way",
            "footprint": "fixed",
            "bimodal": "4-18 way",
        },
        {
            "attribute": "metadata",
            "lohhill": "DRAM",
            "alloy": "DRAM",
            "atcache": "DRAM",
            "footprint": "SRAM",
            "bimodal": "DRAM",
        },
        {
            "attribute": "metadata_overhead",
            "lohhill": "high",
            "alloy": "high",
            "atcache": "high",
            "footprint": "low",
            "bimodal": "low",
        },
        {
            "attribute": "hit_latency",
            "lohhill": "high",
            "alloy": "low",
            "atcache": "high",
            "footprint": "moderate",
            "bimodal": "low",
        },
        {
            "attribute": "hit_rate",
            "lohhill": "low",
            "alloy": "low",
            "atcache": "low",
            "footprint": "high",
            "bimodal": "high",
        },
        {
            "attribute": "wasted_offchip_bw",
            "lohhill": "none",
            "alloy": "none",
            "atcache": "none",
            "footprint": "low",
            "bimodal": "low",
        },
        {
            "attribute": "internal_fragmentation",
            "lohhill": "none",
            "alloy": "none",
            "atcache": "none",
            "footprint": "high",
            "bimodal": "reduced",
        },
    ]


# (cache MB, memory GB) -> address bits and set-index bits at 2KB sets.
_TABLE3_CONFIGS = {
    (128, 4): (32, 16),
    (256, 8): (33, 17),
    (512, 16): (34, 18),
}


def table3_way_locator_storage() -> list[dict]:
    """Table III: way locator storage and latency vs K and cache size.

    Computes the Figure 6 entry format's storage with our closed-form
    model and places the paper's published numbers alongside.
    """
    rows = []
    for k in (10, 12, 14, 16):
        for (cache_mb, mem_gb), (addr_bits, set_bits) in _TABLE3_CONFIGS.items():
            storage = way_locator_storage_bytes(
                address_bits=addr_bits,
                set_index_bits=set_bits,
                offset_bits=9,
                locator_index_bits=k,
                max_ways=18,
            )
            rows.append(
                {
                    "K": k,
                    "cache_mb": cache_mb,
                    "mem_gb": mem_gb,
                    "model_kb": storage / 1024.0,
                    "paper_kb": PAPER_TABLE3_STORAGE_KB[k][(cache_mb, mem_gb)],
                    "model_cycles": sram_latency_cycles(int(storage)),
                    "paper_cycles": PAPER_TABLE3_LATENCY_CYCLES[k],
                }
            )
    return rows
