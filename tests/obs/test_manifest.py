"""Run manifests: stable hashing, collection, sibling-file placement."""

import json

from repro.harness.runner import ExperimentSetup
from repro.obs.manifest import RunManifest, config_hash, git_revision


class TestConfigHash:
    def test_stable_across_key_order(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})

    def test_differs_on_value_change(self):
        assert config_hash({"seed": 1}) != config_hash({"seed": 2})

    def test_accepts_dataclasses(self):
        a = ExperimentSetup(num_cores=4, seed=1)
        b = ExperimentSetup(num_cores=4, seed=1)
        c = ExperimentSetup(num_cores=4, seed=2)
        assert config_hash(a) == config_hash(b)
        assert config_hash(a) != config_hash(c)


class TestCollect:
    def test_collect_captures_env_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        monkeypatch.setenv("UNRELATED", "x")
        manifest = RunManifest.collect(
            "fig2", config=ExperimentSetup(), seed=1, argv=["run", "fig2"]
        )
        assert manifest.env.get("REPRO_JOBS") == "4"
        assert "UNRELATED" not in manifest.env
        assert manifest.experiment == "fig2"
        assert manifest.python and manifest.repro_version

    def test_git_revision_in_repo(self):
        # The test suite runs inside the repo, so a revision must resolve.
        rev = git_revision()
        assert rev is None or len(rev.split("+")[0]) == 40

    def test_clean_run_is_complete_with_no_failures(self):
        manifest = RunManifest.collect("fig7", seed=1)
        assert manifest.status == "complete"
        assert manifest.failures == []

    def test_failures_mark_the_run_partial(self):
        failure = {
            "index": 3,
            "exc_type": "WorkerCrashError",
            "message": "worker process died",
            "attempts": 2,
            "scheme": "bimodal",
            "mix": "Q7",
        }
        manifest = RunManifest.collect("fig7", seed=1, failures=[failure])
        assert manifest.status == "partial"
        assert manifest.failures == [failure]
        dumped = manifest.to_dict()
        assert dumped["status"] == "partial"
        assert dumped["failures"][0]["exc_type"] == "WorkerCrashError"

    def test_write_next_to_artifact(self, tmp_path):
        out = tmp_path / "rows.json"
        out.write_text("{}")
        manifest = RunManifest.collect("table1", seed=7)
        path = manifest.write_next_to(out)
        assert path == tmp_path / "rows.json.manifest.json"
        loaded = json.loads(path.read_text())
        assert loaded["experiment"] == "table1"
        assert loaded["seed"] == 7
        assert loaded["config_hash"] == manifest.config_hash
