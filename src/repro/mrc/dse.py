"""Pareto-pruned design-space exploration over the MRC engine.

The exhaustive approach to "which cache configuration is best" is one
full timing simulation per (cache size × block size × associativity ×
policy) point per mix. This driver spends that budget only where it
matters:

1. **Estimate** — one ghost pass per mix ranks every design point by
   estimated post-warmup hit rate (a few dict probes per record; see
   :mod:`repro.mrc.engine`).
2. **Prune** — only the estimated Pareto frontier (maximize hit rate,
   minimize capacity) graduates to timing simulation, capped at
   ``max_frontier`` points.
3. **Successive halving** — frontier points first run quarter-length
   timing simulations; the better half re-runs at full length. The
   winner is the fully-simulated point with the best measured hit rate
   (capacity breaks ties).

Cost accounting is explicit: one "full simulation equivalent" is one
full-length scheme×mix drive, a quarter-length run charges 0.25, and
``stats["speedup"]`` is exhaustive-grid cost over cost actually paid —
the number the ``mrc`` perfbench mode commits to ``BENCH_perf.json``
(the acceptance gate requires ≥ 5×).

Both phases fan out through :func:`repro.harness.parallel.run_grid`, so
``--jobs``, checkpoint/resume and progress events work exactly as they
do for figure grids.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.bimodal.cache import BiModalConfig
from repro.harness.parallel import run_grid
from repro.harness.runner import (
    ExperimentSetup,
    build_cache,
    drive_cache,
    scaled_locator_bits,
)
from repro.mrc.engine import MRCSpec, mrc_pass, sample_addresses
from repro.mrc.ghost import AdaptiveGhost, GhostCache
from repro.workloads.trace_cache import materialized_columns

__all__ = [
    "DesignPoint",
    "DseEstimateCell",
    "DseSimCell",
    "default_space",
    "dse_estimate_cell",
    "dse_sim_cell",
    "pareto_frontier",
    "run_design_space",
]

_POLICIES = ("fixed", "adaptive")


@dataclass(frozen=True, slots=True)
class DesignPoint:
    """One candidate organization in the swept space.

    ``cache_mb`` is the *scaled* capacity in MB (the same unit
    ``AnttCell.cache_mb`` uses — already divided by the experiment
    scale). ``policy`` is ``fixed`` (every fill is a ``block_size``
    block) or ``adaptive`` (bi-modal (X, Y) re-partitioning over
    ``block_size`` big blocks).
    """

    cache_mb: int
    block_size: int
    associativity: int
    policy: str

    def label(self) -> str:
        return (
            f"{self.cache_mb}MB/{self.block_size}B"
            f"/{self.associativity}w/{self.policy}"
        )


def default_space() -> tuple[DesignPoint, ...]:
    """The 36-point default sweep: 3 capacities × 3 blocks × 2 assoc × 2."""
    return tuple(
        DesignPoint(
            cache_mb=cache_mb,
            block_size=block_size,
            associativity=assoc,
            policy=policy,
        )
        for cache_mb in (4, 8, 16)
        for block_size in (256, 512, 1024)
        for assoc in (4, 8)
        for policy in _POLICIES
    )


def _point_ghost(point: DesignPoint, capacity: int):
    """The tag-only model estimating ``point``'s hit rate."""
    if point.policy == "adaptive":
        return AdaptiveGhost(
            capacity,
            set_size=point.block_size * point.associativity,
            big_block_size=point.block_size,
        )
    return GhostCache(capacity, point.associativity, point.block_size)


# ----------------------------------------------------------------------
# phase 1: ghost estimation (one cell per mix)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DseEstimateCell:
    """One ghost pass: every design point against one mix's trace."""

    mix: str
    setup: ExperimentSetup
    space: tuple[DesignPoint, ...]
    sample_rate: float = 1.0
    warmup_fraction: float = 0.5


def dse_estimate_cell(cell: DseEstimateCell) -> list:
    """Worker: per-point ``[hits, accesses, best_x, best_y]`` rows.

    Consumes the shared materialized address column once (sampled by
    the seeded frame hash), driving every point's ghost over the same
    sub-stream with the timing drive's warm-up boundary.
    """
    setup = cell.setup
    addresses, _, _ = materialized_columns(
        cell.mix,
        accesses_per_core=setup.accesses_per_core,
        seed=setup.seed,
        footprint_scale=setup.footprint_scale,
        intensity_scale=setup.intensity_scale,
    )
    stream = sample_addresses(addresses, cell.sample_rate, setup.seed)
    n = len(stream)
    warmup = int(n * cell.warmup_fraction) if cell.warmup_fraction else 0
    rows = []
    for point in cell.space:
        ghost = _point_ghost(point, point.cache_mb << 20)
        ghost.consume(stream, warmup)
        best = ghost.best_state if isinstance(ghost, AdaptiveGhost) else (0, 0)
        rows.append([ghost.hits, ghost.accesses, best[0], best[1]])
    from repro.obs import get_metrics

    metrics = get_metrics()
    metrics.add("mrc.passes")
    metrics.add("mrc.records", len(addresses))
    metrics.add("mrc.sampled_records", n)
    metrics.add("mrc.ghosts", len(cell.space))
    return rows


# ----------------------------------------------------------------------
# phase 2/3: timing simulation of the frontier
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DseSimCell:
    """One timing run of a design point on one mix (scheme protocol)."""

    point: DesignPoint
    mix: str
    setup: ExperimentSetup
    warmup_fraction: float = 0.5
    window: int = 16

    @property
    def scheme(self) -> str:  # progress-line label (see _cell_attrs)
        return self.point.label()


def _point_config(
    point: DesignPoint, setup: ExperimentSetup, total: int
) -> BiModalConfig:
    """BiModalConfig realizing ``point`` (fixed policy = bimodal off)."""
    scale = setup.scale
    return BiModalConfig(
        set_size=point.block_size * point.associativity,
        big_block_size=point.block_size,
        enable_bimodal=point.policy == "adaptive",
        enable_way_locator=True,
        locator_index_bits=scaled_locator_bits(scale=scale),
        predictor_index_bits=12 if scale > 1 else 16,
        tracker_sample_every=1 if scale > 1 else 25,
        adaptation_interval=max(1_000, total // 150),
    )


def dse_sim_cell(cell: DseSimCell) -> dict:
    """Worker: full timing drive of one frontier point on one mix."""
    setup = cell.setup
    system = setup.system.scaled_cache(cell.point.cache_mb << 20)
    total = setup.accesses_per_core * setup.num_cores
    cache = build_cache(
        "bimodal",
        system,
        bimodal_config=_point_config(cell.point, setup, total),
        scale=setup.scale,
        adaptation_interval=max(1_000, total // 150),
    )
    result = drive_cache(
        cache,
        setup.trace_records(cell.mix),
        window=cell.window,
        streams=setup.num_cores,
        warmup=int(total * cell.warmup_fraction),
        backend=getattr(setup, "backend", "") or None,
    )
    return {
        "hit_rate": result.stats.get("hit_rate", 0.0),
        "end_time": result.end_time,
        "records": result.accesses,
    }


# ----------------------------------------------------------------------
# ranking
# ----------------------------------------------------------------------
def pareto_frontier(
    points: list[DesignPoint], rates: list[float], *, max_frontier: int = 8
) -> list[int]:
    """Indices of non-dominated points (higher rate, smaller capacity).

    A point is dominated when another matches-or-beats it on both axes
    and strictly beats it on one. The frontier is capped at
    ``max_frontier`` survivors by estimated rate (largest first) and
    returned in estimated-rate order.
    """
    frontier = []
    for i, (pi, ri) in enumerate(zip(points, rates)):
        dominated = False
        for j, (pj, rj) in enumerate(zip(points, rates)):
            if j == i:
                continue
            if (
                rj >= ri
                and pj.cache_mb <= pi.cache_mb
                and (rj > ri or pj.cache_mb < pi.cache_mb)
            ):
                dominated = True
                break
        if not dominated:
            frontier.append(i)
    frontier.sort(key=lambda i: (-rates[i], points[i].cache_mb))
    return frontier[:max_frontier]


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def run_design_space(
    *,
    setup: ExperimentSetup | None = None,
    mix_names: list[str] | None = None,
    space: tuple[DesignPoint, ...] | None = None,
    sample_rate: float = 1.0,
    max_frontier: int = 8,
    jobs: int | None = None,
) -> dict:
    """Explore the design space: estimate all, simulate the frontier.

    Returns ``{"rows": [...], "winner": {...} | None, "stats": {...}}``:
    one row per design point carrying its estimate (``est_hit_rate``,
    ``est_stderr``, best (X, Y)), whether it made the frontier, the
    fraction of a full simulation it received (0, 0.25 or 1.0) and —
    when simulated — its measured ``hit_rate``/``end_time``. ``stats``
    carries the cost accounting, including ``speedup`` (exhaustive
    full-sim count over full-sim equivalents actually spent) and
    ``full_sims_avoided``.
    """
    setup = setup or ExperimentSetup()
    names = mix_names or list(setup.mixes())
    points = list(space if space is not None else default_space())
    if not points:
        raise ValueError("design space is empty")
    if not 0.0 < sample_rate <= 1.0:
        raise ValueError("sample_rate must be in (0, 1]")

    # Phase 1: one ghost pass per mix (parallel, checkpointable).
    estimate_cells = [
        DseEstimateCell(
            mix=name,
            setup=setup,
            space=tuple(points),
            sample_rate=sample_rate,
        )
        for name in names
    ]
    per_mix = run_grid(dse_estimate_cell, estimate_cells, jobs=jobs)
    hits = [0] * len(points)
    accesses = [0] * len(points)
    best_xy: list[tuple[int, int]] = [(0, 0)] * len(points)
    estimated_mixes = 0
    for mix_rows in per_mix:
        if mix_rows is None:  # failed cell (collector active)
            continue
        estimated_mixes += 1
        for i, (h, a, x, y) in enumerate(mix_rows):
            hits[i] += h
            accesses[i] += a
            if (x, y) != (0, 0):
                best_xy[i] = (x, y)
    if not estimated_mixes:
        raise RuntimeError("every estimation cell failed; cannot rank")
    rates = [h / a if a else 0.0 for h, a in zip(hits, accesses)]

    # Phase 2: prune to the estimated Pareto frontier.
    frontier = pareto_frontier(points, rates, max_frontier=max_frontier)

    # Phase 3: successive halving — quarter-length runs on the whole
    # frontier, full-length runs on the better half.
    quarter_setup = replace(
        setup, accesses_per_core=max(1, setup.accesses_per_core // 4)
    )
    quarter_cells = [
        DseSimCell(point=points[i], mix=name, setup=quarter_setup)
        for i in frontier
        for name in names
    ]
    quarter_results = run_grid(dse_sim_cell, quarter_cells, jobs=jobs)
    quarter_rate: dict[int, float] = {}
    for k, i in enumerate(frontier):
        chunk = quarter_results[k * len(names) : (k + 1) * len(names)]
        rated = [r["hit_rate"] for r in chunk if r is not None]
        if rated:
            quarter_rate[i] = sum(rated) / len(rated)
    survivors = sorted(
        quarter_rate,
        key=lambda i: (-quarter_rate[i], points[i].cache_mb),
    )[: max(1, (len(frontier) + 1) // 2)]

    full_cells = [
        DseSimCell(point=points[i], mix=name, setup=setup)
        for i in survivors
        for name in names
    ]
    full_results = run_grid(dse_sim_cell, full_cells, jobs=jobs)
    measured: dict[int, dict] = {}
    for k, i in enumerate(survivors):
        chunk = full_results[k * len(names) : (k + 1) * len(names)]
        rated = [r for r in chunk if r is not None]
        if rated:
            measured[i] = {
                "hit_rate": sum(r["hit_rate"] for r in rated) / len(rated),
                "end_time": max(r["end_time"] for r in rated),
                "mixes": len(rated),
            }

    # Cost accounting, in full-simulation equivalents per mix-cell.
    quarter_equiv = 0.25 * len(frontier)
    full_equiv = float(len(survivors))
    spent = quarter_equiv + full_equiv
    exhaustive = float(len(points))
    speedup = exhaustive / spent if spent else float("inf")

    rows = []
    for i, point in enumerate(points):
        row = {
            "cache_mb": point.cache_mb,
            "block_size": point.block_size,
            "associativity": point.associativity,
            "policy": point.policy,
            "est_hit_rate": rates[i],
            "est_hits": hits[i],
            "est_accesses": accesses[i],
            "best_x": best_xy[i][0],
            "best_y": best_xy[i][1],
            "frontier": i in frontier,
            "sim_fraction": 1.0 if i in measured else (0.25 if i in quarter_rate else 0.0),
        }
        if i in measured:
            row["hit_rate"] = measured[i]["hit_rate"]
            row["end_time"] = measured[i]["end_time"]
        rows.append(row)

    winner = None
    if measured:
        best = min(
            measured, key=lambda i: (-measured[i]["hit_rate"], points[i].cache_mb)
        )
        winner = dict(rows[best])

    stats = {
        "points": len(points),
        "mixes": len(names),
        "estimated_mixes": estimated_mixes,
        "frontier_size": len(frontier),
        "survivors": len(survivors),
        "sample_rate": sample_rate,
        "full_sims_equivalent": spent,
        "exhaustive_sims": exhaustive,
        "full_sims_avoided": exhaustive - spent,
        "speedup": speedup,
    }
    return {"rows": rows, "winner": winner, "stats": stats}


def mrc_curves_for_mix(
    mix: str,
    *,
    setup: ExperimentSetup | None = None,
    capacities: tuple[int, ...] = (),
    block_sizes: tuple[int, ...] = (),
    associativities: tuple[int, ...] = (),
    xy_capacities: tuple[int, ...] = (),
    base_capacity: int | None = None,
    base_block_size: int = 64,
    base_associativity: int = 8,
    sample_rate: float = 1.0,
    warmup_fraction: float = 0.0,
):
    """Convenience wrapper: one :func:`mrc_pass` over a mix's trace."""
    setup = setup or ExperimentSetup()
    addresses, _, _ = materialized_columns(
        mix,
        accesses_per_core=setup.accesses_per_core,
        seed=setup.seed,
        footprint_scale=setup.footprint_scale,
        intensity_scale=setup.intensity_scale,
    )
    spec = MRCSpec(
        capacities=capacities,
        block_sizes=block_sizes,
        associativities=associativities,
        base_capacity=(
            base_capacity
            if base_capacity is not None
            else setup.system.dram_cache.capacity
        ),
        base_block_size=base_block_size,
        base_associativity=base_associativity,
        xy_capacities=xy_capacities,
        sample_rate=sample_rate,
        seed=setup.seed,
        warmup_fraction=warmup_fraction,
    )
    return mrc_pass(addresses, spec)
