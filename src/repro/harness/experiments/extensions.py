"""Extension studies beyond the paper's evaluation section.

* **Victim-buffer study** — quantifies the Related-Work claim that a
  victim cache would help little at the DRAM cache level ("very little
  temporal reuse" of evicted blocks).
* **Controller comparison** — the paper's demand-ratio global adaptation
  vs the set-dueling election it cites; measures agreement of the
  adapted state and the resulting hit rate / bandwidth.
* **Space utilization** — referenced-bytes / committed-bytes of the
  fixed-512B organization vs the Bi-Modal one (the cache-space
  utilization axis of the paper's design-space study).
"""

from __future__ import annotations

from repro.bimodal.cache import BiModalConfig
from repro.bimodal.victim import VictimProbeWrapper
from repro.harness.runner import (
    ExperimentSetup,
    build_cache,
    drive_cache,
    run_scheme_on_mix,
    scaled_locator_bits,
)

__all__ = [
    "victim_buffer_study",
    "controller_comparison",
    "space_utilization_comparison",
]


def _records(setup: ExperimentSetup, mix_name: str):
    trace = setup.trace(mix_name)
    return ((r.address, r.is_write, r.icount) for r in trace)


def victim_buffer_study(
    *,
    setup: ExperimentSetup | None = None,
    mix_names: list[str] | None = None,
    entries: int = 512,
) -> list[dict]:
    """Fraction of DRAM cache misses a victim buffer would serve.

    The paper found "very little benefit"; the expected shape is a small
    victim-hit fraction across mixes (each such hit would save one
    off-chip fetch at best).
    """
    setup = setup or ExperimentSetup()
    names = mix_names or ["Q2", "Q7", "Q17", "Q23"]
    rows = []
    for name in names:
        cache = build_cache("bimodal", setup.system, scale=setup.scale)
        wrapper = VictimProbeWrapper(cache, entries=entries)
        drive_cache(wrapper, _records(setup, name), streams=setup.num_cores)
        rows.append(
            {
                "mix": name,
                "misses": cache.hit_stat.misses,
                "victim_hits": wrapper.buffer.probe_hits,
                "victim_hit_fraction": wrapper.victim_hit_fraction,
            }
        )
    if rows:
        total_m = sum(r["misses"] for r in rows)
        total_h = sum(r["victim_hits"] for r in rows)
        rows.append(
            {
                "mix": "total",
                "misses": total_m,
                "victim_hits": total_h,
                "victim_hit_fraction": total_h / total_m if total_m else 0.0,
            }
        )
    return rows


def controller_comparison(
    *,
    setup: ExperimentSetup | None = None,
    mix_names: list[str] | None = None,
) -> list[dict]:
    """Demand-ratio (paper) vs set-dueling (cited) global adaptation."""
    setup = setup or ExperimentSetup()
    names = mix_names or ["Q2", "Q7", "Q23"]
    k = scaled_locator_bits(scale=setup.scale)
    rows = []
    for name in names:
        row: dict = {"mix": name}
        for controller in ("demand", "dueling"):
            cfg = BiModalConfig(
                locator_index_bits=k,
                predictor_index_bits=12,
                tracker_sample_every=1,
                adaptation_interval=2_000,
                controller=controller,
            )
            stats = run_scheme_on_mix(
                "bimodal", name, setup=setup, bimodal_config=cfg
            ).stats
            row[f"{controller}_hit"] = stats["hit_rate"]
            row[f"{controller}_state"] = str(stats["global_state"])
            row[f"{controller}_offchip_mb"] = stats["offchip_fetched_bytes"] / (
                1 << 20
            )
        rows.append(row)
    return rows


def space_utilization_comparison(
    *,
    setup: ExperimentSetup | None = None,
    mix_names: list[str] | None = None,
) -> list[dict]:
    """Referenced/committed bytes: fixed-512B vs Bi-Modal.

    Bi-modality exists to close exactly this gap (Section II-B's
    block-internal fragmentation argument).
    """
    setup = setup or ExperimentSetup()
    names = mix_names or ["Q2", "Q7", "Q23"]
    rows = []
    for name in names:
        row: dict = {"mix": name}
        for scheme in ("fixed512", "bimodal"):
            result = run_scheme_on_mix(scheme, name, setup=setup)
            row[f"{scheme}_space_util"] = result.cache.space_utilization()
        row["gain"] = row["bimodal_space_util"] - row["fixed512_space_util"]
        rows.append(row)
    return rows
