"""The Bi-Modal DRAM cache (the paper's contribution, Section III).

Orchestrates the four mechanisms over the stacked-DRAM substrate:

1. **bi-modal sets** — each set holds X big (512 B) + Y small (64 B)
   blocks and drifts toward the cache-wide preferred state via Table II
   replacement actions;
2. **block size predictor** — set-sampled utilization tracking trains a
   2-bit counter table that sizes each miss's fill;
3. **way locator** — a small exact-match SRAM table that converts >90% of
   accesses into a single DRAM data access with no metadata read;
4. **metadata-in-DRAM** — tags live in a dedicated metadata bank on
   another channel and are read (2 bursts) concurrently with the
   anticipatory activation of the data row.

Feature flags reproduce the paper's component analysis (Figure 8a):
``enable_bimodal=False`` gives *Way-Locator-Only* (fixed 512 B blocks);
``enable_way_locator=False`` gives *Bi-Modal-Only*; both False is a plain
fixed-512B tags-in-DRAM cache.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.common.addressing import AddressMap
from repro.common.config import DRAMCacheGeometry
from repro.common.stats import Counter, Histogram, RateStat
from repro.dram.controller import MemoryController
from repro.dramcache.base import DRAMCacheBase
from repro.bimodal.dueling import SetDuelingController
from repro.bimodal.global_state import GlobalStateController
from repro.bimodal.metadata import MetadataLayout
from repro.bimodal.sets import BiModalSet, EvictedBlock, allowed_states
from repro.bimodal.size_predictor import BlockSizePredictor, UtilizationTracker
from repro.bimodal.way_locator import WayLocator

__all__ = ["BiModalConfig", "BiModalCache"]

_TAG_COMPARE_CYCLES = 1
_META_UPDATE_BATCH = 16  # coalesced metadata-update drain granularity


@dataclass(frozen=True)
class BiModalConfig:
    """Tunables of the Bi-Modal organization (paper defaults)."""

    set_size: int = 2048
    big_block_size: int = 512
    address_bits: int = 40
    locator_index_bits: int = 14  # K (Table III: K=14 is the sweet spot)
    predictor_index_bits: int = 16  # P
    utilization_threshold: int = 5  # T
    adaptation_weight: float = 0.75  # W
    adaptation_interval: int = 1_000_000
    tracker_sample_every: int = 25  # ~4% of sets
    enable_bimodal: bool = True
    enable_way_locator: bool = True
    colocated_metadata: bool = False  # Fig. 9b ablation
    parallel_tag_data: bool = True  # serial-tag ablation
    controller: str = "demand"  # "demand" (paper) | "dueling" (extension)
    seed: int = 0


class BiModalCache(DRAMCacheBase):
    """Bi-modal, way-located, metadata-in-DRAM stacked cache."""

    name = "bimodal"

    def __init__(
        self,
        geometry: DRAMCacheGeometry,
        offchip: MemoryController,
        config: BiModalConfig | None = None,
    ) -> None:
        super().__init__(geometry, offchip)
        self.config = config or BiModalConfig()
        cfg = self.config
        self.addr_map = AddressMap(
            cache_size=geometry.capacity,
            set_size=cfg.set_size,
            block_size=cfg.big_block_size,
            address_bits=cfg.address_bits,
        )
        self.states = allowed_states(cfg.set_size, cfg.big_block_size)
        self.smalls_per_big = cfg.big_block_size // 64
        meta_bytes = 64 * (
            2 if cfg.set_size <= 2048 else 3
        )  # 18 tags -> 2 bursts; 36 tags -> 3 (Sec. III-D2)
        self.layout = MetadataLayout(
            num_sets=self.addr_map.num_sets,
            channels=geometry.geometry.channels,
            banks_per_channel=geometry.geometry.banks_per_channel,
            page_size=geometry.geometry.page_size,
            meta_bytes_per_set=meta_bytes,
            colocated=cfg.colocated_metadata,
        )
        self._sets: dict[int, BiModalSet] = {}
        self.locator = (
            WayLocator(
                cfg.locator_index_bits,
                address_bits=cfg.address_bits,
                set_index_bits=self.addr_map.set_index_bits,
                offset_bits=self.addr_map.offset_bits,
                max_ways=self.states[-1][0] + self.states[-1][1],
            )
            if cfg.enable_way_locator
            else None
        )
        self.predictor = BlockSizePredictor(
            cfg.predictor_index_bits, threshold=cfg.utilization_threshold
        )
        self.tracker = UtilizationTracker(
            self.predictor, sample_every=cfg.tracker_sample_every
        )
        if cfg.controller == "demand":
            self.global_ctrl = GlobalStateController(
                self.states,
                weight=cfg.adaptation_weight,
                interval=cfg.adaptation_interval,
                smalls_per_big=self.smalls_per_big,
            )
        elif cfg.controller == "dueling":
            self.global_ctrl = SetDuelingController(
                self.states,
                interval=cfg.adaptation_interval,
                smalls_per_big=self.smalls_per_big,
            )
        else:
            raise ValueError(f"unknown controller {cfg.controller!r}")
        if not cfg.enable_bimodal:
            self.global_ctrl.force_state(0)  # pinned (X, 0): fixed 512 B
        self._rng = random.Random(cfg.seed)
        # Access-path constants, hoisted out of the per-access hot loop.
        self._locator_latency = (
            self.locator.latency_cycles if self.locator is not None else 0
        )
        self._parallel_tags = cfg.parallel_tag_data and not cfg.colocated_metadata
        self._blocks_per_granule = max(1, 4096 // cfg.big_block_size)
        self._observe_leader = getattr(self.global_ctrl, "observe_leader", None)
        self._leader_rank = getattr(self.global_ctrl, "leader_rank", None)
        # Address-split fields and bound methods, flattened for the
        # per-access kernel (AddressMap stays the canonical definition;
        # resident() still goes through it).
        self._offset_bits = self.addr_map.offset_bits
        self._set_mask = self.addr_map._set_mask
        self._tag_shift = self.addr_map._tag_shift
        self._sub_mask = cfg.big_block_size - 1
        self._set_index_bits = self.addr_map.set_index_bits
        self._meta_bursts = self.layout.metadata_bursts
        self._dram_fast = self.dram.access_direct_fast
        self._record_global_access = self.global_ctrl.record_access
        # record_access inline support: both controller flavours tick
        # _accesses_in_interval and fire a boundary action; the bound
        # action lets _access_fast inline the common increment.
        self._gc_boundary = getattr(
            self.global_ctrl, "_adapt", None
        ) or self.global_ctrl._elect
        # Location tables, fully materialized: one flat list lookup per
        # access instead of a memoized method call. num_sets is a few
        # thousand entries even at full capacity.
        num_sets = self.addr_map.num_sets
        self._data_locs = [self.layout.data_location(i) for i in range(num_sets)]
        self._meta_locs = [self.layout.metadata_location(i) for i in range(num_sets)]
        # Flat device-kernel state, hoisted for the inlined locator-hit
        # data access in _access_fast. DRAMDevice.reset_stats() zeroes
        # its stat lists in place, so these references stay valid across
        # warmup resets; the timing scalars never change after build.
        dram = self.dram
        self._d_ready = dram._ready_at
        self._d_open = dram._open_row
        self._d_next_refresh = dram._next_refresh
        self._d_rb_hits = dram._rb_hits
        self._d_rb_misses = dram._rb_misses
        self._d_acts = dram._activations
        self._d_pres = dram._precharges
        self._d_bus_free = dram._bus_free
        self._d_bus_busy = dram._bus_busy
        self._d_refresh_stall = dram._refresh_stall
        self._d_trcd = dram._trcd
        self._d_trp_trcd = dram._trp_trcd
        self._d_tccd = dram._tccd
        self._d_cl = dram._cl
        self._d_burst = dram._burst_cycles
        nbk = dram._nbk
        self._data_kidx = [
            (ch, ch * nbk + bk, row) for (ch, bk, row) in self._data_locs
        ]
        # --- instrumentation -------------------------------------------
        self.metadata_rbh = RateStat()  # tag-read row-buffer hits (Fig 9b)
        self.small_access = RateStat()  # hit = access served by small block
        self.small_fills = Counter()
        self.big_fills = Counter()
        self.small_pred_overridden = Counter()
        self.utilization_hist = Histogram()  # evicted big-block utilization
        self.set_state_transitions = Counter()
        self.metadata_updates = 0
        self._pending_meta_updates = 0

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @property
    def locator_latency(self) -> int:
        return self._locator_latency

    def _get_set(self, set_index: int) -> BiModalSet:
        entry = self._sets.get(set_index)
        if entry is None:
            entry = BiModalSet(self.states, smalls_per_big=self.smalls_per_big)
            self._sets[set_index] = entry
        return entry

    def _block_key(self, set_index: int, tag: int) -> int:
        """Predictor key: the tag+set bits above the 4 KB boundary.

        Drawing the index bits from above the 4 KB granule (rather than
        the full block number) makes blocks of the same data structure
        share a predictor entry, so one sampled eviction trains the size
        decision for its whole neighbourhood — the generalization the
        paper's P-bits-of-tag+set indexing relies on.
        """
        block_number = (tag << self.addr_map.set_index_bits) | set_index
        return block_number // self._blocks_per_granule

    def _target_rank(self, set_index: int) -> int:
        """The (X, Y) rank this set should drift toward.

        Under set dueling, leader sets stay pinned to their candidate
        state; followers (and all sets under the demand controller) use
        the cache-wide elected/adapted rank.
        """
        leader = self._leader_rank
        if leader is not None:
            pinned = leader(set_index)
            if pinned is not None:
                return pinned
        return self.global_ctrl.rank

    def _victim_chooser(self, candidates, protected) -> int:
        """Random-not-recent: avoid the top-2 MRU ways when possible."""
        pool = [w for w in candidates if w not in protected] or list(candidates)
        return pool[self._rng.randrange(len(pool))]

    def _read_metadata(self, set_index: int, now: int) -> int:
        """Tag-array read from the metadata bank; returns tags-known time."""
        channel, bank, row = self._meta_locs[set_index]
        end = self._dram_fast(channel, bank, row, now, self._meta_bursts)
        rbh = self.metadata_rbh
        if self.dram.last_outcome == 0:
            rbh.hits += 1
        else:
            rbh.misses += 1
        return end + _TAG_COMPARE_CYCLES

    def _touch_metadata(self, set_index: int, now: int) -> None:
        """Posted metadata update (dirty bits / fills); off critical path.

        Updates are write-coalesced: the controller buffers them and
        drains a batch row-by-row when the bus is idle (standard write
        buffering under FR-FCFS), so they cost amortized bandwidth on the
        metadata bank without thrashing the open row between tag reads.
        One batched drain is charged per ``_META_UPDATE_BATCH`` updates,
        deferred to its stamp time like every posted operation.
        """
        self.metadata_updates += 1
        self._pending_meta_updates += 1
        if self._pending_meta_updates >= _META_UPDATE_BATCH:
            self._pending_meta_updates = 0
            channel, bank, row = self._meta_locs[set_index]
            self._post_call(
                now,
                self._dram_fast,
                channel, bank, row, now, _META_UPDATE_BATCH // 4,
            )

    def _data_access(self, set_index: int, now: int, *, bursts: int = 1) -> int:
        """Data-row access; returns the data-end time (flat)."""
        channel, bank, row = self._data_locs[set_index]
        return self._dram_fast(channel, bank, row, now, bursts)

    def _handle_evictions(
        self, set_index: int, evictions: list[EvictedBlock], now: int
    ) -> None:
        for record in evictions:
            if record.dirty_bursts:
                victim_addr = self.addr_map.rebuild(
                    record.tag, set_index, record.sub_offset
                )
                self._writeback_offchip(victim_addr, now, bursts=record.dirty_bursts)
            if record.big:
                self._account_waste(record.unused_sub_blocks)
                self.utilization_hist.add(record.utilization)
                self.tracker.observe_eviction(
                    set_index, self._block_key(set_index, record.tag), record.utilization
                )
            if self.locator is not None:
                self.locator.invalidate(
                    set_index, record.tag, record.sub_offset, is_big=record.big
                )

    # ------------------------------------------------------------------
    # Table II replacement
    # ------------------------------------------------------------------
    def _allocate(
        self, entry: BiModalSet, set_index: int, tag: int, sub: int, predicted_big: bool
    ) -> tuple[bool, int, list[EvictedBlock]]:
        """Apply Table II; returns (is_big, way, evictions)."""
        evictions: list[EvictedBlock] = []
        set_rank = entry.state_rank()
        glob_rank = self._target_rank(set_index)

        if predicted_big:
            if set_rank > glob_rank:
                # Set has more small ways than the global state wants:
                # evict 8 small blocks, reclaim a big way, insert there.
                evictions.extend(entry.grow_big())
                self.set_state_transitions.add()
            way, more = entry.allocate_big(tag, self._victim_chooser)
            evictions.extend(more)
            return True, way, evictions

        # predicted small
        if set_rank < glob_rank:
            # Set has more big ways than preferred: convert one.
            evictions.extend(entry.grow_small())
            self.set_state_transitions.add()
        if entry.y == 0:
            # Aligned at the all-big state: there is no small way to
            # replace, so the fill proceeds as a big block (the demand
            # counters will move the global state if this persists).
            self.small_pred_overridden.add()
            way, more = entry.allocate_big(tag, self._victim_chooser)
            evictions.extend(more)
            return True, way, evictions
        way, more = entry.allocate_small(tag, sub, self._victim_chooser)
        evictions.extend(more)
        return False, way, evictions

    def resident(self, address: int) -> bool:
        """State-only residency probe (prefetch bypass support)."""
        am = self.addr_map
        entry = self._sets.get(am.set_index(address))
        if entry is None:
            return False
        return entry.lookup(am.tag(address), am.sub_block(address)) is not None

    # ------------------------------------------------------------------
    # the access path (Section III-D)
    # ------------------------------------------------------------------
    def access_fast(self, address: int, now: int, is_write: bool = False) -> int:
        """Merged drive-loop entry: base accounting + scheme body in one
        frame, with the device kernel inlined on the locator-hit branch
        (it serves >90% of accesses once the locator is warm).

        Byte-identical to routing ``DRAMCacheBase.access_fast`` over the
        clean :meth:`_access_fast` copy below — the object-model methods
        (WayLocator.lookup, BiModalSet.touch_mru, device access paths)
        remain the canonical definitions, and the parity is pinned by
        the harness byte-identity tests.
        """
        pending = self._pending
        if pending and pending[0][0] <= now:
            self._drain_posted(now)
        # Inline of GlobalStateController.record_access (same shape for
        # the set-dueling flavour): tick the interval clock, fire the
        # hoisted boundary action when it wraps.
        gc = self.global_ctrl
        ticks = gc._accesses_in_interval + 1
        if ticks >= gc.interval:
            gc._accesses_in_interval = 0
            self._gc_boundary()
        else:
            gc._accesses_in_interval = ticks
        set_index = (address >> self._offset_bits) & self._set_mask
        tag = address >> self._tag_shift
        sub = (address & self._sub_mask) >> 6
        sets = self._sets
        entry = sets.get(set_index)
        if entry is None:
            entry = BiModalSet(self.states, smalls_per_big=self.smalls_per_big)
            sets[set_index] = entry
        t_after_locator = now + self._locator_latency

        # -- 1. way locator (inlined WayLocator.lookup) --------------------
        locator = self.locator
        if locator is not None:
            tick = locator._tick + 1
            locator._tick = tick
            combined = (tag << locator.set_index_bits) | set_index
            loc_key = combined >> locator.index_bits
            for loc_entry in locator._table[combined & locator._mask]:
                if loc_entry.key != loc_key:
                    continue
                is_big = loc_entry.is_big
                if not is_big and loc_entry.sub_offset != sub:
                    continue
                loc_entry.last_use = tick
                locator.lookups.hits += 1
                way = loc_entry.way
                observe = self._observe_leader
                if observe is not None:
                    observe(set_index, miss=False)
                # Inline of _record_block_touch.
                if is_big:
                    block = entry.big_ways[way]
                    if block is None:
                        raise RuntimeError("way locator pointed at an empty big way")
                    bit = 1 << sub
                    block.used_mask |= bit
                    if is_write:
                        block.dirty_mask |= bit
                else:
                    small = entry.small_ways[way]
                    if small is None:
                        raise RuntimeError("way locator pointed at an empty small way")
                    if is_write:
                        small.dirty = True
                # Inline of BiModalSet.touch_mru.
                mru = entry._mru
                mru_key = (is_big, way)
                if mru_key in mru:
                    mru.remove(mru_key)
                mru.insert(0, mru_key)
                del mru[2:]
                small_access = self.small_access
                if is_big:
                    small_access.misses += 1
                else:
                    small_access.hits += 1
                # Inlined device kernel (access_direct_fast, 1 burst).
                channel, idx, row = self._data_kidx[set_index]
                dram = self.dram
                dram.reads += 1
                dram.bytes_transferred += 64
                ready = self._d_ready
                t = ready[idx]
                if t_after_locator > t:
                    t = t_after_locator
                if t >= self._d_next_refresh[idx]:
                    t = self._d_refresh_stall(idx, t)
                open_rows = self._d_open
                current = open_rows[idx]
                if current == row:
                    dram.last_outcome = 0
                    self._d_rb_hits[idx] += 1
                    cas_issue = t
                elif current < 0:
                    dram.last_outcome = 1
                    self._d_acts[idx] += 1
                    self._d_rb_misses[idx] += 1
                    cas_issue = t + self._d_trcd
                else:
                    dram.last_outcome = 2
                    self._d_pres[idx] += 1
                    self._d_acts[idx] += 1
                    self._d_rb_misses[idx] += 1
                    cas_issue = t + self._d_trp_trcd
                open_rows[idx] = row
                ready[idx] = cas_issue + self._d_tccd
                cas_done = cas_issue + self._d_cl
                bus_free = self._d_bus_free
                start = bus_free[channel]
                if cas_done > start:
                    start = cas_done
                data_end = start + self._d_burst
                bus_free[channel] = data_end
                self._d_bus_busy[channel] += data_end - start
                dram.last_data_start = start
                if is_write:
                    # dirty-bit update in the metadata bank, posted
                    self._touch_metadata(set_index, data_end)
                self._hit = True
                # Inline of the base accounting epilogue (hit branch).
                self.hit_stat.hits += 1
                if not is_write:
                    latency = data_end - now
                    mean = self.read_latency
                    mean.count += 1
                    mean.total += latency
                    if latency < mean.minimum:
                        mean.minimum = latency
                    if latency > mean.maximum:
                        mean.maximum = latency
                    mean = self.hit_latency
                    mean.count += 1
                    mean.total += latency
                    if latency < mean.minimum:
                        mean.minimum = latency
                    if latency > mean.maximum:
                        mean.maximum = latency
                return data_end
            locator.lookups.misses += 1

        complete = self._access_cold(
            address, set_index, tag, sub, entry, t_after_locator, is_write
        )
        hit = self._hit
        hit_stat = self.hit_stat
        if hit:
            hit_stat.hits += 1
        else:
            hit_stat.misses += 1
        if not is_write:
            latency = complete - now
            mean = self.read_latency
            mean.count += 1
            mean.total += latency
            if latency < mean.minimum:
                mean.minimum = latency
            if latency > mean.maximum:
                mean.maximum = latency
            mean = self.hit_latency if hit else self.miss_latency
            mean.count += 1
            mean.total += latency
            if latency < mean.minimum:
                mean.minimum = latency
            if latency > mean.maximum:
                mean.maximum = latency
        return complete

    def _access_fast(self, address: int, now: int, is_write: bool) -> int:
        """Clean reference copy of the access path (base-class contract).

        :meth:`access_fast` above merges this logic with the accounting
        epilogue and the inlined device kernel; this copy keeps the
        object-model calls and shares the cold path, so the two cannot
        drift apart below the locator-hit branch.
        """
        self._record_global_access()
        set_index = (address >> self._offset_bits) & self._set_mask
        tag = address >> self._tag_shift
        sub = (address & self._sub_mask) >> 6
        sets = self._sets
        entry = sets.get(set_index)
        if entry is None:
            entry = BiModalSet(self.states, smalls_per_big=self.smalls_per_big)
            sets[set_index] = entry
        t_after_locator = now + self._locator_latency

        locator = self.locator
        if locator is not None:
            located = locator.lookup(set_index, tag, sub)
            if located is not None:
                is_big, way = located
                self._observe_outcome(set_index, miss=False)
                self._record_block_touch(entry, is_big, way, sub, is_write)
                self.small_access.record(not is_big)
                channel, bank, row = self._data_locs[set_index]
                data_end = self._dram_fast(channel, bank, row, t_after_locator, 1)
                if is_write:
                    # dirty-bit update in the metadata bank, posted
                    self._touch_metadata(set_index, data_end)
                self._hit = True
                return data_end

        return self._access_cold(
            address, set_index, tag, sub, entry, t_after_locator, is_write
        )

    def _access_cold(
        self,
        address: int,
        set_index: int,
        tag: int,
        sub: int,
        entry: BiModalSet,
        t_after_locator: int,
        is_write: bool,
    ) -> int:
        """Locator-miss continuation, shared by both entry points."""
        locator = self.locator
        # -- 2. metadata read (+ concurrent data-row activation) ----------
        tags_known = self._read_metadata(set_index, t_after_locator)
        data_channel, data_bank, data_row = self._data_locs[set_index]
        if self._parallel_tags:
            self.dram.activate_direct(
                data_channel, data_bank, data_row, t_after_locator
            )

        found = entry.lookup(tag, sub)
        if found is not None:
            is_big, way = found
            self._observe_outcome(set_index, miss=False)
            self._record_block_touch(entry, is_big, way, sub, is_write)
            self.small_access.record(not is_big)
            if locator is not None:
                locator.insert(set_index, tag, sub, is_big=is_big, way=way)
            self._hit = True
            if self._parallel_tags:
                return self.dram.column_direct_fast(data_channel, data_bank, tags_known)
            return self._dram_fast(data_channel, data_bank, data_row, tags_known, 1)

        # -- 3. DRAM cache miss --------------------------------------------
        self._observe_outcome(set_index, miss=True)
        block_key = self._block_key(set_index, tag)
        predicted_big = (
            self.predictor.predict_big(block_key)
            if self.config.enable_bimodal
            else True
        )
        self.global_ctrl.record_miss(predicted_big=predicted_big)

        is_big, way, evictions = self._allocate(
            entry, set_index, tag, sub, predicted_big
        )
        fetch_addr = (address & ~self._sub_mask) if is_big else (address & ~63)
        bursts = self.smalls_per_big if is_big else 1
        fetch_end = self._fetch_offchip(fetch_addr, tags_known, bursts=bursts)

        self._handle_evictions(set_index, evictions, fetch_end)
        (self.big_fills if is_big else self.small_fills).add()
        self.small_access.record(not is_big)

        # install + touch the new block
        if is_big:
            block = entry.big_ways[way]
            block.touch(sub, is_write=is_write)
        else:
            small = entry.small_ways[way]
            small.dirty = is_write
        entry.touch_mru(is_big, way)
        if locator is not None:
            locator.insert(set_index, tag, sub, is_big=is_big, way=way)

        # posted fill into the data row + metadata update
        self._post_call(
            fetch_end,
            self._dram_fast,
            data_channel, data_bank, data_row, fetch_end, bursts,
        )
        self._touch_metadata(set_index, fetch_end)
        self._hit = False
        return fetch_end

    def _observe_outcome(self, set_index: int, *, miss: bool) -> None:
        observe = self._observe_leader
        if observe is not None:
            observe(set_index, miss=miss)

    def _record_block_touch(
        self, entry: BiModalSet, is_big: bool, way: int, sub: int, is_write: bool
    ) -> None:
        if is_big:
            block = entry.big_ways[way]
            if block is None:
                raise RuntimeError("way locator pointed at an empty big way")
            block.touch(sub, is_write=is_write)
        else:
            small = entry.small_ways[way]
            if small is None:
                raise RuntimeError("way locator pointed at an empty small way")
            if is_write:
                small.dirty = True
        entry.touch_mru(is_big, way)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def way_locator_hit_rate(self) -> float:
        return self.locator.hit_rate if self.locator is not None else 0.0

    def small_block_access_fraction(self) -> float:
        """Fraction of accesses served by / filled as small blocks (Fig 10)."""
        return self.small_access.rate

    def space_utilization(self) -> float:
        """Referenced bytes / committed bytes across resident sets."""
        resident = sum(s.resident_bytes() for s in self._sets.values())
        used = sum(s.used_bytes() for s in self._sets.values())
        return used / resident if resident else 0.0

    def average_tag_latency(self) -> float:
        """Average tag access latency (Section III-D4's t_tag_access)."""
        if self.locator is None or not self.locator.lookups.total:
            return 0.0
        hit_rate = self.locator.hit_rate
        t_hit = self.locator.latency_cycles
        # t_tag_miss from the measured metadata RBH and DRAM timings.
        t = self.geometry.timing
        bursts = self.layout.metadata_bursts
        col = t.cl + bursts * t.burst_cycles
        rbh = self.metadata_rbh.rate
        t_miss = rbh * col + (1 - rbh) * (t.trp + t.trcd + col)
        return hit_rate * t_hit + (1 - hit_rate) * t_miss

    def reset_stats(self) -> None:
        super().reset_stats()
        self.metadata_rbh.reset()
        self.small_access.reset()
        self.small_fills.reset()
        self.big_fills.reset()
        self.small_pred_overridden.reset()
        self.utilization_hist.reset()
        self.set_state_transitions.reset()
        self.metadata_updates = 0
        self.predictor.accuracy.reset()
        if self.locator is not None:
            self.locator.lookups.reset()

    def stats_snapshot(self) -> dict[str, float]:
        snap = super().stats_snapshot()
        snap.update(
            {
                "way_locator_hit_rate": self.way_locator_hit_rate,
                "metadata_rbh": self.metadata_rbh.rate,
                "small_access_fraction": self.small_block_access_fraction(),
                "big_fills": self.big_fills.value,
                "small_fills": self.small_fills.value,
                "space_utilization": self.space_utilization(),
                "avg_tag_latency": self.average_tag_latency(),
                "predictor_accuracy": self.predictor.accuracy.rate,
                "global_state": self.global_ctrl.state,
            }
        )
        return snap
