"""Terminal bar-chart rendering for experiment rows.

The paper's figures are bar charts; these helpers render the same
series as unicode bars so `python -m repro fig8c` and the examples can
show the *shape* directly in a terminal, not just a number table.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["bar_chart", "grouped_bar_chart"]

_BLOCKS = " ▏▎▍▌▋▊▉█"


def _bar(value: float, maximum: float, width: int) -> str:
    if maximum <= 0:
        return ""
    cells = value / maximum * width
    full = int(cells)
    frac = int((cells - full) * 8)
    return "█" * full + (_BLOCKS[frac] if frac else "")


def bar_chart(
    rows: Sequence[Mapping[str, object]],
    *,
    label: str,
    value: str,
    width: int = 40,
    title: str | None = None,
    fmt: str = "{:.3g}",
) -> str:
    """One horizontal bar per row: ``label  ████▌ value``."""
    if not rows:
        return "(no rows)"
    values = [float(r[value]) for r in rows]
    labels = [str(r[label]) for r in rows]
    maximum = max(values) if values else 0.0
    label_width = max(len(l) for l in labels)
    lines = [title] if title else []
    for name, val in zip(labels, values):
        lines.append(
            f"{name.ljust(label_width)}  {_bar(val, maximum, width).ljust(width)} "
            f"{fmt.format(val)}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    rows: Sequence[Mapping[str, object]],
    *,
    label: str,
    series: Sequence[str],
    width: int = 30,
    title: str | None = None,
    fmt: str = "{:.3g}",
) -> str:
    """Several bars per row, one per series column (paper-style groups)."""
    if not rows:
        return "(no rows)"
    maximum = max(
        float(r[s]) for r in rows for s in series if r.get(s) is not None
    )
    label_width = max(len(str(r[label])) for r in rows)
    series_width = max(len(s) for s in series)
    lines = [title] if title else []
    for row in rows:
        lines.append(str(row[label]))
        for s in series:
            if row.get(s) is None:
                continue
            val = float(row[s])
            lines.append(
                f"  {s.ljust(series_width)}  "
                f"{_bar(val, maximum, width).ljust(width)} {fmt.format(val)}"
            )
    return "\n".join(lines)
