"""Footprint Cache tests."""

import pytest

from repro.common.config import DRAMCacheGeometry, DRAMGeometry, DRAMTimingConfig
from repro.dram.controller import MemoryController
from repro.dramcache.footprint import FootprintCache, FootprintPredictor


def make_cache(**kw) -> FootprintCache:
    geometry = DRAMCacheGeometry(
        capacity=1 << 20,
        geometry=DRAMGeometry(channels=2, banks_per_channel=8, page_size=2048),
    )
    offchip = MemoryController(
        DRAMGeometry(channels=1, banks_per_channel=16, page_size=2048),
        DRAMTimingConfig.ddr3_1600h(),
    )
    return FootprintCache(geometry, offchip, **kw)


class TestPredictor:
    def test_cold_default_full_page(self):
        p = FootprintPredictor()
        footprint = p.predict(12345, 3)
        assert footprint == (1 << 32) - 1

    def test_history_replayed_with_rotation(self):
        p = FootprintPredictor()
        p.record(page_number=10, first_offset=0, footprint=0b111)
        predicted = p.predict(10, 0)
        assert predicted & 0b111 == 0b111
        # Same structure entered at offset 4: footprint rotates.
        rotated = p.predict(10, 4)
        assert (rotated >> 4) & 0b111 == 0b111

    def test_super_region_generalizes_to_new_pages(self):
        """Pages in the same 1 MB span share footprint history — the
        PC-indexing analogue for cold pages of a structure."""
        p = FootprintPredictor()
        p.record(page_number=100, first_offset=0, footprint=0b11)
        assert p.predict(101, 0) & 0b11 == 0b11
        assert p.history_hits == 1

    def test_first_offset_always_included(self):
        p = FootprintPredictor()
        p.record(page_number=10, first_offset=0, footprint=0b1)
        assert p.predict(10, 7) & (1 << 7)

    def test_rotation_roundtrip(self):
        fp = 0b1011
        for shift in range(32):
            assert FootprintPredictor._rotate(
                FootprintPredictor._rotate(fp, shift), -shift
            ) == fp


class TestCaching:
    def test_page_miss_then_hit(self):
        cache = make_cache()
        assert not cache.access(0x4000, 0).hit
        assert cache.access(0x4000, 1000).hit

    def test_cold_page_fetches_full_footprint(self):
        cache = make_cache()
        cache.access(0x4000, 0)
        assert cache.offchip_fetched_bytes == 2048

    def test_footprint_miss_on_unfetched_block(self):
        """A resident page whose predictor skipped a block pays a miss."""
        cache = make_cache(enable_bypass=False)
        # Train: pages in this super-region use only block 0.
        cache.predictor.record(0x4000 // 2048, 0, 0b1)
        cache.access(0x4000, 0)  # fills only block 0
        r = cache.access(0x4000 + 64, 1000)  # block 1 absent
        assert not r.hit
        assert cache.footprint_misses.hits == 1
        # ... but afterwards it is present
        assert cache.access(0x4000 + 64, 2000).hit

    def test_bypass_single_use_pages(self):
        cache = make_cache(enable_bypass=True)
        cache.predictor.record(0x4000 // 2048, 0, 0b1)
        cache.access(0x4000, 0)
        assert cache.bypasses == 1
        assert not cache.resident(0x4000)

    def test_bypass_disabled(self):
        cache = make_cache(enable_bypass=False)
        cache.predictor.record(0x4000 // 2048, 0, 0b1)
        cache.access(0x4000, 0)
        assert cache.bypasses == 0
        assert cache.resident(0x4000)

    def test_eviction_trains_predictor(self):
        cache = make_cache(associativity=1, enable_bypass=False)
        cache.access(0x0000, 0)
        conflict = cache.num_sets * 2048
        cache.access(conflict, 1000)  # evicts page 0, trains footprint 0b1
        cache.access(2 * conflict, 2000)  # evicts page at `conflict`
        # A new page in page-0's super-region now fetches a footprint,
        # not the full page.
        before = cache.offchip_fetched_bytes
        cache.access(4096, 3000)
        fetched = cache.offchip_fetched_bytes - before
        assert fetched < 2048

    def test_waste_accounted_at_eviction(self):
        cache = make_cache(associativity=1)
        cache.access(0x0000, 0)  # full-page fetch, one block used
        cache.access(cache.num_sets * 2048, 1000)
        assert cache.offchip_wasted_bytes == 31 * 64

    def test_dirty_blocks_written_back(self):
        cache = make_cache(associativity=1)
        cache.access(0x0000, 0, is_write=True)
        cache.access(64, 10, is_write=True)
        cache.access(cache.num_sets * 2048, 1000)
        cache.flush_posted()
        assert cache.offchip_writeback_bytes == 128

    def test_serial_tag_latency_floor(self):
        """The SRAM tag store keeps its full-scale cost (>= 6 cycles)."""
        cache = make_cache()
        assert cache.tag_latency >= 6

    def test_too_small_capacity_rejected(self):
        geometry = DRAMCacheGeometry(
            capacity=2048,
            geometry=DRAMGeometry(channels=1, banks_per_channel=2, page_size=2048),
        )
        offchip = MemoryController(
            DRAMGeometry(channels=1, banks_per_channel=2, page_size=2048),
            DRAMTimingConfig.ddr3_1600h(),
        )
        with pytest.raises(ValueError):
            FootprintCache(geometry, offchip, associativity=8)
