"""Analytic tag-access latency model (Section III-D4).

The paper derives the average tag access latency of a cached-metadata
organization as

    t_tag_access = h * t_hit + (1 - h) * t_tag_miss
    t_tag_miss  ~= r * t_col + (1 - r) * (t_pre + t_act + t_col)

where ``h`` is the way locator hit rate, ``r`` the metadata bank's
row-buffer hit rate, and the DRAM terms come from the device timing.
From this it computes the **break-even locator hit rate** against a
tags-in-SRAM design (their example: a 256 MB cache's SRAM tag store at
7 cycles, DRAM access ~32 cycles ⇒ the locator must exceed ~78%), and
the claim that the deployed design reaches an average tag latency of
~3.6 cycles — about half the tags-in-SRAM cost.

This module reproduces those closed-form results so they can be tested
against the paper's quoted numbers and evaluated for arbitrary
configurations; :meth:`~repro.bimodal.cache.BiModalCache.average_tag_latency`
is the measured counterpart.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import DRAMTimingConfig

__all__ = ["TagLatencyModel", "breakeven_locator_hit_rate"]


@dataclass(frozen=True)
class TagLatencyModel:
    """Closed-form t_tag_access for a way-located metadata-in-DRAM design.

    Parameters
    ----------
    timing:
        Stacked DRAM timing (CPU cycles).
    locator_latency:
        SRAM lookup cost of the way locator (Table III: 1-2 cycles).
    metadata_bursts:
        Bursts per tag-array read (2 for 2 KB sets, 3 for 4 KB).
    """

    timing: DRAMTimingConfig
    locator_latency: int = 1
    metadata_bursts: int = 2

    def column_read_cycles(self) -> int:
        """CAS + transfer for one tag-array read on an open row."""
        return self.timing.cl + self.metadata_bursts * self.timing.burst_cycles

    def tag_miss_cycles(self, metadata_rbh: float) -> float:
        """t_tag_miss as a function of the metadata bank's RBH."""
        if not 0.0 <= metadata_rbh <= 1.0:
            raise ValueError("metadata_rbh must be in [0, 1]")
        col = self.column_read_cycles()
        conflict = self.timing.trp + self.timing.trcd + col
        return metadata_rbh * col + (1.0 - metadata_rbh) * conflict

    def tag_access_cycles(self, locator_hit_rate: float, metadata_rbh: float) -> float:
        """Average tag access latency (the paper's t_tag_access)."""
        if not 0.0 <= locator_hit_rate <= 1.0:
            raise ValueError("locator_hit_rate must be in [0, 1]")
        miss = self.tag_miss_cycles(metadata_rbh)
        return (
            locator_hit_rate * self.locator_latency
            + (1.0 - locator_hit_rate) * miss
        )

    def colocated_tag_miss_cycles(self, colocated_rbh: float) -> float:
        """t_tag_miss with tags co-located in data rows (lower RBH).

        Used to quantify the paper's ">30% t_tag_miss reduction" from
        the dedicated metadata bank: evaluate both layouts at their
        measured row-buffer hit rates.
        """
        return self.tag_miss_cycles(colocated_rbh)


def breakeven_locator_hit_rate(
    *,
    sram_tag_cycles: float,
    locator_latency: float = 1.0,
    dram_tag_cycles: float = 32.0,
) -> float:
    """Minimum locator hit rate to beat a tags-in-SRAM organization.

    Solving ``h * t_loc + (1 - h) * t_dram <= t_sram`` for ``h``.
    The paper's illustration (Section III-D4): a 256 MB cache's SRAM tag
    store costs 7 cycles, a DRAM tag access ~10 ns = 32 cycles at
    3.2 GHz, and the locator 1 cycle ⇒ h must be at least ~78%* — hence
    the emphasis on a high locator hit rate.

    (*) 1 - (32 - 7) / (32 - 1) = 0.194... the paper quotes 78%, i.e.
    ``h >= (t_dram - t_sram) / (t_dram - t_loc)``.
    """
    if dram_tag_cycles <= locator_latency:
        raise ValueError("DRAM tag access must cost more than the locator")
    required = (dram_tag_cycles - sram_tag_cycles) / (
        dram_tag_cycles - locator_latency
    )
    return max(0.0, min(1.0, required))
