"""Whole-program dataflow for simlint v2: facts, call graph, taint.

Three layers, each feeding the next:

* **Fact extraction** — one AST pass per module produces a
  :class:`ModuleFacts`: every function (including a synthetic
  ``<module>`` body), its calls, a condensed def-use skeleton
  (assignments and returns as lists of *dep tokens*), ambient-entropy
  source events, and an import table that resolves relative imports.
  Facts are plain JSON-serializable dataclasses, which is what makes
  the incremental cache (:mod:`repro.analysis.cache`) possible: an
  unchanged file replays its facts from disk without re-parsing.

* **Call graph** — :class:`CallGraph` resolves each call fact to a
  project function where it can (``from repro.x import f`` member
  imports, same-module names, ``self.method`` through the class
  hierarchy, ``alias.f`` module attributes) and keeps the dotted
  external name otherwise (``time.sleep``). Function *references*
  passed as arguments (``to_thread(self._flush)``) become ``deferred``
  edges: the callee runs, but not on the caller's stack — the
  async-safety rule must not follow them, the fork-safety rule must.

* **Taint engine** — :class:`TaintAnalysis` runs the per-function
  def-use skeletons to a fixpoint over call summaries: which ambient
  sources a function's return value carries, which parameters flow to
  its return, and which parameters reach a sink somewhere below it.
  Sanitizers (calls into the determinism allowlist, ``sorted()`` for
  order taints) cut flows; everything external passes taint through
  conservatively (``round(time.time())`` is still wall-clock).

Dep tokens are compact strings: ``n:x`` (local name), ``c:3`` (result
of call #3 in this function), ``s:wallclock:17`` (source event of a
kind at a line). Parameters are just names; the summary computation
seeds them with symbolic kinds.

The analysis is intentionally name-based and flow-insensitive inside a
function: it trades soundness-in-the-limit for zero configuration and
speed (the whole repro tree analyzes in well under a second), and every
rule built on it reports *why* with the full call chain so a false
positive is cheap to judge and suppress.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from fnmatch import fnmatch

__all__ = [
    "FACTS_VERSION",
    "CallFact",
    "FunctionFact",
    "ClassFact",
    "ModuleFacts",
    "extract_facts",
    "module_name_for",
    "CallGraph",
    "TaintAnalysis",
    "SOURCE_KINDS",
    "ORDER_KINDS",
]

#: Bump to invalidate every cached facts entry (the shape below changed).
FACTS_VERSION = 2

# ---------------------------------------------------------------------------
# ambient-entropy sources (resolved dotted name -> taint kind)
# ---------------------------------------------------------------------------
SOURCE_KINDS: dict[str, str] = {
    "time.time": "wallclock",
    "time.time_ns": "wallclock",
    "time.localtime": "wallclock",
    "time.gmtime": "wallclock",
    "time.ctime": "wallclock",
    "time.asctime": "wallclock",
    "time.strftime": "wallclock",
    "datetime.now": "wallclock",
    "datetime.utcnow": "wallclock",
    "datetime.today": "wallclock",
    "datetime.datetime.now": "wallclock",
    "datetime.datetime.utcnow": "wallclock",
    "datetime.date.today": "wallclock",
    "os.urandom": "entropy",
    "uuid.uuid1": "entropy",
    "uuid.uuid4": "entropy",
    "secrets.token_bytes": "entropy",
    "secrets.token_hex": "entropy",
    "secrets.randbits": "entropy",
    "id": "object-address",
    "hash": "hash-seed",
    "os.getpid": "process-id",
    "os.getenv": "environment",
    "os.environ.get": "environment",
}

#: Kinds that sorted() neutralizes (iteration-order, not value, taint).
ORDER_KINDS = {"set-order"}

_EXECUTOR_WRAPPERS = {
    "to_thread", "run_in_executor", "submit", "map",
    "create_task", "ensure_future", "Thread", "Timer", "start_new_thread",
}


# ---------------------------------------------------------------------------
# facts dataclasses (JSON round-trippable via to_dict/from_dict)
# ---------------------------------------------------------------------------
@dataclass
class CallFact:
    """One call expression inside a function."""

    chain: tuple[str, ...]          # as written: ("self", "_flush"), ("time", "sleep")
    resolved: str | None            # dotted name after import resolution, when known
    lineno: int
    awaited: bool = False
    discarded: bool = False         # statement expression, value unused
    base_call: int | None = None    # chain hangs off call #N: a.submit(x).result()
    arg_deps: tuple[tuple[str, ...], ...] = ()   # dep tokens per positional arg
    kw_deps: tuple[tuple[str, tuple[str, ...]], ...] = ()  # (kwarg, deps)
    func_refs: tuple[str, ...] = () # uncalled Name/Attribute args, dotted as written

    def to_dict(self) -> dict:
        return {
            "chain": list(self.chain), "resolved": self.resolved,
            "lineno": self.lineno, "awaited": self.awaited,
            "discarded": self.discarded, "base_call": self.base_call,
            "arg_deps": [list(d) for d in self.arg_deps],
            "kw_deps": [[k, list(d)] for k, d in self.kw_deps],
            "func_refs": list(self.func_refs),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "CallFact":
        return cls(
            chain=tuple(d["chain"]), resolved=d["resolved"],
            lineno=d["lineno"], awaited=d["awaited"],
            discarded=d["discarded"], base_call=d["base_call"],
            arg_deps=tuple(tuple(x) for x in d["arg_deps"]),
            kw_deps=tuple((k, tuple(x)) for k, x in d["kw_deps"]),
            func_refs=tuple(d["func_refs"]),
        )


@dataclass
class FunctionFact:
    """Condensed def-use skeleton of one function (or the module body)."""

    qualname: str                   # "Class.method", "func", "outer.inner", "<module>"
    name: str
    cls: str | None
    lineno: int
    is_async: bool
    params: tuple[str, ...]
    calls: tuple[CallFact, ...] = ()
    assigns: tuple[tuple[str, tuple[str, ...]], ...] = ()  # (target, deps)
    returns: tuple[str, ...] = ()   # union of return-expression deps
    self_attr_assigns: tuple[tuple[str, int, tuple[str, ...]], ...] = ()
    free_names: tuple[str, ...] = ()  # read but neither param nor assigned

    def to_dict(self) -> dict:
        return {
            "qualname": self.qualname, "name": self.name, "cls": self.cls,
            "lineno": self.lineno, "is_async": self.is_async,
            "params": list(self.params),
            "calls": [c.to_dict() for c in self.calls],
            "assigns": [[t, list(d)] for t, d in self.assigns],
            "returns": list(self.returns),
            "self_attr_assigns": [[a, ln, list(d)] for a, ln, d in self.self_attr_assigns],
            "free_names": list(self.free_names),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FunctionFact":
        return cls(
            qualname=d["qualname"], name=d["name"], cls=d["cls"],
            lineno=d["lineno"], is_async=d["is_async"],
            params=tuple(d["params"]),
            calls=tuple(CallFact.from_dict(c) for c in d["calls"]),
            assigns=tuple((t, tuple(x)) for t, x in d["assigns"]),
            returns=tuple(d["returns"]),
            self_attr_assigns=tuple(
                (a, ln, tuple(x)) for a, ln, x in d["self_attr_assigns"]
            ),
            free_names=tuple(d["free_names"]),
        )


@dataclass
class ClassFact:
    name: str
    lineno: int
    bases: tuple[str, ...]          # simple (last-attr) names
    methods: tuple[str, ...]

    def to_dict(self) -> dict:
        return {"name": self.name, "lineno": self.lineno,
                "bases": list(self.bases), "methods": list(self.methods)}

    @classmethod
    def from_dict(cls, d: dict) -> "ClassFact":
        return cls(d["name"], d["lineno"], tuple(d["bases"]), tuple(d["methods"]))


@dataclass
class ModuleFacts:
    module: str                     # dotted: "repro.server.daemon"
    rel: str                        # repo-relative posix path
    pkgrel: str                     # package-relative path (config globs)
    functions: tuple[FunctionFact, ...] = ()
    classes: tuple[ClassFact, ...] = ()
    # local alias -> dotted target; members resolved to "module.member".
    imports: dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "version": FACTS_VERSION,
            "module": self.module, "rel": self.rel, "pkgrel": self.pkgrel,
            "functions": [f.to_dict() for f in self.functions],
            "classes": [c.to_dict() for c in self.classes],
            "imports": dict(self.imports),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ModuleFacts":
        return cls(
            module=d["module"], rel=d["rel"], pkgrel=d["pkgrel"],
            functions=tuple(FunctionFact.from_dict(f) for f in d["functions"]),
            classes=tuple(ClassFact.from_dict(c) for c in d["classes"]),
            imports=dict(d["imports"]),
        )


def resolve_with_imports(imports: dict[str, str],
                         chain: tuple[str, ...]) -> str | None:
    """Dotted name of ``a.b.c`` after applying a module's import table."""
    if not chain:
        return None
    target = imports.get(chain[0])
    if target is not None:
        return ".".join((target, *chain[1:]))
    if len(chain) == 1:
        return chain[0]  # builtin or same-module name
    return None if chain[0] in ("self", "cls") else ".".join(chain)


def module_name_for(rel: str) -> str:
    """Dotted module name for a repo-relative path.

    ``src/repro/server/daemon.py`` -> ``repro.server.daemon``;
    ``mod.py`` -> ``mod``; ``pkg/__init__.py`` -> ``pkg``.
    """
    parts = rel.split("/")
    if parts and parts[0] in ("src", "lib"):
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p) or rel


# ---------------------------------------------------------------------------
# extraction
# ---------------------------------------------------------------------------
def _attr_chain(node: ast.expr) -> tuple[str, ...] | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


class _FunctionExtractor:
    """Builds one FunctionFact; nested defs become their own facts."""

    def __init__(self, owner: "_ModuleExtractor", qualname: str, name: str,
                 cls: str | None, lineno: int, is_async: bool,
                 params: tuple[str, ...]):
        self.owner = owner
        self.fact_args = dict(qualname=qualname, name=name, cls=cls,
                              lineno=lineno, is_async=is_async, params=params)
        self.calls: list[CallFact] = []
        self.assigns: list[tuple[str, tuple[str, ...]]] = []
        self.returns: set[str] = set()
        self.self_attrs: list[tuple[str, int, tuple[str, ...]]] = []
        self.reads: set[str] = set()

    # -- dep computation ---------------------------------------------------
    def deps(self, node: ast.expr | None, *, awaited: bool = False,
             discarded: bool = False) -> list[str]:
        """Dep tokens of an expression, registering calls on the way."""
        if node is None:
            return []
        if isinstance(node, ast.Await):
            return self.deps(node.value, awaited=True, discarded=discarded)
        if isinstance(node, ast.Name):
            self.reads.add(node.id)
            return [f"n:{node.id}"]
        if isinstance(node, ast.Call):
            return [f"c:{self._register_call(node, awaited, discarded)}"]
        if isinstance(node, ast.Attribute):
            chain = _attr_chain(node)
            if chain is not None:
                self.reads.add(chain[0])
                resolved = self.owner.resolve_chain(chain)
                kind = SOURCE_KINDS.get(resolved or "")
                base = [f"n:{chain[0]}"]
                # bare ``os.environ`` attribute read (no call, no index)
                if resolved == "os.environ":
                    base.append(f"s:environment:{node.lineno}")
                if kind:
                    base.append(f"s:{kind}:{node.lineno}")
                return base
            return self.deps(node.value)
        if isinstance(node, ast.Subscript):
            out = self.deps(node.value)
            out += self.deps(node.slice)
            chain = _attr_chain(node.value)
            if chain and self.owner.resolve_chain(chain) == "os.environ":
                out.append(f"s:environment:{node.lineno}")
            return out
        if isinstance(node, (ast.Set,)):
            out = [f"s:set-order:{node.lineno}"]
            for elt in node.elts:
                out += self.deps(elt)
            return out
        if isinstance(node, ast.Lambda):
            # A lambda's captures are what matter to callers holding it:
            # surface every free name, including receivers of calls made
            # in the body (``lambda c: log.write(c)`` captures ``log``).
            inner = self.deps(node.body)
            bound = {a.arg for a in (node.args.args + node.args.kwonlyargs
                                     + node.args.posonlyargs)}
            free = {
                sub.id for sub in ast.walk(node.body)
                if isinstance(sub, ast.Name) and sub.id not in bound
            }
            self.reads.update(free)
            inner += [f"n:{name}" for name in sorted(free)]
            return [d for d in inner if not (d.startswith("n:") and d[2:] in bound)]
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            out: list[str] = []
            for gen in node.generators:
                out += self.deps(gen.iter)
                if isinstance(gen.iter, (ast.Set,)) or self._is_set_call(gen.iter):
                    out.append(f"s:set-order:{node.lineno}")
            if isinstance(node, ast.DictComp):
                out += self.deps(node.key) + self.deps(node.value)
            else:
                out += self.deps(node.elt)
            return out
        out = []
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                out += self.deps(child)
            elif isinstance(child, (ast.comprehension, ast.keyword,
                                    ast.FormattedValue)):
                for sub in ast.iter_child_nodes(child):
                    if isinstance(sub, ast.expr):
                        out += self.deps(sub)
        return out

    def _is_set_call(self, node: ast.expr) -> bool:
        return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset"))

    def _register_call(self, node: ast.Call, awaited: bool,
                       discarded: bool) -> int:
        func = node.func
        chain = _attr_chain(func)
        base_call: int | None = None
        if chain is None and isinstance(func, ast.Attribute):
            # a.submit(...).result() — chain hangs off an inner call
            inner, tail = func.value, [func.attr]
            while isinstance(inner, ast.Attribute):
                tail.append(inner.attr)
                inner = inner.value
            if isinstance(inner, ast.Call):
                base_call = self._register_call(inner, False, False)
                chain = tuple(reversed(tail))
        arg_deps = []
        func_refs = []
        for arg in node.args:
            arg_deps.append(tuple(self.deps(arg)))
            ref = _attr_chain(arg) if isinstance(arg, (ast.Name, ast.Attribute)) else None
            func_refs.append(".".join(ref) if ref else None)
        kw_deps = []
        for kw in node.keywords:
            deps = tuple(self.deps(kw.value))
            kw_deps.append((kw.arg or "**", deps))
            if kw.arg == "target" and isinstance(kw.value, (ast.Name, ast.Attribute)):
                ref = _attr_chain(kw.value)
                if ref:
                    func_refs.append(".".join(ref))
        resolved = self.owner.resolve_chain(chain) if chain else None
        fact = CallFact(
            chain=chain or ("<expr>",),
            resolved=resolved,
            lineno=node.lineno,
            awaited=awaited,
            discarded=discarded,
            base_call=base_call,
            arg_deps=tuple(arg_deps),
            kw_deps=tuple(kw_deps),
            func_refs=tuple(r for r in func_refs if r),
        )
        if chain:
            self.reads.add(chain[0])
        self.calls.append(fact)
        return len(self.calls) - 1

    # -- statement walk ----------------------------------------------------
    def walk_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self.walk_stmt(stmt)

    def walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.owner.extract_function(
                stmt, parent_qual=self.fact_args["qualname"],
                cls=self.fact_args["cls"],
            )
            self.assigns.append((stmt.name, (f"n:{stmt.name}",)))
            return
        if isinstance(stmt, ast.ClassDef):
            self.owner.extract_class(stmt, parent_qual=self.fact_args["qualname"])
            return
        if isinstance(stmt, ast.Return):
            self.returns.update(self.deps(stmt.value))
            return
        if isinstance(stmt, ast.Assign):
            deps = tuple(self.deps(stmt.value))
            for target in stmt.targets:
                self._assign_target(target, deps, stmt.lineno)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign_target(stmt.target, tuple(self.deps(stmt.value)),
                                    stmt.lineno)
            return
        if isinstance(stmt, ast.AugAssign):
            deps = tuple(self.deps(stmt.value))
            self._assign_target(stmt.target, deps, stmt.lineno, augment=True)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            deps = list(self.deps(stmt.iter))
            if isinstance(stmt.iter, ast.Set) or self._is_set_call(stmt.iter):
                deps.append(f"s:set-order:{stmt.lineno}")
            self._assign_target(stmt.target, tuple(deps), stmt.lineno)
            self.walk_body(stmt.body)
            self.walk_body(stmt.orelse)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                deps = tuple(self.deps(item.context_expr))
                if item.optional_vars is not None:
                    self._assign_target(item.optional_vars, deps, stmt.lineno)
            self.walk_body(stmt.body)
            return
        if isinstance(stmt, ast.Expr):
            self.deps(stmt.value, discarded=True)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self.deps(stmt.test)
            self.walk_body(stmt.body)
            self.walk_body(stmt.orelse)
            return
        if isinstance(stmt, ast.Try):
            self.walk_body(stmt.body)
            for handler in stmt.handlers:
                self.walk_body(handler.body)
            self.walk_body(stmt.orelse)
            self.walk_body(stmt.finalbody)
            return
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            return  # module-level imports handled by the owner
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self.deps(child)
            elif isinstance(child, ast.stmt):
                self.walk_stmt(child)

    def _assign_target(self, target: ast.expr, deps: tuple[str, ...],
                       lineno: int, *, augment: bool = False) -> None:
        if isinstance(target, ast.Name):
            if augment:
                deps = deps + (f"n:{target.id}",)
            self.assigns.append((target.id, deps))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign_target(elt, deps, lineno)
        elif isinstance(target, ast.Attribute):
            chain = _attr_chain(target)
            if chain and chain[0] == "self" and len(chain) == 2:
                self.self_attrs.append((chain[1], lineno, deps))
            elif chain:
                self.reads.add(chain[0])
        elif isinstance(target, ast.Subscript):
            self.deps(target.slice)
            chain = _attr_chain(target.value)
            if chain is not None and len(chain) == 1:
                # stats["k"] = tainted  — weak update: the container now
                # carries the value's taint alongside whatever it held.
                self.reads.add(chain[0])
                self.assigns.append((chain[0], deps + (f"n:{chain[0]}",)))
            elif chain is not None and chain[0] == "self" and len(chain) == 2:
                self.self_attrs.append((chain[1], lineno, deps))
            else:
                self.deps(target.value)
        elif isinstance(target, ast.Starred):
            self._assign_target(target.value, deps, lineno)

    def finish(self) -> FunctionFact:
        assigned = {t for t, _ in self.assigns} | set(self.fact_args["params"])
        free = sorted(self.reads - assigned - {"self", "cls"})
        return FunctionFact(
            calls=tuple(self.calls),
            assigns=tuple(self.assigns),
            returns=tuple(sorted(self.returns)),
            self_attr_assigns=tuple(self.self_attrs),
            free_names=tuple(free),
            **self.fact_args,
        )


class _ModuleExtractor:
    def __init__(self, tree: ast.AST, module: str, rel: str, pkgrel: str):
        self.module = module
        self.rel = rel
        self.pkgrel = pkgrel
        self.functions: list[FunctionFact] = []
        self.classes: list[ClassFact] = []
        self.imports: dict[str, str] = {}
        self._collect_imports(tree)
        body = _FunctionExtractor(self, "<module>", "<module>", None, 1, False, ())
        body.walk_body(list(tree.body))
        self.functions.append(body.finish())

    # -- imports -----------------------------------------------------------
    def _collect_imports(self, tree: ast.AST) -> None:
        package = self.module.rsplit(".", 1)[0] if "." in self.module else ""
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    # relative: climb level-1 packages above this module's package
                    anchor = package.split(".") if package else []
                    climb = node.level - 1
                    anchor = anchor[: len(anchor) - climb] if climb else anchor
                    base = ".".join(anchor + ([node.module] if node.module else []))
                if not base:
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.imports[local] = f"{base}.{alias.name}"

    def resolve_chain(self, chain: tuple[str, ...] | None) -> str | None:
        """Dotted name of ``a.b.c`` after applying the import table."""
        if not chain:
            return None
        return resolve_with_imports(self.imports, chain)

    # -- defs --------------------------------------------------------------
    def extract_function(self, node, *, parent_qual: str | None = None,
                         cls: str | None = None) -> None:
        qual = node.name if parent_qual in (None, "<module>") else \
            f"{parent_qual}.{node.name}"
        params = tuple(
            a.arg
            for a in (node.args.posonlyargs + node.args.args + node.args.kwonlyargs)
            if a.arg not in ("self", "cls")
        )
        fx = _FunctionExtractor(
            self, qual, node.name, cls, node.lineno,
            isinstance(node, ast.AsyncFunctionDef), params,
        )
        fx.walk_body(list(node.body))
        self.functions.append(fx.finish())

    def extract_class(self, node: ast.ClassDef, *, parent_qual: str) -> None:
        bases = []
        for base in node.bases:
            chain = _attr_chain(base if not isinstance(base, ast.Subscript)
                                else base.value)
            if chain:
                bases.append(chain[-1])
        methods = []
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods.append(item.name)
                self.extract_function(item, parent_qual=node.name, cls=node.name)
            elif isinstance(item, ast.ClassDef):
                self.extract_class(item, parent_qual=node.name)
            else:
                # class-level assignments may still carry source events
                fx = _FunctionExtractor(self, f"{node.name}.<class>", "<class>",
                                        node.name, item.lineno, False, ())
                fx.walk_stmt(item)
                fact = fx.finish()
                if fact.calls or fact.assigns:
                    self.functions.append(fact)
        self.classes.append(ClassFact(
            name=node.name, lineno=node.lineno,
            bases=tuple(bases), methods=tuple(methods),
        ))


def extract_facts(tree: ast.AST, rel: str, pkgrel: str) -> ModuleFacts:
    """One-pass fact extraction for a parsed module."""
    module = module_name_for(rel)
    mx = _ModuleExtractor(tree, module, rel, pkgrel)
    return ModuleFacts(
        module=module, rel=rel, pkgrel=pkgrel,
        functions=tuple(mx.functions), classes=tuple(mx.classes),
        imports=mx.imports,
    )


# ---------------------------------------------------------------------------
# call graph
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CallSite:
    """One resolved edge occurrence: caller calls ``target`` at a line."""

    caller: str        # function key "module:qualname"
    target: str        # function key, or external dotted name
    rel: str           # caller's file
    lineno: int
    external: bool
    deferred: bool     # reference handed to an executor/task, not a stack call


class CallGraph:
    """Project-wide call graph over :class:`ModuleFacts`.

    Function keys are ``"module:qualname"``. External targets (stdlib,
    third-party) keep their dotted name and ``external=True`` on the
    edge; reachability walks only project functions.
    """

    def __init__(self, modules: list[ModuleFacts]):
        self.modules = {m.module: m for m in modules}
        self.by_rel = {m.rel: m for m in modules}
        self.functions: dict[str, FunctionFact] = {}
        self.facts_of: dict[str, ModuleFacts] = {}
        self._methods: dict[tuple[str, str], str] = {}   # (class, meth) -> key
        self._class_bases: dict[str, tuple[str, ...]] = {}
        for mod in modules:
            for fn in mod.functions:
                key = f"{mod.module}:{fn.qualname}"
                self.functions[key] = fn
                self.facts_of[key] = mod
                if fn.cls is not None and fn.qualname == f"{fn.cls}.{fn.name}":
                    self._methods[(fn.cls, fn.name)] = key
            for cls in mod.classes:
                self._class_bases.setdefault(cls.name, cls.bases)
        # (class, attr) -> class of the value, for ``self.attr = Cls(...)``
        # assignments — lets ``self.store.incomplete()`` resolve through
        # the attribute's constructor type.
        self._attr_class: dict[tuple[str, str], str] = {}
        for mod in modules:
            for fn in mod.functions:
                if fn.cls is None:
                    continue
                for attr, _lineno, deps in fn.self_attr_assigns:
                    for dep in deps:
                        if not dep.startswith("c:"):
                            continue
                        call = fn.calls[int(dep[2:])]
                        cls_name = (call.resolved or "").rpartition(".")[2] \
                            or (call.resolved or "")
                        if cls_name in self._class_bases:
                            self._attr_class[(fn.cls, attr)] = cls_name
        self.edges: dict[str, list[CallSite]] = {}
        for key, fn in self.functions.items():
            self.edges[key] = list(self._edges_for(key, fn))

    # -- resolution --------------------------------------------------------
    def resolve_project(self, mod: ModuleFacts, fn: FunctionFact,
                        call: CallFact) -> str | None:
        """Project function key a call lands on, when determinable."""
        chain = call.chain
        if chain[0] == "self" and len(chain) == 2 and fn.cls is not None:
            return self._resolve_method(fn.cls, chain[1])
        if chain[0] == "self" and len(chain) == 3 and fn.cls is not None:
            attr_cls = self._attr_class.get((fn.cls, chain[1]))
            if attr_cls is not None:
                return self._resolve_method(attr_cls, chain[2])
        if call.resolved:
            target = call.resolved
            # member import / module attribute: "pkg.mod.func"
            if "." in target:
                mod_name, _, attr = target.rpartition(".")
                owner = self.modules.get(mod_name)
                if owner is not None:
                    key = f"{mod_name}:{attr}"
                    if key in self.functions:
                        return key
                    # class constructor or re-export: try __init__
                    key = f"{mod_name}:{attr}.__init__"
                    if key in self.functions:
                        return key
                # import of a name re-exported through a package __init__
                owner = self.modules.get(target)
            else:
                key = f"{mod.module}:{target}"
                if key in self.functions:
                    return key
                # nested function of the caller
                key = f"{mod.module}:{fn.qualname}.{target}"
                if key in self.functions:
                    return key
                # class in same module -> constructor
                key = f"{mod.module}:{target}.__init__"
                if key in self.functions:
                    return key
        return None

    def _resolve_method(self, cls: str, meth: str) -> str | None:
        seen: set[str] = set()
        frontier = [cls]
        while frontier:
            name = frontier.pop()
            if name in seen:
                continue
            seen.add(name)
            key = self._methods.get((name, meth))
            if key is not None:
                return key
            frontier.extend(self._class_bases.get(name, ()))
        return None

    def resolve_ref(self, mod: ModuleFacts, fn: FunctionFact,
                    ref: str) -> str | None:
        """Resolve a function *reference* string (``self._flush``, ``f``)."""
        parts = tuple(ref.split("."))
        fact = CallFact(chain=parts, resolved=resolve_with_imports(mod.imports, parts),
                        lineno=0)
        return self.resolve_project(mod, fn, fact)

    def _edges_for(self, key: str, fn: FunctionFact):
        mod = self.facts_of[key]
        for call in fn.calls:
            tail = call.chain[-1]
            deferred_refs = tail in _EXECUTOR_WRAPPERS
            target = self.resolve_project(mod, fn, call)
            if target is not None:
                yield CallSite(key, target, mod.rel, call.lineno,
                               external=False, deferred=False)
            elif call.resolved is not None:
                yield CallSite(key, call.resolved, mod.rel, call.lineno,
                               external=True, deferred=False)
            if deferred_refs:
                for ref in call.func_refs:
                    rkey = self.resolve_ref(mod, fn, ref)
                    if rkey is not None:
                        yield CallSite(key, rkey, mod.rel, call.lineno,
                                       external=False, deferred=True)

    # -- queries -----------------------------------------------------------
    def callees(self, key: str, *, deferred: bool = False) -> list[CallSite]:
        return [e for e in self.edges.get(key, ())
                if not e.external and (deferred or not e.deferred)]

    def reach(self, root: str, *, deferred: bool = False) -> dict[str, CallSite]:
        """``{reached key: first edge on a shortest path}`` from ``root``."""
        parent: dict[str, CallSite] = {}
        frontier = [root]
        while frontier:
            current = frontier.pop(0)
            for edge in self.callees(current, deferred=deferred):
                if edge.target in parent or edge.target == root:
                    continue
                parent[edge.target] = edge
                frontier.append(edge.target)
        return parent

    def path(self, root: str, target: str,
             parent: dict[str, CallSite]) -> list[CallSite]:
        """Edge list root -> target given a ``reach(root)`` parent map."""
        chain: list[CallSite] = []
        current = target
        while current != root:
            edge = parent.get(current)
            if edge is None:
                break
            chain.append(edge)
            current = edge.caller
        return list(reversed(chain))

    def describe_path(self, edges: list[CallSite]) -> str:
        hops = []
        for edge in edges:
            name = edge.target.split(":", 1)[-1]
            hops.append(f"{name} ({edge.rel}:{edge.lineno})")
        return " -> ".join(hops)


# ---------------------------------------------------------------------------
# taint engine
# ---------------------------------------------------------------------------
@dataclass
class SinkSpec:
    """Where taint must not arrive.

    ``kind`` labels the report; a sink matches a call when the resolved
    name is in ``resolved`` or the chain tail is in ``tails`` (with all
    of ``require_kwargs`` present). ``args`` restricts which positional
    / keyword values are checked (empty = all).
    """

    kind: str
    resolved: frozenset[str] = frozenset()
    tails: frozenset[str] = frozenset()
    require_kwargs: frozenset[str] = frozenset()
    kwargs_only: frozenset[str] = frozenset()   # check only these kwargs
    return_of: frozenset[str] = frozenset()     # function names whose return is the sink


@dataclass
class TaintFinding:
    """Taint reached a sink: everything a rule needs to report it."""

    rel: str
    lineno: int
    sink_kind: str
    kinds: tuple[str, ...]          # source kinds that arrived
    via: str                        # human trail: "through helper f (x.py:3)"
    function: str                   # enclosing function key


class TaintAnalysis:
    """Interprocedural taint over the def-use skeletons.

    Summaries per function: ``ret_kinds`` (source kinds its return
    always carries), ``ret_params`` (parameter indices flowing to the
    return), ``param_sinks`` (parameter index -> sink hits below this
    function). Computed to a fixpoint, then :meth:`findings` replays
    each function once more to localize violations.
    """

    _MAX_ROUNDS = 12

    def __init__(self, graph: CallGraph, sinks: list[SinkSpec],
                 sanitizer_globs: tuple[str, ...],
                 scope_skip_globs: tuple[str, ...] = ()):
        self.graph = graph
        self.sinks = sinks
        self.sanitizer_globs = sanitizer_globs
        self.scope_skip_globs = scope_skip_globs
        self.ret_kinds: dict[str, frozenset[str]] = {}
        self.ret_params: dict[str, frozenset[int]] = {}
        self.param_sinks: dict[str, dict[int, list[tuple[str, str, int]]]] = {}
        self._return_sink_names = set()
        for sink in sinks:
            self._return_sink_names |= set(sink.return_of)
        self._fixpoint()

    # -- module roles ------------------------------------------------------
    def _is_sanitizer_module(self, mod: ModuleFacts) -> bool:
        return any(fnmatch(mod.rel, g) or fnmatch(mod.pkgrel, g)
                   for g in self.sanitizer_globs)

    def _in_scope(self, mod: ModuleFacts) -> bool:
        if self._is_sanitizer_module(mod):
            return False
        return not any(fnmatch(mod.rel, g) or fnmatch(mod.pkgrel, g)
                       for g in self.scope_skip_globs)

    # -- name-level propagation inside one function ------------------------
    def _call_taint(self, key: str, fn: FunctionFact, call_idx: int,
                    name_taint: dict[str, frozenset[str]],
                    param_syms: dict[str, str]) -> frozenset[str]:
        call = fn.calls[call_idx]
        mod = self.graph.facts_of[key]
        target = self.graph.resolve_project(mod, fn, call)
        arg_taints = [self._deps_taint(key, fn, deps, name_taint, param_syms)
                      for deps in call.arg_deps]
        union_args: frozenset[str] = frozenset().union(*arg_taints) \
            if arg_taints else frozenset()
        if target is not None:
            if self._is_sanitizer_module(self.graph.facts_of[target]):
                return frozenset()
            out = set(self.ret_kinds.get(target, frozenset()))
            for idx in self.ret_params.get(target, frozenset()):
                if idx < len(arg_taints):
                    out |= arg_taints[idx]
            return frozenset(out)
        resolved = call.resolved or ""
        kind = SOURCE_KINDS.get(resolved)
        if kind is not None:
            return union_args | {kind}
        if resolved == "sorted":
            return union_args - ORDER_KINDS
        if resolved in ("set", "frozenset"):
            return union_args | {"set-order"}
        # unknown method call on a local object: the receiver's taint
        # flows through (``t.hex()`` of a tainted ``t`` stays tainted).
        if len(call.chain) > 1 and call.chain[0] not in ("self", "cls"):
            head = call.chain[0]
            union_args |= name_taint.get(head, frozenset())
            if head in param_syms:
                union_args |= {param_syms[head]}
        # chained receiver: os.urandom(8).hex() — the inner call's taint
        # flows through the method on its result.
        if call.base_call is not None:
            union_args |= self._cached_call_taint(
                key, fn, call.base_call, name_taint, param_syms
            )
        # unknown external: conservative pass-through of argument taint
        return union_args

    def _deps_taint(self, key: str, fn: FunctionFact, deps: tuple[str, ...],
                    name_taint: dict[str, frozenset[str]],
                    param_syms: dict[str, str]) -> frozenset[str]:
        out: set[str] = set()
        for token in deps:
            if token.startswith("n:"):
                name = token[2:]
                out |= name_taint.get(name, frozenset())
                if name in param_syms:
                    out.add(param_syms[name])
            elif token.startswith("c:"):
                out |= self._cached_call_taint(key, fn, int(token[2:]),
                                               name_taint, param_syms)
            elif token.startswith("s:"):
                out.add(token.split(":")[1])
        return frozenset(out)

    def _cached_call_taint(self, key, fn, idx, name_taint, param_syms):
        cache = self._call_cache
        ck = (key, idx)
        if ck not in cache:
            cache[ck] = frozenset()  # break cycles
            cache[ck] = self._call_taint(key, fn, idx, name_taint, param_syms)
        return cache[ck]

    def _analyze_function(self, key: str, fn: FunctionFact):
        """(name_taint, param_syms) after intra-function fixpoint."""
        param_syms = {name: f"@p{i}" for i, name in enumerate(fn.params)}
        name_taint: dict[str, frozenset[str]] = {}
        for _ in range(4):
            self._call_cache: dict = {}
            changed = False
            for target, deps in fn.assigns:
                taint = self._deps_taint(key, fn, deps, name_taint, param_syms)
                merged = name_taint.get(target, frozenset()) | taint
                if merged != name_taint.get(target, frozenset()):
                    name_taint[target] = merged
                    changed = True
            if not changed:
                break
        self._call_cache = {}
        return name_taint, param_syms

    # -- summary fixpoint --------------------------------------------------
    def _fixpoint(self) -> None:
        for _ in range(self._MAX_ROUNDS):
            changed = False
            for key, fn in self.graph.functions.items():
                mod = self.graph.facts_of[key]
                if self._is_sanitizer_module(mod):
                    continue
                name_taint, param_syms = self._analyze_function(key, fn)
                ret = self._deps_taint(key, fn, fn.returns, name_taint,
                                       param_syms)
                kinds = frozenset(k for k in ret if not k.startswith("@p"))
                params = frozenset(int(k[2:]) for k in ret if k.startswith("@p"))
                if kinds != self.ret_kinds.get(key, frozenset()):
                    self.ret_kinds[key] = kinds
                    changed = True
                if params != self.ret_params.get(key, frozenset()):
                    self.ret_params[key] = params
                    changed = True
                sink_map = self._collect_param_sinks(key, fn, name_taint,
                                                     param_syms)
                if sink_map != self.param_sinks.get(key, {}):
                    self.param_sinks[key] = sink_map
                    changed = True
            if not changed:
                break

    def _sink_hits(self, fn: FunctionFact, call: CallFact,
                   mod: ModuleFacts):
        """(sink, checked (label, deps) pairs) for a matching call."""
        target = self.graph.resolve_project(mod, fn, call)
        resolved = call.resolved or ""
        tail = call.chain[-1]
        kw_names = {k for k, _ in call.kw_deps}
        for sink in self.sinks:
            matched = resolved in sink.resolved
            if not matched and tail in sink.tails:
                if sink.require_kwargs <= kw_names:
                    matched = True
            if not matched and target is not None:
                # member-imported project sink (resolved to project key)
                short = target.split(":", 1)[-1]
                if any(r.endswith("." + short) or r == short
                       for r in sink.resolved):
                    matched = True
            if not matched:
                continue
            pairs = []
            if sink.kwargs_only:
                for name, deps in call.kw_deps:
                    if name in sink.kwargs_only:
                        pairs.append((f"{name}=", deps))
            else:
                for i, deps in enumerate(call.arg_deps):
                    pairs.append((f"arg {i}", deps))
                for name, deps in call.kw_deps:
                    pairs.append((f"{name}=", deps))
            yield sink, pairs

    def _collect_param_sinks(self, key, fn, name_taint, param_syms):
        mod = self.graph.facts_of[key]
        out: dict[int, list[tuple[str, str, int]]] = {}

        def note(sym_kinds, sink_kind, rel, lineno):
            for kind in sym_kinds:
                idx = int(kind[2:])
                hits = out.setdefault(idx, [])
                entry = (sink_kind, rel, lineno)
                if entry not in hits:
                    hits.append(entry)

        for call in fn.calls:
            for sink, pairs in self._sink_hits(fn, call, mod):
                for _, deps in pairs:
                    taint = self._deps_taint(key, fn, deps, name_taint,
                                             param_syms)
                    note({k for k in taint if k.startswith("@p")},
                         sink.kind, mod.rel, call.lineno)
            # propagate through callees' param_sinks
            target = self.graph.resolve_project(mod, fn, call)
            if target is None:
                continue
            callee_sinks = self.param_sinks.get(target, {})
            for i, deps in enumerate(call.arg_deps):
                if i not in callee_sinks:
                    continue
                taint = self._deps_taint(key, fn, deps, name_taint, param_syms)
                for sk, rel, ln in callee_sinks[i]:
                    note({k for k in taint if k.startswith("@p")}, sk, rel, ln)
        if fn.name in self._return_sink_names:
            ret = self._deps_taint(key, fn, fn.returns, name_taint, param_syms)
            note({k for k in ret if k.startswith("@p")},
                 self._return_sink_kind(fn.name), mod.rel, fn.lineno)
        return out

    def _return_sink_kind(self, fn_name: str) -> str:
        for sink in self.sinks:
            if fn_name in sink.return_of:
                return sink.kind
        return "sink"

    # -- findings ----------------------------------------------------------
    def findings(self) -> list[TaintFinding]:
        out: list[TaintFinding] = []
        for key, fn in self.graph.functions.items():
            mod = self.graph.facts_of[key]
            if not self._in_scope(mod):
                continue
            name_taint, param_syms = self._analyze_function(key, fn)
            real = lambda ts: tuple(sorted(  # noqa: E731
                k for k in ts if not k.startswith("@p")))
            for call in fn.calls:
                for sink, pairs in self._sink_hits(fn, call, mod):
                    for label, deps in pairs:
                        kinds = real(self._deps_taint(
                            key, fn, deps, name_taint, param_syms))
                        if kinds:
                            out.append(TaintFinding(
                                rel=mod.rel, lineno=call.lineno,
                                sink_kind=sink.kind, kinds=kinds,
                                via=f"{label} of {'.'.join(call.chain)}()",
                                function=key,
                            ))
                target = self.graph.resolve_project(mod, fn, call)
                if target is None:
                    continue
                callee_sinks = self.param_sinks.get(target, {})
                for i, deps in enumerate(call.arg_deps):
                    if i not in callee_sinks:
                        continue
                    kinds = real(self._deps_taint(key, fn, deps, name_taint,
                                                  param_syms))
                    if not kinds:
                        continue
                    for sk, rel, ln in callee_sinks[i]:
                        out.append(TaintFinding(
                            rel=mod.rel, lineno=call.lineno, sink_kind=sk,
                            kinds=kinds,
                            via=(f"arg {i} of {'.'.join(call.chain)}() "
                                 f"reaches the sink at {rel}:{ln}"),
                            function=key,
                        ))
            if fn.name in self._return_sink_names:
                kinds = real(self._deps_taint(key, fn, fn.returns, name_taint,
                                              param_syms))
                if kinds:
                    out.append(TaintFinding(
                        rel=mod.rel, lineno=fn.lineno,
                        sink_kind=self._return_sink_kind(fn.name),
                        kinds=kinds, via=f"return value of {fn.qualname}",
                        function=key,
                    ))
        return out
