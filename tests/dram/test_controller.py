"""Memory controller tests: queueing window and latency accounting."""

import pytest

from repro.common.config import DRAMGeometry, DRAMTimingConfig
from repro.dram.controller import MemoryController


def make_controller(queue_depth=256):
    geo = DRAMGeometry(channels=1, banks_per_channel=16, page_size=2048)
    return MemoryController(geo, DRAMTimingConfig.ddr3_1600h(), queue_depth=queue_depth)


class TestBasicOperation:
    def test_read_latency_recorded(self):
        mc = make_controller()
        access = mc.read(0x4000, now=0)
        assert access.latency > 0
        assert mc.read_latency.count == 1
        assert mc.reads == 1

    def test_writes_counted_separately(self):
        mc = make_controller()
        mc.write(0x4000, now=0)
        assert mc.writes == 1
        assert mc.reads == 0
        assert mc.read_latency.count == 0

    def test_burst_transfer_bytes(self):
        mc = make_controller()
        mc.read(0x4000, now=0, bursts=8)
        assert mc.bytes_transferred == 512

    def test_open_page_row_hits(self):
        mc = make_controller()
        mc.read(0x4000, now=0)
        mc.read(0x4040, now=500)
        assert mc.row_buffer_hit_rate() == pytest.approx(0.5)


class TestCommandQueue:
    def test_full_queue_delays_new_requests(self):
        mc = make_controller(queue_depth=2)
        a = mc.read(0x0000, now=0)
        b = mc.read(0x10000, now=0)
        c = mc.read(0x20000, now=0)  # queue full: waits for oldest
        assert c.request_time >= min(a.data_end, b.data_end)

    def test_deep_queue_no_delay(self):
        mc = make_controller(queue_depth=256)
        first = mc.read(0x0000, now=0)
        second = mc.read(0x40000, now=0)
        assert second.request_time == 0

    def test_queue_depth_validation(self):
        with pytest.raises(ValueError):
            make_controller(queue_depth=0)

    def test_inflight_window_bounded(self):
        mc = make_controller(queue_depth=4)
        for i in range(200):
            mc.read(i * 0x10000, now=0)
        # Bounded memory: the per-channel deque is trimmed.
        assert len(mc._inflight[0]) <= 16 * 4


def test_reset_stats():
    mc = make_controller()
    mc.read(0x4000, now=0)
    mc.reset_stats()
    assert mc.reads == 0
    assert mc.read_latency.count == 0
    assert mc.bytes_transferred == 0
