"""Bandwidth and row-buffer experiments: Figures 9(a), 9(b), 9(c), 10.

Every (scheme/config, mix) run is an independent cell dispatched via
:func:`repro.harness.parallel.run_grid`; results are assembled back in
grid order, so parallel and serial invocations produce identical rows.
Row assembly goes through
:func:`~repro.harness.parallel.complete_groups`, so a permanently
failed cell under fault collection drops only its own mix's row.
"""

from __future__ import annotations

from repro.harness.parallel import GridCell, complete_groups, drive_cell, run_grid
from repro.harness.reporting import append_mean_row
from repro.harness.runner import ExperimentSetup, scaled_locator_bits
from repro.bimodal.cache import BiModalConfig
from repro.workloads.mixes import mixes_for_cores

__all__ = [
    "fig9a_wasted_bandwidth",
    "fig9b_metadata_rbh",
    "fig9c_way_locator_hit_rate",
    "fig10_small_block_fraction",
]


def fig9a_wasted_bandwidth(
    *,
    setup: ExperimentSetup | None = None,
    mix_names: list[str] | None = None,
    jobs: int | None = None,
) -> list[dict]:
    """Figure 9(a): wasted off-chip bytes, fixed-512B vs Bi-Modal.

    The paper reports savings of 67%/62%/71% (4/8/16-core averages) from
    bi-modality; workloads that wasted the most (E8, E12, E14, E15)
    benefit most. Measured post-warmup (steady state), matching the
    paper's fast-forward protocol.
    """
    setup = setup or ExperimentSetup(num_cores=8)
    names = mix_names or list(mixes_for_cores(setup.num_cores))
    schemes = ("fixed512", "bimodal")
    cells = [
        GridCell(scheme=scheme, mix=name, setup=setup, warmup_fraction=0.5)
        for name in names
        for scheme in schemes
    ]
    stats = run_grid(drive_cell, cells, jobs=jobs)
    rows = []
    for name, (fixed, bimodal) in complete_groups(names, stats, 2):
        fixed_waste = fixed["offchip_wasted_bytes"]
        bi_waste = bimodal["offchip_wasted_bytes"]
        saving = (fixed_waste - bi_waste) / fixed_waste if fixed_waste else 0.0
        rows.append(
            {
                "mix": name,
                "fixed512_wasted_mb": fixed_waste / (1 << 20),
                "bimodal_wasted_mb": bi_waste / (1 << 20),
                "saving_pct": 100.0 * saving,
            }
        )
    if rows:
        total_fixed = sum(r["fixed512_wasted_mb"] for r in rows)
        total_bi = sum(r["bimodal_wasted_mb"] for r in rows)
        rows.append(
            {
                "mix": "total",
                "fixed512_wasted_mb": total_fixed,
                "bimodal_wasted_mb": total_bi,
                "saving_pct": 100.0 * (total_fixed - total_bi) / total_fixed
                if total_fixed
                else 0.0,
            }
        )
    return rows


def fig9b_metadata_rbh(
    *,
    setup: ExperimentSetup | None = None,
    mix_names: list[str] | None = None,
    jobs: int | None = None,
) -> list[dict]:
    """Figure 9(b): metadata row-buffer hit rate, separate vs co-located.

    Measured on the full Bi-Modal configuration: with the way locator
    deployed, DRAM tag reads are locator-miss events, and it is exactly
    those scattered reads whose row-buffer behaviour the dense metadata
    bank improves (16 sets per open metadata page vs 1 for co-located
    tags). The paper reports a 37% average RBH improvement.

    Known deviation: absolute RBH values are pessimistic here because
    the access-granularity model serves bank requests in arrival order —
    a real FR-FCFS controller batches same-row tag reads from different
    cores that our model interleaves. The separate-vs-co-located
    *relative* advantage is what this experiment reproduces.
    """
    setup = setup or ExperimentSetup()
    names = mix_names or list(mixes_for_cores(setup.num_cores))
    k = scaled_locator_bits(scale=setup.scale)
    layouts = (("separate", False), ("colocated", True))
    cells = []
    for name in names:
        for _, colocated in layouts:
            cfg = BiModalConfig(
                locator_index_bits=k,
                predictor_index_bits=10,
                tracker_sample_every=2,
                adaptation_interval=2_000,
                colocated_metadata=colocated,
                parallel_tag_data=not colocated,
            )
            cells.append(
                GridCell(scheme="bimodal", mix=name, setup=setup, bimodal_config=cfg)
            )
    stats = run_grid(drive_cell, cells, jobs=jobs)
    rows = []
    for name, chunk in complete_groups(names, stats, len(layouts)):
        results = {
            label: cell_stats["metadata_rbh"]
            for (label, _), cell_stats in zip(layouts, chunk)
        }
        gain = (
            (results["separate"] - results["colocated"]) / results["colocated"]
            if results["colocated"]
            else 0.0
        )
        rows.append(
            {
                "mix": name,
                "colocated_rbh": results["colocated"],
                "separate_rbh": results["separate"],
                "gain_pct": 100.0 * gain,
            }
        )
    return append_mean_row(rows)


def fig9c_way_locator_hit_rate(
    *,
    setup: ExperimentSetup | None = None,
    mix_names: list[str] | None = None,
    k_values: tuple[int, ...] | None = None,
    jobs: int | None = None,
) -> list[dict]:
    """Figure 9(c): way locator hit rate vs table size K.

    K values are expressed at paper scale (10/12/14/16) and shifted by
    the capacity scale; the paper finds K=14 the sweet spot (~95% hit
    rate on quad-core workloads).
    """
    setup = setup or ExperimentSetup()
    names = mix_names or list(mixes_for_cores(setup.num_cores))
    paper_ks = k_values or (10, 12, 14, 16)
    cells = []
    for name in names:
        for paper_k in paper_ks:
            k = scaled_locator_bits(paper_k, setup.scale)
            cfg = BiModalConfig(
                locator_index_bits=k,
                predictor_index_bits=10,
                tracker_sample_every=2,
                adaptation_interval=2_000,
            )
            cells.append(
                GridCell(scheme="bimodal", mix=name, setup=setup, bimodal_config=cfg)
            )
    stats = run_grid(drive_cell, cells, jobs=jobs)
    rows = []
    for name, chunk in complete_groups(names, stats, len(paper_ks)):
        row: dict = {"mix": name}
        for paper_k, cell_stats in zip(paper_ks, chunk):
            row[f"K{paper_k}"] = cell_stats["way_locator_hit_rate"]
        rows.append(row)
    return append_mean_row(rows)


def fig10_small_block_fraction(
    *,
    setup: ExperimentSetup | None = None,
    mix_names: list[str] | None = None,
    jobs: int | None = None,
) -> list[dict]:
    """Figure 10: fraction of accesses served by small blocks.

    The paper sees wide variation — 1% (Q17) to 48% (Q23) — showing the
    organization adapts to workload spatial behaviour.
    """
    setup = setup or ExperimentSetup()
    names = mix_names or list(mixes_for_cores(setup.num_cores))
    cells = [GridCell(scheme="bimodal", mix=name, setup=setup) for name in names]
    stats = run_grid(drive_cell, cells, jobs=jobs)
    return [
        {
            "mix": name,
            "small_fraction": cell_stats["small_access_fraction"],
            "global_state": str(cell_stats["global_state"]),
        }
        for name, (cell_stats,) in complete_groups(names, stats, 1)
    ]
