"""SetAssociativeCache tests, including a hypothesis model check."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sram.cache import SetAssociativeCache


def make_cache(size=8192, assoc=2, block=64, **kw):
    return SetAssociativeCache(size, assoc, block, **kw)


class TestBasics:
    def test_cold_miss_then_hit(self):
        cache = make_cache()
        assert not cache.access(0x1000).hit
        assert cache.access(0x1000).hit

    def test_same_block_different_bytes_hit(self):
        cache = make_cache()
        cache.access(0x1000)
        assert cache.access(0x103F).hit

    def test_contains_has_no_side_effects(self):
        cache = make_cache()
        cache.access(0x1000)
        assert cache.contains(0x1000)
        assert not cache.contains(0x2000)
        assert cache.accesses.total == 1

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(1000, 2, 64)
        with pytest.raises(ValueError):
            SetAssociativeCache(8192, 0, 64)
        with pytest.raises(ValueError):
            SetAssociativeCache(8192, 3, 64)  # non-power-of-two sets

    def test_hit_rate_property(self):
        cache = make_cache()
        cache.access(0x0)
        cache.access(0x0)
        assert cache.hit_rate == pytest.approx(0.5)


class TestEvictionAndWriteback:
    def test_lru_eviction_order(self):
        cache = make_cache(size=128, assoc=2, block=64)  # 1 set, 2 ways
        cache.access(0x000)
        cache.access(0x400)
        cache.access(0x000)  # refresh LRU
        result = cache.access(0x800)  # evicts 0x400
        assert result.victim_address == 0x400

    def test_dirty_victim_produces_writeback(self):
        cache = make_cache(size=128, assoc=1, block=64)
        cache.access(0x000, is_write=True)
        result = cache.access(0x1000)
        assert result.writeback_address == 0x000

    def test_clean_victim_no_writeback(self):
        cache = make_cache(size=128, assoc=1, block=64)
        cache.access(0x000)
        result = cache.access(0x1000)
        assert result.writeback_address is None
        assert result.victim_address == 0x000

    def test_write_hit_marks_dirty(self):
        cache = make_cache(size=128, assoc=1, block=64)
        cache.access(0x000)
        cache.access(0x000, is_write=True)
        result = cache.access(0x1000)
        assert result.writeback_address == 0x000

    def test_invalidate(self):
        cache = make_cache()
        cache.access(0x1000)
        assert cache.invalidate(0x1000)
        assert not cache.contains(0x1000)
        assert not cache.invalidate(0x1000)

    def test_eviction_counters(self):
        cache = make_cache(size=128, assoc=1, block=64)
        cache.access(0x000, is_write=True)
        cache.access(0x1000)
        assert cache.evictions == 1
        assert cache.writebacks == 1


class TestMRUTracking:
    def test_mru_histogram(self):
        cache = make_cache(size=256, assoc=4, block=64, track_mru=True)
        for addr in (0x0, 0x400, 0x800):
            cache.access(addr)
        cache.access(0x800)  # MRU position 0
        cache.access(0x0)  # position 2 (behind 0x800 and 0x400)
        assert cache.mru_hits.buckets.get(0) == 1
        assert cache.mru_hits.buckets.get(2) == 1

    def test_disabled_by_default(self):
        assert make_cache().mru_hits is None


class TestStats:
    def test_resident_blocks(self):
        cache = make_cache()
        for i in range(5):
            cache.access(i * 64)
        assert cache.resident_blocks() == 5

    def test_reset_stats_keeps_contents(self):
        cache = make_cache()
        cache.access(0x1000)
        cache.reset_stats()
        assert cache.accesses.total == 0
        assert cache.contains(0x1000)


@settings(max_examples=50, deadline=None)
@given(
    addresses=st.lists(
        st.integers(min_value=0, max_value=63).map(lambda b: b * 64),
        min_size=1,
        max_size=300,
    )
)
def test_fully_associative_matches_lru_reference(addresses):
    """A 1-set LRU cache must match a textbook LRU list model."""
    ways = 4
    cache = SetAssociativeCache(ways * 64, ways, 64, policy="lru")
    reference: list[int] = []  # MRU first
    for addr in addresses:
        block = addr // 64 * 64
        hit = cache.access(addr).hit
        ref_hit = block in reference
        assert hit == ref_hit
        if ref_hit:
            reference.remove(block)
        reference.insert(0, block)
        del reference[ways:]
    for block in reference:
        assert cache.contains(block)


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2047).map(lambda b: b * 64),
            st.booleans(),
        ),
        max_size=400,
    )
)
def test_set_mapped_residency_model(ops):
    """Every set behaves as an independent LRU of its own blocks."""
    cache = SetAssociativeCache(4096, 2, 64, policy="lru")
    num_sets = cache.num_sets
    model: dict[int, list[int]] = {}
    for addr, is_write in ops:
        block = addr // 64
        set_idx = block % num_sets
        stack = model.setdefault(set_idx, [])
        hit = cache.access(addr, is_write=is_write).hit
        assert hit == (block in stack)
        if block in stack:
            stack.remove(block)
        stack.insert(0, block)
        del stack[2:]
