"""Command-line front-end: subcommands over the experiment engine.

Examples::

    python -m repro run fig1 --mixes Q2 Q7 --accesses 20000
    python -m repro run fig7 --jobs auto --trace-out fig7.jsonl
    python -m repro run table3 --export out/table3.json
    python -m repro list
    python -m repro list-schemes
    python -m repro bench --repeats 5

The pre-subcommand invocation (``python -m repro fig1 ...``) keeps
working with a deprecation note; it forwards to ``repro run``.

Shared flags (``run`` and ``bench``):

* ``--jobs N|auto`` — fan grid cells over worker processes
  (sets ``REPRO_JOBS`` for every layer below);
* ``--seed N`` — workload generation seed;
* ``--trace-out FILE`` — write the observability JSONL trace there and
  stream per-cell progress to stderr (see docs/observability.md). A
  run manifest lands next to every trace/export file.

Fault tolerance (see docs/robustness.md): ``run`` always collects
per-cell failures instead of dying on the first one. A grid that ends
with failures still prints and exports every completed row, lists the
failed cells on stderr, records them in the manifest and exits with
code 3 (config/usage errors exit 2, clean runs 0). ``--export`` keeps a
crash-safe checkpoint beside the artifact; ``--resume <ckpt>`` skips
cells the checkpoint already holds.
"""

from __future__ import annotations

import argparse
import os
import sys

import repro.harness.experiments as experiments
from repro.harness import checkpoint as checkpoint_module
from repro.harness import faults
from repro.harness.reporting import print_table
from repro.harness.runner import ExperimentSetup

#: Grid completed but one or more cells permanently failed.
EXIT_CELL_FAILURES = 3
#: Bad arguments/configuration (also argparse's own exit code).
EXIT_USAGE = 2

# name -> (function attr, needs-setup, default core count, description)
_EXPERIMENTS: dict[str, tuple[str, bool, int, str]] = {
    "fig1": ("fig1_miss_rate_vs_block_size", True, 4, "miss rate vs block size"),
    "fig2": ("fig2_block_utilization", True, 4, "sub-block utilization distribution"),
    "fig3": ("fig3_latency_breakdown", False, 4, "hit-path latency breakdown"),
    "fig5": ("fig5_mru_hits", True, 8, "hits by MRU position"),
    "fig7": ("fig7_antt", True, 4, "ANTT improvement over AlloyCache"),
    "fig8a": ("fig8a_component_analysis", True, 8, "component ANTT analysis"),
    "fig8b": ("fig8b_hit_rate", True, 4, "hit rates by scheme"),
    "fig8c": ("fig8c_access_latency", True, 4, "average LLSC miss penalty"),
    "fig9a": ("fig9a_wasted_bandwidth", True, 8, "wasted off-chip bandwidth"),
    "fig9b": ("fig9b_metadata_rbh", True, 4, "metadata RBH separate vs co-located"),
    "fig9c": ("fig9c_way_locator_hit_rate", True, 4, "way locator hit rate vs K"),
    "fig10": ("fig10_small_block_fraction", True, 4, "small-block access fraction"),
    "fig11": ("fig11_energy", True, 8, "memory energy vs AlloyCache"),
    "fig12": ("fig12_sensitivity", True, 4, "cache/block/assoc sensitivity"),
    "table1": ("table1_feature_matrix", False, 4, "qualitative feature matrix"),
    "table3": ("table3_way_locator_storage", False, 4, "way locator storage/latency"),
    "table6": ("table6_prefetch", True, 4, "interaction with prefetching"),
    "abl-threshold": ("ablation_threshold", True, 4, "utilization threshold sweep"),
    "abl-weight": ("ablation_weight", True, 4, "adaptation weight sweep"),
    "abl-sampling": ("ablation_sampling", True, 4, "tracker sampling sweep"),
    "abl-parallel": ("ablation_parallel_tag", True, 4, "parallel vs serial tags"),
    "ext-victim": ("victim_buffer_study", True, 4, "victim-buffer benefit bound"),
    "ext-dueling": ("controller_comparison", True, 4, "demand vs set-dueling"),
    "ext-spaceutil": (
        "space_utilization_comparison", True, 4, "cache space utilization"
    ),
}

_SUBCOMMANDS = ("run", "list", "list-schemes", "bench", "lint")


def _shared_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        default=None,
        metavar="N",
        help="worker processes for grid cells (a number or 'auto'; "
        "sets REPRO_JOBS)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="drive engine: 'scalar' (default) or 'vectorized' "
        "(sets REPRO_BACKEND for every layer below; recorded in "
        "run manifests)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write observability JSONL events to FILE (enables per-cell "
        "progress on stderr; a .manifest.json lands next to it)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables/figures of the Bi-Modal DRAM Cache paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one experiment (figure/table id)")
    run.add_argument(
        "experiment", help="experiment id (see `python -m repro list`)"
    )
    run.add_argument("--mixes", nargs="*", default=None, help="mix subset")
    run.add_argument("--cores", type=int, default=None, help="4, 8 or 16")
    run.add_argument(
        "--accesses", type=int, default=20_000, help="accesses per core"
    )
    run.add_argument("--scale", type=int, default=16, help="capacity scale")
    run.add_argument(
        "--export", default=None, help="write rows to this .json or .csv path"
    )
    run.add_argument(
        "--chart",
        default=None,
        metavar="COLUMN",
        help="also render a bar chart of this numeric column",
    )
    run.add_argument(
        "--checkpoint",
        default=None,
        metavar="FILE",
        help="record completed grid cells to this crash-safe JSONL file "
        "(defaults to <export>.ckpt.jsonl when --export is given)",
    )
    run.add_argument(
        "--resume",
        default=None,
        metavar="CKPT",
        help="resume from a checkpoint file: cells already recorded there "
        "are served from it, only the missing ones run",
    )
    _shared_flags(run)

    sub.add_parser("list", help="list experiment ids")
    sub.add_parser("list-schemes", help="list registered DRAM cache schemes")
    # `lint` is dispatched before parse_args so simlint owns its own
    # argument surface; this entry only makes it show up in --help.
    sub.add_parser(
        "lint",
        help="run simlint static analysis (see docs/static-analysis.md)",
        add_help=False,
    )

    bench = sub.add_parser(
        "bench", help="measure drive-loop throughput (records/sec)"
    )
    bench.add_argument("--scheme", default="bimodal")
    bench.add_argument("--mix", default="Q1")
    bench.add_argument("--cores", type=int, default=4)
    bench.add_argument("--accesses-per-core", type=int, default=15_000)
    bench.add_argument("--repeats", type=int, default=3)
    bench.add_argument(
        "--modes",
        default="legacy,fast,traced",
        help="comma-separated subset of {legacy,fast,traced}",
    )
    bench.add_argument(
        "--output", default=None, help="append the entry to this JSON history"
    )
    _shared_flags(bench)

    return parser


def _validate_backend(args: argparse.Namespace) -> str | None:
    """Reject a bad --backend before any simulation starts.

    Unknown names and a vectorized request without numpy are both
    one-line usage errors (exit 2), never tracebacks; the scalar path
    must work on a numpy-less interpreter.
    """
    if not args.backend:
        return None
    from repro.harness.backends import (
        BackendUnavailableError,
        UnknownBackendError,
        require_backend,
    )

    try:
        require_backend(args.backend)
    except (UnknownBackendError, BackendUnavailableError) as exc:
        return str(exc)
    return None


def _apply_shared_flags(args: argparse.Namespace) -> None:
    """Propagate --jobs / --backend / --trace-out to the layers below."""
    if args.jobs is not None:
        os.environ["REPRO_JOBS"] = str(args.jobs)
    if args.backend:
        # Workers and nested drives resolve the engine from the
        # environment, so one flag covers the whole process tree.
        os.environ["REPRO_BACKEND"] = args.backend
    if args.trace_out:
        from repro.obs import configure

        configure(args.trace_out, propagate_env=True)


def _cmd_list() -> int:
    for name, (_, _, cores, desc) in _EXPERIMENTS.items():
        print(f"  {name:14s} ({cores}-core default)  {desc}")
    return 0


def _cmd_list_schemes() -> int:
    from repro.harness.schemes import scheme_catalog

    for line in scheme_catalog():
        print(f"  {line}")
    return 0


def _usage_error(message: str) -> int:
    """One clean line on stderr, never a traceback."""
    print(f"error: {message}", file=sys.stderr)
    return EXIT_USAGE


def _validate_run_args(args: argparse.Namespace) -> str | None:
    """Reject bad configuration before any simulation starts."""
    if args.cores is not None and args.cores not in (4, 8, 16):
        return f"--cores must be 4, 8 or 16 (got {args.cores})"
    if args.accesses <= 0:
        return f"--accesses must be positive (got {args.accesses})"
    if args.scale < 1:
        return f"--scale must be >= 1 (got {args.scale})"
    if args.mixes:
        from repro.workloads.mixes import mixes_for_cores

        _, _, default_cores, _ = _EXPERIMENTS[args.experiment]
        known = mixes_for_cores(args.cores or default_cores)
        unknown = [m for m in args.mixes if m not in known]
        if unknown:
            return (
                f"unknown mix(es) {', '.join(unknown)} for "
                f"{args.cores or default_cores} cores "
                f"(known: {', '.join(sorted(known))})"
            )
    return None


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.harness import perfbench
    from repro.harness.schemes import UnknownSchemeError, get_scheme
    from repro.workloads.mixes import mixes_for_cores

    if args.cores not in (4, 8, 16):
        return _usage_error(f"--cores must be 4, 8 or 16 (got {args.cores})")
    try:
        get_scheme(args.scheme)
    except UnknownSchemeError as exc:
        # The exception text already lists every registered scheme.
        return _usage_error(f"{exc} (see `python -m repro list-schemes`)")
    if args.mix not in mixes_for_cores(args.cores):
        return _usage_error(
            f"unknown mix {args.mix!r} for {args.cores} cores"
        )
    problem = _validate_backend(args)
    if problem:
        return _usage_error(problem)
    _apply_shared_flags(args)
    forwarded = [
        "--scheme", args.scheme,
        "--mix", args.mix,
        "--cores", str(args.cores),
        "--accesses-per-core", str(args.accesses_per_core),
        "--repeats", str(args.repeats),
        "--modes", args.modes,
    ]
    if args.backend:
        forwarded += ["--backend", args.backend]
    if args.output:
        forwarded += ["--output", args.output]
    return perfbench.main(forwarded)


def _checkpoint_path(args: argparse.Namespace) -> str | None:
    """Where this run checkpoints: --resume > --checkpoint > <export>.ckpt."""
    if args.resume:
        return args.resume
    if args.checkpoint:
        return args.checkpoint
    if args.export:
        return checkpoint_module.default_path(args.export)
    return None


def _cmd_run(args: argparse.Namespace, argv: list[str]) -> int:
    if args.experiment not in _EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; try `python -m repro list`")
        return EXIT_USAGE
    problem = _validate_run_args(args) or _validate_backend(args)
    if problem:
        return _usage_error(problem)
    _apply_shared_flags(args)
    attr, needs_setup, default_cores, desc = _EXPERIMENTS[args.experiment]
    fn = getattr(experiments, attr)
    kwargs: dict = {}
    setup = None
    if needs_setup:
        setup = ExperimentSetup(
            num_cores=args.cores or default_cores,
            scale=args.scale,
            accesses_per_core=args.accesses,
            seed=args.seed,
        )
        kwargs["setup"] = setup
        if args.mixes and "mix_name" not in fn.__code__.co_varnames:
            kwargs["mix_names"] = args.mixes

    from contextlib import ExitStack

    from repro.harness.schemes import UnknownSchemeError
    from repro.obs import get_tracer

    ckpt_path = _checkpoint_path(args)
    tracer = get_tracer()
    try:
        with ExitStack() as stack:
            collector = stack.enter_context(faults.collect_failures())
            ckpt = None
            if ckpt_path:
                ckpt = stack.enter_context(
                    checkpoint_module.attach(
                        ckpt_path, resume=bool(args.resume)
                    )
                )
            span = stack.enter_context(
                tracer.span("run", experiment=args.experiment)
            )
            rows = fn(**kwargs)
            if tracer.enabled:
                span["rows"] = len(rows)
            if ckpt is not None and args.resume and ckpt.hits:
                print(
                    f"[repro] resumed {ckpt.hits} cell(s) from {ckpt_path}",
                    file=sys.stderr,
                )
    except (UnknownSchemeError, ValueError) as exc:
        # Config-shaped errors (unknown scheme/mix, bad parameter) get a
        # clean one-liner, not a traceback.
        return _usage_error(str(exc))
    print_table(rows, title=f"{args.experiment}: {desc}")
    if args.chart and rows:
        from repro.harness.figures import bar_chart

        label = next(iter(rows[0]))
        print()
        print(bar_chart(rows, label=label, value=args.chart))
    if args.export:
        if rows:
            from repro.harness.export import export_csv, export_json

            if args.export.endswith(".csv"):
                export_csv(rows, args.export)
            else:
                export_json(rows, args.export, experiment=args.experiment)
            print(f"\nwrote {args.export}")
        else:
            print(
                f"[repro] no completed rows; skipping export to {args.export}",
                file=sys.stderr,
            )
    _write_manifests(args, argv, setup, collector.as_dicts())
    if collector:
        _print_failure_table(collector)
        return EXIT_CELL_FAILURES
    return 0


def _print_failure_table(collector: faults.FailureCollector) -> None:
    print(
        f"\n[repro] grid completed with {len(collector)} failed cell(s):",
        file=sys.stderr,
    )
    for failure in collector.failures:
        print(f"  {failure.describe()}", file=sys.stderr)
    print(
        "[repro] completed rows were kept; failures are recorded in the "
        "run manifest (exit code 3)",
        file=sys.stderr,
    )


def _write_manifests(
    args: argparse.Namespace,
    argv: list[str],
    setup: ExperimentSetup | None,
    failures: list[dict] | None = None,
) -> None:
    """One manifest beside every artifact this invocation produced."""
    outputs = [p for p in (args.export, args.trace_out) if p]
    if not outputs:
        return
    from repro.obs import RunManifest

    manifest = RunManifest.collect(
        args.experiment,
        config=setup,
        seed=args.seed,
        argv=argv,
        failures=failures,
    )
    for output in outputs:
        manifest.write_next_to(output)


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "lint":
        from repro.analysis.cli import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] not in _SUBCOMMANDS and not argv[0].startswith("-"):
        # Legacy invocation: `python -m repro fig1 ...`.
        print(
            f"note: `python -m repro {argv[0]}` is deprecated; "
            f"use `python -m repro run {argv[0]}`",
            file=sys.stderr,
        )
        argv = ["run", *argv]
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "list-schemes":
        return _cmd_list_schemes()
    if args.command == "bench":
        return _cmd_bench(args)
    return _cmd_run(args, argv)


if __name__ == "__main__":
    raise SystemExit(main())
